#!/usr/bin/env python3
"""Config-driven comparative study: the whole sweep as one JSON file.

The survey's comparative questions ("which platform fits this site?")
are systems x environments grids. With the declarative spec layer
(docs/specs.md) such a grid is *data*: this example writes the study to a
JSON config, reloads it, and fans it across worker processes — no
module-level factory functions, and the config file alone reproduces the
numbers anywhere (`python -m repro run sweep.json`).

Run:  python examples/spec_driven_sweep.py
"""

import tempfile
from pathlib import Path

from repro.spec import EnvironmentSpec, SweepSpec, load_spec, run_sweep, spec_for

DAY = 86_400.0

#: The deployment sites under comparison (registered environment names).
SITES = ["outdoor", "indoor-industrial", "agricultural", "urban-rf"]


def main() -> None:
    # 1. The study, declared: all seven Table I platforms on four sites.
    study = SweepSpec.grid(
        [spec_for(letter) for letter in "ABCDEFG"],
        [EnvironmentSpec(site, duration=2 * DAY, dt=300.0, seed=5)
         for site in SITES],
        name="platform-x-site",
    )

    # 2. Serialize -> reload: the file IS the study.
    path = Path(tempfile.mkdtemp()) / "sweep.json"
    study.save(path)
    reloaded = load_spec(path)
    assert reloaded == study
    print(f"{len(study.runs)}-scenario study serialized to {path}\n"
          f"(replay it with: python -m repro run {path})\n")

    # 3. Execute across worker processes; results are row-for-row
    #    identical to a sequential run regardless of worker count.
    sweep = run_sweep(reloaded)
    print(sweep.report(
        columns=("uptime_fraction", "harvested_delivered_j",
                 "measurements", "brownouts"),
        title="two days per site, seed 5"))

    # 4. The tidy table: best platform per site by uptime, then harvest.
    print("\nbest platform per site:")
    for site in SITES:
        rows = [r for r in sweep if r.params["environment"] == site]
        best = max(rows, key=lambda r: (r.metrics.uptime_fraction,
                                        r.metrics.harvested_delivered_j))
        print(f"  {site:<18} {best.params['system']:<18} "
              f"uptime {best.metrics.uptime_fraction * 100:5.1f} %, "
              f"{best.metrics.harvested_delivered_j:8.1f} J harvested")


if __name__ == "__main__":
    main()
