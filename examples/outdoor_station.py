#!/usr/bin/env python3
"""Outdoor monitoring station: sizing a multi-source platform.

The scenario the survey's introduction motivates: an outdoor wireless
sensor that must survive bad weather. This example sweeps three design
choices on the same two-week climate:

1. source mix        — PV only vs wind only vs PV+wind (Sec. I's claim);
2. buffer size       — how small the supercap can go per mix;
3. manager           — fixed duty vs threshold adaptation through a storm.

Run:  python examples/outdoor_station.py
"""

from repro import (
    EnergyNeutralManager,
    StaticManager,
    ThresholdManager,
    outdoor_environment,
    simulate,
)
from repro.analysis import render_table
from repro.analysis.experiments import make_reference_system
from repro.harvesters import MicroWindTurbine, PhotovoltaicCell

DAY = 86_400.0


def source_mix_study(env) -> None:
    print("=== 1. Source mix (two weeks, temperate site) ===")
    rows = []
    mixes = {
        "pv-only": [PhotovoltaicCell(area_cm2=40.0, efficiency=0.16)],
        "wind-only": [MicroWindTurbine(rotor_diameter_m=0.12)],
        "pv+wind": [PhotovoltaicCell(area_cm2=40.0, efficiency=0.16),
                    MicroWindTurbine(rotor_diameter_m=0.12)],
    }
    for label, harvesters in mixes.items():
        system = make_reference_system(harvesters, capacitance_f=100.0,
                                       measurement_interval_s=60.0)
        m = simulate(system, env).metrics
        rows.append((label, f"{m.harvested_delivered_j / 14:.0f}",
                     f"{m.harvest_coverage * 24:.1f}",
                     f"{m.uptime_fraction * 100:.1f} %"))
    print(render_table(["mix", "J/day", "covered h/day", "uptime"], rows))
    print()


def buffer_study(env) -> None:
    print("=== 2. Buffer sizing at 5 s sensing cadence ===")
    rows = []
    for label, harvesters in (
        ("pv-only", lambda: [PhotovoltaicCell(area_cm2=40.0,
                                              efficiency=0.16)]),
        ("pv+wind", lambda: [PhotovoltaicCell(area_cm2=40.0,
                                              efficiency=0.16),
                             MicroWindTurbine(rotor_diameter_m=0.12)]),
    ):
        for cap in (1.0, 3.0, 10.0, 30.0):
            system = make_reference_system(harvesters(), capacitance_f=cap,
                                           initial_soc=0.8,
                                           measurement_interval_s=5.0)
            m = simulate(system, env).metrics
            rows.append((label, f"{cap:.0f} F",
                         f"{m.dead_time_s / 3600:.1f} h",
                         f"{m.uptime_fraction * 100:.1f} %"))
    print(render_table(["mix", "supercap", "dead time", "uptime"], rows))
    print()


def manager_study(storm_env) -> None:
    print("=== 3. Manager choice through a 2-day storm ===")
    rows = []
    for label, manager in (("fixed", StaticManager()),
                           ("threshold", ThresholdManager()),
                           ("energy-neutral", EnergyNeutralManager())):
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=30.0, efficiency=0.16),
             MicroWindTurbine(rotor_diameter_m=0.08)],
            capacitance_f=10.0, initial_soc=0.7,
            measurement_interval_s=1.0, manager=manager)
        m = simulate(system, storm_env).metrics
        rows.append((label, f"{m.uptime_fraction * 100:.1f} %",
                     f"{m.dead_time_s / 3600:.1f} h",
                     f"{m.measurements_per_day:.0f}"))
    print(render_table(["manager", "uptime", "dead time", "meas/day"], rows))


def main() -> None:
    env = outdoor_environment(duration=14 * DAY, dt=300.0, seed=7)
    storm = ((5 * DAY, 7 * DAY),)
    storm_env = outdoor_environment(duration=10 * DAY, dt=300.0, seed=7,
                                    overcast_windows=storm,
                                    calm_windows=storm)
    source_mix_study(env)
    buffer_study(env)
    manager_study(storm_env)


if __name__ == "__main__":
    main()
