#!/usr/bin/env python3
"""Outdoor monitoring station: sizing a multi-source platform.

The scenario the survey's introduction motivates: an outdoor wireless
sensor that must survive bad weather. This example sweeps three design
choices on the same two-week climate:

1. source mix        — PV only vs wind only vs PV+wind (Sec. I's claim);
2. buffer size       — how small the supercap can go per mix;
3. manager           — fixed duty vs threshold adaptation through a storm.

All three studies are expressed as ``ScenarioSpec`` grids and fanned
across worker processes by ``SweepRunner`` — the batch API every
experiment in ``repro.analysis.experiments`` uses. Factories are
module-level (picklable), and each scenario rebuilds its environment from
an explicit seed, so the parallel run is number-for-number identical to a
sequential one.

Run:  python examples/outdoor_station.py
"""

from functools import partial

from repro import outdoor_environment
from repro.analysis import render_table
from repro.analysis.experiments import make_reference_system
from repro.core.manager import (
    EnergyNeutralManager,
    StaticManager,
    ThresholdManager,
)
from repro.harvesters import MicroWindTurbine, PhotovoltaicCell
from repro.simulation import ScenarioSpec, SweepRunner

DAY = 86_400.0
SEED = 7

MIXES = {
    "pv-only": ("pv",),
    "wind-only": ("wind",),
    "pv+wind": ("pv", "wind"),
}

MANAGERS = {
    "fixed": StaticManager,
    "threshold": ThresholdManager,
    "energy-neutral": EnergyNeutralManager,
}


def make_harvesters(mix: str) -> list:
    harvesters = []
    if "pv" in MIXES[mix]:
        harvesters.append(PhotovoltaicCell(area_cm2=40.0, efficiency=0.16))
    if "wind" in MIXES[mix]:
        harvesters.append(MicroWindTurbine(rotor_diameter_m=0.12))
    return harvesters


def build_mix_system(mix: str):
    return make_reference_system(make_harvesters(mix), capacitance_f=100.0,
                                 measurement_interval_s=60.0)


def build_buffer_system(mix: str, capacitance_f: float):
    return make_reference_system(make_harvesters(mix),
                                 capacitance_f=capacitance_f,
                                 initial_soc=0.8,
                                 measurement_interval_s=5.0)


def build_manager_system(manager: str):
    return make_reference_system(
        [PhotovoltaicCell(area_cm2=30.0, efficiency=0.16),
         MicroWindTurbine(rotor_diameter_m=0.08)],
        capacitance_f=10.0, initial_soc=0.7,
        measurement_interval_s=1.0, manager=MANAGERS[manager]())


def source_mix_study(runner, env_factory) -> None:
    print("=== 1. Source mix (two weeks, temperate site) ===")
    sweep = runner.run([
        ScenarioSpec(name=mix, system=partial(build_mix_system, mix),
                     environment=env_factory, seed=SEED,
                     params={"mix": mix})
        for mix in MIXES
    ])
    rows = [(r.name, f"{r.metrics.harvested_delivered_j / 14:.0f}",
             f"{r.metrics.harvest_coverage * 24:.1f}",
             f"{r.metrics.uptime_fraction * 100:.1f} %") for r in sweep]
    print(render_table(["mix", "J/day", "covered h/day", "uptime"], rows))
    print()


def buffer_study(runner, env_factory) -> None:
    print("=== 2. Buffer sizing at 5 s sensing cadence ===")
    sweep = runner.run([
        ScenarioSpec(name=f"{mix}/{cap:g}F",
                     system=partial(build_buffer_system, mix, cap),
                     environment=env_factory, seed=SEED,
                     params={"mix": mix, "capacitance_f": cap})
        for mix in ("pv-only", "pv+wind")
        for cap in (1.0, 3.0, 10.0, 30.0)
    ])
    rows = [(r.params["mix"], f"{r.params['capacitance_f']:.0f} F",
             f"{r.metrics.dead_time_s / 3600:.1f} h",
             f"{r.metrics.uptime_fraction * 100:.1f} %") for r in sweep]
    print(render_table(["mix", "supercap", "dead time", "uptime"], rows))
    print()


def manager_study(runner, storm_env_factory) -> None:
    print("=== 3. Manager choice through a 2-day storm ===")
    sweep = runner.run([
        ScenarioSpec(name=manager,
                     system=partial(build_manager_system, manager),
                     environment=storm_env_factory, seed=SEED,
                     params={"manager": manager})
        for manager in MANAGERS
    ])
    rows = [(r.name, f"{r.metrics.uptime_fraction * 100:.1f} %",
             f"{r.metrics.dead_time_s / 3600:.1f} h",
             f"{r.metrics.measurements_per_day:.0f}") for r in sweep]
    print(render_table(["manager", "uptime", "dead time", "meas/day"], rows))


def main() -> None:
    runner = SweepRunner()
    env_factory = partial(outdoor_environment, duration=14 * DAY, dt=300.0)
    storm = ((5 * DAY, 7 * DAY),)
    storm_env_factory = partial(outdoor_environment, duration=10 * DAY,
                                dt=300.0, overcast_windows=storm,
                                calm_windows=storm)
    source_mix_study(runner, env_factory)
    buffer_study(runner, env_factory)
    manager_study(runner, storm_env_factory)


if __name__ == "__main__":
    main()
