#!/usr/bin/env python3
"""Quickstart: simulate the Smart Power Unit (System A) for a week.

Describes the survey's Fig. 1 reference platform declaratively (a
`RunSpec` — plain data that round-trips through JSON, see docs/specs.md),
executes it, and prints the headline run metrics plus the regenerated
Table I row for the platform.

Run:  python examples/quickstart.py
"""

from repro import EnvironmentSpec, RunSpec, build, classify, run, spec_for
from repro.analysis import render_architecture, render_kv

DAY = 86_400.0


def main() -> None:
    # 1. Describe the whole simulation as data: System A — the survey's
    #    'Smart Power Unit' (Fig. 1) — on a deterministic week of
    #    temperate outdoor weather.
    spec = RunSpec(
        system=spec_for("A", initial_soc=0.5),
        environment=EnvironmentSpec("outdoor", duration=7 * DAY, dt=120.0,
                                    seed=42),
    )
    print(render_architecture(build(spec.system)))
    print()

    # 2. The spec is serializable — this JSON is the simulation, and
    #    `python -m repro run <file>` replays it bit-for-bit.
    print(f"spec round-trips through {len(spec.to_json())} bytes of JSON")
    spec = RunSpec.from_json(spec.to_json())
    print()

    # 3. Execute it.
    result = run(spec)
    m = result.metrics

    # 4. Report.
    print(render_kv(
        [
            ("uptime", f"{m.uptime_fraction * 100:.2f} %"),
            ("harvested (raw)", f"{m.harvested_raw_j:.0f} J"),
            ("harvested (to bus)", f"{m.harvested_delivered_j:.0f} J"),
            ("tracking efficiency", f"{m.tracking_efficiency * 100:.1f} %"),
            ("conversion efficiency", f"{m.conversion_efficiency * 100:.1f} %"),
            ("quiescent losses", f"{m.quiescent_j:.2f} J"),
            ("node energy used", f"{m.node_consumed_j:.0f} J"),
            ("measurements/day", f"{m.measurements_per_day:.0f}"),
            ("fuel-cell energy used", f"{m.backup_used_j:.1f} J"),
        ],
        title="One week outdoors — Smart Power Unit",
    ))
    print()

    # 5. Where this platform sits in the survey's Table I.
    row = classify(result.system, device="A")
    for label, value in row.as_dict().items():
        print(f"  {label:<24} {value}")


if __name__ == "__main__":
    main()
