#!/usr/bin/env python3
"""Quickstart: simulate the Smart Power Unit (System A) for a week.

Builds the survey's Fig. 1 reference platform, runs it against a seeded
outdoor environment, and prints the headline run metrics plus the
regenerated Table I row for the platform.

Run:  python examples/quickstart.py
"""

from repro import build_system, classify, outdoor_environment, simulate
from repro.analysis import render_architecture, render_kv

DAY = 86_400.0


def main() -> None:
    # 1. Build System A — the survey's 'Smart Power Unit' (Fig. 1).
    system = build_system("A", initial_soc=0.5)
    print(render_architecture(system))
    print()

    # 2. A deterministic week of temperate outdoor weather.
    env = outdoor_environment(duration=7 * DAY, dt=120.0, seed=42)

    # 3. Simulate.
    result = simulate(system, env)
    m = result.metrics

    # 4. Report.
    print(render_kv(
        [
            ("uptime", f"{m.uptime_fraction * 100:.2f} %"),
            ("harvested (raw)", f"{m.harvested_raw_j:.0f} J"),
            ("harvested (to bus)", f"{m.harvested_delivered_j:.0f} J"),
            ("tracking efficiency", f"{m.tracking_efficiency * 100:.1f} %"),
            ("conversion efficiency", f"{m.conversion_efficiency * 100:.1f} %"),
            ("quiescent losses", f"{m.quiescent_j:.2f} J"),
            ("node energy used", f"{m.node_consumed_j:.0f} J"),
            ("measurements/day", f"{m.measurements_per_day:.0f}"),
            ("fuel-cell energy used", f"{m.backup_used_j:.1f} J"),
        ],
        title="One week outdoors — Smart Power Unit",
    ))
    print()

    # 5. Where this platform sits in the survey's Table I.
    row = classify(system, device="A")
    for label, value in row.as_dict().items():
        print(f"  {label:<24} {value}")


if __name__ == "__main__":
    main()
