#!/usr/bin/env python3
"""Hot-swap demo: what the electronic datasheet buys you.

Recreates the survey's Sec. III.2 warning live: two fully-monitored
platforms run the same outdoor stretch; halfway through, their storage is
swapped for a device of twice the capacity. The platform without datasheet
recognition keeps using its stale device model — its stored-energy
telemetry silently degrades — while the System-B-style platform re-reads
the module datasheet and stays accurate.

Run:  python examples/hotswap_demo.py
"""

from repro import outdoor_environment
from repro.analysis import render_table
from repro.analysis.experiments import make_reference_system
from repro.core import StaticManager
from repro.core.taxonomy import MonitoringCapability
from repro.harvesters import (
    DeviceKind,
    ElectronicDatasheet,
    MicroWindTurbine,
    PhotovoltaicCell,
    attach_datasheet,
)
from repro.simulation import EventSchedule, Simulator, swap_storage_event
from repro.storage import Supercapacitor

DAY = 86_400.0


def run_platform(recognizing: bool, env, duration, dt, swap_time):
    system = make_reference_system(
        [PhotovoltaicCell(area_cm2=30.0, efficiency=0.16),
         MicroWindTurbine(rotor_diameter_m=0.1)],
        capacitance_f=40.0, initial_soc=0.6, measurement_interval_s=300.0,
        monitoring=MonitoringCapability.FULL, manager=StaticManager())
    system.architecture.auto_recognition = recognizing

    replacement = Supercapacitor(capacitance_f=80.0, rated_voltage=5.0,
                                 initial_soc=0.6, name="supercap-80F")
    if recognizing:
        attach_datasheet(replacement, ElectronicDatasheet(
            kind=DeviceKind.STORAGE, model="supercap-80F",
            capacity_j=replacement.capacity_j, nominal_voltage=5.0))

    events = EventSchedule([swap_storage_event(swap_time, 0, replacement)])
    sim = Simulator(system, env, events=events, dt=dt)

    samples = []
    n_checkpoints = 8
    for _ in range(n_checkpoints):
        sim.run(duration=duration / n_checkpoints)
        estimate = system.monitor.estimated_stored_energy() or 0.0
        truth = sum(s.energy_j for s in system.bank.stores
                    if not s.is_backup)
        error = abs(estimate - truth) / max(truth, 1.0)
        samples.append((sim.time / 3600.0, estimate, truth, error))
    return samples


def main() -> None:
    duration, dt = 4 * DAY, 300.0
    swap_time = duration / 2
    env = outdoor_environment(duration=duration, dt=dt, seed=51)

    print(f"Storage hot-swap at t = {swap_time / 3600:.0f} h "
          f"(40 F -> 80 F supercapacitor)\n")

    for recognizing in (False, True):
        label = ("WITH datasheet recognition (System B style)" if recognizing
                 else "WITHOUT recognition (stale device model)")
        samples = run_platform(recognizing, env, duration, dt, swap_time)
        rows = [(f"{t:.0f} h", f"{est:.1f} J", f"{truth:.1f} J",
                 f"{err * 100:.1f} %") for t, est, truth, err in samples]
        print(render_table(["time", "estimated stored", "true stored",
                            "error"], rows, title=label))
        print()

    print('Survey Sec. III.2: "the connection of an alternative device '
          '(especially storage device) will\ntypically affect measurements '
          'as the software will not automatically be able to recognise\n'
          'any change in capacity" — unless, as in System B, every module '
          "carries an electronic datasheet.")


if __name__ == "__main__":
    main()
