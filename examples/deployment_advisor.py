#!/usr/bin/env python3
"""Deployment advisor: choosing among the seven surveyed platforms.

The survey closes with "the importance of considering the deployment
environment when choosing energy hardware" (Sec. IV). This example runs
the whole Table I population against four deployment archetypes and shows
that the winner — and the loser — changes with the site.

Run:  python examples/deployment_advisor.py
"""

from repro.analysis import advise
from repro.environment import (
    agricultural_environment,
    indoor_industrial_environment,
    outdoor_environment,
    urban_rf_environment,
)

DAY = 86_400.0


def main() -> None:
    deployments = {
        "temperate outdoor site": outdoor_environment(
            duration=3 * DAY, dt=300.0, seed=13),
        "indoor industrial plant": indoor_industrial_environment(
            duration=3 * DAY, dt=300.0, seed=13),
        "agricultural station": agricultural_environment(
            duration=3 * DAY, dt=300.0, seed=13),
        "urban RF-rich office": urban_rf_environment(
            duration=3 * DAY, dt=300.0, seed=13),
    }

    winners = {}
    for label, env in deployments.items():
        advice = advise(env)
        winners[label] = advice.best
        print(advice.report())
        print()

    print("Summary — the recommended platform per deployment:")
    for label, best in winners.items():
        print(f"  {label:<26} -> System {best.letter} ({best.name})")
    print()
    print("No single platform wins everywhere — the deployment-specificity "
          "that motivates the survey's\ntaxonomy, and System B's "
          "reconfigurable architecture in particular.")


if __name__ == "__main__":
    main()
