#!/usr/bin/env python3
"""Indoor industrial monitor: System B's opportunistic harvesting.

System B (the Plug-and-Play Architecture, survey Fig. 2) targets indoor
industrial monitoring where the useful energy source depends on the
mounting spot. This example runs the platform at three spots in the same
plant — near a window, on a machine, in a dark corridor — and shows which
modules carry the load at each, using the per-channel telemetry the
plug-and-play datasheets enable.

Run:  python examples/indoor_monitor.py
"""

from repro import build, simulate, spec_for
from repro.analysis import render_table
from repro.environment import (
    BroadcastRFModel,
    Environment,
    MachineThermalModel,
    MachineVibrationModel,
    OfficeLightingModel,
    SourceType,
    Trace,
)

DAY = 86_400.0


def spot_environments(duration: float, dt: float, seed: int) -> dict:
    """Three mounting spots in the same plant."""
    window = Environment({
        SourceType.LIGHT: OfficeLightingModel(
            work_lux=600.0, ambient_lux=300.0, seed=seed).trace(duration, dt),
        SourceType.VIBRATION: Trace.zeros(duration, dt),
        SourceType.THERMAL: Trace.zeros(duration, dt),
        SourceType.RF: BroadcastRFModel(mean_density=0.004,
                                        seed=seed).trace(duration, dt),
    }, name="window")

    machine = Environment({
        SourceType.LIGHT: OfficeLightingModel(
            work_lux=150.0, ambient_lux=10.0, seed=seed).trace(duration, dt),
        SourceType.VIBRATION: MachineVibrationModel(
            accel_rms=4.0, seed=seed + 1).trace(duration, dt),
        SourceType.THERMAL: MachineThermalModel(
            delta_t_running=30.0, seed=seed + 2).trace(duration, dt),
        SourceType.RF: BroadcastRFModel(mean_density=0.004,
                                        seed=seed + 3).trace(duration, dt),
    }, name="machine")

    corridor = Environment({
        SourceType.LIGHT: OfficeLightingModel(
            work_lux=80.0, ambient_lux=5.0, seed=seed).trace(duration, dt),
        SourceType.VIBRATION: Trace.zeros(duration, dt),
        SourceType.THERMAL: Trace.zeros(duration, dt),
        SourceType.RF: BroadcastRFModel(mean_density=0.01,
                                        seed=seed + 4).trace(duration, dt),
    }, name="corridor")

    return {"window": window, "machine": machine, "corridor": corridor}


def main() -> None:
    duration, dt = 7 * DAY, 300.0
    print("System B (Plug-and-Play) at three mounting spots, one week each\n")

    for spot, env in spot_environments(duration, dt, seed=99).items():
        # The canonical declarative spec of System B (see repro.spec);
        # the environments stay hand-built Environment instances.
        system = build(spec_for("B", initial_soc=0.6))
        result = simulate(system, env)
        m = result.metrics

        # Which module carried the load? Per-channel delivered energy.
        rows = []
        for i, channel in enumerate(system.channels):
            delivered = result.recorder.channel_delivered_trace(i).integral()
            rows.append((channel.name, f"{delivered:.2f} J",
                         f"{delivered / max(m.harvested_delivered_j, 1e-12) * 100:.0f} %"))
        print(f"--- spot: {spot} ---")
        print(render_table(["module", "delivered", "share"], rows))
        print(f"total {m.harvested_delivered_j:.1f} J, "
              f"uptime {m.uptime_fraction * 100:.1f} %, "
              f"{m.measurements_per_day:.0f} measurements/day\n")

    print("The dominant module changes with the mounting spot — the "
          "deployment-specificity that motivates\nSystem B's swappable, "
          "self-describing energy modules (survey Sec. II.2, IV).")


if __name__ == "__main__":
    main()
