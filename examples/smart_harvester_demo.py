#!/usr/bin/env python3
"""The 'smart harvester' scheme: the survey's proposed future direction.

Survey Sec. IV: "An open research challenge ... is the development of a
'smart harvester' scheme. This would require each energy harvester and
storage device to be energy-aware, operating with a common hardware
interface and incorporating a low-power microprocessor."

This demo builds such a platform from scratch with the library's
:class:`SmartModule` / :class:`SmartHarvesterCoordinator` primitives, runs
it on an indoor week, hot-swaps both a harvester and the storage mid-run,
and shows that the platform re-recognizes everything and keeps operating
energy-neutrally.

Run:  python examples/smart_harvester_demo.py
"""

from repro import (
    ArchitectureDescriptor,
    HarvestingChannel,
    MultiSourceSystem,
    SmartHarvesterCoordinator,
    SmartModule,
    StorageBank,
    indoor_industrial_environment,
)
from repro.analysis import render_kv
from repro.conditioning import LinearRegulator, OutputConditioner
from repro.core import MonitoringCapability, smart_channel
from repro.core.taxonomy import ControlCapability, IntelligenceLocation
from repro.harvesters import (
    PhotovoltaicCell,
    PiezoelectricHarvester,
    ThermoelectricGenerator,
)
from repro.load import WirelessSensorNode
from repro.simulation import (
    EventSchedule,
    Simulator,
    swap_harvester_event,
    swap_storage_event,
)
from repro.storage import LithiumIonCapacitor, Supercapacitor

DAY = 86_400.0


def build_smart_platform():
    """Assemble a smart-module platform: every device self-describes."""
    modules = [
        SmartModule(PhotovoltaicCell(area_cm2=20.0, efficiency=0.07,
                                     cells_in_series=6, name="pv-indoor")),
        SmartModule(ThermoelectricGenerator(couples=120,
                                            internal_resistance=3.0,
                                            name="teg-machine")),
        SmartModule(PiezoelectricHarvester(proof_mass_g=8.0,
                                           resonant_frequency=50.0,
                                           name="piezo-machine")),
    ]
    store = Supercapacitor(capacitance_f=25.0, initial_soc=0.6,
                           name="supercap-25F")
    store_module = SmartModule(store)

    # Conservative energy-neutral policy: the LDO output strands charge
    # below its 3.15 V cutoff, so regulate well above it.
    from repro.load import EnergyNeutralController
    coordinator = SmartHarvesterCoordinator(
        modules + [store_module],
        controller=EnergyNeutralController(target_soc=0.75, margin=0.7,
                                           min_interval_s=30.0),
        control_period=60.0)
    system = MultiSourceSystem(
        architecture=ArchitectureDescriptor(
            name="smart-harvester-demo",
            monitoring=MonitoringCapability.FULL,
            control=ControlCapability.TWO_WAY,
            intelligence=IntelligenceLocation.ENERGY_DEVICES,
            auto_recognition=True,
        ),
        channels=[smart_channel(m) for m in modules],
        bank=StorageBank([store]),
        output=OutputConditioner(converter=LinearRegulator(),
                                 output_voltage=3.0, min_input_voltage=3.15,
                                 quiescent_current_a=0.6e-6),
        node=WirelessSensorNode(measurement_interval_s=300.0),
        manager=coordinator,
    )
    return system, coordinator


def main() -> None:
    duration, dt = 7 * DAY, 300.0
    env = indoor_industrial_environment(duration=duration, dt=dt, seed=17)
    system, coordinator = build_smart_platform()

    # Mid-run hardware changes: a bigger PV module on day 3, a lithium-ion
    # capacitor replacing the supercap on day 5. Both self-describe.
    new_pv = SmartModule(PhotovoltaicCell(area_cm2=40.0, efficiency=0.08,
                                          cells_in_series=6,
                                          name="pv-indoor-XL"))
    new_store = LithiumIonCapacitor(capacitance_f=60.0, initial_soc=0.6,
                                    name="lic-60F")
    SmartModule(new_store)  # attach intelligence + datasheet
    events = EventSchedule([
        swap_harvester_event(3 * DAY, 0, new_pv.device, label="pv-upgrade"),
        swap_storage_event(5 * DAY, 0, new_store, label="store-upgrade"),
    ])
    coordinator.register(new_pv)

    sim = Simulator(system, env, events=events, dt=dt)
    segments = []
    for day in range(7):
        result = sim.run(duration=DAY)
        m = result.metrics
        segments.append((day + 1, m.harvested_delivered_j,
                         m.uptime_fraction, m.measurements))

    print("Smart-harvester platform, one indoor week with two hot-swaps\n")
    for day, harvested, uptime, meas in segments:
        marker = ""
        if day == 4:
            marker = "   <- PV module upgraded on day 3"
        if day == 6:
            marker = "   <- storage swapped to LIC on day 5"
        print(f"  day {day}: {harvested:8.2f} J harvested, "
              f"uptime {uptime * 100:5.1f} %, {meas:6.0f} meas{marker}")

    believed = system.bank.beliefs[0].capacity_j
    true = system.bank.stores[0].capacity_j
    print()
    print(render_kv(
        [
            ("final storage device", system.bank.stores[0].name),
            ("believed capacity", f"{believed:.1f} J"),
            ("true capacity", f"{true:.1f} J"),
            ("recognition intact", str(abs(believed - true) < 1e-6)),
            ("module polls performed", coordinator.polls),
            ("coordinator energy", f"{coordinator.energy_spent_j * 1e3:.2f} mJ"),
            ("platform quiescent",
             f"{system.total_quiescent_current_a * 1e6:.2f} uA"),
        ],
        title="End-of-week status",
    ))


if __name__ == "__main__":
    main()
