"""Tests for the system builders' sizing knobs and custom configurations.

The survey notes device sizing "is changeable within certain bounds"
(Sec. II.2); the builders expose that, and downstream users will lean on
it — so the knobs must actually do what they say.
"""

import pytest

from repro.environment import AmbientSample, SourceType
from repro.load import WirelessSensorNode
from repro.systems import (
    build_ambimax,
    build_plug_and_play,
    build_smart_power_unit,
    make_module,
)


def _sample(light=800.0, wind=6.0):
    return AmbientSample({SourceType.LIGHT: light, SourceType.WIND: wind})


class TestSmartPowerUnitKnobs:
    def test_pv_area_scales_harvest(self):
        small = build_smart_power_unit(pv_area_cm2=10.0)
        large = build_smart_power_unit(pv_area_cm2=80.0)
        # Let the trackers converge before comparing.
        for _ in range(5):
            r_small = small.step(_sample(wind=0.0), 60.0)
            r_large = large.step(_sample(wind=0.0), 60.0)
        assert r_large.harvest_raw_w > 4 * r_small.harvest_raw_w

    def test_rotor_diameter_scales_wind_power(self):
        small = build_smart_power_unit(rotor_diameter_m=0.06)
        large = build_smart_power_unit(rotor_diameter_m=0.24)
        sample = _sample(light=0.0, wind=8.0)
        for _ in range(5):
            r_small = small.step(sample, 60.0)
            r_large = large.step(sample, 60.0)
        # Swept area scales with diameter^2 (16x the aero ceiling), but
        # the unchanged generator saturates the large rotor electrically;
        # expect a substantial, sub-quadratic gain.
        assert r_large.harvest_raw_w > 5 * r_small.harvest_raw_w

    def test_fuel_energy_sets_backup_capacity(self):
        system = build_smart_power_unit(fuel_energy_j=5000.0)
        fuel = system.bank.backup_stores[0]
        assert fuel.capacity_j == pytest.approx(5000.0)

    def test_battery_and_supercap_sizing(self):
        system = build_smart_power_unit(battery_mah=200.0, supercap_f=10.0)
        supercap, battery, _ = system.bank.stores
        assert supercap.capacitance_f == 10.0
        assert battery.capacity_mah == 200.0

    def test_quiescent_total_invariant_under_sizing(self):
        # Sizing knobs change harvest, never the Table I quiescent figure.
        a = build_smart_power_unit(pv_area_cm2=10.0, supercap_f=10.0)
        b = build_smart_power_unit(pv_area_cm2=80.0, supercap_f=100.0)
        assert a.total_quiescent_current_a == pytest.approx(
            b.total_quiescent_current_a)


class TestPlugAndPlayCustomModules:
    def test_custom_module_set(self):
        from repro.harvesters import PhotovoltaicCell
        from repro.storage import Supercapacitor
        modules = [
            make_module(PhotovoltaicCell(area_cm2=5.0, efficiency=0.06,
                                         cells_in_series=5, name="tiny-pv"),
                        "tiny-pv", nominal_power_w=0.002,
                        mpp_fraction=0.75, nominal_voltage=2.4),
            make_module(Supercapacitor(capacitance_f=5.0, name="small-sc"),
                        "small-sc"),
        ]
        system = build_plug_and_play(modules=modules)
        assert len(system.channels) == 1
        assert system.channels[0].name == "tiny-pv"
        inventory = system.slots.enumerate()
        assert {r.datasheet.model for r in inventory.records} == \
            {"tiny-pv", "small-sc"}

    def test_too_many_modules_rejected(self):
        from repro.storage import Supercapacitor
        modules = [make_module(Supercapacitor(name=f"sc{i}"), f"sc{i}")
                   for i in range(7)]
        with pytest.raises(ValueError, match="six"):
            build_plug_and_play(modules=modules)

    def test_node_hosting_intelligence_is_replaceable(self):
        node = WirelessSensorNode(measurement_interval_s=7.0)
        system = build_plug_and_play(node=node)
        assert system.node is node


class TestManagerOverrides:
    def test_custom_manager_everywhere(self):
        from repro.core import StaticManager
        manager = StaticManager()
        for builder in (build_smart_power_unit, build_plug_and_play,
                        build_ambimax):
            system = builder(manager=manager)
            assert system.manager is manager

    def test_initial_soc_applied(self):
        low = build_ambimax(initial_soc=0.1)
        high = build_ambimax(initial_soc=0.9)
        assert low.bank.soc() < 0.2
        assert high.bank.soc() > 0.8
