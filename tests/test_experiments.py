"""Integration tests: the claim-validation experiments reproduce the
survey's qualitative shapes (DESIGN.md E3-E10).

Durations are kept short so the suite stays fast; the benchmark harnesses
run the full-length versions.
"""

import pytest

from repro.analysis.experiments import (
    run_awareness_study,
    run_buffer_sizing,
    run_fuel_cell_study,
    run_mppt_study,
    run_multisource_gain,
    run_quiescent_study,
    run_smart_harvester_study,
    run_swap_study,
)


@pytest.fixture(scope="module")
def e3():
    return run_multisource_gain(days=3.0, dt=300.0, seed=11)


@pytest.fixture(scope="module")
def e5():
    return run_mppt_study(days=2.0, dt=180.0, seed=31)


@pytest.fixture(scope="module")
def e7():
    return run_awareness_study(days=5.0, dt=300.0, seed=41)


@pytest.fixture(scope="module")
def e8():
    return run_swap_study(days=2.0, dt=300.0, seed=51)


@pytest.fixture(scope="module")
def e10():
    return run_fuel_cell_study(days=6.0, dt=300.0, seed=71,
                               lull_start_day=2.0, lull_days=3.0)


class TestE3MultisourceGain:
    """Sec. I: multiple harvesters -> more energy, for longer per day."""

    def test_combination_beats_best_single_on_energy(self, e3):
        assert e3.energy_gain > 1.1

    def test_combination_extends_coverage(self, e3):
        assert e3.coverage_gain_hours > 0.0

    def test_pv_only_is_daylight_limited(self, e3):
        pv = e3.by_label("pv-only")
        assert pv.coverage_hours_per_day < 16.0

    def test_combined_energy_is_roughly_additive(self, e3):
        total = e3.by_label("pv-only").harvested_j_per_day + \
            e3.by_label("wind-only").harvested_j_per_day
        combined = e3.by_label("pv+wind").harvested_j_per_day
        assert combined == pytest.approx(total, rel=0.15)

    def test_report_renders(self, e3):
        assert "energy gain" in e3.report()


class TestE4BufferSizing:
    """Sec. I: multi-source lets the energy buffer shrink."""

    @pytest.fixture(scope="class")
    def e4(self):
        return run_buffer_sizing(days=3.0, dt=300.0, seed=21)

    def test_all_configs_feasible(self, e4):
        assert all(r.feasible for r in e4.requirements)

    def test_multisource_needs_smallest_buffer(self, e4):
        multi = e4.by_label("pv+wind").min_capacitance_f
        for label in ("pv-only", "wind-only"):
            assert multi <= e4.by_label(label).min_capacitance_f + 1e-9

    def test_meaningful_reduction(self, e4):
        assert e4.buffer_reduction > 1.5

    def test_report_renders(self, e4):
        assert "buffer reduction" in e4.report()


class TestE5MPPTTradeoff:
    """Sec. IV: MPPT pays iff overhead < benefit; deployment-specific."""

    def test_oracle_dominates_everywhere(self, e5):
        for deployment in ("bright-outdoor", "dim-indoor", "windy-site"):
            oracle = next(r for r in e5.deployment(deployment)
                          if r.tracker == "oracle")
            for r in e5.deployment(deployment):
                assert r.delivered_j <= oracle.delivered_j * (1 + 1e-9)

    def test_mppt_wins_outdoors(self, e5):
        assert e5.mppt_advantage("bright-outdoor") > 1.0

    def test_fixed_point_competitive_indoors(self, e5):
        # The survey's crossover: at uW harvest levels the tracker's own
        # overhead erases (or reverses) its benefit.
        assert e5.mppt_advantage("dim-indoor") < 1.05

    def test_trackers_above_90_percent_outdoors(self, e5):
        for r in e5.deployment("bright-outdoor"):
            if r.tracker in ("perturb-observe", "incremental-cond"):
                assert r.tracking_efficiency > 0.9

    def test_report_lists_winners(self, e5):
        assert "winner" in e5.report()


class TestE6Quiescent:
    """Table I quiescent row: two-orders-of-magnitude spread."""

    @pytest.fixture(scope="class")
    def e6(self):
        return run_quiescent_study()

    def test_break_even_ranking_follows_table(self, e6):
        be = {p.letter: p.breakeven_harvest_w for p in e6.platforms}
        assert be["E"] == min(be.values())
        assert be["D"] == max(be.values())

    def test_spread_is_two_orders(self, e6):
        assert e6.breakeven_spread == pytest.approx(100.0, rel=0.1)

    def test_net_energy_sign_flips_at_breakeven(self, e6):
        d = e6.by_letter("D")
        for level, net in zip(e6.harvest_levels_w, d.net_j_per_day):
            assert (net > 0) == (level > d.breakeven_harvest_w)

    def test_report_renders(self, e6):
        assert "break-even" in e6.report()


class TestE7EnergyAwareness:
    """Sec. IV: adapting activity to energy status is essential."""

    def test_blind_platform_dies_in_lull(self, e7):
        assert e7.by_manager("fixed").dead_hours > 4.0

    def test_adaptive_managers_survive(self, e7):
        assert e7.by_manager("threshold").dead_hours == 0.0
        assert e7.by_manager("energy-neutral").dead_hours == 0.0

    def test_adaptation_trades_throughput_for_survival(self, e7):
        # Threshold throttles hard: fewer measurements than the blind
        # platform managed before dying is acceptable, but uptime is full.
        assert e7.by_manager("threshold").uptime_fraction == 1.0

    def test_dead_time_eliminated_metric(self, e7):
        assert e7.dead_time_eliminated_h > 4.0

    def test_report_renders(self, e7):
        assert "dead time eliminated" in e7.report()


class TestE8HotSwap:
    """Sec. III.2/IV: only datasheet recognition keeps monitoring honest."""

    def test_both_accurate_before_swap(self, e8):
        for outcome in e8.outcomes:
            assert outcome.error_before < 0.1

    def test_stale_platform_breaks_after_swap(self, e8):
        stale = e8.by_platform("stale-belief (A/C-style)")
        assert stale.error_after > 0.25

    def test_recognizing_platform_stays_accurate(self, e8):
        good = e8.by_platform("recognizing (B-style)")
        assert good.error_after < 0.1

    def test_stale_belief_capacity_wrong(self, e8):
        stale = e8.by_platform("stale-belief (A/C-style)")
        assert stale.believed_capacity_j != pytest.approx(
            stale.true_capacity_j)

    def test_interface_tax_is_real_but_bounded(self, e8):
        assert 0.01 < e8.interface_tax < 0.2

    def test_report_renders(self, e8):
        assert "interface-circuit" in e8.report()


class TestE9SmartHarvester:
    """Sec. IV: the proposed scheme combines flexibility and awareness."""

    @pytest.fixture(scope="class")
    def e9(self):
        return run_smart_harvester_study(days=2.0, dt=300.0, seed=61)

    def test_smart_scheme_keeps_awareness_after_swap(self, e9):
        assert e9.by_scheme("smart-harvester").estimate_error_after_swap < 0.1

    def test_central_mppt_loses_awareness_after_swap(self, e9):
        assert e9.by_scheme("system-A-style").estimate_error_after_swap > 0.25

    def test_smart_matches_central_mppt_energy(self, e9):
        smart = e9.by_scheme("smart-harvester").delivered_j
        central = e9.by_scheme("system-A-style").delivered_j
        assert smart == pytest.approx(central, rel=0.25)

    def test_report_renders(self, e9):
        assert "smart-harvester" in e9.report()


class TestE10FuelCellBackup:
    """Sec. II.1: the fuel cell starts when ambient stores run out."""

    def test_fuel_cell_extends_uptime(self, e10):
        assert e10.uptime_gain > 0.05

    def test_backup_activates_during_lull(self, e10):
        with_fc = e10.by_config("with-fuel-cell")
        assert with_fc.backup_first_use_h is not None
        assert with_fc.backup_first_use_h >= e10.lull_start_day * 24.0

    def test_fuel_actually_consumed(self, e10):
        with_fc = e10.by_config("with-fuel-cell")
        assert with_fc.backup_used_j > 0.0
        assert with_fc.fuel_remaining_fraction < 1.0

    def test_no_backup_platform_dies(self, e10):
        assert e10.by_config("no-fuel-cell").dead_hours > 1.0

    def test_report_renders(self, e10):
        assert "uptime gained" in e10.report()
