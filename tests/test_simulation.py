"""Tests for the simulation engine, events, recorder, and metrics."""

import numpy as np
import pytest

from repro.conditioning import InputConditioner, OracleMPPT, OutputConditioner
from repro.core import (
    ArchitectureDescriptor,
    HarvestingChannel,
    MonitoringCapability,
    MultiSourceSystem,
    StaticManager,
    StorageBank,
)
from repro.environment import Environment, SourceType, Trace
from repro.harvesters import PhotovoltaicCell
from repro.load import WirelessSensorNode
from repro.simulation import (
    EventSchedule,
    SimEvent,
    Simulator,
    compute_metrics,
    simulate,
    swap_harvester_event,
    swap_storage_event,
)
from repro.storage import Supercapacitor

DAY = 86_400.0


def _make_system(initial_soc=0.5, interval=60.0):
    return MultiSourceSystem(
        architecture=ArchitectureDescriptor(
            name="sim-rig", monitoring=MonitoringCapability.FULL),
        channels=[HarvestingChannel(PhotovoltaicCell(area_cm2=30.0),
                                    InputConditioner(tracker=OracleMPPT()))],
        bank=StorageBank([Supercapacitor(capacitance_f=25.0,
                                         initial_soc=initial_soc)]),
        output=OutputConditioner(output_voltage=3.0, min_input_voltage=0.8),
        node=WirelessSensorNode(measurement_interval_s=interval),
        manager=StaticManager(),
    )


def _flat_env(level=500.0, duration=3600.0, dt=60.0):
    return Environment(
        {SourceType.LIGHT: Trace.constant(level, duration, dt=dt)})


class TestEvents:
    def test_events_sorted_and_consumed(self):
        fired = []
        schedule = EventSchedule([
            SimEvent(20.0, lambda s: fired.append("b")),
            SimEvent(10.0, lambda s: fired.append("a")),
        ])
        for event in schedule.due(15.0):
            event.action(None)
        assert fired == ["a"]
        assert schedule.pending == 1

    def test_add_after_start_rejected(self):
        schedule = EventSchedule([SimEvent(0.0, lambda s: None)])
        list(schedule.due(1.0))
        with pytest.raises(RuntimeError):
            schedule.add(SimEvent(5.0, lambda s: None))

    def test_event_validation(self):
        with pytest.raises(ValueError):
            SimEvent(-1.0, lambda s: None)
        with pytest.raises(TypeError):
            SimEvent(1.0, "not callable")

    def test_swap_storage_event_applies(self):
        system = _make_system()
        replacement = Supercapacitor(capacitance_f=99.0)
        event = swap_storage_event(0.0, 0, replacement)
        event.action(system)
        assert system.bank.stores[0] is replacement

    def test_swap_harvester_event_applies(self):
        system = _make_system()
        replacement = PhotovoltaicCell(area_cm2=1.0)
        swap_harvester_event(0.0, 0, replacement).action(system)
        assert system.channels[0].harvester is replacement


class TestSimulator:
    def test_step_count(self):
        result = simulate(_make_system(), _flat_env(duration=600.0), dt=60.0)
        assert len(result.recorder) == 10

    def test_default_duration_is_environment_length(self):
        result = simulate(_make_system(), _flat_env(duration=1200.0))
        assert result.metrics.duration_s == pytest.approx(1200.0)

    def test_determinism(self):
        r1 = simulate(_make_system(), _flat_env())
        r2 = simulate(_make_system(), _flat_env())
        a = r1.recorder.trace("harvest_delivered").values
        b = r2.recorder.trace("harvest_delivered").values
        assert np.array_equal(a, b)

    def test_segmented_run_continues_time(self):
        system = _make_system()
        env = _flat_env(duration=7200.0)
        sim = Simulator(system, env, dt=60.0)
        sim.run(duration=3600.0)
        assert sim.time == pytest.approx(3600.0)
        sim.run(duration=3600.0)
        assert sim.time == pytest.approx(7200.0)

    def test_event_fires_at_scheduled_time_across_segments(self):
        system = _make_system()
        fired_at = []
        events = [SimEvent(1800.0, lambda s: fired_at.append(True))]
        sim = Simulator(system, _flat_env(duration=3600.0), events=events,
                        dt=60.0)
        sim.run(duration=900.0)
        assert not fired_at
        sim.run(duration=2700.0)
        assert fired_at

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            simulate(_make_system(), _flat_env(), duration=-5.0)


class TestRecorder:
    def test_known_columns(self):
        result = simulate(_make_system(), _flat_env(duration=600.0))
        for column in ("harvest_raw", "harvest_delivered", "harvest_mpp",
                       "charge_accepted", "quiescent", "node_demand",
                       "node_supplied", "node_consumed", "backup_power",
                       "stored_energy", "bus_voltage", "alive",
                       "measurements"):
            trace = result.recorder.trace(column)
            assert len(trace) == len(result.recorder)

    def test_unknown_column_raises(self):
        result = simulate(_make_system(), _flat_env(duration=600.0))
        with pytest.raises(KeyError, match="unknown column"):
            result.recorder.trace("bogus")

    def test_store_and_channel_traces(self):
        result = simulate(_make_system(), _flat_env(duration=600.0))
        assert result.recorder.store_energy_trace(0).max() > 0.0
        assert result.recorder.channel_delivered_trace(0).max() > 0.0


class TestMetrics:
    def test_energy_accounting_consistency(self):
        result = simulate(_make_system(), _flat_env(duration=3600.0))
        m = result.metrics
        assert m.harvested_delivered_j <= m.harvested_raw_j + 1e-9
        assert m.harvested_raw_j <= m.mpp_available_j * (1 + 1e-9)
        assert 0.0 <= m.tracking_efficiency <= 1.0
        assert 0.0 <= m.conversion_efficiency <= 1.0
        assert 0.0 <= m.uptime_fraction <= 1.0

    def test_full_light_full_uptime(self):
        result = simulate(_make_system(), _flat_env(level=800.0))
        assert result.metrics.uptime_fraction == 1.0
        assert result.metrics.dead_time_s == 0.0

    def test_darkness_eventually_kills_node(self):
        system = _make_system(initial_soc=0.02, interval=0.5)
        result = simulate(system, _flat_env(level=0.0, duration=12 * 3600.0))
        assert result.metrics.uptime_fraction < 1.0
        assert result.metrics.brownouts >= 1

    def test_measurement_rate(self):
        result = simulate(_make_system(interval=60.0),
                          _flat_env(duration=3600.0))
        assert result.metrics.measurements == pytest.approx(60.0, rel=0.05)

    def test_harvest_coverage_full_under_constant_light(self):
        result = simulate(_make_system(), _flat_env(level=500.0))
        assert result.metrics.harvest_coverage == 1.0

    def test_empty_recorder_rejected(self):
        from repro.simulation import Recorder
        with pytest.raises(ValueError):
            compute_metrics(Recorder(60.0))

    def test_energy_conservation_end_to_end(self):
        """Delivered harvest = storage gain + node use + quiescent + losses."""
        system = _make_system()
        e0 = system.bank.total_energy_j
        result = simulate(system, _flat_env(level=500.0, duration=3600.0))
        m = result.metrics
        e1 = system.bank.total_energy_j
        # Delivered energy must cover the storage gain plus everything
        # drawn out; storage losses (leakage, redistribution) only help
        # the inequality.
        drawn = m.node_consumed_j + m.quiescent_j
        assert e1 - e0 <= m.charge_accepted_j - 0.0 + 1e-6
        assert m.charge_accepted_j + (e0 - e1) >= drawn * 0.5 - 1e-6
