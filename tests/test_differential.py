"""Spec-fuzzing differential suite: legacy == kernel == batched.

A seeded generator draws random valid ``SystemSpec``/``RunSpec``
combinations from the ``repro.spec`` registry catalog (random Table I
platform + initial SoC, random registered environment + jittered knobs,
random geometry and seed). Every fuzzed case is executed on the legacy
per-step engine and then differentially on the other two execution
paths:

* inside the kernel envelope, ``fast=True`` must reproduce the legacy
  recorder bit for bit; outside it, ``why_ineligible`` must name a
  reason (non-empty) and ``fast="auto"`` must land on ``"legacy"``;
* inside the batched envelope, a ``batch=True`` single-scenario sweep
  must reproduce the legacy recorder bit for bit; outside it,
  ``why_batch_ineligible`` must name a reason and a ``batch="auto"``
  sweep must fall back off the batched tier.

The corpus is deterministic (fixed per-case seeds), so a failure here
is a reproducible counterexample, not a flake.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.simulation import SweepRunner, why_batch_ineligible
from repro.simulation.kernel.plan import why_ineligible
from repro.spec import (
    REGISTRY,
    EnvironmentSpec,
    RunSpec,
    SystemSpec,
    build,
    run as run_spec,
    to_scenario,
)

DAY = 86_400.0

#: Number of fuzzed cases; each is fully determined by its index.
CASES = 16

#: Valid jitter ranges for registered environment knobs. Every float
#: knob of every registered environment factory that appears here may be
#: fuzzed; knobs not listed keep their catalog defaults.
ENV_PARAM_RANGES = {
    "cloudiness": (0.0, 0.9),
    "mean_wind": (1.0, 8.0),
    "day_fraction": (0.3, 0.7),
    "flow_speed": (0.2, 2.0),
    "work_lux": (100.0, 800.0),
    "accel_rms": (0.5, 4.0),
    "delta_t_running": (5.0, 40.0),
    "broadcast_density": (0.002, 0.05),
    "winter_wind_boost": (0.0, 0.5),
    "start_day_of_year": (0.0, 365.0),
}

#: Recorder columns compared bitwise (incl. the derived ones).
COLUMNS = ("harvest_raw", "harvest_delivered", "harvest_mpp",
           "charge_accepted", "quiescent", "node_demand", "node_supplied",
           "node_consumed", "backup_power", "measurements", "stored_energy",
           "bus_voltage", "alive")


def fuzz_spec(index: int) -> RunSpec:
    """The fuzzed RunSpec of one case — a pure function of the index."""
    rng = random.Random(0xD1F5 * 1000 + index)
    system_name = rng.choice(REGISTRY.names("system"))
    system = SystemSpec(system_name,
                        {"initial_soc": round(rng.uniform(0.05, 0.95), 3)})
    env_name = rng.choice(REGISTRY.names("environment"))
    env_params = {}
    for param in REGISTRY.parameters("environment", env_name):
        if param in ENV_PARAM_RANGES and rng.random() < 0.5:
            lo, hi = ENV_PARAM_RANGES[param]
            env_params[param] = round(rng.uniform(lo, hi), 4)
    dt = rng.choice((300.0, 600.0, 900.0))
    duration = rng.choice((0.05, 0.1)) * DAY
    return RunSpec(
        system=system,
        environment=EnvironmentSpec(env_name, duration=duration, dt=dt,
                                    params=env_params),
        name=f"fuzz{index}-{system_name}@{env_name}",
        duration=duration,
        dt=dt,
        seed=rng.randrange(1 << 20),
    )


def assert_bitwise_equal(recorder, reference, label: str) -> None:
    assert len(recorder) == len(reference), f"{label}: step count diverged"
    for column in COLUMNS:
        assert np.array_equal(recorder.column(column),
                              reference.column(column)), \
            f"{label}: column {column!r} diverged"
    assert np.array_equal(recorder.state_codes(),
                          reference.state_codes()), \
        f"{label}: node state history diverged"
    for index in range(recorder.n_stores):
        assert np.array_equal(recorder.store_energy_trace(index).values,
                              reference.store_energy_trace(index).values), \
            f"{label}: store {index} energy diverged"
    for index in range(recorder.n_channels):
        assert np.array_equal(
            recorder.channel_delivered_trace(index).values,
            reference.channel_delivered_trace(index).values), \
            f"{label}: channel {index} power diverged"


def _batched_recorder(spec: RunSpec, batch):
    """Run one spec as a single-scenario sweep on the given batch tier,
    returning the (sweep row, captured SimulationResult)."""
    captured = []
    scenario = dataclasses.replace(to_scenario(spec),
                                   collect=captured.append)
    sweep = SweepRunner(processes=1, batch=batch).run([scenario])
    return sweep[0], captured[0] if captured else None


class TestFuzzedDifferential:
    def test_corpus_is_deterministic(self):
        assert [fuzz_spec(i) for i in range(CASES)] == \
            [fuzz_spec(i) for i in range(CASES)]

    def test_corpus_exercises_both_batch_outcomes(self):
        """The fixed corpus must cover both sides of the batched
        envelope, or the differential below degenerates."""
        eligibility = {
            why_batch_ineligible(build(fuzz_spec(i).system),
                                 fuzz_spec(i).dt) is None
            for i in range(CASES)
        }
        assert eligibility == {True, False}

    @pytest.mark.parametrize("index", range(CASES))
    def test_legacy_kernel_batched_agree(self, index):
        spec = fuzz_spec(index)
        legacy = run_spec(spec, fast=False)
        assert legacy.execution_path == "legacy"

        # Kernel differential.
        kernel_reason = why_ineligible(build(spec.system), spec.dt)
        if kernel_reason is None:
            kernel = run_spec(spec, fast=True)
            assert kernel.execution_path == "kernel"
            assert_bitwise_equal(kernel.recorder, legacy.recorder,
                                 f"{spec.name} kernel")
            assert kernel.metrics == legacy.metrics
        else:
            assert isinstance(kernel_reason, str) and kernel_reason.strip(), \
                f"{spec.name}: fallback must carry a reason"
            auto = run_spec(spec, fast="auto")
            assert auto.execution_path == "legacy"
            assert auto.metrics == legacy.metrics

        # Batched differential.
        batch_reason = why_batch_ineligible(build(spec.system), spec.dt)
        if batch_reason is None:
            row, result = _batched_recorder(spec, batch=True)
            assert row.execution_path == "batched"
            assert_bitwise_equal(result.recorder, legacy.recorder,
                                 f"{spec.name} batched")
            assert row.metrics == legacy.metrics
        else:
            assert isinstance(batch_reason, str) and batch_reason.strip(), \
                f"{spec.name}: batched fallback must carry a reason"
            row, _ = _batched_recorder(spec, batch="auto")
            assert row.execution_path != "batched"
            assert row.metrics == legacy.metrics
