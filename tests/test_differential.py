"""Spec-fuzzing differential suite: legacy == kernel == batched.

A seeded generator draws random valid ``SystemSpec``/``RunSpec``
combinations from the ``repro.spec`` registry catalog (random Table I
platform + initial SoC, random registered environment + jittered knobs,
random geometry and seed). Every fuzzed case is executed on the legacy
per-step engine and then differentially on the other two execution
paths:

* inside the kernel envelope, ``fast=True`` must reproduce the legacy
  recorder bit for bit; outside it, ``why_ineligible`` must name a
  reason (non-empty) and ``fast="auto"`` must land on ``"legacy"``;
* inside the batched envelope, a ``batch=True`` single-scenario sweep
  must reproduce the legacy recorder bit for bit; outside it,
  ``why_batch_ineligible`` must name a reason and a ``batch="auto"``
  sweep must fall back off the batched tier.

The masked-lane envelope covers every registry platform — fuel-cell
backup cascades, P&O/IncCond hill-climbing trackers, bus/MCU
platforms — so the registry corpus exercises all of them on the
batched tier. A second seeded generator draws *event schedules*
(same-class and cross-class storage swaps, harvester swaps, t=0
events) over fuzzed reference platforms, pinning the divergence
buckets: rejoining lanes and peeled lanes must both reproduce a
per-scenario run bit for bit. Shapes with genuinely no lowering
(replaced physics) keep the fallback contract honest.

The corpus is deterministic (fixed per-case seeds), so a failure here
is a reproducible counterexample, not a flake.
"""

import dataclasses
import random
from functools import partial

import numpy as np
import pytest

from repro.analysis.experiments.common import make_reference_system
from repro.conditioning.mppt import (
    FixedVoltage,
    IncrementalConductance,
    PerturbObserve,
)
from repro.core.manager import ThresholdManager
from repro.environment.composite import outdoor_environment
from repro.harvesters import PhotovoltaicCell
from repro.simulation import (
    ScenarioSpec,
    SweepRunner,
    simulate,
    swap_harvester_event,
    swap_storage_event,
    why_batch_ineligible,
)
from repro.simulation.kernel.plan import why_ineligible
from repro.spec import (
    REGISTRY,
    EnvironmentSpec,
    RunSpec,
    SystemSpec,
    build,
    run as run_spec,
    to_scenario,
)
from repro.storage import Supercapacitor
from repro.storage.batteries import LiIonBattery
from repro.storage.fuel_cell import HydrogenFuelCell

DAY = 86_400.0

#: Number of fuzzed cases; each is fully determined by its index.
CASES = 16

#: Valid jitter ranges for registered environment knobs. Every float
#: knob of every registered environment factory that appears here may be
#: fuzzed; knobs not listed keep their catalog defaults.
ENV_PARAM_RANGES = {
    "cloudiness": (0.0, 0.9),
    "mean_wind": (1.0, 8.0),
    "day_fraction": (0.3, 0.7),
    "flow_speed": (0.2, 2.0),
    "work_lux": (100.0, 800.0),
    "accel_rms": (0.5, 4.0),
    "delta_t_running": (5.0, 40.0),
    "broadcast_density": (0.002, 0.05),
    "winter_wind_boost": (0.0, 0.5),
    "start_day_of_year": (0.0, 365.0),
}

#: Recorder columns compared bitwise (incl. the derived ones).
COLUMNS = ("harvest_raw", "harvest_delivered", "harvest_mpp",
           "charge_accepted", "quiescent", "node_demand", "node_supplied",
           "node_consumed", "backup_power", "measurements", "stored_energy",
           "bus_voltage", "alive")


def fuzz_spec(index: int) -> RunSpec:
    """The fuzzed RunSpec of one case — a pure function of the index."""
    rng = random.Random(0xD1F5 * 1000 + index)
    system_name = rng.choice(REGISTRY.names("system"))
    system = SystemSpec(system_name,
                        {"initial_soc": round(rng.uniform(0.05, 0.95), 3)})
    env_name = rng.choice(REGISTRY.names("environment"))
    env_params = {}
    for param in REGISTRY.parameters("environment", env_name):
        if param in ENV_PARAM_RANGES and rng.random() < 0.5:
            lo, hi = ENV_PARAM_RANGES[param]
            env_params[param] = round(rng.uniform(lo, hi), 4)
    dt = rng.choice((300.0, 600.0, 900.0))
    duration = rng.choice((0.05, 0.1)) * DAY
    return RunSpec(
        system=system,
        environment=EnvironmentSpec(env_name, duration=duration, dt=dt,
                                    params=env_params),
        name=f"fuzz{index}-{system_name}@{env_name}",
        duration=duration,
        dt=dt,
        seed=rng.randrange(1 << 20),
    )


class _RetunedSupercap(Supercapacitor):
    """Replaced physics — no lowering can vouch for it."""

    def charge(self, power_w, dt):
        return super().charge(power_w * 0.9, dt)


class _NoisyPV(PhotovoltaicCell):
    """Replaced transducer physics — same refusal, different layer."""

    def power_at(self, ambient, voltage):
        return super().power_at(ambient, voltage) * 1.01


#: Shapes that genuinely have no batched lowering: the capability
#: negotiation must refuse them (and explain itself), never guess.
INELIGIBLE_SYSTEMS = {
    "retuned-store": lambda: make_reference_system(
        [PhotovoltaicCell(area_cm2=40.0, name="pv")],
        tracker_factory=lambda: FixedVoltage(2.0),
        stores=[_RetunedSupercap(capacitance_f=50.0, name="odd")]),
    "noisy-harvester": lambda: make_reference_system(
        [_NoisyPV(area_cm2=40.0, name="noisy")],
        tracker_factory=lambda: FixedVoltage(2.0)),
}


def fuzz_event_case(index: int):
    """One fuzzed (system builder, event factory) pair — pure in index.

    Draws the shapes the masked-lane model exists for: hill-climbing
    trackers (P&O / IncCond), optional fuel-cell backup cascades, and a
    random schedule of storage/harvester swaps whose targets force
    different divergence buckets (same-class rejoin, cross-class peel,
    t=0 peel).
    """
    rng = random.Random(0xE1E7 * 1000 + index)
    tracker = rng.choice((None,  # make_reference_system default: P&O
                          lambda: PerturbObserve(step_fraction=0.05),
                          lambda: IncrementalConductance(step_fraction=0.05),
                          lambda: FixedVoltage(2.0)))
    cap = round(rng.uniform(6.0, 60.0), 2)
    with_backup = rng.random() < 0.4
    with_manager = rng.random() < 0.5
    area = round(rng.uniform(4.0, 30.0), 2)
    soc = round(rng.uniform(0.2, 0.8), 3)

    def build_system():
        # Everything constructed fresh per call: the sweep run and the
        # per-scenario reference must not share mutable component state.
        stores = [Supercapacitor(capacitance_f=cap, initial_soc=soc,
                                 name="buf")]
        if with_backup:
            stores.append(HydrogenFuelCell(name="fc"))
        return make_reference_system(
            [PhotovoltaicCell(area_cm2=area, efficiency=0.12, name="pv")],
            tracker_factory=tracker, initial_soc=soc, stores=stores,
            manager=ThresholdManager() if with_manager else None)

    n_events = rng.randrange(0, 3)
    drawn = []
    for _ in range(n_events):
        t = rng.choice((0.0, round(rng.uniform(0.0, DAY), 0)))
        kind = rng.choice(("same-store", "cross-store", "harvester"))
        drawn.append((t, kind, round(rng.uniform(5.0, 50.0), 2),
                      round(rng.uniform(0.2, 0.8), 3)))

    def make_events():
        events = []
        for t, kind, size, esoc in drawn:
            if kind == "same-store":
                events.append(swap_storage_event(
                    t, 0, Supercapacitor(capacitance_f=size,
                                         initial_soc=esoc, name="swap")))
            elif kind == "cross-store":
                events.append(swap_storage_event(
                    t, 0, LiIonBattery(capacity_mah=10.0 * size,
                                       initial_soc=esoc, name="cell")))
            else:
                events.append(swap_harvester_event(
                    t, 0, PhotovoltaicCell(area_cm2=size, efficiency=0.12,
                                           name="new-pv")))
        return sorted(events, key=lambda e: e.time)

    return build_system, (make_events if drawn else None), rng.randrange(64)


def assert_bitwise_equal(recorder, reference, label: str) -> None:
    assert len(recorder) == len(reference), f"{label}: step count diverged"
    for column in COLUMNS:
        assert np.array_equal(recorder.column(column),
                              reference.column(column)), \
            f"{label}: column {column!r} diverged"
    assert np.array_equal(recorder.state_codes(),
                          reference.state_codes()), \
        f"{label}: node state history diverged"
    for index in range(recorder.n_stores):
        assert np.array_equal(recorder.store_energy_trace(index).values,
                              reference.store_energy_trace(index).values), \
            f"{label}: store {index} energy diverged"
    for index in range(recorder.n_channels):
        assert np.array_equal(
            recorder.channel_delivered_trace(index).values,
            reference.channel_delivered_trace(index).values), \
            f"{label}: channel {index} power diverged"


def _batched_recorder(spec: RunSpec, batch):
    """Run one spec as a single-scenario sweep on the given batch tier,
    returning the (sweep row, captured SimulationResult)."""
    captured = []
    scenario = dataclasses.replace(to_scenario(spec),
                                   collect=captured.append)
    sweep = SweepRunner(processes=1, batch=batch).run([scenario])
    return sweep[0], captured[0] if captured else None


class TestFuzzedDifferential:
    def test_corpus_is_deterministic(self):
        assert [fuzz_spec(i) for i in range(CASES)] == \
            [fuzz_spec(i) for i in range(CASES)]

    def test_corpus_exercises_both_batch_outcomes(self):
        """The registry corpus all batches now (the masked-lane envelope
        covers every Table I platform); the False side of the envelope
        is covered by explicitly-ineligible shapes, so the differential
        below cannot degenerate to one branch."""
        eligibility = {
            why_batch_ineligible(build(fuzz_spec(i).system),
                                 fuzz_spec(i).dt) is None
            for i in range(CASES)
        }
        assert eligibility == {True}
        for build_ineligible in INELIGIBLE_SYSTEMS.values():
            assert why_batch_ineligible(build_ineligible(), 600.0) \
                is not None

    @pytest.mark.parametrize("shape", sorted(INELIGIBLE_SYSTEMS))
    def test_ineligible_shapes_keep_the_fallback_contract(self, shape):
        """Genuinely un-lowerable shapes: the reason is non-empty, a
        batch="auto" sweep falls off the tier, and the fallback row
        matches a tier-disabled run."""
        build_ineligible = INELIGIBLE_SYSTEMS[shape]
        reason = why_batch_ineligible(build_ineligible(), 600.0)
        assert isinstance(reason, str) and reason.strip()
        env = partial(outdoor_environment, duration=0.05 * DAY, dt=600.0)
        spec = ScenarioSpec(name=shape, system=build_ineligible,
                            environment=env, seed=9)
        auto = SweepRunner(processes=1, batch="auto").run([spec])
        off = SweepRunner(processes=1, batch=False).run(
            [ScenarioSpec(name=shape, system=build_ineligible,
                          environment=env, seed=9)])
        assert auto[0].execution_path != "batched"
        assert auto[0].metrics == off[0].metrics

    def test_codegen_fallback_surfaces_capability_report(self):
        """Replaced storage physics misses the codegen tier too (it
        shares the scalar kernel's envelope, unlike ``_NoisyPV`` whose
        harvester override only the batched tier refuses): the sweep
        row must carry a non-empty structured CapabilityReport in its
        extras, and ``sweep --explain`` must render it."""
        from repro.cli import _explain_batch
        shape = "retuned-store"
        build_ineligible = INELIGIBLE_SYSTEMS[shape]
        env = partial(outdoor_environment, duration=0.05 * DAY, dt=600.0)
        spec = ScenarioSpec(name=shape, system=build_ineligible,
                            environment=env, seed=9)
        sweep = SweepRunner(processes=1, batch="auto").run([spec])
        row = sweep[0]
        assert row.execution_path == "legacy"
        report = row.extras.get("codegen_fallback_reason")
        assert report is not None
        assert report.component and report.capability and report.detail
        rendered = _explain_batch(sweep)
        assert report.component in rendered
        assert "codegen" in rendered

    @pytest.mark.parametrize("index", range(CASES))
    def test_legacy_kernel_batched_agree(self, index):
        spec = fuzz_spec(index)
        legacy = run_spec(spec, fast=False)
        assert legacy.execution_path == "legacy"

        # Kernel differential.
        kernel_reason = why_ineligible(build(spec.system), spec.dt)
        if kernel_reason is None:
            kernel = run_spec(spec, fast=True)
            assert kernel.execution_path == "kernel"
            assert_bitwise_equal(kernel.recorder, legacy.recorder,
                                 f"{spec.name} kernel")
            assert kernel.metrics == legacy.metrics
        else:
            assert isinstance(kernel_reason, str) and kernel_reason.strip(), \
                f"{spec.name}: fallback must carry a reason"
            auto = run_spec(spec, fast="auto")
            assert auto.execution_path == "legacy"
            assert auto.metrics == legacy.metrics

        # Codegen differential: the fused tier shares the scalar
        # kernel's eligibility envelope, so wherever the kernel ran
        # bitwise, codegen must too — and wherever it refused, codegen
        # must degrade to legacy carrying a structured report.
        codegen = run_spec(spec, fast="codegen")
        if kernel_reason is None:
            assert codegen.execution_path == "codegen"
            assert codegen.codegen_fallback is None
            assert_bitwise_equal(codegen.recorder, legacy.recorder,
                                 f"{spec.name} codegen")
            assert codegen.metrics == legacy.metrics
        else:
            assert codegen.execution_path == "legacy"
            report = codegen.codegen_fallback
            assert report is not None, \
                f"{spec.name}: codegen fallback must carry a report"
            assert report.component and report.capability and report.detail
            assert codegen.metrics == legacy.metrics

        # Batched differential.
        batch_reason = why_batch_ineligible(build(spec.system), spec.dt)
        if batch_reason is None:
            row, result = _batched_recorder(spec, batch=True)
            assert row.execution_path == "batched"
            assert_bitwise_equal(result.recorder, legacy.recorder,
                                 f"{spec.name} batched")
            assert row.metrics == legacy.metrics
        else:
            assert isinstance(batch_reason, str) and batch_reason.strip(), \
                f"{spec.name}: batched fallback must carry a reason"
            row, _ = _batched_recorder(spec, batch="auto")
            assert row.execution_path != "batched"
            assert row.metrics == legacy.metrics


#: Number of fuzzed event-schedule cases (see :func:`fuzz_event_case`).
EVENT_CASES = 10


class TestFuzzedEventDifferential:
    """Masked-lane differential: fuzzed event schedules over fuzzed
    platforms (hill-climbing trackers, fuel-cell backups), batched tier
    vs per-scenario engine, bit for bit."""

    def test_event_corpus_is_deterministic(self):
        a = [fuzz_event_case(i)[2] for i in range(EVENT_CASES)]
        b = [fuzz_event_case(i)[2] for i in range(EVENT_CASES)]
        assert a == b

    @pytest.mark.parametrize("index", range(EVENT_CASES))
    def test_batched_matches_per_scenario_run(self, index):
        build_system, make_events, seed = fuzz_event_case(index)
        envf = partial(outdoor_environment, duration=DAY, dt=600.0)
        captured = []
        scenario = ScenarioSpec(
            name=f"event-fuzz{index}", system=build_system,
            environment=envf, duration=DAY, seed=seed,
            events=make_events, collect=captured.append)
        row = SweepRunner(processes=1, batch="auto").run([scenario])[0]
        # Event-carrying lanes ride the batched tier: they rejoin
        # lockstep or peel into the scalar side-channel, never refuse.
        assert row.execution_path.startswith("batched"), row.execution_path

        reference = simulate(
            build_system(), envf(seed=seed), duration=DAY, dt=600.0,
            events=make_events() if make_events is not None else None)
        result = captured[0]
        assert_bitwise_equal(result.recorder, reference.recorder,
                             scenario.name)
        assert row.metrics == reference.metrics
        # Write-back: the lane's component objects end bit-identical to
        # the per-scenario system, whatever bucket the lane took.
        for store, ref_store in zip(result.system.bank.stores,
                                    reference.system.bank.stores):
            assert type(store) is type(ref_store)
            assert store.energy_j == ref_store.energy_j
        assert result.system.node.total_measurements == \
            reference.system.node.total_measurements


# ---------------------------------------------------------------------------
# Catalog round-trip arm
# ---------------------------------------------------------------------------
class TestCatalogRoundTripDifferential:
    """Catalog arm of the differential contract.

    A fuzzed spec, once archived, must restore bitwise — from the
    manifest record and from the columnar artifact alike — and a dedup
    hit must be row-for-row identical to a fresh simulation on every
    execution tier. Anything less would make the cache a source of
    silent numeric drift.
    """

    #: Per-scenario tier layouts a cached row must agree with (the pool
    #: tier is exercised corpus-wide below: one scenario never pools).
    TIERS = ({"batch": "auto", "processes": 1},
             {"batch": False, "processes": 1})

    @pytest.mark.parametrize("index", range(CASES))
    def test_archived_rows_restore_bitwise(self, index, tmp_path):
        from repro.catalog import Catalog
        spec = fuzz_spec(index)
        catalog = Catalog(tmp_path / "store")
        first = SweepRunner(processes=1, catalog=catalog).run(
            [to_scenario(spec)])
        assert first.catalog_report.archived == 1
        (record,) = catalog.manifest
        row = first[0]
        restored = catalog.restore(record)
        (from_artifact,) = catalog.load_rows(record)
        for clone in (restored, from_artifact):
            assert clone.metrics == row.metrics, spec.name
            assert clone.n_steps == row.n_steps
            assert clone.name == row.name
            assert clone.params == row.params

    @pytest.mark.parametrize("index", range(CASES))
    def test_dedup_hit_equals_fresh_run_on_every_tier(self, index,
                                                      tmp_path):
        from repro.catalog import Catalog
        spec = fuzz_spec(index)
        store = tmp_path / "store"
        SweepRunner(processes=1,
                    catalog=Catalog(store)).run([to_scenario(spec)])
        for kwargs in self.TIERS:
            fresh = SweepRunner(**kwargs).run([to_scenario(spec)])[0]
            cached = SweepRunner(catalog=Catalog(store),
                                 **kwargs).run([to_scenario(spec)])
            assert cached.catalog_report.hits == 1
            assert cached[0].metrics == fresh.metrics, spec.name
            assert cached[0].n_steps == fresh.n_steps

    def test_corpus_round_trips_through_the_pool_tier(self, tmp_path):
        from repro.catalog import Catalog
        store = tmp_path / "store"
        scenarios = [to_scenario(fuzz_spec(i)) for i in range(CASES)]
        first = SweepRunner(processes=4, batch=False,
                            catalog=Catalog(store)).run(scenarios)
        assert first.catalog_report.archived == CASES
        again = SweepRunner(processes=4, batch=False,
                            catalog=Catalog(store)).run(
            [to_scenario(fuzz_spec(i)) for i in range(CASES)])
        assert again.catalog_report.hits == CASES
        assert again.catalog_report.simulated == 0
        reference = SweepRunner(processes=1, batch=False).run(
            [to_scenario(fuzz_spec(i)) for i in range(CASES)])
        for cached, fresh in zip(again, reference):
            assert cached.metrics == fresh.metrics, fresh.name
            assert cached.n_steps == fresh.n_steps
            assert cached.params == fresh.params


# ---------------------------------------------------------------------------
# Fleet cross-tier determinism
# ---------------------------------------------------------------------------
class TestFleetTierDifferential:
    """A same-hardware fleet must report execution_path="batched" on the
    batched tier and produce bitwise-identical per-node rows and fleet
    metrics on all three execution tiers."""

    NODES = 6

    def _spec(self):
        from repro.fleet import homogeneous_fleet
        from repro.spec import EnvironmentSpec, spec_for
        environment = EnvironmentSpec("outdoor", duration=86_400.0,
                                      dt=300.0, seed=17)
        return homogeneous_fleet(spec_for("C"), environment, self.NODES,
                                 topology="ring", spread=0.3, seed=17,
                                 name="diff-fleet")

    def test_fleet_rows_bitwise_identical_across_tiers(self):
        from repro.fleet import run_fleet
        spec = self._spec()
        batched = run_fleet(spec, tier="batched")
        assert batched.execution_paths() == {"batched": self.NODES}
        for tier in ("multiprocessing", "in-process"):
            other = run_fleet(spec, tier=tier, processes=2)
            for batched_row, other_row in zip(batched.results,
                                              other.results):
                assert batched_row.metrics == other_row.metrics, \
                    (tier, batched_row.name)
                assert batched_row.n_steps == other_row.n_steps
                assert batched_row.params == other_row.params
            assert other.metrics == batched.metrics, tier

    def test_fleet_ensemble_bitwise_identical_across_tiers(self):
        from repro.fleet import run_fleet_ensemble
        spec = self._spec()
        batched = run_fleet_ensemble(spec, replicates=2, root_seed=23,
                                     tier="batched")
        assert set(batched.execution_paths()) == {"batched"}
        for tier in ("multiprocessing", "in-process"):
            other = run_fleet_ensemble(spec, replicates=2, root_seed=23,
                                       tier=tier, processes=2)
            assert [fleet.metrics for fleet in other] == \
                [fleet.metrics for fleet in batched], tier
