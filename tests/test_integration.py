"""Cross-cutting integration tests: digital control loops, aging in a
bank, event plumbing, and metrics properties."""

import pytest

from repro.analysis.experiments import make_reference_system
from repro.core import StorageBank
from repro.environment import (
    AmbientSample,
    Environment,
    SourceType,
    Trace,
    outdoor_environment,
)
from repro.harvesters import PhotovoltaicCell
from repro.interfaces.power_unit_mcu import (
    REG_ACTIVE_MASK,
    REG_DUTY_LEVEL,
    REG_SOC_PERMILLE,
    REG_STORE_MV,
)
from repro.simulation import Simulator, simulate
from repro.storage import AgingStorage, LiIonBattery, Supercapacitor
from repro.systems import build_system

DAY = 86_400.0


class TestSystemAControlLoop:
    """The sensor node controlling the SPU over the I2C register map —
    the survey's 'treat it as another peripheral' architecture."""

    @pytest.fixture
    def spu(self):
        return build_system("A", initial_soc=0.6)

    def _sample(self, light=600.0):
        return AmbientSample({SourceType.LIGHT: light})

    def test_node_reads_energy_status_over_bus(self, spu):
        from repro.systems.smart_power_unit import SPU_MCU_ADDRESS
        spu.step(self._sample(), 60.0)
        mv = spu.bus.read(SPU_MCU_ADDRESS, REG_STORE_MV)
        assert mv == pytest.approx(spu.bank.voltage() * 1000.0, abs=2.0)
        soc = spu.bus.read(SPU_MCU_ADDRESS, REG_SOC_PERMILLE)
        assert 0 <= soc <= 1000

    def test_node_sets_duty_level_over_bus(self, spu):
        from repro.systems.smart_power_unit import SPU_MCU_ADDRESS
        spu.bus.write(SPU_MCU_ADDRESS, REG_DUTY_LEVEL, 0)
        fast = spu.node.measurement_interval_s
        spu.bus.write(SPU_MCU_ADDRESS, REG_DUTY_LEVEL, 12)
        slow = spu.node.measurement_interval_s
        assert slow > 50 * fast

    def test_bus_traffic_costs_energy(self, spu):
        from repro.systems.smart_power_unit import SPU_MCU_ADDRESS
        spu.step(self._sample(light=0.0), 60.0)
        for _ in range(200):
            spu.bus.read(SPU_MCU_ADDRESS, REG_STORE_MV)
        record = spu.step(self._sample(light=0.0), 60.0)
        # The pending bus energy is billed as quiescent draw next step.
        baseline = spu.total_quiescent_current_a * spu.bank.voltage()
        assert record.quiescent_w > baseline * 0.99


class TestSystemFActivityMask:
    def test_active_mask_visible_over_bus(self):
        from repro.systems.cymbet_eval import CYMBET_MCU_ADDRESS
        system = build_system("F", initial_soc=0.6)
        sample = AmbientSample({SourceType.LIGHT: 300.0})
        system.step(sample, 60.0)
        mask = system.bus.read(CYMBET_MCU_ADDRESS, REG_ACTIVE_MASK)
        # Only the PV channel (bit 0) delivered power.
        assert mask & 0b0001
        assert not mask & 0b1110


class TestAgingInBank:
    def test_aged_store_works_in_storage_bank(self):
        aged = AgingStorage(Supercapacitor(capacitance_f=20.0,
                                           initial_soc=0.5),
                            cycle_life=100_000)
        bank = StorageBank([aged])
        accepted = bank.charge(0.5, 60.0)
        assert accepted > 0.0
        delivered = bank.discharge(0.2, 60.0)
        assert delivered > 0.0
        assert aged.equivalent_cycles > 0.0

    def test_aged_store_in_full_simulation(self):
        aged = AgingStorage(LiIonBattery(capacity_mah=50.0,
                                         initial_soc=0.5),
                            calendar_fade_per_year=0.0)
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=20.0)],
            stores=[aged], measurement_interval_s=10.0)
        env = outdoor_environment(duration=2 * DAY, dt=300.0, seed=6)
        result = simulate(system, env)
        assert result.metrics.harvested_delivered_j > 0.0
        assert aged.health < 1.0  # the week's cycling left a mark

    def test_belief_estimation_through_aging_wrapper(self):
        aged = AgingStorage(Supercapacitor(capacitance_f=20.0,
                                           initial_soc=0.5),
                            cycle_life=100_000)
        from repro.core import StorageBelief
        belief = StorageBelief.of(aged)
        # __getattr__ forwarding exposes the inner capacitance, so the
        # voltage-inversion estimate works through the wrapper.
        assert belief.estimate_energy(aged.voltage()) == pytest.approx(
            aged.energy_j, rel=0.05)


class TestEventPlumbing:
    def test_tuple_events_accepted(self):
        fired = []
        system = make_reference_system([PhotovoltaicCell(area_cm2=20.0)],
                                       measurement_interval_s=120.0)
        env = Environment(
            {SourceType.LIGHT: Trace.constant(300.0, 1200.0, dt=60.0)})
        sim = Simulator(system, env,
                        events=[(300.0, lambda s: fired.append(True))])
        sim.run()
        assert fired == [True]


class TestMetricsProperties:
    @pytest.fixture(scope="class")
    def metrics(self):
        system = make_reference_system([PhotovoltaicCell(area_cm2=20.0)],
                                       measurement_interval_s=60.0)
        env = Environment(
            {SourceType.LIGHT: Trace.constant(400.0, 7200.0, dt=60.0)})
        return simulate(system, env).metrics

    def test_demand_satisfaction_full_when_supplied(self, metrics):
        assert metrics.demand_satisfaction == pytest.approx(1.0, abs=1e-6)

    def test_end_to_end_efficiency_in_range(self, metrics):
        assert 0.0 < metrics.end_to_end_efficiency < 1.0

    def test_measurements_per_day_scaling(self, metrics):
        expected = 86_400.0 / 60.0  # one per minute
        assert metrics.measurements_per_day == pytest.approx(expected,
                                                             rel=0.05)


class TestClassifyAll:
    def test_classify_all_roundtrip(self):
        from repro.core import classify_all
        from repro.systems import all_systems
        rows = classify_all(all_systems())
        assert [r.device for r in rows] == list("ABCDEFG")


class TestBusReadBlock:
    def test_negative_count_rejected(self):
        from repro.interfaces import RegisterBus
        bus = RegisterBus()
        with pytest.raises(ValueError):
            bus.read_block(0x10, 0, -1)
