"""Statistical validation of the synthetic environment generators.

The claim experiments lean on the generators' *statistical* structure
(day length, schedule fractions, complementarity); these tests pin that
structure down with long-run measurements.
"""

import numpy as np
import pytest

from repro.environment import (
    MachineVibrationModel,
    OfficeLightingModel,
    SolarModel,
    WindModel,
)

DAY = 86_400.0


class TestSolarStatistics:
    @pytest.mark.parametrize("day_fraction", (0.33, 0.5, 0.67))
    def test_daylight_hours_match_day_fraction(self, day_fraction):
        model = SolarModel(day_fraction=day_fraction, cloudiness=0.0,
                           seed=0)
        trace = model.trace(10 * DAY, dt=300.0)
        lit = trace.fraction_above(1.0)
        assert lit == pytest.approx(day_fraction, abs=0.04)

    def test_cloudier_sites_harvest_less(self):
        clear = SolarModel(cloudiness=0.1, seed=1).trace(10 * DAY, 600.0)
        cloudy = SolarModel(cloudiness=0.6, seed=1).trace(10 * DAY, 600.0)
        assert cloudy.integral() < 0.8 * clear.integral()

    def test_daily_peak_is_near_noon(self):
        model = SolarModel(cloudiness=0.0, seed=0)
        trace = model.trace(DAY, dt=300.0)
        peak_hour = int(np.argmax(trace.values)) * 300.0 / 3600.0
        assert 11.0 <= peak_hour <= 13.0


class TestWindStatistics:
    def test_distribution_is_right_skewed(self):
        # Weibull k=2: mean > median is the classic signature.
        trace = WindModel(mean_speed=5.0, diurnal_amplitude=0.0,
                          seed=2).trace(60 * DAY, dt=1800.0)
        assert trace.mean() > float(np.median(trace.values))

    def test_diurnal_peak_in_evening(self):
        model = WindModel(mean_speed=5.0, diurnal_amplitude=0.5,
                          diurnal_peak_hour=20.0, gustiness=0.0, seed=3)
        trace = model.trace(30 * DAY, dt=1800.0)
        hours = (np.arange(len(trace)) * 1800.0 % DAY) / 3600.0
        evening = trace.values[(hours >= 18) & (hours <= 22)]
        morning = trace.values[(hours >= 6) & (hours <= 10)]
        assert evening.mean() > morning.mean()

    def test_complementarity_with_solar(self):
        """The library's core scenario: wind carries the night."""
        solar = SolarModel(cloudiness=0.2, seed=4).trace(20 * DAY, 1800.0)
        wind = WindModel(mean_speed=5.0, diurnal_amplitude=0.4,
                         seed=5).trace(20 * DAY, 1800.0)
        dark = solar.values < 1.0
        assert wind.values[dark].mean() > 0.5 * wind.values.mean()
        # Nights are never a majority-dead period for the pair.
        pair_active = (solar.values > 1.0) | (wind.values > 2.0)
        assert pair_active.mean() > 0.6


class TestScheduleStatistics:
    def test_office_weekday_lit_fraction(self):
        model = OfficeLightingModel(work_lux=400.0, ambient_lux=0.0,
                                    on_hour=8.0, off_hour=18.0, seed=6)
        trace = model.trace(28 * DAY, dt=600.0, start_weekday=0)
        hours = np.arange(len(trace)) * 600.0
        weekday = ((hours // DAY) % 7) < 5
        lit = trace.values > 1.0
        weekday_lit = lit[weekday].mean()
        # 10 lit hours out of 24 ~ 0.42, with jitter.
        assert weekday_lit == pytest.approx(10.0 / 24.0, abs=0.05)

    def test_machine_runs_only_in_shift(self):
        model = MachineVibrationModel(shift_hours=(7.0, 19.0),
                                      run_fraction=0.7, seed=7)
        trace = model.trace(14 * DAY, dt=600.0)
        hours_of_day = (np.arange(len(trace)) * 600.0 % DAY) / 3600.0
        out_of_shift = trace.values[(hours_of_day < 6.5) |
                                    (hours_of_day > 19.5)]
        assert out_of_shift.max() == pytest.approx(0.0)

    def test_machine_run_fraction_in_shift(self):
        model = MachineVibrationModel(shift_hours=(7.0, 19.0),
                                      run_fraction=0.7, seed=8)
        trace = model.trace(28 * DAY, dt=600.0)
        hours_of_day = (np.arange(len(trace)) * 600.0 % DAY) / 3600.0
        in_shift = trace.values[(hours_of_day >= 8) & (hours_of_day <= 18)]
        running = (in_shift > 0.1).mean()
        assert running == pytest.approx(0.7, abs=0.2)
