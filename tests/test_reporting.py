"""Tests for the text rendering helpers."""

import pytest

from repro.analysis import format_si, render_kv, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [["1"]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_column_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            render_table(["a", "b"], [["only-one"]])

    def test_values_stringified(self):
        text = render_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text

    def test_alignment(self):
        text = render_table(["col"], [["a"], ["longer"]])
        header, sep, *rows = text.splitlines()
        assert len(header) == len(rows[0]) == len(rows[1])


class TestRenderKV:
    def test_alignment(self):
        text = render_kv([("k", 1), ("longer-key", 2)])
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        assert render_kv([("a", 1)], title="T").startswith("T\n")

    def test_empty(self):
        assert render_kv([]) == ""


class TestFormatSI:
    def test_zero(self):
        assert format_si(0.0, "W") == "0 W"

    def test_prefixes(self):
        assert format_si(4.2e-7, "A") == "420 nA"
        assert format_si(0.005, "W") == "5 mW"
        assert format_si(2500.0, "J") == "2.5 kJ"
        assert format_si(5e-6, "A") == "5 uA"

    def test_unit_scale(self):
        assert format_si(3.7, "V") == "3.7 V"

    def test_tiny_values(self):
        assert "p" in format_si(2e-12, "F")
