"""Property tests for the storage chemistries.

Across random charge/discharge/idle sequences, every chemistry the
surveyed platforms buffer energy in (supercapacitor, lithium-ion
capacitor, battery chemistries, the ideal reference store) must keep
three promises:

* **no free energy** — stored energy never exceeds the initial energy
  plus everything the bus accepted, delivered energy never exceeds what
  went in net of what is left, and the lifetime counters only grow;
* **bounded voltage** — the terminal voltage stays inside the
  chemistry's electrical window at every step;
* **monotone idle** — self-discharge (including supercap branch
  redistribution) never raises the stored energy.

These invariants are what the no-free-energy bookkeeping of the
simulation engine (and the batched kernel's vectorized twins) relies
on, for compositions the example-based suites never saw.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    IdealStorage,
    LiIonBattery,
    LithiumIonCapacitor,
    NiMHBattery,
    Supercapacitor,
)

FACTORIES = {
    "supercap": lambda soc: Supercapacitor(capacitance_f=25.0,
                                           initial_soc=soc, name="sc"),
    "lic": lambda soc: LithiumIonCapacitor(capacitance_f=40.0,
                                           initial_soc=soc, name="lic"),
    "liion": lambda soc: LiIonBattery(capacity_mah=200.0, initial_soc=soc,
                                      name="li"),
    "nimh": lambda soc: NiMHBattery(capacity_mah=300.0, initial_soc=soc,
                                    name="ni"),
    "ideal": lambda soc: IdealStorage(capacity_j=120.0, initial_soc=soc,
                                      name="id"),
}


def _voltage_window(kind, store):
    """The chemistry's admissible terminal-voltage window."""
    if kind == "supercap":
        return 0.0, store.rated_voltage
    if kind == "lic":
        return store.min_voltage, store.max_voltage
    if kind in ("liion", "nimh"):
        return min(store._ocv_v), max(store._ocv_v)
    return 0.0, store.nominal_voltage


kinds = st.sampled_from(sorted(FACTORIES))
socs = st.floats(min_value=0.05, max_value=0.95)
ops = st.lists(
    st.tuples(st.sampled_from("cdi"),
              st.floats(min_value=0.0, max_value=2.0),
              st.floats(min_value=10.0, max_value=3600.0)),
    min_size=1, max_size=30)
idles = st.lists(st.floats(min_value=10.0, max_value=7200.0),
                 min_size=2, max_size=20)


@settings(max_examples=40, deadline=None)
@given(kind=kinds, soc=socs, sequence=ops)
def test_no_free_energy_and_bounded_voltage(kind, soc, sequence):
    store = FACTORIES[kind](soc)
    low, high = _voltage_window(kind, store)
    e_start = store.energy_j
    accepted_j = 0.0
    delivered_j = 0.0
    charged_before = store.total_charged_j
    discharged_before = store.total_discharged_j
    for op, power, dt in sequence:
        if op == "c":
            accepted = store.charge(power, dt)
            assert 0.0 <= accepted <= power + 1e-12
            accepted_j += accepted * dt
        elif op == "d":
            delivered = store.discharge(power, dt)
            assert 0.0 <= delivered <= power + 1e-12
            delivered_j += delivered * dt
        else:
            assert store.step_idle(dt) >= 0.0

        assert -1e-9 <= store.energy_j <= store.capacity_j * (1 + 1e-9)
        assert low - 1e-9 <= store.voltage() <= high + 1e-9
        # Stored energy is bounded by initial + bus-side input (one-way
        # efficiencies and leakage only ever subtract) ...
        assert store.energy_j <= e_start + accepted_j + 1e-6
        # ... and the load can never have been given more than what went
        # in minus what is still there.
        assert delivered_j <= e_start + accepted_j - store.energy_j + 1e-6
        # Lifetime counters only grow.
        assert store.total_charged_j >= charged_before
        assert store.total_discharged_j >= discharged_before
        charged_before = store.total_charged_j
        discharged_before = store.total_discharged_j


@settings(max_examples=40, deadline=None)
@given(kind=kinds, soc=socs, durations=idles,
       predrain=st.floats(min_value=0.0, max_value=1.0))
def test_idle_self_discharge_is_monotone(kind, soc, durations, predrain):
    """Stored energy never rises while idling — including the supercap,
    whose idle step redistributes charge between branches (exercised by
    pre-draining the fast branch first)."""
    store = FACTORIES[kind](soc)
    if predrain > 0.0:
        store.discharge(predrain, 600.0)
    previous = store.energy_j
    for dt in durations:
        store.step_idle(dt)
        assert store.energy_j <= previous * (1 + 1e-12) + 1e-12
        previous = store.energy_j
    assert previous >= -1e-9


@settings(max_examples=20, deadline=None)
@given(kind=kinds, soc=socs, sequence=ops)
def test_sequences_are_deterministic(kind, soc, sequence):
    """The same op sequence on a fresh store lands on the identical
    state bit for bit — the property every seeded replicate and every
    execution tier builds on."""
    def run():
        store = FACTORIES[kind](soc)
        outcomes = []
        for op, power, dt in sequence:
            if op == "c":
                outcomes.append(store.charge(power, dt))
            elif op == "d":
                outcomes.append(store.discharge(power, dt))
            else:
                outcomes.append(store.step_idle(dt))
        return outcomes, store.energy_j, store.voltage()
    assert run() == run()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_full_store_accepts_nothing_empty_store_delivers_nothing(kind):
    full = FACTORIES[kind](1.0)
    assert full.charge(1.0, 60.0) <= 1e-9
    empty = FACTORIES[kind](0.0)
    assert empty.discharge(1.0, 60.0) <= 1e-9
