"""Tests for the seed-robustness sweep utility."""

import pytest

from repro.analysis import SeedSweep, sweep_seeds


class _FakeResult:
    def __init__(self, value):
        self.value = value


def _fake_experiment(seed=0, scale=1.0):
    return _FakeResult(scale * (seed + 1))


class TestSeedSweep:
    def test_statistics(self):
        sweep = SeedSweep(label="x", seeds=(0, 1, 2),
                          values=(1.0, 2.0, 3.0))
        assert sweep.mean == pytest.approx(2.0)
        assert sweep.min == 1.0
        assert sweep.max == 3.0
        assert sweep.std == pytest.approx(1.0)

    def test_single_seed_std_zero(self):
        sweep = SeedSweep(label="x", seeds=(0,), values=(5.0,))
        assert sweep.std == 0.0

    def test_holds_fraction(self):
        sweep = SeedSweep(label="x", seeds=(0, 1, 2, 3),
                          values=(0.5, 1.5, 2.5, 3.5))
        assert sweep.holds_fraction(lambda v: v > 1.0) == 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            SeedSweep(label="x", seeds=(0, 1), values=(1.0,))
        with pytest.raises(ValueError):
            SeedSweep(label="x", seeds=(), values=())

    def test_report_renders(self):
        sweep = SeedSweep(label="gain", seeds=(0, 1), values=(1.1, 1.2))
        text = sweep.report()
        assert "gain" in text and "mean=" in text


class TestSweepSeeds:
    def test_runs_experiment_per_seed(self):
        sweep = sweep_seeds(_fake_experiment, lambda r: r.value,
                            seeds=(0, 1, 2))
        assert sweep.values == (1.0, 2.0, 3.0)

    def test_kwargs_forwarded(self):
        sweep = sweep_seeds(_fake_experiment, lambda r: r.value,
                            seeds=(0, 1), scale=10.0)
        assert sweep.values == (10.0, 20.0)

    def test_label_defaults_to_metric_name(self):
        def my_metric(result):
            return result.value
        sweep = sweep_seeds(_fake_experiment, my_metric, seeds=(0,))
        assert sweep.label == "my_metric"

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            sweep_seeds(_fake_experiment, lambda r: r.value, seeds=())

    def test_on_real_experiment(self):
        from repro.analysis.experiments import run_quiescent_study
        sweep = sweep_seeds(lambda seed=0: run_quiescent_study(),
                            lambda r: r.breakeven_spread, seeds=(0, 1))
        # The quiescent study is analytic: identical across seeds.
        assert sweep.std == 0.0
        assert sweep.mean == pytest.approx(100.0, rel=0.2)
