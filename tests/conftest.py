"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.environment import (
    Environment,
    SourceType,
    Trace,
    indoor_industrial_environment,
    outdoor_environment,
)

DAY = 86_400.0


@pytest.fixture(scope="session")
def outdoor_env() -> Environment:
    """Two deterministic outdoor days at 5-minute resolution."""
    return outdoor_environment(duration=2 * DAY, dt=300.0, seed=1234)


@pytest.fixture(scope="session")
def indoor_env() -> Environment:
    """Two deterministic indoor days at 5-minute resolution."""
    return indoor_industrial_environment(duration=2 * DAY, dt=300.0,
                                         seed=1234)


@pytest.fixture
def flat_light_env() -> Environment:
    """Constant 500 W/m^2 light for analytic comparisons."""
    return Environment(
        {SourceType.LIGHT: Trace.constant(500.0, DAY, dt=60.0)},
        name="flat-light",
    )
