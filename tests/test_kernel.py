"""Kernel coverage gate and lowering-protocol behaviour.

The gate: every system in ``SYSTEM_BUILDERS`` must compose a *full*
:class:`~repro.simulation.KernelPlan` — no component may silently drop
the surveyed population to the legacy path. CI runs this file as its own
step so a lowering regression fails loudly, not as a perf mystery.
"""

import math

import pytest

from repro.analysis.experiments.common import make_reference_system
from repro.environment.composite import outdoor_environment
from repro.harvesters import PhotovoltaicCell
from repro.simulation import (
    EventSchedule,
    KernelPlan,
    LoweringUnsupported,
    SimEvent,
    simulate,
)
from repro.simulation.kernel import eligible, why_ineligible
from repro.storage import (
    AgingStorage,
    HydrogenFuelCell,
    LiIonBattery,
    LiPolymerBattery,
    LithiumIonCapacitor,
    Supercapacitor,
)
from repro.systems import SYSTEM_BUILDERS, build_system

DAY = 86_400.0


class TestKernelCoverageGate:
    @pytest.mark.parametrize("letter", sorted(SYSTEM_BUILDERS))
    def test_every_table1_system_composes_a_full_plan(self, letter):
        """The gate: all seven surveyed platforms lower end to end."""
        system = build_system(letter)
        assert why_ineligible(system, 120.0) is None
        plan = KernelPlan.compile(system, 120.0)
        lowering = plan.lowering
        assert lowering.system is system
        assert len(lowering.channels) == len(system.channels)
        assert len(lowering.bank.store_objects) == len(system.bank.stores)

    def test_all_storage_chemistries_lower(self):
        for store in (Supercapacitor(), LiIonBattery(), LiPolymerBattery(),
                      LithiumIonCapacitor(), HydrogenFuelCell()):
            lowering = store.lower_kernel(60.0)
            assert lowering.store is store
            # The lowered terminal voltage is the method's, bit for bit.
            assert lowering.voltage() == store.voltage()

    def test_component_without_lowering_is_named(self):
        """why_ineligible() pinpoints the component that refuses."""
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=20.0)],
            stores=[AgingStorage(LiPolymerBattery(capacity_mah=50.0))])
        reason = why_ineligible(system, 60.0)
        assert reason is not None and "AgingStorage" in reason
        assert not eligible(system, 60.0)
        with pytest.raises(LoweringUnsupported):
            KernelPlan.compile(system, 60.0)

    def test_subclassed_storage_physics_refuses_to_lower(self):
        class WeirdCap(Supercapacitor):
            def charge(self, power_w, dt):  # pragma: no cover - physics stub
                return super().charge(power_w * 0.5, dt)

        system = make_reference_system([PhotovoltaicCell(area_cm2=20.0)],
                                       stores=[WeirdCap()])
        reason = why_ineligible(system, 60.0)
        assert reason is not None and "WeirdCap" in reason


class TestExecutionPathReporting:
    def test_paths_are_reported(self):
        env = outdoor_environment(duration=3600.0, dt=60.0, seed=3)
        system = make_reference_system([PhotovoltaicCell(area_cm2=20.0)])
        assert simulate(system, env, dt=60.0,
                        fast=False).execution_path == "legacy"
        system = make_reference_system([PhotovoltaicCell(area_cm2=20.0)])
        assert simulate(system, env, dt=60.0,
                        fast=True).execution_path == "kernel"


class TestEventSchedulePublicAPI:
    def test_peek_pending_next_time(self):
        done = []
        schedule = EventSchedule([
            SimEvent(20.0, lambda s: done.append(20.0)),
            SimEvent(10.0, lambda s: done.append(10.0)),
        ])
        assert schedule.pending == 2
        assert schedule.peek().time == 10.0
        assert schedule.next_time() == 10.0
        list(schedule.due(10.0))
        assert schedule.pending == 1
        assert schedule.peek().time == 20.0
        assert schedule.next_time() == 20.0
        list(schedule.due(25.0))
        assert schedule.pending == 0
        assert schedule.peek() is None
        assert math.isinf(schedule.next_time())
