"""Tests for the extension features: predictive management and the
storage-lifetime study (the survey's future-direction territory)."""

import pytest

from repro.analysis.experiments import make_reference_system, run_lifetime_study
from repro.core import PredictiveEnergyManager, SlotEWMAPredictor
from repro.core.taxonomy import MonitoringCapability
from repro.environment import outdoor_environment
from repro.harvesters import PhotovoltaicCell
from repro.simulation import simulate

DAY = 86_400.0


class TestPredictiveEnergyManager:
    def _system(self, manager, monitoring=MonitoringCapability.FULL):
        return make_reference_system(
            [PhotovoltaicCell(area_cm2=30.0, efficiency=0.16)],
            capacitance_f=30.0, initial_soc=0.6,
            measurement_interval_s=30.0, manager=manager,
            monitoring=monitoring)

    def test_learns_and_survives_solar_week(self):
        manager = PredictiveEnergyManager()
        system = self._system(manager)
        env = outdoor_environment(duration=4 * DAY, dt=300.0, seed=5,
                                  mean_wind=0.0)
        result = simulate(system, env)
        assert result.metrics.uptime_fraction == 1.0
        assert manager.predictor.observations > 0

    def test_throttles_at_night(self):
        # A buffer too small to carry the night forces the planner to
        # throttle when the learned profile predicts no harvest.
        manager = PredictiveEnergyManager(max_interval_s=3600.0)
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=30.0, efficiency=0.16)],
            capacitance_f=2.0, initial_soc=0.6,
            measurement_interval_s=30.0, manager=manager)
        env = outdoor_environment(duration=2 * DAY, dt=300.0, seed=5,
                                  mean_wind=0.0)
        from repro.simulation import Simulator
        sim = Simulator(system, env, dt=300.0)
        sim.run(duration=1.9 * DAY)  # learn day one, deep into night two
        night_interval = system.node.measurement_interval_s
        sim.run(duration=0.6 * DAY)  # to mid-day two
        day_interval = system.node.measurement_interval_s
        assert night_interval > 10 * day_interval

    def test_blind_platform_degrades_gracefully(self):
        manager = PredictiveEnergyManager()
        system = self._system(manager,
                              monitoring=MonitoringCapability.NONE)
        interval = system.node.measurement_interval_s
        env = outdoor_environment(duration=DAY / 4, dt=300.0, seed=5)
        simulate(system, env)
        assert system.node.measurement_interval_s == interval

    def test_backup_gating(self):
        from repro.storage import HydrogenFuelCell, Supercapacitor
        manager = PredictiveEnergyManager(backup_on_soc=0.1,
                                          backup_off_soc=0.3)
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=30.0, efficiency=0.16)],
            stores=[Supercapacitor(capacitance_f=25.0, initial_soc=0.05),
                    HydrogenFuelCell()],
            measurement_interval_s=30.0, manager=manager)
        system.bank.backup_enabled = False
        env = outdoor_environment(duration=DAY / 24, dt=300.0, seed=5)
        simulate(system, env)
        assert system.bank.backup_enabled

    def test_accepts_custom_predictor(self):
        predictor = SlotEWMAPredictor(n_slots=12)
        manager = PredictiveEnergyManager(predictor=predictor)
        assert manager.predictor is predictor

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveEnergyManager(horizon_s=0.0)
        with pytest.raises(ValueError):
            PredictiveEnergyManager(target_soc=1.5)
        with pytest.raises(ValueError):
            PredictiveEnergyManager(min_interval_s=100.0,
                                    max_interval_s=10.0)


class TestLifetimeStudy:
    @pytest.fixture(scope="class")
    def e11(self):
        return run_lifetime_study(days=2.0, dt=300.0, seed=91)

    def test_all_chemistries_present(self, e11):
        names = {e.chemistry for e in e11.lifetimes}
        assert names == {"supercapacitor", "li-ion capacitor",
                         "li-ion battery", "NiMH battery",
                         "thin-film battery"}

    def test_capacitive_outlives_batteries(self, e11):
        caps = [e for e in e11.lifetimes if "battery" not in e.chemistry]
        batteries = [e for e in e11.lifetimes if "battery" in e.chemistry]
        assert min(c.projected_years_to_eol for c in caps) >= \
            max(b.projected_years_to_eol for b in batteries)

    def test_cycling_actually_happened(self, e11):
        assert all(e.cycles_per_day > 0.0 for e in e11.lifetimes)

    def test_health_degrades(self, e11):
        assert all(e.health_after_run < 1.0 for e in e11.lifetimes)

    def test_projection_finite(self, e11):
        assert all(e.projected_years_to_eol < 100.0 for e in e11.lifetimes)

    def test_report_renders(self, e11):
        assert "outlives" in e11.report()
