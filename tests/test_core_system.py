"""Tests for the core composition: channels, bank, monitor, system step."""

import pytest

from repro.conditioning import (
    BuckBoostConverter,
    InputConditioner,
    OracleMPPT,
    OutputConditioner,
    PerturbObserve,
)
from repro.core import (
    ArchitectureDescriptor,
    HarvestingChannel,
    MonitoringCapability,
    MultiSourceSystem,
    StaticManager,
    StorageBank,
    StorageBelief,
)
from repro.environment import AmbientSample, SourceType
from repro.harvesters import (
    DeviceKind,
    ElectronicDatasheet,
    MicroWindTurbine,
    PhotovoltaicCell,
    attach_datasheet,
)
from repro.load import WirelessSensorNode
from repro.storage import (
    HydrogenFuelCell,
    IdealStorage,
    LiIonBattery,
    Supercapacitor,
)


def _sample(light=500.0, wind=0.0):
    return AmbientSample({SourceType.LIGHT: light, SourceType.WIND: wind})


def _channel(harvester=None, quiescent=0.0):
    return HarvestingChannel(
        harvester or PhotovoltaicCell(area_cm2=30.0),
        InputConditioner(tracker=OracleMPPT(),
                         converter=BuckBoostConverter(),
                         quiescent_current_a=quiescent),
    )


def _system(channels=None, stores=None, manager=None,
            monitoring=MonitoringCapability.FULL, node=None):
    bank = StorageBank(stores or [Supercapacitor(capacitance_f=25.0,
                                                 initial_soc=0.5)])
    arch = ArchitectureDescriptor(name="test-rig", monitoring=monitoring)
    return MultiSourceSystem(
        architecture=arch,
        channels=channels or [_channel()],
        bank=bank,
        output=OutputConditioner(converter=BuckBoostConverter(),
                                 output_voltage=3.0, min_input_voltage=0.8),
        node=node or WirelessSensorNode(measurement_interval_s=60.0),
        manager=manager or StaticManager(),
    )


class TestHarvestingChannel:
    def test_step_reads_matching_channel(self):
        channel = _channel()
        step = channel.step(_sample(light=800.0), 1.0, 3.3)
        assert step.raw_power > 0.0
        assert channel.last_step is step

    def test_disabled_channel_produces_nothing(self):
        channel = _channel()
        channel.enabled = False
        step = channel.step(_sample(light=800.0), 1.0, 3.3)
        assert step.raw_power == 0.0

    def test_wrong_ambient_channel_reads_zero(self):
        channel = HarvestingChannel(MicroWindTurbine(), InputConditioner())
        step = channel.step(_sample(light=800.0, wind=0.0), 1.0, 3.3)
        assert step.raw_power == 0.0

    def test_swap_resets_tracker(self):
        conditioner = InputConditioner(tracker=PerturbObserve())
        channel = HarvestingChannel(PhotovoltaicCell(), conditioner)
        channel.step(_sample(), 1.0, 3.3)
        assert conditioner.tracker._voltage is not None
        old = channel.swap_harvester(PhotovoltaicCell(area_cm2=5.0))
        assert old.area_cm2 == 50.0
        assert conditioner.tracker._voltage is None

    def test_swap_type_checked(self):
        with pytest.raises(TypeError):
            _channel().swap_harvester("not a harvester")


class TestStorageBank:
    def test_requires_stores(self):
        with pytest.raises(ValueError):
            StorageBank([])

    def test_charge_fills_in_priority_order(self):
        first = IdealStorage(capacity_j=10.0, initial_soc=0.0)
        second = IdealStorage(capacity_j=100.0, initial_soc=0.0)
        bank = StorageBank([first, second])
        bank.charge(1.0, 20.0)  # 20 J: fills first, overflows to second
        assert first.is_full()
        assert second.energy_j == pytest.approx(10.0)

    def test_spill_recorded_when_all_full(self):
        bank = StorageBank([IdealStorage(capacity_j=1.0, initial_soc=1.0)])
        accepted = bank.charge(1.0, 10.0)
        assert accepted == 0.0
        assert bank.spilled_j == pytest.approx(10.0)

    def test_backup_never_charged(self):
        fc = HydrogenFuelCell(fuel_energy_j=100.0)
        fc.energy_j = 50.0
        bank = StorageBank([IdealStorage(capacity_j=1.0, initial_soc=1.0),
                            fc])
        bank.charge(1.0, 10.0)
        assert fc.energy_j == 50.0

    def test_discharge_highest_voltage_first(self):
        high = IdealStorage(capacity_j=100.0, initial_soc=0.5,
                            nominal_voltage=5.0)
        low = IdealStorage(capacity_j=100.0, initial_soc=0.5,
                           nominal_voltage=3.0)
        bank = StorageBank([low, high])
        bank.discharge(1.0, 10.0)
        assert high.energy_j == pytest.approx(40.0)
        assert low.energy_j == pytest.approx(50.0)

    def test_backup_cascade_when_enabled(self):
        ambient = IdealStorage(capacity_j=5.0, initial_soc=1.0)
        backup = HydrogenFuelCell(fuel_energy_j=100.0, max_power_w=10.0,
                                  startup_time=0.0)
        bank = StorageBank([ambient, backup])
        delivered = bank.discharge(1.0, 10.0)  # needs 10 J, ambient has 5
        assert delivered == pytest.approx(1.0)
        assert backup.energy_j == pytest.approx(95.0)

    def test_backup_blocked_when_disabled(self):
        ambient = IdealStorage(capacity_j=5.0, initial_soc=1.0)
        backup = HydrogenFuelCell(fuel_energy_j=100.0, startup_time=0.0)
        bank = StorageBank([ambient, backup])
        bank.backup_enabled = False
        delivered = bank.discharge(1.0, 10.0)
        assert delivered == pytest.approx(0.5)
        assert backup.energy_j == pytest.approx(100.0)

    def test_diode_or_voltage(self):
        sc = Supercapacitor(capacitance_f=10.0, initial_soc=0.01)
        li = LiIonBattery(capacity_mah=100.0, initial_soc=0.8)
        bank = StorageBank([sc, li])
        assert bank.voltage() == pytest.approx(li.voltage())

    def test_backup_holds_bus_when_ambient_flat(self):
        sc = Supercapacitor(capacitance_f=10.0, initial_soc=0.0)
        fc = HydrogenFuelCell()
        bank = StorageBank([sc, fc])
        assert bank.voltage() == pytest.approx(fc.output_voltage)
        bank.backup_enabled = False
        assert bank.voltage() < 1.0

    def test_aggregate_soc_excludes_backup(self):
        bank = StorageBank([IdealStorage(capacity_j=10.0, initial_soc=0.5),
                            HydrogenFuelCell(fuel_energy_j=1e6)])
        assert bank.soc() == pytest.approx(0.5)

    def test_swap_updates_belief_only_when_recognized(self):
        original = Supercapacitor(capacitance_f=10.0)
        bank = StorageBank([original])
        replacement = Supercapacitor(capacitance_f=40.0)
        bank.swap(0, replacement, recognized=False)
        assert bank.beliefs[0].capacity_j == pytest.approx(
            original.capacity_j)
        bank.swap(0, Supercapacitor(capacitance_f=40.0), recognized=True)
        assert bank.beliefs[0].capacity_j == pytest.approx(
            replacement.capacity_j)

    def test_swap_index_checked(self):
        bank = StorageBank([IdealStorage()])
        with pytest.raises(IndexError):
            bank.swap(3, IdealStorage(), recognized=True)


class TestStorageBelief:
    def test_supercap_estimate_exact(self):
        sc = Supercapacitor(capacitance_f=20.0, initial_soc=0.6)
        belief = StorageBelief.of(sc)
        assert belief.estimate_energy(sc.voltage()) == pytest.approx(
            sc.energy_j, rel=0.05)

    def test_battery_estimate_via_ocv(self):
        li = LiIonBattery(capacity_mah=500.0, initial_soc=0.6)
        belief = StorageBelief.of(li)
        assert belief.estimate_energy(li.voltage()) == pytest.approx(
            li.energy_j, rel=0.05)

    def test_uninformative_voltage_returns_half(self):
        ideal = IdealStorage(capacity_j=100.0)
        belief = StorageBelief.of(ideal)
        assert belief.estimate_energy(3.0) == pytest.approx(50.0)

    def test_estimate_capped_at_believed_capacity(self):
        sc = Supercapacitor(capacitance_f=10.0)
        belief = StorageBelief.of(sc)
        assert belief.estimate_energy(100.0) <= belief.capacity_j


class TestEnergyMonitor:
    def test_blind_platform_sees_nothing(self):
        system = _system(monitoring=MonitoringCapability.NONE)
        assert system.monitor.store_voltage() is None
        assert system.monitor.active_channel_mask() is None
        assert system.monitor.input_power() is None
        assert system.monitor.soc_estimate() is None

    def test_store_voltage_level(self):
        system = _system(monitoring=MonitoringCapability.STORE_VOLTAGE)
        v = system.monitor.store_voltage()
        assert v == pytest.approx(system.bank.voltage(), abs=0.02)
        assert system.monitor.input_power() is None

    def test_activity_mask(self):
        channels = [_channel(), HarvestingChannel(MicroWindTurbine(),
                                                  InputConditioner())]
        system = _system(channels=channels,
                         monitoring=MonitoringCapability.DEVICE_ACTIVITY)
        system.step(_sample(light=800.0, wind=0.0), 60.0)
        assert system.monitor.active_channel_mask() == 0b01

    def test_full_monitoring_estimates_energy(self):
        system = _system(monitoring=MonitoringCapability.FULL)
        system.step(_sample(light=500.0), 60.0)
        estimate = system.monitor.estimated_stored_energy()
        truth = sum(s.energy_j for s in system.bank.stores)
        assert estimate == pytest.approx(truth, rel=0.1)

    def test_full_monitoring_reports_input_power(self):
        system = _system(monitoring=MonitoringCapability.FULL)
        record = system.step(_sample(light=500.0), 60.0)
        assert system.monitor.input_power() == pytest.approx(
            record.harvest_delivered_w)


class TestMultiSourceSystemStep:
    def test_energy_flows_accounted(self):
        system = _system()
        record = system.step(_sample(light=700.0), 60.0)
        assert record.harvest_raw_w > 0.0
        assert record.harvest_delivered_w <= record.harvest_raw_w
        assert record.charge_accepted_w <= record.harvest_delivered_w + 1e-9
        assert record.harvest_mpp_w >= record.harvest_raw_w - 1e-9

    def test_node_supplied_up_to_demand(self):
        system = _system()
        record = system.step(_sample(light=700.0), 60.0)
        assert 0.0 <= record.node_supplied_w <= record.node_demand_w + 1e-12

    def test_dark_system_drains_storage(self):
        system = _system()
        e0 = system.bank.total_energy_j
        for _ in range(10):
            system.step(_sample(light=0.0), 60.0)
        assert system.bank.total_energy_j < e0

    def test_quiescent_drawn_continuously(self):
        channels = [_channel(quiescent=10e-6)]
        system = _system(channels=channels)
        record = system.step(_sample(light=0.0), 60.0)
        assert record.quiescent_w > 0.0

    def test_total_quiescent_property(self):
        channels = [_channel(quiescent=3e-6), _channel(quiescent=2e-6)]
        system = _system(channels=channels)
        system.base_quiescent_a = 1e-6
        assert system.total_quiescent_current_a == pytest.approx(6e-6)

    def test_harvester_types_deduped(self):
        channels = [_channel(), _channel(),
                    HarvestingChannel(MicroWindTurbine(), InputConditioner())]
        system = _system(channels=channels)
        assert system.harvester_types == (SourceType.LIGHT, SourceType.WIND)

    def test_swap_storage_respects_architecture(self):
        system = _system()
        system.architecture.auto_recognition = False
        replacement = Supercapacitor(capacitance_f=50.0)
        system.swap_storage(0, replacement)
        assert system.bank.beliefs[0].capacity_j != replacement.capacity_j

    def test_swap_storage_recognized_with_datasheet(self):
        system = _system()
        system.architecture.auto_recognition = True
        replacement = attach_datasheet(
            Supercapacitor(capacitance_f=50.0),
            ElectronicDatasheet(kind=DeviceKind.STORAGE, model="sc-50",
                                capacity_j=1.0, nominal_voltage=5.0))
        system.swap_storage(0, replacement)
        assert system.bank.beliefs[0].capacity_j == pytest.approx(
            replacement.capacity_j)

    def test_requires_channels(self):
        with pytest.raises(ValueError):
            MultiSourceSystem(
                architecture=ArchitectureDescriptor(name="empty"),
                channels=[],
                bank=StorageBank([IdealStorage()]),
                output=OutputConditioner(),
                node=WirelessSensorNode(),
            )

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            _system().step(_sample(), 0.0)
