"""Fleet co-simulation: spec round-trips, compilation, coupling,
tiered execution, catalog dedup, and fleet metrics."""

import dataclasses
import json

import pytest

from repro.catalog import Catalog
from repro.fleet import (
    FleetMetrics,
    fleet_links,
    fleet_metrics,
    fleet_scenarios,
    homogeneous_fleet,
    run_fleet,
    run_fleet_ensemble,
)
from repro.fleet.compile import listen_powers
from repro.fleet.metrics import node_lifetime_s
from repro.load import RadioModel, WirelessSensorNode
from repro.simulation.metrics import RunMetrics
from repro.spec import (
    ComponentSpec,
    EnvironmentSpec,
    FleetNodeSpec,
    FleetSpec,
    run_fleet as run_fleet_spec,
    spec_for,
    spec_from_dict,
    spec_hash,
)

DAY = 86_400.0


def _env(seed: int = 3, days: float = 1.0, dt: float = 300.0):
    return EnvironmentSpec("outdoor", duration=days * DAY, dt=dt,
                           seed=seed)


def _fleet(n: int = 4, **kwargs):
    kwargs.setdefault("topology", "ring")
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("name", "test-fleet")
    return homogeneous_fleet(spec_for("C"), _env(), n, **kwargs)


# ---------------------------------------------------------------------------
# Spec layer
# ---------------------------------------------------------------------------
class TestFleetSpec:
    def test_round_trips_through_json(self):
        spec = _fleet(3, spread=0.2)
        clone = FleetSpec.from_json(spec.to_json())
        assert clone == spec
        assert spec_hash(clone) == spec_hash(spec)

    def test_dispatches_through_the_kind_registry(self):
        spec = _fleet(3)
        clone = spec_from_dict(json.loads(spec.to_json()))
        assert isinstance(clone, FleetSpec)
        assert clone == spec

    def test_validates_nodes_and_links(self):
        with pytest.raises(ValueError):
            FleetSpec(system=spec_for("C"), environment=_env(), nodes=())
        node = FleetNodeSpec()
        with pytest.raises(ValueError):
            FleetSpec(system=spec_for("C"), environment=_env(),
                      nodes=(node, node), links=((0, 0),))  # self-loop
        with pytest.raises(ValueError):
            FleetSpec(system=spec_for("C"), environment=_env(),
                      nodes=(node, node), links=((0, 5),))  # out of range

    def test_node_names_default_to_indexed(self):
        spec = FleetSpec(
            system=spec_for("C"), environment=_env(),
            nodes=(FleetNodeSpec(name="hub"), FleetNodeSpec()))
        assert spec.node_name(0) == "hub"
        assert spec.node_name(1) == "n01"


class TestFleetLinks:
    def test_topologies(self):
        assert fleet_links("none", 4) == ()
        assert fleet_links("ring", 3) == ((0, 1), (1, 2), (2, 0))
        assert fleet_links("star", 4) == ((1, 0), (2, 0), (3, 0))
        assert fleet_links("line", 3) == ((0, 1), (1, 2))
        assert fleet_links("ring", 1) == ()

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            fleet_links("mesh", 4)

    def test_spread_spaces_node_scales(self):
        spec = _fleet(5, spread=0.2)
        scales = [node.scale for node in spec.nodes]
        assert scales[0] == pytest.approx(0.8)
        assert scales[2] == pytest.approx(1.0)
        assert scales[-1] == pytest.approx(1.2)
        with pytest.raises(ValueError):
            _fleet(3, spread=1.5)


# ---------------------------------------------------------------------------
# Compilation: coupling + per-node scenarios
# ---------------------------------------------------------------------------
class TestFleetCompilation:
    def test_listen_power_matches_the_radio_model(self):
        spec = _fleet(3)  # ring: each node receives from one neighbor
        scenarios = fleet_scenarios(spec)
        node = WirelessSensorNode()  # System C uses the stock node
        expected = node.radio.rx_energy(
            node.payload_bytes, spec.listen_window_s) / \
            node.measurement_interval_s
        for scenario in scenarios:
            assert scenario.params["listen_power_w"] == \
                pytest.approx(expected)

    def test_star_hub_pays_for_every_leaf(self):
        spec = _fleet(4, topology="star")
        powers = [s.params["listen_power_w"]
                  for s in fleet_scenarios(spec)]
        node = WirelessSensorNode()
        per_link = node.radio.rx_energy(
            node.payload_bytes, spec.listen_window_s) / \
            node.measurement_interval_s
        assert powers[0] == pytest.approx(3 * per_link)
        assert powers[1:] == [0.0, 0.0, 0.0]

    def test_coupling_raises_the_sleep_floor(self):
        spec = _fleet(3)
        scenario = fleet_scenarios(spec)[0]
        injected = scenario.system.params["node"]
        base_sleep = WirelessSensorNode().sleep_power_w
        assert injected.params["sleep_power_w"] == pytest.approx(
            base_sleep + scenario.params["listen_power_w"])
        # The declarative twin carries the radio explicitly.
        assert injected.params["radio"].type == "packet_radio"

    def test_link_free_nodes_keep_the_base_spec(self):
        spec = _fleet(3, topology="none")
        for scenario in fleet_scenarios(spec):
            assert scenario.system == spec_for("C")
            assert scenario.params["listen_power_w"] == 0.0

    def test_identity_siting_keeps_the_shared_environment(self):
        spec = _fleet(3, topology="none")
        for scenario in fleet_scenarios(spec):
            assert scenario.environment == spec.environment

    def test_scaled_siting_wraps_the_environment(self):
        spec = _fleet(3, topology="none", spread=0.2)
        scenarios = fleet_scenarios(spec)
        assert scenarios[0].environment.environment == "scaled"
        assert scenarios[0].environment.params["scale"] == \
            pytest.approx(0.8)
        # The middle node sits at scale 1.0: identity, unwrapped.
        assert scenarios[1].environment == spec.environment

    def test_node_param_overrides_merge(self):
        override = ComponentSpec("node", "wireless_sensor_node",
                                 params={"measurement_interval_s": 15.0})
        spec = FleetSpec(
            system=spec_for("C"), environment=_env(),
            nodes=(FleetNodeSpec(),
                   FleetNodeSpec(params={"node": override})))
        scenarios = fleet_scenarios(spec)
        assert "node" not in scenarios[0].system.params
        assert scenarios[1].system.params["node"] == override

    def test_heterogeneous_interval_changes_the_neighbor_cost(self):
        # Node 0 transmits 4x as often -> its receiver pays 4x the
        # listen power of the other link.
        def node_with_interval(interval):
            return FleetNodeSpec(params={"node": ComponentSpec(
                "node", "wireless_sensor_node",
                params={"measurement_interval_s": interval})})

        spec = FleetSpec(system=spec_for("C"), environment=_env(),
                         nodes=(node_with_interval(15.0),
                                node_with_interval(60.0)),
                         links=((0, 1), (1, 0)))
        scenarios = fleet_scenarios(spec)
        powers = [s.params["listen_power_w"] for s in scenarios]
        # receiver 1 hears the chatty node; receiver 0 hears the quiet
        # one: 60/15 = 4x apart.
        assert powers[1] == pytest.approx(4 * powers[0])


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
class TestRunFleet:
    def test_same_hardware_fleet_rides_the_batched_tier(self):
        result = run_fleet(_fleet(4, spread=0.2), tier="batched")
        assert result.execution_paths() == {"batched": 4}
        assert len(result.results) == 4
        assert result.metrics.nodes == 4

    def test_run_fleet_spec_dispatch(self):
        spec = _fleet(2)
        assert run_fleet_spec(spec).metrics == run_fleet(spec).metrics
        with pytest.raises(TypeError):
            run_fleet_spec(spec_for("C"))

    def test_heterogeneous_hardware_splits_into_groups(self):
        nodes = (FleetNodeSpec(), FleetNodeSpec(),
                 FleetNodeSpec(system=spec_for("D")),
                 FleetNodeSpec(system=spec_for("D")))
        spec = FleetSpec(system=spec_for("C"), environment=_env(),
                         nodes=nodes, seed=3, name="mixed")
        result = run_fleet(spec, tier="auto")
        assert len(result.results) == 4
        assert result.metrics.nodes == 4
        # Each hardware class forms its own lockstep group.
        assert result.execution_paths() == {"batched": 4}

    def test_catalog_dedups_fleet_runs(self, tmp_path):
        spec = _fleet(3, spread=0.2)
        catalog = Catalog(tmp_path / "store")
        first = run_fleet(spec, catalog=catalog)
        assert first.catalog_report.misses == 3
        second = run_fleet(spec, catalog=catalog)
        assert second.catalog_report.hits == 3
        assert second.catalog_report.misses == 0
        assert [r.metrics for r in second.results] == \
            [r.metrics for r in first.results]
        assert second.metrics == first.metrics

    def test_ensemble_replicates_and_summaries(self):
        ensemble = run_fleet_ensemble(_fleet(2), replicates=3,
                                      root_seed=5, tier="batched")
        assert len(ensemble) == 3
        assert len(set(ensemble.seeds)) == 3
        assert all(len(fleet.results) == 2 for fleet in ensemble)
        summary = ensemble.summary("coverage_fraction")
        assert summary.n == 3
        assert 0.0 <= summary.mean <= 1.0
        rows = ensemble.rows()
        assert [row["replicate"] for row in rows] == [0, 1, 2]
        assert "coverage_fraction" in ensemble.report()

    def test_ensemble_is_deterministic(self):
        a = run_fleet_ensemble(_fleet(2), replicates=2, root_seed=9)
        b = run_fleet_ensemble(_fleet(2), replicates=2, root_seed=9)
        assert [f.metrics for f in a] == [f.metrics for f in b]


# ---------------------------------------------------------------------------
# Fleet metrics
# ---------------------------------------------------------------------------
def _metrics(uptime: float, measurements: float, first_dead: float,
             duration: float = 1000.0) -> RunMetrics:
    return RunMetrics(
        duration_s=duration, harvested_raw_j=1.0,
        harvested_delivered_j=1.0, mpp_available_j=1.0,
        charge_accepted_j=1.0, quiescent_j=0.0, node_consumed_j=1.0,
        node_demand_j=1.0, backup_used_j=0.0, uptime_fraction=uptime,
        dead_time_s=(1.0 - uptime) * duration, brownouts=0,
        measurements=measurements, harvest_coverage=1.0,
        first_dead_s=first_dead)


class TestFleetMetrics:
    def test_aggregates_node_rows(self):
        rows = [_metrics(1.0, 100.0, -1.0),
                _metrics(0.5, 50.0, 400.0),
                _metrics(0.8, 80.0, 900.0)]
        fm = fleet_metrics(rows, quantiles=(0.5,))
        assert fm.nodes == 3
        assert fm.coverage_fraction == pytest.approx((1.0 + 0.5 + 0.8) / 3)
        assert fm.data_yield == pytest.approx(230.0)
        assert fm.deaths == 2
        assert fm.first_death_s == 400.0
        assert fm.fleet_lifetime_s == 400.0
        assert fm.mean_lifetime_s == pytest.approx(
            (1000.0 + 400.0 + 900.0) / 3)
        assert fm.lifetime_quantile(0.5) == 900.0

    def test_undying_fleet_is_censored_at_duration(self):
        fm = fleet_metrics([_metrics(1.0, 10.0, -1.0)] * 3)
        assert fm.deaths == 0
        assert fm.first_death_s == -1.0
        assert fm.fleet_lifetime_s == 1000.0
        assert node_lifetime_s(_metrics(1.0, 1.0, -1.0)) == 1000.0

    def test_rejects_empty_fleets(self):
        with pytest.raises(ValueError):
            fleet_metrics([])

    def test_row_flattens_quantiles(self):
        fm = fleet_metrics([_metrics(1.0, 10.0, -1.0)], quantiles=(0.5,))
        row = fm.row()
        assert row["lifetime_q0.5"] == 1000.0
        assert row["nodes"] == 1

    def test_unknown_quantile_raises(self):
        fm = FleetMetrics(nodes=1, duration_s=1.0, coverage_fraction=1.0,
                          data_yield=1.0, deaths=0, first_death_s=-1.0,
                          fleet_lifetime_s=1.0, mean_lifetime_s=1.0,
                          lifetime_quantiles=((0.5, 1.0),))
        with pytest.raises(KeyError):
            fm.lifetime_quantile(0.25)


class TestListenPowersDirect:
    def test_zero_without_links(self):
        spec = _fleet(3, topology="none")
        nodes = [WirelessSensorNode() for _ in range(3)]
        assert listen_powers(spec, nodes) == [0.0, 0.0, 0.0]

    def test_fragmented_payloads_cost_more_per_interval(self):
        radio = RadioModel()
        spec = FleetSpec(
            system=spec_for("C"), environment=_env(),
            nodes=(FleetNodeSpec(), FleetNodeSpec()), links=((0, 1),),
            listen_window_s=0.0)
        def power(payload):
            node = WirelessSensorNode(payload_bytes=payload, radio=radio)
            return listen_powers(spec, [node, node])[1]
        # Two full frames cost exactly twice one full frame (no shared
        # per-packet term once the listen window is zero)...
        assert power(220) == pytest.approx(2 * power(110))
        # ... and the 111th byte drags in a whole extra frame's startup
        # and ACK, so fragmentation is never silently cheaper per byte.
        interval = WirelessSensorNode().measurement_interval_s
        assert power(111) - power(110) > radio.startup_energy_j / interval
