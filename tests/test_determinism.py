"""Determinism suite: exact long-run event timing, segmented-run
equivalence, and fast-path/legacy bit-for-bit equality.

These tests pin the engine's time-indexing contract: simulation time is
``t0 + i * dt`` on an integer step counter (never accumulated), so which
trace sample and which scheduled event a step sees is exact for any run
length, and the vectorized fast path reproduces the legacy per-step path
bit for bit.
"""

import numpy as np
import pytest

from repro.analysis.experiments.common import make_reference_system
from repro.conditioning.mppt import FixedVoltage
from repro.core.manager import ThresholdManager
from repro.environment import Environment, SourceType, Trace
from repro.environment.composite import outdoor_environment
from repro.harvesters import (
    MicroWindTurbine,
    PhotovoltaicCell,
    ThermoelectricGenerator,
)
from repro.simulation import SimEvent, Simulator, simulate, swap_storage_event
from repro.simulation.kernel import KernelFallback
from repro.storage import AgingStorage, LiPolymerBattery, Supercapacitor
from repro.systems import SYSTEM_BUILDERS, build_system

DAY = 86_400.0

ALL_COLUMNS = (
    "t", "harvest_raw", "harvest_delivered", "harvest_mpp",
    "charge_accepted", "quiescent", "node_demand", "node_supplied",
    "node_consumed", "backup_power", "measurements", "stored_energy",
    "bus_voltage", "alive",
)


def _mixed_system(manager=None):
    """Solar + wind + TEG on one reference platform (fast-path eligible)."""
    return make_reference_system(
        [PhotovoltaicCell(area_cm2=40.0, efficiency=0.16, name="pv"),
         MicroWindTurbine(rotor_diameter_m=0.12, name="wind"),
         ThermoelectricGenerator(name="teg")],
        capacitance_f=50.0, initial_soc=0.5, measurement_interval_s=120.0,
        manager=manager)


def _assert_recorders_identical(a, b):
    assert len(a) == len(b)
    for column in ALL_COLUMNS:
        assert np.array_equal(a.column(column), b.column(column)), column
    assert np.array_equal(a.state_codes(), b.state_codes())
    for k in range(a.n_channels):
        assert np.array_equal(a.channel_delivered_trace(k).values,
                              b.channel_delivered_trace(k).values), k
    for k in range(a.n_stores):
        assert np.array_equal(a.store_energy_trace(k).values,
                              b.store_energy_trace(k).values), k


class TestMillionStepDeterminism:
    def test_event_fires_at_exact_step_and_time_does_not_drift(self):
        """A 1e6-step run at dt=0.01 s must fire an event at the exact
        intended step. With the seed's ``time += dt`` accumulation the
        clock is off by ULPs long before step 1e6; with integer-step time
        it is exact for any run length."""
        dt = 0.01
        n_steps = 1_000_000
        fire_step = n_steps - 3
        duration = n_steps * dt

        env = Environment(
            {SourceType.THERMAL: Trace.constant(60.0, duration, dt=10.0)})
        system = make_reference_system(
            [ThermoelectricGenerator(name="teg")],
            tracker_factory=lambda: FixedVoltage(0.6),
            capacitance_f=25.0, measurement_interval_s=60.0)

        def disable_channel(sys):
            sys.channels[0].enabled = False

        sim = Simulator(system, env,
                        events=[SimEvent(fire_step * dt, disable_channel)],
                        dt=dt)
        result = sim.run(duration=duration)

        delivered = result.recorder.column("harvest_delivered")
        assert len(delivered) == n_steps
        # Harvest is continuous until the event and zero from it onward.
        zero_steps = np.nonzero(delivered == 0.0)[0]
        assert zero_steps[0] == fire_step
        assert np.all(delivered[:fire_step] > 0.0)
        assert np.all(delivered[fire_step:] == 0.0)
        # The engine clock lands exactly on n * dt.
        assert sim.time == duration
        # The recorded time column is the exact i * dt grid.
        t = result.recorder.column("t")
        assert t[-1] == (n_steps - 1) * dt
        assert t[fire_step] == fire_step * dt

    def test_segmented_runs_equal_single_run(self):
        """simulate() in one call == the same steps split across
        Simulator.run() segments, bit for bit."""
        dt = 120.0
        duration = 2 * DAY
        env = outdoor_environment(duration=duration, dt=dt, seed=17)

        single = simulate(_mixed_system(), env, duration=duration, dt=dt)

        sim = Simulator(_mixed_system(), env, dt=dt)
        segments = [sim.run(duration=piece)
                    for piece in (0.3 * DAY, 0.7 * DAY, DAY)]
        assert sim.time == single.recorder.column("t")[-1] + dt

        whole = {c: np.concatenate([s.recorder.column(c) for s in segments])
                 for c in ALL_COLUMNS}
        for column in ALL_COLUMNS:
            assert np.array_equal(whole[column], single.recorder.column(column)), column


class TestFastPathEquivalence:
    def test_mixed_source_bitwise(self):
        """Fast path == legacy path, bit for bit, on a mixed
        solar+wind+TEG platform with an adaptive manager."""
        dt = 120.0
        duration = 2 * DAY
        env = outdoor_environment(duration=duration, dt=dt, seed=23)
        legacy = simulate(_mixed_system(ThresholdManager()), env,
                          duration=duration, dt=dt, fast=False)
        fast = simulate(_mixed_system(ThresholdManager()), env,
                        duration=duration, dt=dt, fast=True)
        _assert_recorders_identical(legacy.recorder, fast.recorder)
        assert legacy.metrics == fast.metrics
        assert legacy.execution_path == "legacy"
        assert fast.execution_path == "kernel"

    @pytest.mark.parametrize("letter", sorted(SYSTEM_BUILDERS))
    def test_table1_system_bitwise(self, letter):
        """Every Table I platform (A-G) — multi-store banks, batteries,
        LIC-class stores, fuel-cell backup, bus/MCU systems included —
        runs on the compiled kernel bit-for-bit identical to the legacy
        per-step path."""
        dt = 120.0
        duration = 2 * DAY
        env = outdoor_environment(duration=duration, dt=dt, seed=23)
        legacy = simulate(build_system(letter), env, duration=duration,
                          dt=dt, fast=False)
        fast = simulate(build_system(letter), env, duration=duration,
                        dt=dt, fast=True)
        assert fast.execution_path == "kernel"
        _assert_recorders_identical(legacy.recorder, fast.recorder)
        assert legacy.metrics == fast.metrics

    @pytest.mark.parametrize("letter", sorted(SYSTEM_BUILDERS))
    def test_table1_system_codegen_bitwise(self, letter):
        """Every Table I platform (A-G) on the fused codegen tier:
        recorded columns bit-for-bit identical to the legacy per-step
        path, with no capability fallback."""
        dt = 120.0
        duration = 2 * DAY
        env = outdoor_environment(duration=duration, dt=dt, seed=23)
        legacy = simulate(build_system(letter), env, duration=duration,
                          dt=dt, fast=False)
        codegen = simulate(build_system(letter), env, duration=duration,
                           dt=dt, fast="codegen")
        assert codegen.execution_path == "codegen"
        assert codegen.codegen_fallback is None
        _assert_recorders_identical(legacy.recorder, codegen.recorder)
        assert legacy.metrics == codegen.metrics

    def test_codegen_event_hands_off_to_scalar_kernel(self):
        """A mid-run event stops the fused loop at the step boundary;
        the scalar kernel fires the event and finishes the segment.
        The codegen prefix + scalar remainder must equal a pure scalar
        run — and the legacy run — bitwise."""
        dt = 120.0
        env = outdoor_environment(duration=DAY, dt=dt, seed=29)

        def events():
            return [swap_storage_event(
                0.4 * DAY, 0, Supercapacitor(capacitance_f=10.0,
                                             initial_soc=0.2))]

        legacy = simulate(_mixed_system(), env, duration=DAY, dt=dt,
                          events=events(), fast=False)
        scalar = simulate(_mixed_system(), env, duration=DAY, dt=dt,
                          events=events(), fast=True)
        codegen = simulate(_mixed_system(), env, duration=DAY, dt=dt,
                           events=events(), fast="codegen")
        assert scalar.execution_path == "kernel"
        assert codegen.execution_path == "codegen+kernel"
        _assert_recorders_identical(scalar.recorder, codegen.recorder)
        _assert_recorders_identical(legacy.recorder, codegen.recorder)
        assert legacy.metrics == codegen.metrics

    def test_event_rebind_keeps_equivalence(self):
        """A mid-run supercap hot-swap keeps the kernel eligible; its
        rebind must not perturb a single bit."""
        dt = 120.0
        duration = DAY
        env = outdoor_environment(duration=duration, dt=dt, seed=29)

        def events():
            return [swap_storage_event(
                0.4 * DAY, 0, Supercapacitor(capacitance_f=10.0,
                                             initial_soc=0.2))]

        legacy = simulate(_mixed_system(), env, duration=duration, dt=dt,
                          events=events(), fast=False)
        fast = simulate(_mixed_system(), env, duration=duration, dt=dt,
                        events=events(), fast=True)
        assert fast.execution_path == "kernel"
        _assert_recorders_identical(legacy.recorder, fast.recorder)

    def test_non_supercap_hot_swap_stays_on_kernel(self):
        """A mid-run battery hot-swap on a battery-buffered platform
        (System D-style) rebinds the kernel without leaving it — battery
        chemistries carry their own lowering now."""
        dt = 120.0
        duration = DAY
        env = outdoor_environment(duration=duration, dt=dt, seed=37)

        def events():
            return [swap_storage_event(
                0.4 * DAY, 0, LiPolymerBattery(capacity_mah=150.0,
                                               initial_soc=0.3))]

        legacy = simulate(build_system("D"), env, duration=duration, dt=dt,
                          events=events(), fast=False)
        fast = simulate(build_system("D"), env, duration=duration, dt=dt,
                        events=events(), fast=True)
        assert fast.execution_path == "kernel"
        _assert_recorders_identical(legacy.recorder, fast.recorder)

    def test_mid_run_fallback_keeps_equivalence(self):
        """An event that swaps in a store without a kernel lowering (an
        AgingStorage wrapper overrides the storage physics) pushes the
        system outside the envelope mid-run; the kernel->legacy handover
        must keep the recorded run identical to the pure legacy path."""
        dt = 120.0
        duration = DAY
        env = outdoor_environment(duration=duration, dt=dt, seed=31)

        def events():
            return [swap_storage_event(
                0.5 * DAY, 0,
                AgingStorage(LiPolymerBattery(capacity_mah=50.0,
                                              initial_soc=0.5)))]

        legacy = simulate(_mixed_system(), env, duration=duration, dt=dt,
                          events=events(), fast=False)
        fast = simulate(_mixed_system(), env, duration=duration, dt=dt,
                        events=events(), fast="auto")
        assert fast.execution_path == "kernel+legacy"
        _assert_recorders_identical(legacy.recorder, fast.recorder)

    def test_strict_mode_raises_on_mid_run_fallback(self):
        """fast=True promised the kernel; a mid-run event that leaves the
        envelope must raise, not silently degrade to the legacy loop."""
        dt = 120.0
        env = outdoor_environment(duration=DAY, dt=dt, seed=31)
        events = [swap_storage_event(
            0.5 * DAY, 0,
            AgingStorage(LiPolymerBattery(capacity_mah=50.0,
                                          initial_soc=0.5)))]
        with pytest.raises(KernelFallback, match="outside the kernel"):
            simulate(_mixed_system(), env, duration=DAY, dt=dt,
                     events=events, fast=True)

    def test_fast_true_rejects_ineligible_system(self):
        """A store whose subclass overrides the storage physics has no
        lowering, so the whole system is outside the kernel envelope."""
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=20.0)],
            stores=[AgingStorage(LiPolymerBattery(capacity_mah=50.0))])
        env = outdoor_environment(duration=3600.0, dt=60.0, seed=1)
        with pytest.raises(ValueError, match="fast=True"):
            simulate(system, env, dt=60.0, fast=True)

    def test_fast_false_keeps_records(self):
        env = outdoor_environment(duration=3600.0, dt=60.0, seed=1)
        legacy = simulate(_mixed_system(), env, dt=60.0, fast=False)
        assert len(legacy.recorder.records) == len(legacy.recorder)
        fast = simulate(_mixed_system(), env, dt=60.0, fast=True)
        with pytest.raises(AttributeError, match="fast-path"):
            fast.recorder.records
