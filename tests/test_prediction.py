"""Tests for the harvest predictors (EWMA and slot-EWMA)."""

import math

import pytest

from repro.core import EWMAPredictor, SlotEWMAPredictor
from repro.environment import SolarModel

DAY = 86_400.0


def _solar_profile(days, dt, seed=5):
    """(t, power) samples of a scaled solar week."""
    trace = SolarModel(cloudiness=0.2, seed=seed).trace(days * DAY, dt)
    return [(i * dt, v * 1e-4) for i, v in enumerate(trace.values)]


class TestEWMAPredictor:
    def test_converges_to_constant_input(self):
        predictor = EWMAPredictor(tau_s=600.0)
        for i in range(1000):
            predictor.observe(i * 60.0, 0.005, 60.0)
        assert predictor.predict(0.0) == pytest.approx(0.005, rel=1e-6)

    def test_time_constant_controls_response(self):
        fast = EWMAPredictor(tau_s=600.0)
        slow = EWMAPredictor(tau_s=86_400.0)
        for i in range(60):
            fast.observe(i * 60.0, 0.01, 60.0)
            slow.observe(i * 60.0, 0.01, 60.0)
        assert fast.predict(0.0) > slow.predict(0.0)

    def test_flat_in_time_of_day(self):
        predictor = EWMAPredictor()
        predictor.observe(0.0, 0.01, 60.0)
        assert predictor.predict(0.0) == predictor.predict(DAY / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMAPredictor(tau_s=0.0)
        with pytest.raises(ValueError):
            EWMAPredictor().observe(0.0, -1.0, 60.0)


class TestSlotEWMAPredictor:
    def test_learns_diurnal_profile(self):
        predictor = SlotEWMAPredictor(n_slots=24, alpha=0.5)
        for t, p in _solar_profile(days=4, dt=600.0):
            predictor.observe(t, p, 600.0)
        noon = predictor.predict(4 * DAY + DAY / 2)
        midnight = predictor.predict(4 * DAY + 20)
        assert noon > 10 * max(midnight, 1e-9)

    def test_beats_flat_ewma_on_solar(self):
        slot = SlotEWMAPredictor(n_slots=24, alpha=0.5)
        flat = EWMAPredictor(tau_s=6 * 3600.0)
        samples = _solar_profile(days=5, dt=600.0)
        train = [s for s in samples if s[0] < 4 * DAY]
        test = [s for s in samples if s[0] >= 4 * DAY]
        for t, p in train:
            slot.observe(t, p, 600.0)
            flat.observe(t, p, 600.0)
        slot_err = sum(slot.error(t, p) for t, p in test)
        flat_err = sum(flat.error(t, p) for t, p in test)
        assert slot_err < 0.7 * flat_err

    def test_profile_length(self):
        predictor = SlotEWMAPredictor(n_slots=48)
        assert len(predictor.profile) == 48

    def test_unseen_slots_return_initial(self):
        predictor = SlotEWMAPredictor(n_slots=24, initial_w=0.003)
        assert predictor.predict(13 * 3600.0) == pytest.approx(0.003)

    def test_horizon_average(self):
        predictor = SlotEWMAPredictor(n_slots=4, alpha=1.0)
        # Slot values: teach 1.0 in slot 0, 0 elsewhere over one day.
        for i in range(144):
            t = i * 600.0
            slot = int((t % DAY) / DAY * 4)
            predictor.observe(t, 1.0 if slot == 0 else 0.0, 600.0)
        mean = predictor.predict_horizon(DAY, DAY, resolution_s=600.0)
        assert mean == pytest.approx(0.25, abs=0.1)

    def test_alpha_blends_across_days(self):
        predictor = SlotEWMAPredictor(n_slots=1, alpha=0.5)
        # Day 1: 1.0 all day; day 2: 0.0 all day.
        for i in range(24):
            predictor.observe(i * 3600.0, 1.0, 3600.0)
        for i in range(24):
            predictor.observe(DAY + i * 3600.0, 0.0, 3600.0)
        # Committed day-1 mean 1.0, then day-2 rolls in with weight 0.5 at
        # the *next* commit; predict on day 3 (no live slot data).
        value = predictor.predict(2 * DAY + 3600.0)
        assert 0.0 <= value <= 1.0
        assert not math.isnan(value)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotEWMAPredictor(n_slots=0)
        with pytest.raises(ValueError):
            SlotEWMAPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            SlotEWMAPredictor().predict_horizon(0.0, -5.0)
