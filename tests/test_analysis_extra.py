"""Additional analysis-layer coverage: figures for all systems, audits
across the population, tradeoff reporting, and classifier details."""

import pytest

from repro.analysis import architecture_graph, audit_run, render_architecture
from repro.core import ArchitectureDescriptor, classify, score_system
from repro.environment import outdoor_environment
from repro.simulation import simulate
from repro.systems import all_systems, build_system

DAY = 86_400.0


class TestFiguresForWholePopulation:
    @pytest.mark.parametrize("letter", list("ABCDEFG"))
    def test_graph_extracts_for_every_system(self, letter):
        graph = architecture_graph(build_system(letter))
        roles = {d.get("role") for _, d in graph.nodes(data=True)}
        assert "harvester" in roles
        assert "storage" in roles
        assert "embedded_device" in roles

    @pytest.mark.parametrize("letter", list("ABCDEFG"))
    def test_render_for_every_system(self, letter):
        text = render_architecture(build_system(letter))
        assert "power path" in text
        assert "sensor node" in text

    def test_systems_without_mcu_have_no_data_section_nodes(self):
        graph = architecture_graph(build_system("C"))
        assert "power-unit-mcu" not in graph.nodes

    def test_every_store_connects_to_bus(self):
        for letter in "ABCDEFG":
            graph = architecture_graph(build_system(letter))
            for node, data in graph.nodes(data=True):
                if data.get("role") == "storage":
                    assert graph.has_edge(node, "storage-bus"), (letter, node)


class TestAuditAcrossPopulation:
    @pytest.mark.parametrize("letter", list("ABCD"))
    def test_audit_balances_for_harvesting_systems(self, letter):
        system = build_system(letter, initial_soc=0.5)
        env = outdoor_environment(duration=DAY / 2, dt=300.0, seed=14)
        result = simulate(system, env)
        audit = audit_run(result.recorder)
        assert audit.mpp_available >= 0.0
        reconstructed = (audit.tracking_loss + audit.conversion_loss +
                         audit.storage_rejected + audit.quiescent_loss +
                         audit.output_and_misc_loss + audit.storage_delta +
                         audit.node_consumed)
        # Backup draw can make the balance slightly over-complete; allow
        # a modest tolerance band.
        assert reconstructed == pytest.approx(audit.mpp_available, rel=0.1,
                                              abs=5.0)


class TestTradeoffDetails:
    def test_awareness_per_complexity(self):
        scores = {k: score_system(s) for k, s in all_systems().items()}
        # System B buys high awareness at moderate complexity; system D
        # has no awareness at all.
        assert scores["B"].awareness_per_complexity > 1.0
        # D's analog line gives limited awareness only.
        assert scores["D"].energy_awareness <= 0.35
        assert scores["D"].energy_awareness < scores["A"].energy_awareness

    def test_zero_complexity_zero_awareness(self):
        from repro.core.tradeoffs import TradeoffScores
        scores = TradeoffScores(flexibility=0.0, energy_awareness=0.0,
                                complexity=0.0, quiescent_burden=0.0)
        assert scores.awareness_per_complexity == 0.0

    def test_zero_complexity_positive_awareness_is_infinite(self):
        from repro.core.tradeoffs import TradeoffScores
        scores = TradeoffScores(flexibility=0.0, energy_awareness=0.5,
                                complexity=0.0, quiescent_burden=0.0)
        assert scores.awareness_per_complexity == float("inf")


class TestClassifierDetails:
    def test_row_as_dict_ordering(self):
        row = classify(build_system("A"), device="A")
        labels = list(row.as_dict())
        assert labels[0] == "No. Harvesters/Stores"
        assert labels[-1] == "Commercial Product"

    def test_device_defaults_to_short_name(self):
        row = classify(build_system("B"))
        assert row.device == "B"

    def test_sub_microamp_quiescent_display(self):
        arch = ArchitectureDescriptor(name="x",
                                      quiescent_current_a=0.75e-6,
                                      quiescent_is_upper_bound=True)
        assert arch.quiescent_display == "< 0.75 uA"

    def test_integer_quiescent_display(self):
        arch = ArchitectureDescriptor(name="x", quiescent_current_a=20e-6)
        assert arch.quiescent_display == "20 uA"


class TestQuickSystemSanity:
    """Spot physical-sanity checks across the population."""

    def test_quiescent_ordering_matches_table(self):
        systems = all_systems()
        iq = {k: s.total_quiescent_current_a for k, s in systems.items()}
        assert iq["E"] < iq["C"] <= iq["A"] < iq["B"] < iq["F"] < \
            iq["G"] < iq["D"]

    def test_all_systems_have_positive_capacity(self):
        for letter, system in all_systems().items():
            assert system.bank.total_capacity_j > 0.0, letter

    def test_every_channel_has_positive_voltage_target_possible(self):
        # Every channel's conditioner must be able to move power for SOME
        # ambient level (no dead-by-construction inputs).
        from repro.environment import SourceType
        probe = {
            SourceType.LIGHT: 800.0,
            SourceType.WIND: 8.0,
            SourceType.THERMAL: 25.0,
            SourceType.VIBRATION: 4.0,
            SourceType.RF: 1.0,
            SourceType.WATER_FLOW: 1.5,
            SourceType.MECHANICAL: 4.0,
            SourceType.AC_GENERIC: 12.0,
        }
        for letter, system in all_systems().items():
            for channel in system.channels:
                ambient = probe[channel.source_type]
                assert channel.harvester.max_power(ambient) > 0.0, \
                    (letter, channel.name)
