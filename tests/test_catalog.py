"""Tests for the content-addressed catalog (:mod:`repro.catalog`).

Covers the dedup contract end to end: canonical hashing (invariant
under key order and float formatting), cache-key extraction, columnar
artifacts, the manifest, archive/restore bitwise round-trips, dedup
hits on every execution tier, crash/resume (an interrupted sweep
resumes with only the missing remainder), the query layer, garbage
collection, and the benchmark trajectory records.
"""

import dataclasses
import json

import pytest

from repro.catalog import (
    ARTIFACT_SCHEMA,
    Catalog,
    CatalogError,
    Manifest,
    ManifestRecord,
    bench_trajectory,
    code_version,
    have_pyarrow,
    import_trajectory,
    read_artifact,
    record_bench,
    resolve_format,
    scenario_cache_key,
    spec_hash,
    write_artifact,
    write_trajectory,
)
from repro.simulation import sweep as sweep_module
from repro.simulation import batched_sweep as batched_module
from repro.simulation.montecarlo import replicate_seeds
from repro.simulation.sweep import ScenarioSpec, SweepRunner
from repro.spec import (
    EnvironmentSpec,
    MonteCarloSpec,
    RunSpec,
    run_montecarlo,
    spec_for,
)
from repro.spec.canonical import canonical_bytes, canonical_dumps

DAY = 86_400.0
DT = 300.0
SHORT = 0.05 * DAY  # 4320 s -> 14 steps at dt=300


def make_scenario(name="row", *, soc=0.5, seed=7, env="outdoor",
                  letter="C", duration=SHORT, dt=DT, **overrides):
    """One fully declarative (cacheable) scenario."""
    return ScenarioSpec(
        name=name,
        system=spec_for(letter, initial_soc=soc),
        environment=EnvironmentSpec(env, duration=duration, dt=dt,
                                    seed=seed),
        params={"soc": soc},
        **overrides,
    )


def make_grid(n, *, seed=3, dt=DT):
    """n scenarios differing only in initial SoC (distinct spec hashes,
    shared seed)."""
    return [make_scenario(f"soc-{k}", soc=round(0.2 + 0.6 * k / n, 4),
                          seed=seed, dt=dt)
            for k in range(n)]


def run_one(spec):
    """Ground truth: execute one scenario without any catalog."""
    return sweep_module._execute((spec, "auto"))


def assert_rows_equal(got, want):
    """Bitwise row equality (RunMetrics equality is exact float ==)."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.name == w.name
        assert g.params == w.params
        assert g.metrics == w.metrics, g.name
        assert g.n_steps == w.n_steps
        assert g.extras == w.extras


# ---------------------------------------------------------------------------
# Canonical hashing (satellite: hash-invariance regression tests)
# ---------------------------------------------------------------------------
class TestSpecHash:
    def test_invariant_under_key_ordering(self):
        a = {"duration": 4320.0, "dt": 300.0,
             "system": {"type": "ambimax", "params": {"x": 1, "y": 2.5}}}
        b = {"system": {"params": {"y": 2.5, "x": 1}, "type": "ambimax"},
             "dt": 300.0, "duration": 4320.0}
        assert canonical_bytes(a) == canonical_bytes(b)
        assert spec_hash(a) == spec_hash(b)

    def test_invariant_under_float_formatting(self):
        # 2.5e-1 and 0.25 are the same float64; so are 1.0 and 1.00.
        assert spec_hash({"v": 2.5e-1}) == spec_hash({"v": 0.25})
        assert spec_hash({"v": 1.00}) == spec_hash({"v": 1.0})
        # Shortest-repr round-trip: a hash survives a JSON round trip
        # even for floats with no short decimal form.
        ugly = {"v": 0.1 + 0.2, "w": 1.0 / 3.0}
        round_tripped = json.loads(canonical_dumps(ugly))
        assert spec_hash(round_tripped) == spec_hash(ugly)

    def test_distinct_values_distinct_hashes(self):
        assert spec_hash({"v": 0.25}) != spec_hash({"v": 0.250001})
        assert spec_hash({"v": 1}) != spec_hash({"w": 1})

    def test_hash_is_hex_sha256(self):
        digest = spec_hash({"v": 1})
        assert len(digest) == 64
        int(digest, 16)  # must parse as hex

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_dumps({"v": float("nan")})

    def test_numpy_scalars_hash_like_native_values(self):
        """Regression: np.float64/np.int64 leaking into params (e.g. from
        a sweep axis built with np.linspace) must hash identically to the
        equivalent native scalars, or the catalog re-simulates runs it
        already holds."""
        import numpy as np
        assert spec_hash({"v": np.float64(0.25)}) == \
            spec_hash({"v": 0.25})
        assert spec_hash({"n": np.int64(3)}) == spec_hash({"n": 3})
        assert spec_hash({"flag": np.bool_(True)}) == \
            spec_hash({"flag": True})
        # canonical_dumps must not emit the numpy repr either.
        assert canonical_dumps({"v": np.float64(0.5)}) == \
            canonical_dumps({"v": 0.5})

    def test_numpy_scalars_normalize_inside_specs(self):
        """Spec params coerce numpy scalars at construction, so equality
        and spec_hash are type-independent end to end."""
        import numpy as np
        native = EnvironmentSpec("outdoor", params={"scale": 0.8},
                                 duration=SHORT, dt=DT, seed=3)
        leaked = EnvironmentSpec(
            "outdoor", params={"scale": np.float64(0.8)},
            duration=SHORT, dt=DT, seed=3)
        assert leaked == native
        assert type(leaked.params["scale"]) is float
        assert spec_hash(leaked.to_dict()) == spec_hash(native.to_dict())

    def test_cache_key_survives_spec_json_round_trip(self):
        spec = RunSpec(system=spec_for("C", initial_soc=0.35),
                       environment=EnvironmentSpec("outdoor",
                                                   duration=SHORT, dt=DT,
                                                   seed=9),
                       name="round-trip")
        from repro.spec.build import to_scenario
        rebuilt = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        key = scenario_cache_key(to_scenario(spec))
        key2 = scenario_cache_key(to_scenario(rebuilt))
        assert key.spec_hash == key2.spec_hash
        assert key == key2


class TestCodeVersion:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "release-1.2.3")
        assert code_version() == "release-1.2.3"

    def test_default_is_stable_short_hex(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODE_VERSION", raising=False)
        version = code_version()
        assert version == code_version()
        assert len(version) == 12
        int(version, 16)


# ---------------------------------------------------------------------------
# Cache-key extraction
# ---------------------------------------------------------------------------
class TestScenarioCacheKey:
    def test_declarative_scenario_is_cacheable(self):
        key = scenario_cache_key(make_scenario(seed=7))
        assert key is not None
        assert key.system == "ambimax"
        assert key.environment == "outdoor"
        assert key.seed == 7
        assert len(key.spec_hash) == 64
        assert key.key_dict["kind"] == "scenario-key"

    def test_fast_flag_excluded_from_identity(self):
        base = make_scenario()
        assert scenario_cache_key(base) == \
            scenario_cache_key(dataclasses.replace(base, fast=False))

    def test_name_and_params_excluded_from_identity(self):
        base = make_scenario("one")
        relabeled = dataclasses.replace(base, name="two",
                                        params={"other": 1})
        assert scenario_cache_key(base) == scenario_cache_key(relabeled)

    def test_seed_falls_back_to_environment_seed(self):
        spec = make_scenario(seed=42)  # env seed, scenario seed unset
        assert spec.seed is None
        assert scenario_cache_key(spec).seed == 42
        pinned = dataclasses.replace(spec, seed=7)
        assert scenario_cache_key(pinned).seed == 7
        # The env seed is normalized out of the hash: same physics,
        # different seed channel only.
        assert scenario_cache_key(pinned).spec_hash == \
            scenario_cache_key(spec).spec_hash

    def test_physics_knobs_change_the_hash(self):
        a = scenario_cache_key(make_scenario(soc=0.3))
        b = scenario_cache_key(make_scenario(soc=0.4))
        assert a.spec_hash != b.spec_hash
        c = scenario_cache_key(make_scenario(dt=600.0))
        assert c.spec_hash != a.spec_hash

    def test_uncacheable_shapes(self):
        base = make_scenario()
        factory = dataclasses.replace(base, system=lambda: None)
        assert scenario_cache_key(factory) is None
        env_factory = dataclasses.replace(base, environment=lambda: None)
        assert scenario_cache_key(env_factory) is None
        with_events = dataclasses.replace(base, events=[(10.0, "noop")])
        assert scenario_cache_key(with_events) is None
        with_hook = dataclasses.replace(base, collect=lambda r: {})
        assert scenario_cache_key(with_hook) is None


# ---------------------------------------------------------------------------
# Columnar artifacts
# ---------------------------------------------------------------------------
class TestArtifacts:
    def test_npz_round_trip_is_bitwise(self, tmp_path):
        rows = [run_one(s) for s in make_grid(3)]
        path = tmp_path / "rows.npz"
        write_artifact(path, rows, "npz")
        assert_rows_equal(read_artifact(path), rows)

    def test_int_metrics_restore_as_ints(self, tmp_path):
        row = run_one(make_scenario())
        path = tmp_path / "row.npz"
        write_artifact(path, [row], "npz")
        (loaded,) = read_artifact(path)
        assert isinstance(loaded.metrics.brownouts, int)

    def test_unjsonable_rows_raise_type_error(self, tmp_path):
        row = run_one(make_scenario())
        bad = dataclasses.replace(row, extras={"handle": object()})
        with pytest.raises(TypeError):
            write_artifact(tmp_path / "bad.npz", [bad], "npz")

    def test_schema_mismatch_rejected(self, tmp_path):
        import numpy as np
        path = tmp_path / "alien.npz"
        np.savez(path, schema=np.array(["other-schema-v9"]))
        with pytest.raises(ValueError, match=ARTIFACT_SCHEMA):
            read_artifact(path)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            resolve_format("csv")

    def test_auto_format_always_resolves(self):
        assert resolve_format("auto") in ("npz", "parquet")
        assert resolve_format("npz") == "npz"

    @pytest.mark.skipif(have_pyarrow(),
                        reason="pyarrow installed: parquet available")
    def test_parquet_without_pyarrow_names_the_extra(self):
        with pytest.raises(RuntimeError, match="parquet"):
            resolve_format("parquet")

    @pytest.mark.skipif(not have_pyarrow(), reason="needs pyarrow")
    def test_parquet_round_trip_is_bitwise(self, tmp_path):
        rows = [run_one(s) for s in make_grid(3)]
        path = tmp_path / "rows.parquet"
        write_artifact(path, rows, "parquet")
        assert_rows_equal(read_artifact(path), rows)


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------
class TestManifest:
    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        good = ManifestRecord(run_id="r1", spec_hash="ab" * 32, seed=1,
                              code_version="v1")
        path.write_text(json.dumps(good.to_dict()) + "\n"
                        + "{torn line\n")
        manifest = Manifest(path)
        assert len(manifest) == 1
        assert manifest.corrupt_lines == 1
        assert manifest.lookup("ab" * 32, 1, "v1").run_id == "r1"

    def test_by_run_id_prefix_match(self, tmp_path):
        manifest = Manifest(tmp_path / "manifest.jsonl")
        manifest.append(ManifestRecord(run_id="abcdef-s1-v1",
                                       spec_hash="abcdef" + "0" * 58))
        manifest.append(ManifestRecord(run_id="123456-s2-v1",
                                       spec_hash="123456" + "0" * 58))
        assert manifest.by_run_id("abcdef-s1-v1").run_id == "abcdef-s1-v1"
        assert manifest.by_run_id("1234").run_id == "123456-s2-v1"
        assert manifest.by_run_id("nope") is None

    def test_rewrite_is_load_stable(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = Manifest(path)
        for k in range(3):
            manifest.append(ManifestRecord(run_id=f"r{k}",
                                           spec_hash=f"{k:02x}" * 32,
                                           seed=k, code_version="v1"))
        manifest.rewrite(manifest.records[1:])
        reloaded = Manifest(path)
        assert [r.run_id for r in reloaded] == ["r1", "r2"]
        assert reloaded.lookup("00" * 32, 0, "v1") is None


# ---------------------------------------------------------------------------
# The store: archive / restore / load_rows
# ---------------------------------------------------------------------------
class TestCatalogStore:
    def test_archive_restore_is_bitwise(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        spec = make_scenario("original")
        key = scenario_cache_key(spec)
        truth = run_one(spec)
        record = catalog.archive(key, truth, wall_time_s=0.5)
        assert record is not None
        assert record.wall_time_s == 0.5
        found = catalog.lookup(key)
        assert found.run_id == record.run_id
        restored = catalog.restore(found)
        assert_rows_equal([restored], [truth])
        # The columnar artifact is the authoritative copy and must agree
        # with the manifest restore bit for bit.
        assert_rows_equal(catalog.load_rows(found), [truth])

    def test_restore_applies_requesting_identity(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        spec = make_scenario("original")
        truth = run_one(spec)
        record = catalog.archive(scenario_cache_key(spec), truth)
        relabeled = catalog.restore(record, name="renamed",
                                    params={"k": 9})
        assert relabeled.name == "renamed"
        assert relabeled.params == {"k": 9}
        assert relabeled.metrics == truth.metrics

    def test_archive_is_idempotent_per_key(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        spec = make_scenario()
        key = scenario_cache_key(spec)
        truth = run_one(spec)
        first = catalog.archive(key, truth)
        second = catalog.archive(key, truth)
        assert second.run_id == first.run_id
        assert len(catalog.manifest) == 1

    def test_unarchivable_row_returns_none(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        spec = make_scenario()
        truth = run_one(spec)
        exotic = dataclasses.replace(truth, extras={"handle": object()})
        assert catalog.archive(scenario_cache_key(spec), exotic) is None
        assert len(catalog.manifest) == 0

    def test_spec_document_is_content_addressed(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        spec = make_scenario()
        key = scenario_cache_key(spec)
        catalog.archive(key, run_one(spec))
        assert catalog.spec_document(key.spec_hash) == key.key_dict
        with pytest.raises(CatalogError):
            catalog.spec_document("0" * 64)

    def test_store_reopens_across_handles(self, tmp_path):
        root = tmp_path / "store"
        spec = make_scenario()
        key = scenario_cache_key(spec)
        truth = run_one(spec)
        Catalog(root).archive(key, truth)
        fresh = Catalog(root)
        assert_rows_equal([fresh.restore(fresh.lookup(key))], [truth])

    def test_layout_mismatch_refused(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "catalog.json").write_text('{"layout": 99}\n')
        with pytest.raises(CatalogError, match="layout"):
            Catalog(root)

    def test_hit_counters_persist(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        catalog.record_hits(["a", "b", "a"])
        assert catalog.hit_counts() == {"a": 2, "b": 1}
        assert Catalog(tmp_path / "store").total_hits() == 3

    def test_code_version_is_part_of_the_key(self, tmp_path, monkeypatch):
        catalog = Catalog(tmp_path / "store")
        spec = make_scenario()
        key = scenario_cache_key(spec)
        monkeypatch.setenv("REPRO_CODE_VERSION", "v-old")
        catalog.archive(key, run_one(spec))
        assert catalog.lookup(key) is not None
        monkeypatch.setenv("REPRO_CODE_VERSION", "v-new")
        assert catalog.lookup(key) is None  # upgrade == clean miss
        assert catalog.lookup(key, version="v-old") is not None


# ---------------------------------------------------------------------------
# Sweep dedup: the cache in front of every execution tier
# ---------------------------------------------------------------------------
class TestSweepDedup:
    def test_second_run_is_all_hits_zero_simulations(self, tmp_path,
                                                     monkeypatch):
        root = tmp_path / "store"
        grid = make_grid(6)
        first = SweepRunner(processes=1, catalog=Catalog(root)).run(grid)
        assert first.catalog_report.hits == 0
        assert first.catalog_report.misses == 6
        assert first.catalog_report.archived == 6

        # Prove "zero simulations": no per-scenario execution and no
        # batched-kernel dispatch may happen on the second pass.
        def forbidden(*args, **kwargs):
            raise AssertionError("cache hit must not simulate")
        monkeypatch.setattr(sweep_module, "_execute", forbidden)
        monkeypatch.setattr(batched_module, "run_batched_tier", forbidden)

        catalog = Catalog(root)
        second = SweepRunner(processes=1, catalog=catalog).run(make_grid(6))
        assert second.catalog_report.hits == 6
        assert second.catalog_report.simulated == 0
        assert catalog.total_hits() == 6
        assert_rows_equal(list(second), list(first))

    def test_partial_overlap_hits_only_the_overlap(self, tmp_path):
        root = tmp_path / "store"
        SweepRunner(processes=1, catalog=Catalog(root)).run(make_grid(3))
        report = SweepRunner(processes=1, catalog=Catalog(root)) \
            .run(make_grid(6)).catalog_report
        # make_grid(3) socs {0.2, 0.4, 0.6} are all inside make_grid(6)
        # socs {0.2 .. 0.7}: the overlap hits, the rest simulates.
        assert report.hits == 3
        assert report.misses == 3

    def test_multiprocessing_tier_archives(self, tmp_path):
        grid = make_grid(4)
        catalog = Catalog(tmp_path / "store")
        result = SweepRunner(processes=2, batch=False,
                             catalog=catalog).run(grid)
        assert result.catalog_report.archived == 4
        rerun = SweepRunner(processes=2, batch=False,
                            catalog=Catalog(tmp_path / "store")).run(grid)
        assert rerun.catalog_report.hits == 4
        assert_rows_equal(list(rerun), list(result))

    def test_cross_tier_hits_are_bitwise(self, tmp_path):
        # Archive on the batched tier, hit from the in-process tier (and
        # vice versa): the differential contract makes tiers
        # interchangeable cache producers.
        grid = make_grid(4)
        batched_store = tmp_path / "a"
        SweepRunner(processes=1, batch="auto",
                    catalog=Catalog(batched_store)).run(grid)
        hit = SweepRunner(processes=1, batch=False,
                          catalog=Catalog(batched_store)).run(grid)
        assert hit.catalog_report.hits == 4
        truth = SweepRunner(processes=1, batch=False).run(make_grid(4))
        assert_rows_equal(list(hit), list(truth))

    def test_uncacheable_scenarios_ride_along(self, tmp_path):
        grid = make_grid(3)
        grid.append(dataclasses.replace(
            make_scenario("hooked", soc=0.9),
            collect=lambda r: {"coverage": 1.0}))
        catalog = Catalog(tmp_path / "store")
        result = SweepRunner(processes=1, catalog=catalog).run(grid)
        assert result.catalog_report.uncacheable == 1
        assert result.catalog_report.archived == 3
        assert result["hooked"].extras["coverage"] == 1.0
        rerun = SweepRunner(processes=1,
                            catalog=Catalog(tmp_path / "store")).run(grid)
        assert rerun.catalog_report.hits == 3
        assert rerun.catalog_report.uncacheable == 1  # simulated again

    def test_no_catalog_means_no_report(self):
        result = SweepRunner(processes=1).run(make_grid(2))
        assert result.catalog_report is None


# ---------------------------------------------------------------------------
# Crash / resume: an interrupted sweep completes only the remainder
# ---------------------------------------------------------------------------
class TestCrashResume:
    def test_inprocess_sweep_resumes_only_the_remainder(self, tmp_path,
                                                        monkeypatch):
        root = tmp_path / "store"
        grid = make_grid(8)
        truth = SweepRunner(processes=1, batch=False).run(make_grid(8))

        real_execute = sweep_module._execute
        calls = {"n": 0}

        def crashing(payload):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("simulated crash")
            return real_execute(payload)

        monkeypatch.setattr(sweep_module, "_execute", crashing)
        with pytest.raises(RuntimeError, match="simulated crash"):
            SweepRunner(processes=1, batch=False,
                        catalog=Catalog(root)).run(grid)

        # The manifest holds exactly the scenarios that completed.
        checkpointed = Catalog(root)
        assert len(checkpointed.manifest) == 3

        counting = {"n": 0}

        def counted(payload):
            counting["n"] += 1
            return real_execute(payload)

        monkeypatch.setattr(sweep_module, "_execute", counted)
        resumed = SweepRunner(processes=1, batch=False,
                              catalog=checkpointed).run(make_grid(8))
        assert counting["n"] == 5  # only the missing scenarios ran
        assert resumed.catalog_report.hits == 3
        assert resumed.catalog_report.misses == 5
        assert_rows_equal(list(resumed), list(truth))

    def test_batched_sweep_resumes_only_the_remainder(self, tmp_path,
                                                      monkeypatch):
        # Two lockstep groups (dt 300 vs dt 600 -> distinct signatures);
        # the kernel dies on the second group, so exactly the first
        # group's scenarios are checkpointed.
        root = tmp_path / "store"
        grid = make_grid(4, dt=300.0) + [
            make_scenario(f"coarse-{k}", soc=round(0.25 + 0.1 * k, 4),
                          dt=600.0) for k in range(4)]
        truth = SweepRunner(processes=1, batch="auto").run(list(grid))

        real_run_batched = batched_module.run_batched
        calls = {"n": 0}

        def crashing(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("simulated crash")
            return real_run_batched(*args, **kwargs)

        monkeypatch.setattr(batched_module, "run_batched", crashing)
        with pytest.raises(RuntimeError, match="simulated crash"):
            SweepRunner(processes=1, batch="auto",
                        catalog=Catalog(root)).run(list(grid))
        monkeypatch.setattr(batched_module, "run_batched",
                            real_run_batched)

        archived = len(Catalog(root).manifest)
        assert archived == 4  # the first lockstep group, whole

        resumed = SweepRunner(processes=1, batch="auto",
                              catalog=Catalog(root)).run(list(grid))
        assert resumed.catalog_report.hits == 4
        assert resumed.catalog_report.misses == 4
        assert_rows_equal(list(resumed), list(truth))


# ---------------------------------------------------------------------------
# Monte Carlo ensembles through the catalog
# ---------------------------------------------------------------------------
class TestEnsembleCatalog:
    def _spec(self, replicates):
        return MonteCarloSpec(
            run=RunSpec(system=spec_for("C"),
                        environment=EnvironmentSpec("outdoor",
                                                    duration=SHORT, dt=DT),
                        name="mc"),
            replicates=replicates,
            root_seed=11,
        )

    def test_ensemble_dedup_round_trip(self, tmp_path):
        root = tmp_path / "store"
        first = run_montecarlo(self._spec(6), catalog=Catalog(root))
        assert first.catalog_report.archived == 6
        again = run_montecarlo(self._spec(6), catalog=Catalog(root))
        assert again.catalog_report.hits == 6
        assert again.catalog_report.simulated == 0
        for a, b in zip(first, again):
            assert a.metrics == b.metrics

    def test_growing_an_ensemble_reuses_the_prefix(self, tmp_path):
        # Replicate seeds are prefix-stable, so extending an archived
        # 3-replicate ensemble to 6 replicates simulates only the new 3.
        root = tmp_path / "store"
        run_montecarlo(self._spec(3), catalog=Catalog(root))
        grown = run_montecarlo(self._spec(6), catalog=Catalog(root))
        assert grown.catalog_report.hits == 3
        assert grown.catalog_report.misses == 3


# ---------------------------------------------------------------------------
# Query layer
# ---------------------------------------------------------------------------
class TestQuery:
    @pytest.fixture()
    def populated(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        seeds = replicate_seeds(11, 3, 0)
        for k, seed in enumerate(seeds):
            spec = make_scenario(f"family-{k}", seed=int(seed))
            catalog.archive(scenario_cache_key(spec), run_one(spec))
        other = make_scenario("other", letter="A",
                              env="indoor-industrial", seed=5)
        catalog.archive(scenario_cache_key(other), run_one(other))
        return catalog

    def test_filter_by_system_and_environment(self, populated):
        assert len(populated.query(system="ambimax")) == 3
        assert len(populated.query(environment="indoor-industrial")) == 1
        assert populated.query(system="ambimax",
                               environment="indoor-industrial") == []

    def test_filter_by_name_prefix_and_seed(self, populated):
        assert len(populated.query(name="family-")) == 3
        assert populated.query(name="other")[0].seed == 5
        assert len(populated.query(seed=5)) == 1

    def test_filter_by_spec_hash_prefix(self, populated):
        record = populated.query(name="other")[0]
        assert populated.query(spec_hash=record.spec_hash[:10]) == [record]

    def test_filter_by_code_version(self, populated):
        assert len(populated.query(code_version=code_version())) == 4
        assert populated.query(code_version="nope") == []

    def test_filter_by_metric_band(self, populated):
        record = populated.query(name="other")[0]
        value = record.metrics["harvested_delivered_j"]
        band = populated.query(
            metric_band=("harvested_delivered_j", value, value))
        assert record in band
        assert populated.query(
            metric_band=("harvested_delivered_j", value + 1e9, None)) == []

    def test_seed_stream_finds_the_replicate_family(self, populated):
        family = populated.query(seed_stream=(11, 0, 3))
        assert len(family) == 3
        assert {r.name for r in family} == \
            {"family-0", "family-1", "family-2"}
        # Streams are prefix-stable: asking for fewer replicates finds
        # the prefix; a different stream finds nothing.
        assert len(populated.query(seed_stream=(11, 0, 2))) == 2
        assert populated.query(seed_stream=(11, 1, 3)) == []


# ---------------------------------------------------------------------------
# Garbage collection
# ---------------------------------------------------------------------------
class TestGc:
    def test_stale_gc_drops_superseded_versions(self, tmp_path,
                                                monkeypatch):
        root = tmp_path / "store"
        catalog = Catalog(root)
        monkeypatch.setenv("REPRO_CODE_VERSION", "v-old")
        for spec in make_grid(2):
            catalog.archive(scenario_cache_key(spec), run_one(spec))
        stale_ids = [r.run_id for r in catalog.manifest]
        catalog.record_hits(stale_ids)
        monkeypatch.setenv("REPRO_CODE_VERSION", "v-new")
        fresh_spec = make_scenario("fresh", soc=0.77)
        catalog.archive(scenario_cache_key(fresh_spec), run_one(fresh_spec))

        dry = catalog.gc(stale=True, dry_run=True)
        assert dry.removed == 2
        assert len(catalog.manifest) == 3  # dry run touches nothing
        assert all((root / r.artifact).exists() for r in catalog.manifest)

        report = catalog.gc(stale=True)
        assert sorted(report.removed_records) == sorted(stale_ids)
        assert len(report.removed_artifacts) == 2
        reloaded = Catalog(root)
        assert [r.name for r in reloaded.manifest] == ["fresh"]
        assert all(not (root / f"results/{rid}.npz").exists()
                   for rid in stale_ids)
        # Hit counters of removed runs are dropped too.
        assert reloaded.hit_counts() == {}

    def test_keep_last_per_dedup_family(self, tmp_path, monkeypatch):
        root = tmp_path / "store"
        catalog = Catalog(root)
        spec = make_scenario()
        key = scenario_cache_key(spec)
        truth = run_one(spec)
        for version in ("v1", "v2", "v3"):
            monkeypatch.setenv("REPRO_CODE_VERSION", version)
            catalog.archive(key, truth)
        assert len(catalog.manifest) == 3
        report = catalog.gc(keep_last=1)
        assert report.removed == 2
        (survivor,) = Catalog(root).manifest
        assert survivor.code_version == "v3"  # newest wins
        assert catalog.gc(keep_last=0).removed == 1  # doom everything
        assert len(Catalog(root).manifest) == 0

    def test_keep_days_drops_old_records(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        catalog.manifest.append(ManifestRecord(
            run_id="ancient", spec_hash="ab" * 32, seed=1,
            code_version=code_version(),
            created_at="2020-01-01T00:00:00+00:00"))
        spec = make_scenario()
        catalog.archive(scenario_cache_key(spec), run_one(spec))
        report = catalog.gc(keep_days=30)
        assert report.removed_records == ["ancient"]
        assert report.kept_records == 1

    def test_orphan_sweep_always_runs(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        stray = catalog.results_dir / "stray.npz"
        stray.write_bytes(b"not an artifact")
        report = catalog.gc()
        assert report.removed_artifacts == ["results/stray.npz"]
        assert not stray.exists()

    def test_bench_records_survive_every_policy(self, tmp_path,
                                                monkeypatch):
        catalog = Catalog(tmp_path / "store")
        monkeypatch.setenv("REPRO_CODE_VERSION", "v-old")
        catalog.append_bench("sweep", {"speedup": 10.0})
        monkeypatch.setenv("REPRO_CODE_VERSION", "v-new")
        report = catalog.gc(stale=True, keep_last=0, keep_days=0)
        assert report.removed == 0
        assert len(catalog.bench_records()) == 1


# ---------------------------------------------------------------------------
# Benchmark trajectory records
# ---------------------------------------------------------------------------
class TestBenchTrajectory:
    def test_append_preserves_order(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        catalog.append_bench("sweep", {"speedup": 10.0})
        catalog.append_bench("ensemble", {"speedup": 7.0})
        document = bench_trajectory(catalog)
        assert [r["benchmark"] for r in document["runs"]] == \
            ["sweep", "ensemble"]
        assert document["runs"][0]["speedup"] == 10.0

    def test_legacy_import_happens_exactly_once(self, tmp_path):
        legacy = tmp_path / "BENCH_sweep.json"
        legacy.write_text(json.dumps(
            {"runs": [{"benchmark": "sweep", "speedup": 9.0},
                      {"benchmark": "ensemble", "speedup": 5.0}]}))
        catalog = Catalog(tmp_path / "store")
        assert import_trajectory(catalog, legacy) == 2
        assert import_trajectory(catalog, legacy) == 0  # already seeded
        assert len(catalog.bench_records()) == 2

    def test_import_tolerates_missing_file(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        assert import_trajectory(catalog, tmp_path / "absent.json") == 0

    def test_record_bench_regenerates_the_trajectory(self, tmp_path):
        trajectory = tmp_path / "BENCH_sweep.json"
        trajectory.write_text(json.dumps(
            {"runs": [{"benchmark": "sweep", "speedup": 9.0}]}))
        catalog = Catalog(tmp_path / "store")
        record_bench("ensemble", {"speedup": 6.5}, catalog=catalog,
                     trajectory=trajectory)
        document = json.loads(trajectory.read_text())
        # Legacy history survives the migration; the new sample appends.
        assert [r["benchmark"] for r in document["runs"]] == \
            ["sweep", "ensemble"]
        assert document["runs"][1]["speedup"] == 6.5

    def test_write_trajectory_round_trips(self, tmp_path):
        catalog = Catalog(tmp_path / "store")
        catalog.append_bench("sweep", {"speedup": 3.0})
        out = tmp_path / "out.json"
        document = write_trajectory(catalog, out)
        assert json.loads(out.read_text()) == document

    def test_import_merges_into_a_non_empty_store(self, tmp_path):
        """Regression: a fresh store that records one new sample before
        touching the legacy file must still absorb the legacy history.
        The old all-or-nothing guard no-op'd as soon as *any* bench
        record existed, so a fresh clone's first benchmark run
        regenerated BENCH_sweep.json with only itself in it."""
        legacy = tmp_path / "BENCH_sweep.json"
        legacy.write_text(json.dumps(
            {"runs": [{"benchmark": "sweep", "speedup": 9.0},
                      {"benchmark": "ensemble", "speedup": 5.0}]}))
        catalog = Catalog(tmp_path / "store")
        catalog.append_bench("fleet", {"speedup": 4.5})
        assert import_trajectory(catalog, legacy) == 2
        # Per-record idempotence: nothing re-imports on a second pass.
        assert import_trajectory(catalog, legacy) == 0
        names = [r["benchmark"] for r in bench_trajectory(catalog)["runs"]]
        assert sorted(names) == ["ensemble", "fleet", "sweep"]

    def test_import_keeps_duplicate_samples_distinct(self, tmp_path):
        """Two identical legacy samples are two records (a multiset
        match), and both survive repeated imports without multiplying."""
        legacy = tmp_path / "BENCH_sweep.json"
        legacy.write_text(json.dumps(
            {"runs": [{"benchmark": "sweep", "speedup": 9.0},
                      {"benchmark": "sweep", "speedup": 9.0}]}))
        catalog = Catalog(tmp_path / "store")
        assert import_trajectory(catalog, legacy) == 2
        assert import_trajectory(catalog, legacy) == 0
        assert len(catalog.bench_records()) == 2

    def test_write_trajectory_refuses_an_empty_document(self, tmp_path):
        """require_runs guards CI regeneration: an empty store must not
        silently replace the benchmark history with {"runs": []}."""
        catalog = Catalog(tmp_path / "store")
        out = tmp_path / "out.json"
        with pytest.raises(RuntimeError, match="trajectory is empty"):
            write_trajectory(catalog, out, require_runs=True)
        assert not out.exists()
        # Without the guard the (explicitly requested) empty document
        # still writes — `catalog bench` without -o keeps working.
        assert write_trajectory(catalog, out) == {"runs": []}


# ---------------------------------------------------------------------------
# Parquet-backed catalog (runs only with the optional extra installed)
# ---------------------------------------------------------------------------
@pytest.mark.skipif(not have_pyarrow(), reason="needs pyarrow")
class TestParquetCatalog:
    def test_parquet_store_round_trip(self, tmp_path):
        catalog = Catalog(tmp_path / "store", format="parquet")
        spec = make_scenario()
        truth = run_one(spec)
        record = catalog.archive(scenario_cache_key(spec), truth)
        assert record.artifact.endswith(".parquet")
        assert_rows_equal(catalog.load_rows(record), [truth])

    def test_mixed_format_store_reads_both(self, tmp_path):
        root = tmp_path / "store"
        npz_spec = make_scenario("npz-row", soc=0.3)
        Catalog(root, format="npz").archive(
            scenario_cache_key(npz_spec), run_one(npz_spec))
        parquet_catalog = Catalog(root, format="parquet")
        pq_spec = make_scenario("pq-row", soc=0.6)
        parquet_catalog.archive(scenario_cache_key(pq_spec),
                                run_one(pq_spec))
        for record in parquet_catalog.manifest:
            assert len(parquet_catalog.load_rows(record)) == 1
