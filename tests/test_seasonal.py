"""Tests for the seasonal environment models and the E12 study."""

import pytest

from repro.environment import (
    SeasonalSolarModel,
    SourceType,
    seasonal_outdoor_environment,
)

DAY = 86_400.0


class TestSeasonalSolarModel:
    def test_solstice_parameters(self):
        model = SeasonalSolarModel(summer_day_fraction=0.67,
                                   winter_day_fraction=0.33,
                                   summer_peak=1000.0, winter_peak=500.0)
        winter = model.parameters_at(0.0)
        summer = model.parameters_at(182.6 * DAY)
        assert winter["day_fraction"] == pytest.approx(0.33, abs=0.01)
        assert summer["day_fraction"] == pytest.approx(0.67, abs=0.01)
        assert winter["peak_irradiance"] == pytest.approx(500.0, rel=0.02)
        assert summer["peak_irradiance"] == pytest.approx(1000.0, rel=0.02)

    def test_equinox_is_midway(self):
        model = SeasonalSolarModel()
        equinox = model.parameters_at(91.3 * DAY)
        assert equinox["day_fraction"] == pytest.approx(0.5, abs=0.02)

    def test_annual_cycle_wraps(self):
        model = SeasonalSolarModel()
        assert model.parameters_at(0.0)["day_fraction"] == pytest.approx(
            model.parameters_at(365.25 * DAY)["day_fraction"], abs=1e-6)

    def test_summer_month_outharvests_winter_month(self):
        model = SeasonalSolarModel(seed=4)
        winter = model.trace(14 * DAY, dt=1800.0)
        summer = SeasonalSolarModel(start_day_of_year=182.6,
                                    seed=4).trace(14 * DAY, dt=1800.0)
        assert summer.integral() > 2.5 * winter.integral()

    def test_determinism(self):
        import numpy as np
        a = SeasonalSolarModel(seed=9).trace(3 * DAY, dt=1800.0)
        b = SeasonalSolarModel(seed=9).trace(3 * DAY, dt=1800.0)
        assert np.array_equal(a.values, b.values)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalSolarModel(winter_day_fraction=0.7,
                               summer_day_fraction=0.5)
        with pytest.raises(ValueError):
            SeasonalSolarModel(winter_peak=1200.0, summer_peak=1000.0)
        with pytest.raises(ValueError):
            SeasonalSolarModel().trace(-5.0)


class TestSeasonalEnvironment:
    def test_channels(self):
        env = seasonal_outdoor_environment(duration=7 * DAY, dt=1800.0)
        for source in (SourceType.LIGHT, SourceType.WIND,
                       SourceType.THERMAL):
            assert env.has(source)

    def test_winter_wind_exceeds_summer_wind(self):
        winter = seasonal_outdoor_environment(
            duration=14 * DAY, dt=1800.0, start_day_of_year=0.0, seed=4)
        summer = seasonal_outdoor_environment(
            duration=14 * DAY, dt=1800.0, start_day_of_year=182.6, seed=4)
        assert winter.trace(SourceType.WIND).mean() > \
            summer.trace(SourceType.WIND).mean()


class TestSeasonalStudy:
    def test_short_run_shapes(self):
        from repro.analysis.experiments import run_seasonal_study
        result = run_seasonal_study(days=7.0, dt=1800.0, seed=95)
        assert all(r.feasible for r in result.requirements)
        assert result.winter_penalty("pv+wind") <= \
            result.winter_penalty("pv-only") + 0.3
        assert "winter penalty" in result.report()
