"""Tests for taxonomy, managers, trade-off scores, smart-harvester scheme."""

import pytest

from repro.conditioning import InputConditioner, OracleMPPT, OutputConditioner
from repro.core import (
    ArchitectureDescriptor,
    CommunicationStyle,
    ControlCapability,
    EnergyNeutralManager,
    HardwareFlexibility,
    HarvestingChannel,
    IntelligenceLocation,
    MonitoringCapability,
    MultiSourceSystem,
    SmartHarvesterCoordinator,
    SmartModule,
    StaticManager,
    StorageBank,
    ThresholdManager,
    score_system,
    smart_channel,
)
from repro.environment import AmbientSample, SourceType
from repro.harvesters import PhotovoltaicCell
from repro.load import WirelessSensorNode
from repro.storage import IdealStorage, Supercapacitor


def _sample(light=500.0):
    return AmbientSample({SourceType.LIGHT: light})


def _system(manager, monitoring=MonitoringCapability.FULL, stores=None):
    return MultiSourceSystem(
        architecture=ArchitectureDescriptor(name="rig", monitoring=monitoring),
        channels=[HarvestingChannel(PhotovoltaicCell(area_cm2=30.0),
                                    InputConditioner(tracker=OracleMPPT()))],
        bank=StorageBank(stores or [Supercapacitor(capacitance_f=25.0,
                                                   initial_soc=0.5)]),
        output=OutputConditioner(output_voltage=3.0, min_input_voltage=0.8),
        node=WirelessSensorNode(measurement_interval_s=60.0),
        manager=manager,
    )


class TestTaxonomy:
    def test_monitoring_capability_is_ordered(self):
        assert MonitoringCapability.NONE < MonitoringCapability.STORE_VOLTAGE
        assert MonitoringCapability.FULL >= MonitoringCapability.DEVICE_ACTIVITY
        assert MonitoringCapability.STORE_VOLTAGE <= \
            MonitoringCapability.STORE_VOLTAGE

    def test_flexibility_is_ordered(self):
        assert HardwareFlexibility.FIXED < \
            HardwareFlexibility.COMPLETELY_FLEXIBLE

    def test_quiescent_display(self):
        arch = ArchitectureDescriptor(name="x", quiescent_current_a=5e-6)
        assert arch.quiescent_display == "5 uA"
        arch = ArchitectureDescriptor(name="x", quiescent_current_a=32e-6,
                                      quiescent_is_upper_bound=True)
        assert arch.quiescent_display == "< 32 uA"

    def test_digital_interface_requires_power_unit_intelligence(self):
        a_like = ArchitectureDescriptor(
            name="a", communication=CommunicationStyle.DIGITAL,
            intelligence=IntelligenceLocation.POWER_UNIT)
        b_like = ArchitectureDescriptor(
            name="b", communication=CommunicationStyle.DIGITAL,
            intelligence=IntelligenceLocation.EMBEDDED_DEVICE)
        assert a_like.has_digital_interface
        assert not b_like.has_digital_interface

    def test_descriptor_validation(self):
        with pytest.raises(ValueError):
            ArchitectureDescriptor(name="")
        with pytest.raises(ValueError):
            ArchitectureDescriptor(name="x", quiescent_current_a=-1.0)


class TestManagers:
    def test_static_manager_changes_nothing(self):
        system = _system(StaticManager())
        interval = system.node.measurement_interval_s
        for _ in range(5):
            system.step(_sample(), 60.0)
        assert system.node.measurement_interval_s == interval

    def test_threshold_manager_throttles_when_poor(self):
        system = _system(ThresholdManager(),
                         stores=[Supercapacitor(capacitance_f=25.0,
                                                initial_soc=0.05)])
        system.step(_sample(light=0.0), 60.0)
        assert system.node.measurement_interval_s >= 600.0

    def test_threshold_manager_enables_backup_when_poor(self):
        from repro.storage import HydrogenFuelCell
        stores = [Supercapacitor(capacitance_f=25.0, initial_soc=0.04),
                  HydrogenFuelCell()]
        system = _system(ThresholdManager(backup_on_soc=0.1,
                                          backup_off_soc=0.3), stores=stores)
        system.bank.backup_enabled = False
        system.step(_sample(light=0.0), 60.0)
        assert system.bank.backup_enabled

    def test_threshold_manager_disables_backup_when_rich(self):
        from repro.storage import HydrogenFuelCell
        stores = [Supercapacitor(capacitance_f=25.0, initial_soc=0.9),
                  HydrogenFuelCell()]
        system = _system(ThresholdManager(backup_on_soc=0.1,
                                          backup_off_soc=0.3), stores=stores)
        system.step(_sample(light=0.0), 60.0)
        assert not system.bank.backup_enabled

    def test_control_period_respected(self):
        manager = ThresholdManager(control_period=600.0)
        system = _system(manager)
        for _ in range(5):
            system.step(_sample(), 60.0)
        assert manager.control_passes == 1  # only the first step triggered

    def test_manager_execution_cost_charged(self):
        manager = ThresholdManager(control_period=60.0,
                                   wakeup_energy_j=1e-3)
        system = _system(manager)
        system.step(_sample(light=0.0), 60.0)
        assert manager.energy_spent_j == pytest.approx(1e-3)

    def test_energy_neutral_manager_tracks_harvest(self):
        manager = EnergyNeutralManager()
        system = _system(manager)
        for _ in range(30):
            system.step(_sample(light=500.0), 60.0)
        assert manager.controller.harvest_estimate_w is not None
        assert manager.controller.harvest_estimate_w > 0.0

    def test_blind_platform_defeats_smart_manager(self):
        system = _system(ThresholdManager(),
                         monitoring=MonitoringCapability.NONE)
        interval = system.node.measurement_interval_s
        system.bank.stores[0].energy_j = 0.0
        system.step(_sample(light=0.0), 60.0)
        # No telemetry: the manager cannot throttle (survey Sec. II.3).
        assert system.node.measurement_interval_s == interval

    def test_manager_validation(self):
        with pytest.raises(ValueError):
            ThresholdManager(backup_on_soc=0.5, backup_off_soc=0.3)
        with pytest.raises(ValueError):
            EnergyNeutralManager(control_period=0.0)


class TestTradeoffScores:
    def test_scores_in_unit_interval(self):
        from repro.systems import all_systems
        for system in all_systems().values():
            scores = score_system(system)
            for value in (scores.flexibility, scores.energy_awareness,
                          scores.complexity, scores.quiescent_burden):
                assert 0.0 <= value <= 1.0

    def test_system_b_most_flexible(self):
        from repro.systems import all_systems
        systems = all_systems()
        scores = {k: score_system(s) for k, s in systems.items()}
        assert scores["B"].flexibility == max(
            s.flexibility for s in scores.values())

    def test_system_d_highest_quiescent_burden(self):
        from repro.systems import all_systems
        scores = {k: score_system(s) for k, s in all_systems().items()}
        assert scores["D"].quiescent_burden == max(
            s.quiescent_burden for s in scores.values())

    def test_awareness_requires_monitoring(self):
        from repro.systems import all_systems
        scores = {k: score_system(s) for k, s in all_systems().items()}
        # C, E, G have no monitoring: zero awareness.
        for letter in ("C", "E", "G"):
            assert scores[letter].energy_awareness == 0.0
        for letter in ("A", "B"):
            assert scores[letter].energy_awareness > 0.5


class TestSmartHarvester:
    def test_module_synthesizes_datasheet(self):
        module = SmartModule(PhotovoltaicCell(name="pv-s"))
        assert module.datasheet is not None
        assert module.datasheet.model == "pv-s"

    def test_storage_module_self_reports_state(self):
        store = Supercapacitor(capacitance_f=10.0, initial_soc=0.5)
        module = SmartModule(store)
        report = module.self_report()
        assert report["kind"] == "storage"
        assert report["soc"] == pytest.approx(0.5)

    def test_smart_channel_requires_harvester(self):
        with pytest.raises(TypeError):
            smart_channel(SmartModule(Supercapacitor()))

    def test_smart_channel_harvests(self):
        module = SmartModule(PhotovoltaicCell(area_cm2=20.0))
        channel = smart_channel(module)
        total = 0.0
        for _ in range(60):
            total += channel.step(_sample(light=500.0), 1.0, 3.3).raw_power
        assert total > 0.0

    def test_coordinator_refreshes_beliefs_after_swap(self):
        store = Supercapacitor(capacitance_f=10.0, initial_soc=0.5)
        store_module = SmartModule(store)
        pv_module = SmartModule(PhotovoltaicCell(area_cm2=20.0))
        coordinator = SmartHarvesterCoordinator(
            [pv_module, store_module], control_period=60.0)
        system = MultiSourceSystem(
            architecture=ArchitectureDescriptor(
                name="smart", monitoring=MonitoringCapability.FULL,
                auto_recognition=True,
                intelligence=IntelligenceLocation.ENERGY_DEVICES),
            channels=[smart_channel(pv_module)],
            bank=StorageBank([store]),
            output=OutputConditioner(output_voltage=3.0,
                                     min_input_voltage=0.8),
            node=WirelessSensorNode(),
            manager=coordinator,
        )
        replacement = Supercapacitor(capacitance_f=40.0, initial_soc=0.5)
        SmartModule(replacement)  # self-describing replacement
        system.bank.swap(0, replacement, recognized=False)  # raw swap
        system.step(_sample(), 60.0)  # coordinator pass refreshes beliefs
        assert system.bank.beliefs[0].capacity_j == pytest.approx(
            replacement.capacity_j)

    def test_coordinator_poll_cost_charged(self):
        store = Supercapacitor(capacitance_f=10.0, initial_soc=0.5)
        modules = [SmartModule(PhotovoltaicCell()), SmartModule(store)]
        coordinator = SmartHarvesterCoordinator(modules, poll_cost_j=1e-4)
        system = MultiSourceSystem(
            architecture=ArchitectureDescriptor(
                name="smart", monitoring=MonitoringCapability.FULL),
            channels=[smart_channel(modules[0])],
            bank=StorageBank([store]),
            output=OutputConditioner(output_voltage=3.0,
                                     min_input_voltage=0.8),
            node=WirelessSensorNode(),
            manager=coordinator,
        )
        system.step(_sample(), 60.0)
        assert coordinator.polls == 2
        assert coordinator.energy_spent_j >= 2e-4

    def test_module_rejects_non_devices(self):
        with pytest.raises(TypeError):
            SmartModule("toaster")
