"""Unit and property tests for the storage models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    AABatteryPack,
    ChemistryBattery,
    HydrogenFuelCell,
    IdealStorage,
    LiIonBattery,
    LiPolymerBattery,
    LithiumIonCapacitor,
    LithiumPrimaryCell,
    NiMHBattery,
    Supercapacitor,
    ThinFilmBattery,
)


class TestIdealStorage:
    def test_roundtrip_lossless(self):
        store = IdealStorage(capacity_j=100.0, initial_soc=0.5)
        accepted = store.charge(1.0, 10.0)
        assert accepted == pytest.approx(1.0)
        assert store.energy_j == pytest.approx(60.0)
        delivered = store.discharge(1.0, 10.0)
        assert delivered == pytest.approx(1.0)
        assert store.energy_j == pytest.approx(50.0)

    def test_charge_clips_at_capacity(self):
        store = IdealStorage(capacity_j=10.0, initial_soc=0.9)
        accepted = store.charge(1.0, 100.0)
        assert accepted == pytest.approx(0.01)
        assert store.is_full()

    def test_discharge_clips_at_empty(self):
        store = IdealStorage(capacity_j=10.0, initial_soc=0.1)
        delivered = store.discharge(1.0, 100.0)
        assert delivered == pytest.approx(0.01)
        assert store.is_empty()

    def test_zero_power_noop(self):
        store = IdealStorage()
        assert store.charge(0.0, 1.0) == 0.0
        assert store.discharge(0.0, 1.0) == 0.0

    def test_invalid_arguments(self):
        store = IdealStorage()
        with pytest.raises(ValueError):
            store.charge(-1.0, 1.0)
        with pytest.raises(ValueError):
            store.discharge(1.0, 0.0)
        with pytest.raises(ValueError):
            IdealStorage(capacity_j=-5.0)
        with pytest.raises(ValueError):
            IdealStorage(initial_soc=1.5)

    def test_no_self_discharge(self):
        store = IdealStorage(capacity_j=100.0, initial_soc=1.0)
        assert store.step_idle(86_400.0) == 0.0
        assert store.energy_j == 100.0

    @settings(max_examples=50)
    @given(power=st.floats(min_value=0.0, max_value=10.0),
           dt=st.floats(min_value=0.1, max_value=1000.0))
    def test_energy_conservation(self, power, dt):
        store = IdealStorage(capacity_j=1e6, initial_soc=0.5)
        before = store.energy_j
        accepted = store.charge(power, dt)
        assert store.energy_j == pytest.approx(before + accepted * dt)
        mid = store.energy_j
        delivered = store.discharge(power, dt)
        assert store.energy_j == pytest.approx(mid - delivered * dt)


class TestSupercapacitor:
    def test_capacity_formula(self):
        sc = Supercapacitor(capacitance_f=10.0, rated_voltage=5.0,
                            min_voltage=0.5)
        assert sc.capacity_j == pytest.approx(0.5 * 10 * (25 - 0.25))

    def test_voltage_rises_with_charge(self):
        sc = Supercapacitor(capacitance_f=10.0, initial_soc=0.2)
        v0 = sc.voltage()
        sc.charge(1.0, 60.0)
        assert sc.voltage() > v0

    def test_terminal_voltage_clamped_at_rated(self):
        sc = Supercapacitor(capacitance_f=1.0, rated_voltage=5.0,
                            initial_soc=0.99)
        sc.charge(10.0, 3600.0)
        assert sc.voltage() <= 5.0 + 1e-9

    def test_redistribution_sags_terminal_voltage(self):
        # Burst-charge the fast branch, then watch it sag into the bulk —
        # the signature behaviour of ref. [9].
        sc = Supercapacitor(capacitance_f=25.0, fast_fraction=0.5,
                            redistribution_tau=600.0, initial_soc=0.2)
        sc.charge(5.0, 60.0)
        v_after_burst = sc.voltage()
        sc.step_idle(600.0)
        assert sc.voltage() < v_after_burst
        assert sc.v_slow > 0.0

    def test_leakage_drains_idle_cap(self):
        sc = Supercapacitor(capacitance_f=25.0, leakage_resistance=10_000.0,
                            initial_soc=0.8)
        e0 = sc.energy_j
        lost = sc.step_idle(6 * 3600.0)
        assert lost > 0.0
        assert sc.energy_j < e0

    def test_redistribution_conserves_charge(self):
        sc = Supercapacitor(capacitance_f=20.0, fast_fraction=0.5,
                            leakage_resistance=1e12, initial_soc=0.5)
        sc.charge(2.0, 30.0)
        q_before = sc.c_fast * sc.v_fast + sc.c_slow * sc.v_slow
        sc.step_idle(3600.0)
        q_after = sc.c_fast * sc.v_fast + sc.c_slow * sc.v_slow
        assert q_after == pytest.approx(q_before, rel=1e-6)

    def test_discharge_stops_at_floor(self):
        sc = Supercapacitor(capacitance_f=5.0, min_voltage=0.5,
                            initial_soc=0.05)
        sc.discharge(100.0, 3600.0)
        assert sc.voltage() >= 0.5 - 1e-9

    def test_leakage_power_reported(self):
        sc = Supercapacitor(initial_soc=0.5)
        assert sc.leakage_power() == pytest.approx(
            sc.v_fast ** 2 / sc.leakage_resistance)

    def test_validation(self):
        with pytest.raises(ValueError):
            Supercapacitor(capacitance_f=0.0)
        with pytest.raises(ValueError):
            Supercapacitor(fast_fraction=1.5)
        with pytest.raises(ValueError):
            Supercapacitor(min_voltage=6.0, rated_voltage=5.0)


class TestChemistryBatteries:
    def test_capacity_conversion(self):
        li = LiIonBattery(capacity_mah=1000.0)
        assert li.capacity_j == pytest.approx(1000e-3 * 3600 * 3.7)

    def test_ocv_curve_monotone(self):
        for battery in (LiIonBattery(), LiPolymerBattery(), NiMHBattery(),
                        AABatteryPack(), ThinFilmBattery()):
            voltages = []
            for soc in (0.0, 0.25, 0.5, 0.75, 1.0):
                battery.energy_j = soc * battery.capacity_j
                voltages.append(battery.voltage())
            assert all(a <= b + 1e-12 for a, b in
                       zip(voltages, voltages[1:])), type(battery).__name__

    def test_c_rate_limits_enforced(self):
        li = LiIonBattery(capacity_mah=1000.0, initial_soc=0.5)
        # 0.5 C charge limit.
        max_w = 0.5 * li.capacity_j / 3600.0
        accepted = li.charge(100.0, 1.0)
        assert accepted == pytest.approx(max_w)

    def test_charge_efficiency_loss(self):
        li = LiIonBattery(capacity_mah=1000.0, initial_soc=0.5)
        e0 = li.energy_j
        accepted = li.charge(1.0, 100.0)
        stored = li.energy_j - e0
        assert stored == pytest.approx(accepted * 100.0 * 0.97)

    def test_discharge_efficiency_loss(self):
        li = LiIonBattery(capacity_mah=1000.0, initial_soc=0.5)
        e0 = li.energy_j
        delivered = li.discharge(1.0, 100.0)
        drawn = e0 - li.energy_j
        assert drawn == pytest.approx(delivered * 100.0 / 0.97)

    def test_nimh_self_discharges_faster_than_liion(self):
        nimh, li = NiMHBattery(initial_soc=1.0), LiIonBattery(initial_soc=1.0)
        nimh_loss = nimh.step_idle(86_400.0) / nimh.capacity_j
        li_loss = li.step_idle(86_400.0) / li.capacity_j
        assert nimh_loss > 5 * li_loss

    def test_aa_pack_voltage_scales_with_cells(self):
        one = AABatteryPack(cells=1, initial_soc=0.5)
        two = AABatteryPack(cells=2, initial_soc=0.5)
        assert two.voltage() == pytest.approx(2 * one.voltage())

    def test_primary_cell_refuses_charge(self):
        cell = LithiumPrimaryCell()
        assert not cell.rechargeable
        assert cell.charge(1.0, 100.0) == 0.0
        assert cell.is_backup

    def test_primary_cell_discharges(self):
        cell = LithiumPrimaryCell(capacity_mah=100.0)
        assert cell.discharge(0.01, 60.0) == pytest.approx(0.01)

    def test_thin_film_tiny_capacity(self):
        tf = ThinFilmBattery(capacity_uah=100.0)
        assert tf.capacity_j < 2.0  # ~1.4 J: genuinely tiny

    def test_equivalent_cycles_counter(self):
        li = LiIonBattery(capacity_mah=10.0, initial_soc=1.0)
        li.discharge(li.max_discharge_w, 3600.0)
        assert li.equivalent_cycles > 0.5

    def test_ocv_curve_validation(self):
        with pytest.raises(ValueError, match="ascend"):
            ChemistryBattery(100.0, 3.7, ocv_curve=((0.5, 3.7), (0.2, 3.5)))
        with pytest.raises(ValueError, match="two points"):
            ChemistryBattery(100.0, 3.7, ocv_curve=((0.5, 3.7),))


class TestFuelCell:
    def test_discharge_only(self):
        fc = HydrogenFuelCell()
        assert not fc.rechargeable
        assert fc.is_backup
        assert fc.charge(1.0, 60.0) == 0.0

    def test_startup_ramp(self):
        fc = HydrogenFuelCell(max_power_w=0.5, startup_time=30.0)
        first = fc.discharge(0.5, 1.0)
        assert first < 0.5  # cold start delivers less than rated
        # After enough running time the stack is warm.
        for _ in range(40):
            fc.discharge(0.5, 1.0)
        assert fc.is_warm
        assert fc.discharge(0.5, 1.0) == pytest.approx(0.5)

    def test_cooldown_resets_warmup(self):
        fc = HydrogenFuelCell(startup_time=30.0)
        for _ in range(40):
            fc.discharge(0.3, 1.0)
        assert fc.is_warm
        for _ in range(100):
            fc.discharge(0.0, 1.0)
        assert not fc.is_warm

    def test_start_counter(self):
        fc = HydrogenFuelCell(startup_time=10.0)
        fc.discharge(0.1, 1.0)
        assert fc.starts == 1
        fc.discharge(0.1, 1.0)
        assert fc.starts == 1  # still the same run

    def test_finite_fuel(self):
        fc = HydrogenFuelCell(fuel_energy_j=10.0, max_power_w=1.0,
                              startup_time=0.0)
        fc.discharge(1.0, 9.0)
        fc.discharge(1.0, 9.0)
        assert fc.energy_j == pytest.approx(0.0, abs=1e-9)
        assert fc.voltage() == 0.0

    def test_power_cap(self):
        fc = HydrogenFuelCell(max_power_w=0.5, startup_time=0.0)
        assert fc.discharge(2.0, 1.0) == pytest.approx(0.5)


class TestLithiumIonCapacitor:
    def test_voltage_window(self):
        lic = LithiumIonCapacitor(max_voltage=3.8, min_voltage=2.2)
        lic.energy_j = 0.0
        assert lic.voltage() == pytest.approx(2.2)
        lic.energy_j = lic.capacity_j
        assert lic.voltage() == pytest.approx(3.8, rel=1e-6)

    def test_self_discharge_much_slower_than_supercap(self):
        lic = LithiumIonCapacitor(initial_soc=0.8)
        sc = Supercapacitor(capacitance_f=40.0, initial_soc=0.8)
        lic_loss = lic.step_idle(86_400.0) / lic.capacity_j
        sc_loss = sc.step_idle(86_400.0) / sc.capacity_j
        assert lic_loss < 0.2 * sc_loss

    def test_never_below_floor(self):
        lic = LithiumIonCapacitor(initial_soc=0.01)
        lic.step_idle(365 * 86_400.0)
        assert lic.voltage() >= lic.min_voltage - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            LithiumIonCapacitor(min_voltage=4.0, max_voltage=3.8)


@settings(max_examples=30)
@given(
    initial=st.floats(min_value=0.0, max_value=1.0),
    power=st.floats(min_value=0.0, max_value=5.0),
    dt=st.floats(min_value=1.0, max_value=600.0),
)
def test_soc_always_in_unit_interval(initial, power, dt):
    for store in (IdealStorage(capacity_j=50.0, initial_soc=initial),
                  Supercapacitor(capacitance_f=10.0, initial_soc=initial),
                  LiIonBattery(capacity_mah=50.0, initial_soc=initial)):
        store.charge(power, dt)
        assert -1e-9 <= store.soc <= 1.0 + 1e-9
        store.discharge(power, dt)
        assert -1e-9 <= store.soc <= 1.0 + 1e-9
        store.step_idle(dt)
        assert -1e-9 <= store.soc <= 1.0 + 1e-9


@settings(max_examples=30)
@given(power=st.floats(min_value=0.001, max_value=2.0),
       dt=st.floats(min_value=1.0, max_value=300.0))
def test_battery_charge_discharge_conservation(power, dt):
    li = LiIonBattery(capacity_mah=500.0, initial_soc=0.5)
    e0 = li.energy_j
    accepted = li.charge(power, dt)
    delivered = li.discharge(power, dt)
    # Stored energy never exceeds initial + accepted input (losses only
    # remove energy), and never goes below what delivery accounts for.
    assert li.energy_j <= e0 + accepted * dt + 1e-9
    assert li.energy_j >= e0 + (accepted * li.charge_efficiency -
                                delivered / li.discharge_efficiency) * dt - 1e-9
    # One-way efficiencies are honoured exactly.
    assert accepted <= power + 1e-12
    assert delivered <= power + 1e-12
