"""Tests for the multi-scenario sweep runner."""

from functools import partial

import pytest

from repro.analysis.experiments.common import make_reference_system
from repro.environment import Environment, SourceType, Trace
from repro.environment.composite import outdoor_environment
from repro.harvesters import PhotovoltaicCell
from repro.simulation import (
    ScenarioSpec,
    SweepRunner,
    simulate,
    swap_storage_event,
)
from repro.storage import Supercapacitor

DAY = 86_400.0


def build_pv_system(area_cm2: float):
    return make_reference_system(
        [PhotovoltaicCell(area_cm2=area_cm2, efficiency=0.16, name="pv")],
        capacitance_f=50.0, measurement_interval_s=120.0)


def collect_coverage(result) -> dict:
    return {"coverage": result.metrics.harvest_coverage}


def make_events():
    return [swap_storage_event(0.5 * DAY, 0,
                               Supercapacitor(capacitance_f=20.0))]


def _specs(n=8, **overrides):
    areas = [10.0 + 10.0 * k for k in range(n)]
    kwargs = dict(
        environment=partial(outdoor_environment, duration=DAY, dt=300.0),
        duration=DAY, seed=3,
    )
    kwargs.update(overrides)
    return [
        ScenarioSpec(name=f"area-{area:g}",
                     system=partial(build_pv_system, area),
                     params={"area_cm2": area}, **kwargs)
        for area in areas
    ]


class TestSweepRunner:
    def test_parallel_identical_to_sequential_simulate(self):
        """Acceptance: a parallel sweep over >= 8 scenarios produces
        metrics identical to sequential simulate() calls."""
        specs = _specs(8)
        sweep = SweepRunner(processes=4).run(specs)
        assert len(sweep) == 8
        for spec, scenario in zip(specs, sweep):
            direct = simulate(
                build_pv_system(spec.params["area_cm2"]),
                outdoor_environment(duration=DAY, dt=300.0, seed=3),
                duration=DAY)
            assert scenario.metrics == direct.metrics, spec.name
            assert scenario.n_steps == len(direct.recorder)

    def test_sequential_runner_matches_parallel(self):
        specs = _specs(4)
        parallel = SweepRunner(processes=2).run(specs)
        sequential = SweepRunner(processes=1).run(specs)
        for p, s in zip(parallel, sequential):
            assert p.metrics == s.metrics
            assert p.params == s.params

    def test_closure_specs_fall_back_in_process(self):
        """Non-picklable factories (closures) still run — in-process."""
        env = outdoor_environment(duration=DAY, dt=600.0, seed=9)
        specs = [
            ScenarioSpec(name=f"c-{k}",
                         system=lambda k=k: build_pv_system(20.0 + k),
                         environment=lambda: env)
            for k in range(3)
        ]
        sweep = SweepRunner(processes=4).run(specs)
        assert len(sweep) == 3
        assert all(r.metrics.duration_s == DAY for r in sweep)

    def test_events_and_collect_hooks(self):
        specs = _specs(2, events=make_events, collect=collect_coverage)
        sweep = SweepRunner(processes=2).run(specs)
        for scenario in sweep:
            assert 0.0 < scenario.extras["coverage"] <= 1.0

    def test_duplicate_names_rejected(self):
        specs = _specs(2)
        specs[1].name = specs[0].name
        with pytest.raises(ValueError, match="unique"):
            SweepRunner(processes=1).run(specs)

    def test_environment_instance_accepted(self):
        env = Environment(
            {SourceType.LIGHT: Trace.constant(400.0, 3600.0, dt=60.0)})
        spec = ScenarioSpec(name="flat", system=partial(build_pv_system, 30.0),
                            environment=env)
        sweep = SweepRunner(processes=1).run([spec])
        assert sweep["flat"].metrics.harvest_coverage == 1.0

    def test_bad_environment_rejected(self):
        spec = ScenarioSpec(name="bad", system=partial(build_pv_system, 30.0),
                            environment="not-an-environment")
        with pytest.raises(TypeError, match="environment"):
            SweepRunner(processes=1).run([spec])


class TestSweepResult:
    def test_rows_are_tidy(self):
        sweep = SweepRunner(processes=1).run(_specs(2,
                                                    collect=collect_coverage))
        rows = sweep.rows()
        assert len(rows) == 2
        for row in rows:
            assert {"name", "area_cm2", "uptime_fraction",
                    "harvested_delivered_j", "coverage"} <= set(row)

    def test_indexing_and_column(self):
        sweep = SweepRunner(processes=1).run(_specs(3))
        assert sweep[0].name == "area-10"
        assert sweep["area-20"].params["area_cm2"] == 20.0
        areas = sweep.column("area_cm2")
        assert areas == [10.0, 20.0, 30.0]

    def test_report_renders(self):
        sweep = SweepRunner(processes=1).run(_specs(2))
        text = sweep.report(title="pv sweep")
        assert "pv sweep" in text
        assert "area-10" in text
