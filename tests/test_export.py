"""Tests for the JSON export helpers."""

import json
import math

import pytest

from repro.analysis import dump_json, dumps_json, to_jsonable
from repro.analysis.experiments import run_quiescent_study
from repro.core import classify
from repro.systems import build_system


class TestToJsonable:
    def test_primitives_pass_through(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_infinities_stringified(self):
        assert to_jsonable(math.inf) == "inf"
        assert to_jsonable(-math.inf) == "-inf"
        assert to_jsonable(math.nan) == "nan"

    def test_nan_emits_strictly_valid_json(self):
        """NaN anywhere in a result tree must serialise to the string
        "nan", never to bare ``NaN`` (which standard JSON parsers
        reject). ``parse_constant`` trips if a bare constant sneaks
        through."""
        payload = {"metrics": [1.0, math.nan, math.inf, -math.inf],
                   "nested": {"v": math.nan}}
        text = dumps_json(payload)
        decoded = json.loads(
            text, parse_constant=lambda name: pytest.fail(
                f"invalid JSON constant emitted: {name}"))
        assert decoded["metrics"] == [1.0, "nan", "inf", "-inf"]
        assert decoded["nested"]["v"] == "nan"

    def test_numpy_nan_emits_strictly_valid_json(self):
        import numpy as np
        text = dumps_json(np.array([np.nan, 2.0]))
        assert json.loads(text) == ["nan", 2.0]

    def test_enums_become_values(self):
        from repro.environment import SourceType
        assert to_jsonable(SourceType.LIGHT) == "light"

    def test_tuples_become_lists(self):
        assert to_jsonable((1, 2)) == [1, 2]

    def test_numpy_arrays_supported(self):
        import numpy as np
        assert to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]
        assert to_jsonable(np.float64(2.5)) == 2.5

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_numpy_scalars_collapse_to_native_types(self):
        """Regression: numpy scalars leaking out of sweep-row extras or
        metric summaries crashed ``dumps_json(allow_nan=False)`` (raw
        np.float64 NaN bypasses the math.isnan stringification when the
        subclass isn't stripped) and made spec hashes type-dependent."""
        import numpy as np
        for value, expected in ((np.float64(2.5), 2.5),
                                (np.int64(7), 7),
                                (np.bool_(True), True)):
            converted = to_jsonable(value)
            assert converted == expected
            assert type(converted) is type(expected)
        # A NaN hidden inside a numpy scalar must still stringify.
        assert to_jsonable(np.float64("nan")) == "nan"
        assert to_jsonable(np.float64("inf")) == "inf"
        # End to end: a row dict polluted with numpy scalars serialises
        # under allow_nan=False.
        row = {"uptime": np.float64(0.5), "count": np.int64(3),
               "bad": np.float64("nan")}
        assert json.loads(dumps_json(row)) == \
            {"uptime": 0.5, "count": 3, "bad": "nan"}

    def test_int_and_float_subclasses_collapse(self):
        import enum

        class Level(enum.IntEnum):
            HIGH = 2

        converted = to_jsonable(Level.HIGH)
        assert converted == 2 and type(converted) is int
        converted = to_jsonable({"v": Level.HIGH})
        assert type(converted["v"]) is int


class TestResultExport:
    def test_experiment_result_roundtrips(self):
        result = run_quiescent_study()
        payload = json.loads(dumps_json(result))
        assert len(payload["platforms"]) == 7
        letters = {p["letter"] for p in payload["platforms"]}
        assert letters == set("ABCDEFG")

    def test_table_row_exports(self):
        row = classify(build_system("A"), device="A")
        payload = json.loads(dumps_json(row))
        assert payload["device"] == "A"
        assert payload["harvesters"] == ["Light", "Wind"]

    def test_dump_to_file(self, tmp_path):
        result = run_quiescent_study()
        path = tmp_path / "e6.json"
        dump_json(result, path)
        assert json.loads(path.read_text())["harvest_levels_w"]
