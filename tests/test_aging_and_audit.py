"""Tests for storage aging and the energy-audit analysis."""

import pytest

from repro.analysis import audit_run
from repro.environment import Environment, SourceType, Trace
from repro.harvesters import PhotovoltaicCell
from repro.simulation import simulate
from repro.storage import (
    AgingStorage,
    IdealStorage,
    LiIonBattery,
    NiMHBattery,
    Supercapacitor,
    ThinFilmBattery,
)

DAY = 86_400.0


class TestAgingStorage:
    def test_starts_at_full_health(self):
        aged = AgingStorage(LiIonBattery(capacity_mah=100.0))
        assert aged.health == pytest.approx(1.0)
        assert not aged.end_of_life

    def test_cycling_fades_capacity(self):
        inner = LiIonBattery(capacity_mah=10.0, initial_soc=0.5)
        aged = AgingStorage(inner, cycle_life=100,
                            calendar_fade_per_year=0.0)
        rated = aged.rated_capacity_j
        # Push ~20 full-equivalent cycles through it.
        for _ in range(40):
            aged.charge(aged.max_charge_w, 3600.0)
            aged.discharge(aged.max_discharge_w, 3600.0)
        assert aged.equivalent_cycles > 5.0
        assert aged.capacity_j < rated

    def test_calibrated_to_eol_at_cycle_life(self):
        inner = IdealStorage(capacity_j=100.0, initial_soc=0.5)
        aged = AgingStorage(inner, cycle_life=10, end_of_life_fraction=0.8,
                            calendar_fade_per_year=0.0)
        # Force exactly 10 equivalent cycles of throughput.
        aged._cycled_j = 10 * aged.rated_capacity_j
        aged._apply_fade()
        assert aged.health == pytest.approx(0.8)
        assert aged.end_of_life

    def test_calendar_fade(self):
        aged = AgingStorage(IdealStorage(capacity_j=100.0), cycle_life=1000,
                            calendar_fade_per_year=0.05)
        aged.step_idle(365.25 * DAY)
        assert aged.health == pytest.approx(0.95, rel=1e-3)

    def test_chemistry_cycle_life_used_by_default(self):
        aged = AgingStorage(NiMHBattery())
        assert aged.cycle_life == 800
        aged = AgingStorage(ThinFilmBattery())
        assert aged.cycle_life == 5000

    def test_supercap_outlives_battery_under_same_cycling(self):
        sc = AgingStorage(Supercapacitor(capacitance_f=10.0,
                                         initial_soc=0.5),
                          cycle_life=500_000, calendar_fade_per_year=0.0)
        li = AgingStorage(LiIonBattery(capacity_mah=10.0, initial_soc=0.5),
                          calendar_fade_per_year=0.0)
        for _ in range(30):
            for store in (sc, li):
                store.charge(0.05, 3600.0)
                store.discharge(0.05, 3600.0)
        assert sc.health > li.health

    def test_delegates_device_model(self):
        inner = Supercapacitor(capacitance_f=10.0, initial_soc=0.5)
        aged = AgingStorage(inner, cycle_life=1000)
        assert aged.capacitance_f == 10.0  # forwarded attribute
        assert aged.voltage() == inner.voltage()

    def test_stored_energy_clamped_to_faded_capacity(self):
        inner = IdealStorage(capacity_j=100.0, initial_soc=1.0)
        aged = AgingStorage(inner, cycle_life=10,
                            end_of_life_fraction=0.5,
                            calendar_fade_per_year=0.0)
        aged._cycled_j = 10 * aged.rated_capacity_j
        aged._apply_fade()
        assert aged.energy_j <= aged.capacity_j

    def test_validation(self):
        with pytest.raises(TypeError):
            AgingStorage("battery")
        with pytest.raises(ValueError):
            AgingStorage(IdealStorage(), cycle_life=0)
        with pytest.raises(ValueError):
            AgingStorage(IdealStorage(), cycle_life=10,
                         end_of_life_fraction=1.5)


class TestEnergyAudit:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.analysis.experiments import make_reference_system
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=30.0, efficiency=0.16)],
            capacitance_f=50.0, initial_soc=0.3,
            measurement_interval_s=30.0)
        env = Environment(
            {SourceType.LIGHT: Trace.constant(500.0, 6 * 3600.0, dt=60.0)})
        return simulate(system, env)

    def test_waterfall_components_nonnegative(self, run):
        audit = audit_run(run.recorder)
        assert audit.mpp_available > 0.0
        assert audit.tracking_loss >= 0.0
        assert audit.conversion_loss >= 0.0
        assert audit.storage_rejected >= 0.0
        assert audit.quiescent_loss >= 0.0
        assert audit.output_and_misc_loss >= 0.0
        assert audit.node_consumed > 0.0

    def test_losses_bounded_by_input(self, run):
        audit = audit_run(run.recorder)
        total_losses = (audit.tracking_loss + audit.conversion_loss +
                        audit.storage_rejected + audit.quiescent_loss +
                        audit.output_and_misc_loss)
        assert total_losses <= audit.mpp_available * (1 + 1e-6)

    def test_balance_closes(self, run):
        """MPP input = all losses + storage delta + node consumption,
        within the residual row's rounding."""
        audit = audit_run(run.recorder)
        reconstructed = (audit.tracking_loss + audit.conversion_loss +
                         audit.storage_rejected + audit.quiescent_loss +
                         audit.output_and_misc_loss + audit.storage_delta +
                         audit.node_consumed)
        assert reconstructed == pytest.approx(audit.mpp_available, rel=0.02)

    def test_efficiency_consistent_with_metrics(self, run):
        audit = audit_run(run.recorder)
        assert audit.end_to_end_efficiency == pytest.approx(
            run.metrics.end_to_end_efficiency, rel=1e-6)

    def test_report_renders(self, run):
        text = audit_run(run.recorder).report()
        assert "available at MPP" in text
        assert "end-to-end efficiency" in text

    def test_empty_recorder_rejected(self):
        from repro.simulation import Recorder
        with pytest.raises(ValueError):
            audit_run(Recorder(60.0))
