"""Tests for trace/environment persistence and CSV import."""

import io

import numpy as np
import pytest

from repro.environment import SourceType, Trace, outdoor_environment
from repro.environment.persistence import (
    load_environment,
    load_trace,
    save_environment,
    save_trace,
    trace_from_csv,
)

DAY = 86_400.0


class TestTraceRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = Trace(np.linspace(0.0, 5.0, 100), dt=60.0,
                      name="irradiance", units="W/m^2")
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.values, trace.values)
        assert loaded.dt == trace.dt
        assert loaded.name == "irradiance"
        assert loaded.units == "W/m^2"

    def test_roundtrip_is_bit_exact(self, tmp_path):
        rng = np.random.default_rng(0)
        trace = Trace(rng.random(1000), dt=0.5)
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        assert np.array_equal(load_trace(path).values, trace.values)


class TestEnvironmentRoundtrip:
    def test_roundtrip(self, tmp_path):
        env = outdoor_environment(duration=DAY / 4, dt=300.0, seed=77)
        path = tmp_path / "env.npz"
        save_environment(env, path)
        loaded = load_environment(path)
        assert loaded.name == env.name
        assert set(loaded.sources) == set(env.sources)
        for source in env.sources:
            assert np.array_equal(loaded.trace(source).values,
                                  env.trace(source).values)

    def test_simulation_identical_from_reloaded_environment(self, tmp_path):
        from repro.analysis.experiments import make_reference_system
        from repro.harvesters import PhotovoltaicCell
        from repro.simulation import simulate

        env = outdoor_environment(duration=DAY / 4, dt=300.0, seed=78)
        path = tmp_path / "env.npz"
        save_environment(env, path)
        reloaded = load_environment(path)

        def run(environment):
            system = make_reference_system(
                [PhotovoltaicCell(area_cm2=20.0)],
                measurement_interval_s=120.0)
            return simulate(system, environment).metrics

        a, b = run(env), run(reloaded)
        assert a.harvested_delivered_j == b.harvested_delivered_j
        assert a.node_consumed_j == b.node_consumed_j


class TestCSVImport:
    def test_uniform_rows(self):
        csv_text = "time,value\n0,1.0\n60,2.0\n120,3.0\n"
        trace = trace_from_csv(io.StringIO(csv_text), dt=60.0)
        assert list(trace.values) == [1.0, 2.0, 3.0]

    def test_irregular_rows_zero_order_hold(self):
        csv_text = "time,value\n0,1.0\n90,5.0\n240,2.0\n"
        trace = trace_from_csv(io.StringIO(csv_text), dt=60.0)
        # Grid: 0,60,120,180,240 -> holds 1.0 until t=90, then 5.0, ...
        assert list(trace.values) == [1.0, 1.0, 5.0, 5.0, 2.0]

    def test_unsorted_rows_accepted(self):
        csv_text = "time,value\n120,3.0\n0,1.0\n60,2.0\n"
        trace = trace_from_csv(io.StringIO(csv_text), dt=60.0)
        assert list(trace.values) == [1.0, 2.0, 3.0]

    def test_custom_column_names(self):
        csv_text = "ts,irr\n0,100\n600,200\n"
        trace = trace_from_csv(io.StringIO(csv_text), dt=600.0,
                               time_column="ts", value_column="irr")
        assert list(trace.values) == [100.0, 200.0]

    def test_missing_columns_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            trace_from_csv(io.StringIO("a,b\n1,2\n"), dt=60.0)

    def test_malformed_values_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            trace_from_csv(io.StringIO("time,value\n0,abc\n"), dt=60.0)

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            trace_from_csv(io.StringIO("time,value\n"), dt=60.0)

    def test_file_path_source(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("time,value\n0,4.0\n300,5.0\n")
        trace = trace_from_csv(path, dt=300.0)
        assert list(trace.values) == [4.0, 5.0]

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            trace_from_csv(io.StringIO("time,value\n0,1\n"), dt=0.0)

    def test_invalid_source_type(self):
        with pytest.raises(TypeError):
            trace_from_csv(12345, dt=60.0)
