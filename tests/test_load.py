"""Tests for the radio, node, and duty-cycle controllers."""

import pytest

from repro.load import (
    EnergyNeutralController,
    FixedDutyCycle,
    NodeState,
    RadioModel,
    ThresholdDutyCycle,
    WirelessSensorNode,
)
from repro.load.radio import (
    FRAME_OVERHEAD_BYTES,
    MAX_FRAME_BYTES,
    MAX_PAYLOAD_BYTES,
)


class TestRadioModel:
    def test_tx_time_scales_with_payload(self):
        radio = RadioModel(data_rate_bps=250e3)
        assert radio.tx_time(100) > radio.tx_time(10)
        assert radio.tx_time(0) == pytest.approx(17 * 8 / 250e3)

    def test_packet_energy_components(self):
        radio = RadioModel(tx_power_w=0.075, rx_power_w=0.06,
                           startup_energy_j=150e-6)
        energy = radio.packet_energy(24, ack_listen_s=0.002)
        expected = 150e-6 + 0.075 * radio.tx_time(24) + 0.06 * 0.002
        assert energy == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioModel(tx_power_w=0.0)
        with pytest.raises(ValueError):
            RadioModel().tx_time(-1)
        with pytest.raises(ValueError):
            RadioModel().packet_energy(10, ack_listen_s=-1.0)

    def test_mtu_pins_the_802_15_4_frame_geometry(self):
        # 127 B PHY frame - 17 B overhead = 110 B max payload: the
        # numbers the fragmentation contract is stated in.
        assert MAX_FRAME_BYTES == 127
        assert FRAME_OVERHEAD_BYTES == 17
        assert MAX_PAYLOAD_BYTES == 110

    def test_fragments_split_at_the_mtu(self):
        assert RadioModel.fragments(0) == (0,)
        assert RadioModel.fragments(110) == (110,)
        assert RadioModel.fragments(111) == (110, 1)
        assert RadioModel.fragments(220) == (110, 110)
        assert RadioModel.fragments(250) == (110, 110, 30)
        with pytest.raises(ValueError):
            RadioModel.fragments(-1)

    def test_tx_time_refuses_oversized_single_frames(self):
        # Regression: tx_time silently accepted payloads beyond the
        # 802.15.4 MTU, pricing a 127 B frame's worth of framing on an
        # impossible single-frame transmission.
        radio = RadioModel()
        radio.tx_time(MAX_PAYLOAD_BYTES)  # at the cap: fine
        with pytest.raises(ValueError):
            radio.tx_time(MAX_PAYLOAD_BYTES + 1)

    def test_oversized_packets_pay_per_frame_overhead(self):
        radio = RadioModel(tx_power_w=0.075, rx_power_w=0.06,
                           startup_energy_j=150e-6)
        two_frames = radio.packet_energy(220, ack_listen_s=0.002)
        one_frame = radio.packet_energy(110, ack_listen_s=0.002)
        # Exactly two full frames: each pays startup + framing + ACK
        # listen, so the fragmented packet is never cheaper per byte.
        assert two_frames == pytest.approx(2 * one_frame)
        assert radio.packet_energy(111) > radio.packet_energy(110)

    def test_single_frame_energy_is_unchanged_by_fragmentation(self):
        # The <= 110 B path must price exactly as before the MTU fix
        # (bitwise: the catalog keys archived rows on these numbers).
        radio = RadioModel(tx_power_w=0.075, rx_power_w=0.06,
                           startup_energy_j=150e-6)
        for payload in (0, 10, 24, 100, 110):
            expected = (150e-6 + 0.075 * radio.tx_time(payload)
                        + 0.06 * 0.002)
            assert radio.packet_energy(payload, ack_listen_s=0.002) == \
                expected

    def test_rx_energy_mirrors_the_frame_accounting(self):
        radio = RadioModel(tx_power_w=0.075, rx_power_w=0.06,
                           startup_energy_j=150e-6)
        listen = 0.002
        one = radio.rx_energy(24, listen)
        expected = (0.06 * listen + 150e-6 + 0.06 * radio.tx_time(24)
                    + 0.075 * radio.ack_time())
        assert one == pytest.approx(expected)
        # The per-frame cost fragments exactly like the TX side.
        assert radio.rx_energy(220, listen) == pytest.approx(
            0.06 * listen + 2 * (150e-6 + 0.06 * radio.tx_time(110)
                                 + 0.075 * radio.ack_time()))
        assert radio.rx_energy(0, 0.0) > 0.0  # a frame still arrives


class TestNodeDemand:
    def test_demand_decreases_with_interval(self):
        node = WirelessSensorNode(measurement_interval_s=10.0)
        fast = node.demand_power()
        node.set_measurement_interval(1000.0)
        slow = node.demand_power()
        assert fast > 10 * slow
        assert slow > node.sleep_power_w

    def test_measurement_energy_positive(self):
        assert WirelessSensorNode().measurement_energy() > 1e-4

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            WirelessSensorNode().set_measurement_interval(0.0)


class TestNodeLifecycle:
    def test_full_supply_full_work(self):
        node = WirelessSensorNode(measurement_interval_s=60.0)
        result = node.step(node.demand_power(), 600.0)
        assert result.state is NodeState.RUNNING
        assert result.measurements == pytest.approx(10.0)

    def test_partial_supply_partial_work(self):
        node = WirelessSensorNode(measurement_interval_s=60.0)
        demand = node.demand_power()
        available = node.sleep_power_w + 0.5 * (demand - node.sleep_power_w)
        result = node.step(available, 600.0)
        assert result.state is NodeState.RUNNING
        assert result.measurements == pytest.approx(5.0, rel=1e-6)

    def test_brownout_and_reboot_cycle(self):
        node = WirelessSensorNode(reboot_time_s=5.0)
        assert node.step(node.demand_power(), 60.0).state is \
            NodeState.RUNNING
        assert node.step(0.0, 60.0).state is NodeState.DEAD
        assert node.brownouts == 1
        # While dead, the node's demand reflects the reboot requirement.
        assert node.demand_power() == pytest.approx(node._reboot_power())
        # Supply returns: one rebooting step, then running.
        assert node.step(node.demand_power(), 60.0).state is \
            NodeState.REBOOTING
        assert node.step(node.demand_power(), 60.0).state is \
            NodeState.RUNNING

    def test_dead_time_accumulates(self):
        node = WirelessSensorNode()
        node.step(0.0, 60.0)
        node.step(0.0, 60.0)
        assert node.dead_seconds >= 120.0

    def test_no_work_while_dead(self):
        node = WirelessSensorNode()
        node.step(0.0, 60.0)
        result = node.step(0.0, 60.0)
        assert result.measurements == 0.0
        assert result.consumed_w == 0.0

    def test_reboot_fails_without_power(self):
        node = WirelessSensorNode()
        node.step(0.0, 60.0)            # dies
        node.step(node.demand_power(), 60.0)  # starts rebooting
        result = node.step(0.0, 60.0)   # power lost again mid-reboot
        assert result.state is NodeState.DEAD

    def test_counters_accumulate(self):
        node = WirelessSensorNode(measurement_interval_s=30.0)
        for _ in range(10):
            node.step(node.demand_power(), 300.0)
        assert node.total_measurements == pytest.approx(100.0)
        assert node.total_energy_j > 0.0

    def test_validation(self):
        node = WirelessSensorNode()
        with pytest.raises(ValueError):
            node.step(-1.0, 60.0)
        with pytest.raises(ValueError):
            node.step(1.0, 0.0)


class TestFixedDutyCycle:
    def test_pins_interval(self):
        node = WirelessSensorNode(measurement_interval_s=10.0)
        FixedDutyCycle(interval_s=77.0).update(node, 0.5, 0.01, 60.0)
        assert node.measurement_interval_s == 77.0

    def test_ignores_telemetry(self):
        node = WirelessSensorNode()
        controller = FixedDutyCycle(50.0)
        controller.update(node, None, None, 60.0)
        assert node.measurement_interval_s == 50.0


class TestThresholdDutyCycle:
    def test_staircase(self):
        node = WirelessSensorNode()
        controller = ThresholdDutyCycle(levels=((0.7, 30.0), (0.4, 120.0),
                                                (0.0, 3600.0)))
        controller.update(node, 0.9, None, 60.0)
        assert node.measurement_interval_s == 30.0
        controller.update(node, 0.5, None, 60.0)
        assert node.measurement_interval_s == 120.0
        controller.update(node, 0.1, None, 60.0)
        assert node.measurement_interval_s == 3600.0

    def test_hysteresis_blocks_chatter(self):
        node = WirelessSensorNode()
        controller = ThresholdDutyCycle(levels=((0.7, 30.0), (0.0, 600.0)),
                                        hysteresis=0.05)
        controller.update(node, 0.5, None, 60.0)
        assert node.measurement_interval_s == 600.0
        # Just over the threshold: hysteresis keeps the slow rate.
        controller.update(node, 0.71, None, 60.0)
        assert node.measurement_interval_s == 600.0
        # Clearly above threshold + hysteresis: speeds up.
        controller.update(node, 0.76, None, 60.0)
        assert node.measurement_interval_s == 30.0

    def test_blind_platform_holds_rate(self):
        node = WirelessSensorNode(measurement_interval_s=42.0)
        ThresholdDutyCycle().update(node, None, None, 60.0)
        assert node.measurement_interval_s == 42.0

    def test_levels_validation(self):
        with pytest.raises(ValueError, match="descending"):
            ThresholdDutyCycle(levels=((0.2, 60.0), (0.7, 30.0), (0.0, 1.0)))
        with pytest.raises(ValueError, match="catch-all"):
            ThresholdDutyCycle(levels=((0.7, 30.0), (0.3, 60.0)))


class TestEnergyNeutralController:
    def test_matches_harvest_budget(self):
        node = WirelessSensorNode()
        controller = EnergyNeutralController(target_soc=0.5, margin=1.0,
                                             min_interval_s=1.0,
                                             max_interval_s=100_000.0)
        harvest = 0.002
        controller.update(node, 0.5, harvest, 60.0)
        expected = node.measurement_energy() / (harvest -
                                                node.sleep_power_w)
        assert node.measurement_interval_s == pytest.approx(expected,
                                                            rel=1e-6)

    def test_soc_steering(self):
        node_rich = WirelessSensorNode()
        node_poor = WirelessSensorNode()
        rich = EnergyNeutralController(min_interval_s=0.1,
                                       max_interval_s=1e6)
        poor = EnergyNeutralController(min_interval_s=0.1,
                                       max_interval_s=1e6)
        rich.update(node_rich, 0.9, 0.002, 60.0)
        poor.update(node_poor, 0.3, 0.002, 60.0)
        assert node_rich.measurement_interval_s < \
            node_poor.measurement_interval_s

    def test_no_harvest_hibernates(self):
        node = WirelessSensorNode()
        controller = EnergyNeutralController(max_interval_s=3600.0)
        controller.update(node, 0.5, 0.0, 60.0)
        assert node.measurement_interval_s == 3600.0

    def test_ewma_smooths(self):
        controller = EnergyNeutralController(ewma_tau_s=3600.0)
        node = WirelessSensorNode()
        controller.update(node, 0.5, 0.01, 60.0)
        first = controller.harvest_estimate_w
        controller.update(node, 0.5, 0.0, 60.0)
        second = controller.harvest_estimate_w
        assert 0.9 * first < second <= first  # barely moved

    def test_blind_platform_holds(self):
        node = WirelessSensorNode(measurement_interval_s=42.0)
        EnergyNeutralController().update(node, None, None, 60.0)
        assert node.measurement_interval_s == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyNeutralController(target_soc=0.0)
        with pytest.raises(ValueError):
            EnergyNeutralController(min_interval_s=100.0,
                                    max_interval_s=10.0)
