"""Unit and property tests for the harvester transducer models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment import SourceType
from repro.harvesters import (
    ElectromagneticHarvester,
    GenericACDCInput,
    MicroWindTurbine,
    OperatingPoint,
    PhotovoltaicCell,
    PiezoelectricHarvester,
    RFHarvester,
    TheveninHarvester,
    ThermoelectricGenerator,
    WaterTurbine,
)


class TestOperatingPoint:
    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            OperatingPoint(-1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            OperatingPoint(0.0, -1.0, 0.0)

    def test_frozen(self):
        op = OperatingPoint(1.0, 2.0, 2.0)
        with pytest.raises(AttributeError):
            op.voltage = 5.0


class _UnitThevenin(TheveninHarvester):
    """Voc = ambient volts, Rint = 10 ohm: an analytic reference."""

    source_type = SourceType.LIGHT

    def thevenin(self, ambient):
        return ambient, 10.0


class TestTheveninHarvester:
    def test_matched_load_mpp(self):
        h = _UnitThevenin()
        mpp = h.mpp(10.0)
        assert mpp.voltage == pytest.approx(5.0)
        assert mpp.power == pytest.approx(100.0 / 40.0)

    def test_current_linear_in_voltage(self):
        h = _UnitThevenin()
        assert h.current_at(0.0, 10.0) == pytest.approx(1.0)
        assert h.current_at(5.0, 10.0) == pytest.approx(0.5)
        assert h.current_at(10.0, 10.0) == 0.0
        assert h.current_at(15.0, 10.0) == 0.0  # clipped, no negative

    def test_dead_source(self):
        h = _UnitThevenin()
        assert h.mpp(0.0).power == 0.0
        assert h.open_circuit_voltage(0.0) == 0.0

    def test_golden_section_matches_analytic(self):
        from repro.harvesters.base import Harvester
        h = _UnitThevenin()
        analytic = h.mpp(8.0)            # Thevenin closed form
        numeric = Harvester.mpp(h, 8.0)  # generic golden-section search
        assert numeric.power == pytest.approx(analytic.power, rel=1e-6)
        assert numeric.voltage == pytest.approx(analytic.voltage, rel=1e-4)

    def test_negative_voltage_rejected(self):
        with pytest.raises(ValueError):
            _UnitThevenin().current_at(-1.0, 5.0)

    @settings(max_examples=50)
    @given(voc=st.floats(min_value=0.1, max_value=100.0),
           frac=st.floats(min_value=0.0, max_value=1.0))
    def test_power_never_exceeds_mpp(self, voc, frac):
        h = _UnitThevenin()
        v = frac * voc
        assert h.power_at(v, voc) <= h.mpp(voc).power * (1 + 1e-9)

    @settings(max_examples=50)
    @given(voc=st.floats(min_value=0.1, max_value=100.0),
           v1=st.floats(min_value=0.0, max_value=100.0),
           v2=st.floats(min_value=0.0, max_value=100.0))
    def test_current_monotone_nonincreasing(self, voc, v1, v2):
        h = _UnitThevenin()
        lo, hi = sorted((v1, v2))
        assert h.current_at(lo, voc) >= h.current_at(hi, voc)


class TestPhotovoltaic:
    def test_stc_calibration(self):
        pv = PhotovoltaicCell(area_cm2=50.0, efficiency=0.15)
        expected = 50.0 * 1e-4 * 1000.0 * 0.15
        assert pv.mpp(1000.0).power == pytest.approx(expected, rel=1e-6)

    def test_fill_factor_realistic(self):
        pv = PhotovoltaicCell()
        assert 0.65 <= pv.fill_factor(1000.0) <= 0.9
        assert 0.6 <= pv.fill_factor(100.0) <= 0.9

    def test_voc_grows_logarithmically(self):
        pv = PhotovoltaicCell()
        v1 = pv.open_circuit_voltage(100.0)
        v2 = pv.open_circuit_voltage(1000.0)
        assert v2 > v1
        assert (v2 - v1) < 0.5 * v1  # log, not linear

    def test_mpp_near_fraction_of_voc(self):
        pv = PhotovoltaicCell()
        voc = pv.open_circuit_voltage(800.0)
        vmpp = pv.mpp(800.0).voltage
        assert 0.7 <= vmpp / voc <= 0.92

    def test_dark_cell_produces_nothing(self):
        pv = PhotovoltaicCell()
        assert pv.mpp(0.0).power == 0.0
        assert pv.current_at(1.0, 0.0) == 0.0

    def test_newton_matches_golden_section(self):
        from repro.harvesters.base import Harvester
        pv = PhotovoltaicCell()
        for irr in (5.0, 50.0, 500.0, 1000.0):
            newton = pv.mpp(irr).power
            golden = Harvester.mpp(pv, irr).power
            assert newton == pytest.approx(golden, rel=1e-6)

    def test_power_scales_roughly_with_irradiance(self):
        pv = PhotovoltaicCell()
        p_half = pv.mpp(500.0).power
        p_full = pv.mpp(1000.0).power
        assert 1.7 <= p_full / p_half <= 2.2

    def test_overflow_guard_far_above_voc(self):
        pv = PhotovoltaicCell()
        assert pv.current_at(1000.0, 1000.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PhotovoltaicCell(area_cm2=0.0)
        with pytest.raises(ValueError):
            PhotovoltaicCell(efficiency=1.5)
        with pytest.raises(ValueError):
            PhotovoltaicCell(cells_in_series=0)

    @settings(max_examples=30)
    @given(irr=st.floats(min_value=0.1, max_value=1200.0))
    def test_current_nonincreasing_in_voltage(self, irr):
        pv = PhotovoltaicCell()
        voc = pv.open_circuit_voltage(irr)
        currents = [pv.current_at(f * voc, irr) for f in
                    (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(a >= b - 1e-12 for a, b in zip(currents, currents[1:]))


class TestWindTurbine:
    def test_below_cut_in_is_dead(self):
        wt = MicroWindTurbine(cut_in_speed=2.0)
        assert wt.mpp(1.9).power == 0.0

    def test_above_cut_out_is_dead(self):
        wt = MicroWindTurbine(cut_out_speed=18.0)
        assert wt.mpp(19.0).power == 0.0

    def test_aero_ceiling_respected(self):
        wt = MicroWindTurbine()
        for v in (3.0, 5.0, 8.0, 12.0):
            assert wt.mpp(v).power <= wt.aerodynamic_power(v) + 1e-12

    def test_cubic_power_law(self):
        wt = MicroWindTurbine()
        p4, p8 = wt.aerodynamic_power(4.0), wt.aerodynamic_power(8.0)
        assert p8 / p4 == pytest.approx(8.0)

    def test_betz_limit_enforced(self):
        with pytest.raises(ValueError, match="Betz"):
            MicroWindTurbine(power_coefficient=0.7)

    def test_swept_area(self):
        wt = MicroWindTurbine(rotor_diameter_m=0.2)
        assert wt.swept_area_m2 == pytest.approx(math.pi * 0.01)


class TestThermoelectric:
    def test_matched_power_analytic(self):
        teg = ThermoelectricGenerator(seebeck_per_couple=200e-6, couples=100,
                                      internal_resistance=2.0)
        # Voc = 0.02 V/K * 10 K = 0.2 V; P = 0.04 / 8 = 5 mW
        assert teg.mpp(10.0).power == pytest.approx(0.005)
        assert teg.matched_power(10.0) == pytest.approx(0.005)

    def test_quadratic_in_delta_t(self):
        teg = ThermoelectricGenerator()
        assert teg.matched_power(20.0) / teg.matched_power(10.0) == \
            pytest.approx(4.0)

    def test_clamps_at_max_delta_t(self):
        teg = ThermoelectricGenerator(max_delta_t=70.0)
        assert teg.matched_power(100.0) == teg.matched_power(70.0)

    def test_zero_gradient(self):
        assert ThermoelectricGenerator().mpp(0.0).power == 0.0


class TestPiezoelectric:
    def test_williams_yates_at_resonance(self):
        pz = PiezoelectricHarvester(proof_mass_g=5.0, resonant_frequency=50.0,
                                    damping_ratio=0.03)
        expected = 5e-3 * 4.0 / (8 * 0.03 * 2 * math.pi * 50.0)
        assert pz.resonant_power(2.0) == pytest.approx(expected)
        assert pz.mpp(2.0).power == pytest.approx(expected, rel=1e-9)

    def test_detuning_reduces_power(self):
        pz = PiezoelectricHarvester(resonant_frequency=50.0,
                                    damping_ratio=0.03)
        pz.current_frequency = 52.0
        detuned = pz.mpp(2.0).power
        pz.current_frequency = 50.0
        resonant = pz.mpp(2.0).power
        assert detuned < 0.5 * resonant

    def test_detuning_gain_bounds(self):
        pz = PiezoelectricHarvester()
        assert pz.detuning_gain(None) == 1.0
        assert pz.detuning_gain(pz.resonant_frequency) == 1.0
        assert 0.0 < pz.detuning_gain(60.0) < 1.0
        assert pz.detuning_gain(0.0) == 0.0

    def test_quadratic_in_acceleration(self):
        pz = PiezoelectricHarvester()
        assert pz.resonant_power(4.0) / pz.resonant_power(2.0) == \
            pytest.approx(4.0)

    def test_no_vibration_no_power(self):
        assert PiezoelectricHarvester().mpp(0.0).power == 0.0


class TestElectromagnetic:
    def test_mechanical_bound_respected(self):
        em = ElectromagneticHarvester()
        assert em.mpp(3.0).power <= em.mechanical_power(3.0) + 1e-12

    def test_low_impedance_low_voltage(self):
        em = ElectromagneticHarvester()
        pz = PiezoelectricHarvester()
        # At the same acceleration the EM source is lower-voltage.
        assert em.open_circuit_voltage(2.0) != pz.open_circuit_voltage(2.0)

    def test_detuning(self):
        em = ElectromagneticHarvester(resonant_frequency=60.0,
                                      damping_ratio=0.05)
        em.current_frequency = 70.0
        assert em.mpp(2.0).power < 0.5 * em.mechanical_power(2.0) / \
            em.detuning_gain(70.0) + 1e-9


class TestRFHarvester:
    def test_captured_power(self):
        rf = RFHarvester(effective_aperture_cm2=25.0)
        assert rf.captured_power(0.01) == pytest.approx(0.01 * 25e-4)

    def test_efficiency_collapses_at_low_power(self):
        rf = RFHarvester(peak_efficiency=0.6, half_efficiency_uw=50.0)
        assert rf.rectifier_efficiency(50e-6) == pytest.approx(0.3)
        assert rf.rectifier_efficiency(5e-6) < 0.1
        assert rf.rectifier_efficiency(5e-3) > 0.55

    def test_dc_power_monotone_in_density(self):
        rf = RFHarvester()
        densities = [1e-4, 1e-3, 1e-2, 1e-1]
        powers = [rf.dc_power(d) for d in densities]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_mpp_equals_dc_power(self):
        rf = RFHarvester()
        assert rf.mpp(0.01).power == pytest.approx(rf.dc_power(0.01))


class TestWaterTurbine:
    def test_denser_medium_than_wind(self):
        water = WaterTurbine(rotor_diameter_m=0.1, power_coefficient=0.2)
        wind = MicroWindTurbine(rotor_diameter_m=0.1, power_coefficient=0.2,
                                cut_in_speed=0.1)
        # Same speed, same rotor: water carries ~800x the power.
        ratio = water.hydraulic_power(1.0) / wind.aerodynamic_power(1.0)
        assert ratio == pytest.approx(1000.0 / 1.225, rel=1e-6)

    def test_cut_in(self):
        assert WaterTurbine(cut_in_speed=0.2).mpp(0.1).power == 0.0


class TestGenericACDC:
    def test_below_minimum_rejected(self):
        ac = GenericACDCInput(min_input_voltage=5.0)
        assert ac.mpp(4.9).power == 0.0

    def test_above_minimum_harvests(self):
        ac = GenericACDCInput(min_input_voltage=5.0)
        assert ac.mpp(12.0).power > 0.0

    def test_power_capped_at_rating(self):
        ac = GenericACDCInput(max_power=0.5)
        assert ac.mpp(50.0).power <= 0.5 + 1e-12

    def test_rectifier_drop_applied(self):
        ac = GenericACDCInput(diode_drop=0.4)
        voc, _ = ac.thevenin(10.0)
        assert voc == pytest.approx(10.0 * math.sqrt(2.0) - 0.8)
