"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTable1Command:
    def test_exit_zero_on_agreement(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "70/70" in out


class TestFigureCommand:
    def test_figure_a(self, capsys):
        assert main(["figure", "A"]) == 0
        out = capsys.readouterr().out
        assert "Smart Power Unit" in out
        assert "power-unit-mcu" in out

    def test_figure_b(self, capsys):
        assert main(["figure", "B"]) == 0
        assert "Plug-and-Play" in capsys.readouterr().out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "Z"])


class TestSimulateCommand:
    def test_simulate_a_outdoor(self, capsys):
        assert main(["simulate", "A", "--days", "0.5", "--dt", "300"]) == 0
        out = capsys.readouterr().out
        assert "uptime" in out
        assert "harvested" in out

    def test_simulate_b_indoor(self, capsys):
        assert main(["simulate", "B", "--env", "indoor", "--days", "0.5",
                     "--dt", "300"]) == 0
        assert "Plug-and-Play" in capsys.readouterr().out

    def test_seed_changes_output(self, capsys):
        main(["simulate", "A", "--days", "0.5", "--dt", "300",
              "--seed", "1"])
        first = capsys.readouterr().out
        main(["simulate", "A", "--days", "0.5", "--dt", "300",
              "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_determinism(self, capsys):
        main(["simulate", "C", "--days", "0.5", "--dt", "300",
              "--seed", "9"])
        first = capsys.readouterr().out
        main(["simulate", "C", "--days", "0.5", "--dt", "300",
              "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestExperimentCommand:
    def test_e6_runs(self, capsys):
        assert main(["experiment", "e6"]) == 0
        assert "break-even" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])


class TestAuditCommand:
    def test_audit_runs(self, capsys):
        assert main(["audit", "A", "--days", "0.5", "--dt", "300"]) == 0
        out = capsys.readouterr().out
        assert "Energy audit" in out
        assert "end-to-end efficiency" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestAdviseCommand:
    def test_advise_runs(self, capsys):
        assert main(["advise", "--env", "indoor", "--days", "0.5",
                     "--dt", "600"]) == 0
        out = capsys.readouterr().out
        assert "recommendation" in out
        assert "Deployment advice" in out
