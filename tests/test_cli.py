"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestTable1Command:
    def test_exit_zero_on_agreement(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "70/70" in out


class TestFigureCommand:
    def test_figure_a(self, capsys):
        assert main(["figure", "A"]) == 0
        out = capsys.readouterr().out
        assert "Smart Power Unit" in out
        assert "power-unit-mcu" in out

    def test_figure_b(self, capsys):
        assert main(["figure", "B"]) == 0
        assert "Plug-and-Play" in capsys.readouterr().out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "Z"])


class TestSimulateCommand:
    def test_simulate_a_outdoor(self, capsys):
        assert main(["simulate", "A", "--days", "0.5", "--dt", "300"]) == 0
        out = capsys.readouterr().out
        assert "uptime" in out
        assert "harvested" in out

    def test_simulate_b_indoor(self, capsys):
        assert main(["simulate", "B", "--env", "indoor", "--days", "0.5",
                     "--dt", "300"]) == 0
        assert "Plug-and-Play" in capsys.readouterr().out

    def test_reports_execution_path_and_fast_flag(self, capsys):
        assert main(["simulate", "A", "--days", "0.5", "--dt", "300"]) == 0
        assert "execution path        kernel" in capsys.readouterr().out
        assert main(["simulate", "A", "--days", "0.5", "--dt", "300",
                     "--fast", "off"]) == 0
        legacy_out = capsys.readouterr().out
        assert "execution path        legacy" in legacy_out
        assert main(["simulate", "A", "--days", "0.5", "--dt", "300",
                     "--fast", "on"]) == 0
        kernel_out = capsys.readouterr().out
        assert "execution path        kernel" in kernel_out
        # Same numbers either way: the paths are bit-for-bit equivalent.
        strip = lambda s: [line for line in s.splitlines()  # noqa: E731
                           if "execution path" not in line]
        assert strip(kernel_out) == strip(legacy_out)

    def test_seed_changes_output(self, capsys):
        main(["simulate", "A", "--days", "0.5", "--dt", "300",
              "--seed", "1"])
        first = capsys.readouterr().out
        main(["simulate", "A", "--days", "0.5", "--dt", "300",
              "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_determinism(self, capsys):
        main(["simulate", "C", "--days", "0.5", "--dt", "300",
              "--seed", "9"])
        first = capsys.readouterr().out
        main(["simulate", "C", "--days", "0.5", "--dt", "300",
              "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestSpecCommand:
    def test_system_spec_json(self, capsys):
        assert main(["spec", "C"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "system"
        assert payload["system"] == "ambimax"

    def test_run_spec_json(self, capsys):
        assert main(["spec", "A", "--env", "outdoor", "--days", "0.5",
                     "--dt", "600", "--seed", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "run"
        assert payload["system"]["system"] == "smart_power_unit"
        assert payload["environment"]["environment"] == "outdoor"
        assert payload["environment"]["seed"] == 3

    def test_registry_listing(self, capsys):
        assert main(["spec", "--registry"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert "photovoltaic" in catalog["harvester"]
        assert "ambimax" in catalog["system"]

    def test_no_arguments_is_an_error(self, capsys):
        assert main(["spec"]) == 2

    def test_run_flags_without_env_rejected(self, capsys):
        """Regression: --days/--dt/--seed used to be silently ignored
        without --env; now they demand one."""
        assert main(["spec", "C", "--days", "5"]) == 2
        assert "--env" in capsys.readouterr().err


class TestRunCommand:
    def _write_run_spec(self, tmp_path, capsys):
        main(["spec", "B", "--env", "indoor", "--days", "0.3",
              "--dt", "600"])
        path = tmp_path / "run.json"
        path.write_text(capsys.readouterr().out)
        return path

    def test_run_config_matches_simulate(self, tmp_path, capsys):
        path = self._write_run_spec(tmp_path, capsys)
        assert main(["run", str(path)]) == 0
        run_out = capsys.readouterr().out
        assert "uptime" in run_out
        assert main(["simulate", "B", "--env", "indoor", "--days", "0.3",
                     "--dt", "600"]) == 0
        sim_out = capsys.readouterr().out
        # Identical numbers: the config file is the simulate command.
        assert run_out.splitlines()[1:] == sim_out.splitlines()[1:]

    def test_run_json_output(self, tmp_path, capsys):
        path = self._write_run_spec(tmp_path, capsys)
        assert main(["run", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.0 <= payload["metrics"]["uptime_fraction"] <= 1.0

    def test_run_sweep_config(self, tmp_path, capsys):
        from repro.spec import EnvironmentSpec, SweepSpec, spec_for
        spec = SweepSpec.grid(
            [spec_for(x) for x in "AC"],
            [EnvironmentSpec("outdoor", duration=0.3 * 86_400.0, dt=600.0,
                             seed=0)])
        path = tmp_path / "sweep.json"
        spec.save(path)
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "smart_power_unit@outdoor" in out
        assert "ambimax@outdoor" in out

    def test_run_missing_config_is_clean_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 2
        assert "cannot load spec file" in capsys.readouterr().err

    def test_run_malformed_config_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["run", str(path)]) == 2
        assert "cannot load spec file" in capsys.readouterr().err

    def test_run_unknown_component_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "unknown.json"
        path.write_text(json.dumps({
            "kind": "run",
            "system": {"kind": "system", "system": "ambimaxx"},
            "environment": {"kind": "environment",
                            "environment": "outdoor"}}))
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "cannot execute" in err
        assert "ambimaxx" in err

    def test_run_null_params_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "nullparams.json"
        path.write_text(json.dumps({
            "kind": "run",
            "system": {"kind": "system", "system": "ambimax",
                       "params": None},
            "environment": {"kind": "environment",
                            "environment": "outdoor"}}))
        assert main(["run", str(path)]) == 2
        assert "params must be a dict" in capsys.readouterr().err

    def test_run_config_missing_field_names_it(self, tmp_path, capsys):
        path = tmp_path / "incomplete.json"
        path.write_text(json.dumps({"kind": "run", "environment": {
            "kind": "environment", "environment": "outdoor"}}))
        assert main(["run", str(path)]) == 2
        assert "missing required field 'system'" in capsys.readouterr().err

    def test_run_config_with_string_nested_spec_is_clean_error(
            self, tmp_path, capsys):
        """Regression: a string where a nested spec dict belongs used to
        escape as a raw AttributeError traceback."""
        path = tmp_path / "flat.json"
        path.write_text(json.dumps({
            "kind": "run", "system": "ambimax",
            "environment": {"kind": "environment",
                            "environment": "outdoor"}}))
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "cannot load spec file" in err
        assert "must be a dict" in err

    def test_run_rejects_non_executable_spec(self, tmp_path, capsys):
        from repro.spec import spec_for
        path = tmp_path / "system.json"
        spec_for("A").save(path)
        assert main(["run", str(path)]) == 2


class TestSweepSpecOption:
    def test_sweep_from_spec_file(self, tmp_path, capsys):
        from repro.spec import EnvironmentSpec, SweepSpec, spec_for
        spec = SweepSpec.grid(
            [spec_for("D")],
            [EnvironmentSpec("agricultural", duration=0.3 * 86_400.0,
                             dt=600.0, seed=1)], name="farm")
        path = tmp_path / "sweep.json"
        spec.save(path)
        assert main(["sweep", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "farm" in out
        assert "mpwinode@agricultural" in out

    def test_sweep_spec_rejects_run_config(self, tmp_path, capsys):
        from repro.spec import EnvironmentSpec, RunSpec, spec_for
        path = tmp_path / "run.json"
        RunSpec(system=spec_for("A"),
                environment=EnvironmentSpec("outdoor")).save(path)
        assert main(["sweep", "--spec", str(path)]) == 2


class TestMonteCarloCommand:
    def test_mc_runs_batched(self, capsys):
        assert main(["mc", "C", "--days", "0.1", "--dt", "600",
                     "--replicates", "4", "--tier", "batched"]) == 0
        out = capsys.readouterr().out
        assert "4 replicates" in out
        assert "batched x4" in out
        assert "p95" in out

    def test_mc_json_payload(self, capsys):
        assert main(["mc", "C", "--days", "0.1", "--dt", "600",
                     "--replicates", "3", "--seed", "9", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replicates"] == 3
        assert payload["root_seed"] == 9
        assert len(payload["rows"]) == 3
        assert payload["rows"][0]["replicate"] == 0
        assert 0.0 <= \
            payload["summaries"]["uptime_fraction"]["mean"] <= 1.0

    def test_mc_is_deterministic(self, capsys):
        argv = ["mc", "C", "--days", "0.1", "--dt", "600",
                "--replicates", "3", "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_mc_spec_file(self, tmp_path, capsys):
        from repro.spec import EnvironmentSpec, MonteCarloSpec, RunSpec, spec_for
        spec = MonteCarloSpec(
            run=RunSpec(system=spec_for("C"),
                        environment=EnvironmentSpec(
                            "outdoor", duration=0.1 * 86_400.0, dt=600.0)),
            replicates=3, root_seed=2)
        path = tmp_path / "mc.json"
        spec.save(path)
        assert main(["mc", "--spec", str(path)]) == 0
        assert "3 replicates" in capsys.readouterr().out
        # The generic `run` command executes the same config.
        assert main(["run", str(path)]) == 0
        assert "3 replicates" in capsys.readouterr().out

    def test_mc_requires_system_or_spec(self, capsys):
        assert main(["mc"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_mc_spec_honors_replicate_and_seed_overrides(self, tmp_path,
                                                         capsys):
        from repro.spec import EnvironmentSpec, MonteCarloSpec, RunSpec, spec_for
        spec = MonteCarloSpec(
            run=RunSpec(system=spec_for("C"),
                        environment=EnvironmentSpec(
                            "outdoor", duration=0.1 * 86_400.0, dt=600.0)),
            replicates=32, root_seed=0)
        path = tmp_path / "mc.json"
        spec.save(path)
        assert main(["mc", "--spec", str(path), "--replicates", "2",
                     "--seed", "13"]) == 0
        out = capsys.readouterr().out
        assert "2 replicates" in out
        assert "root seed 13" in out

    def test_mc_spec_rejects_flag_mode_overrides(self, tmp_path, capsys):
        from repro.spec import EnvironmentSpec, MonteCarloSpec, RunSpec, spec_for
        spec = MonteCarloSpec(
            run=RunSpec(system=spec_for("C"),
                        environment=EnvironmentSpec(
                            "outdoor", duration=0.1 * 86_400.0, dt=600.0)),
            replicates=2)
        path = tmp_path / "mc.json"
        spec.save(path)
        assert main(["mc", "--spec", str(path), "--days", "5"]) == 2
        assert "flag mode" in capsys.readouterr().err

    def test_mc_spec_rejects_run_config(self, tmp_path, capsys):
        from repro.spec import EnvironmentSpec, RunSpec, spec_for
        path = tmp_path / "run.json"
        RunSpec(system=spec_for("C"),
                environment=EnvironmentSpec("outdoor")).save(path)
        assert main(["mc", "--spec", str(path)]) == 2
        assert "MonteCarloSpec" in capsys.readouterr().err

    def test_mc_invalid_replicates_is_clean_error(self, capsys):
        assert main(["mc", "C", "--replicates", "0"]) == 2
        assert "replicates" in capsys.readouterr().err

    def test_mc_table1_platforms_ride_the_batched_tier(self, capsys):
        """System A (trackers, backup, bus/MCU) now pins tier=batched
        cleanly — the masked-lane envelope covers it."""
        assert main(["mc", "A", "--days", "0.05", "--dt", "600",
                     "--replicates", "2", "--tier", "batched"]) == 0
        assert "batched x2" in capsys.readouterr().out

    def test_mc_ineligible_tier_fails_with_capability_report(self, capsys):
        """A refused batched pin explains itself with the capability
        report (here: fast=off denies compiled execution), not a
        generic tier error."""
        assert main(["mc", "A", "--days", "0.1", "--dt", "600",
                     "--replicates", "2", "--tier", "batched",
                     "--fast", "off"]) == 2
        err = capsys.readouterr().err
        assert "cannot execute ensemble" in err
        assert "missing compiled execution" in err
        assert "fast=False forces the per-scenario legacy path" in err


class TestSweepReplicates:
    def test_expansion_and_identity_columns(self, capsys):
        assert main(["sweep", "--systems", "C", "--envs", "outdoor",
                     "--days", "0.1", "--dt", "600",
                     "--replicates", "3"]) == 0
        out = capsys.readouterr().out
        assert "x3 replicates (3 rows)" in out
        for i in range(3):
            assert f"C@outdoor#r{i}" in out

    def test_replicates_must_be_positive(self, capsys):
        assert main(["sweep", "--systems", "C", "--days", "0.1",
                     "--replicates", "0"]) == 2
        assert "--replicates" in capsys.readouterr().err


class TestSweepExplain:
    def test_explain_reports_clean_lockstep(self, capsys):
        assert main(["sweep", "--systems", "A", "B", "--days", "0.05",
                     "--dt", "600", "--batch", "on", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "compiled tiers: every scenario rode a compiled path" in out

    def test_explain_tables_capability_refusals(self, capsys):
        assert main(["sweep", "--systems", "A", "--days", "0.05",
                     "--dt", "600", "--fast", "off", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "missing capability" in out
        assert "compiled execution" in out
        assert "fast=False forces the per-scenario legacy path" in out


class TestExperimentCommand:
    def test_e6_runs(self, capsys):
        assert main(["experiment", "e6"]) == 0
        assert "break-even" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])


class TestAuditCommand:
    def test_audit_runs(self, capsys):
        assert main(["audit", "A", "--days", "0.5", "--dt", "300"]) == 0
        out = capsys.readouterr().out
        assert "Energy audit" in out
        assert "end-to-end efficiency" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestAdviseCommand:
    def test_advise_runs(self, capsys):
        assert main(["advise", "--env", "indoor", "--days", "0.5",
                     "--dt", "600"]) == 0
        out = capsys.readouterr().out
        assert "recommendation" in out
        assert "Deployment advice" in out


class TestSpecHashFlag:
    def test_prints_the_content_address(self, capsys):
        assert main(["spec", "C", "--hash"]) == 0
        digest = capsys.readouterr().out.strip()
        assert len(digest) == 64
        int(digest, 16)  # hex SHA-256

    def test_hash_is_deterministic_and_spec_sensitive(self, capsys):
        main(["spec", "C", "--hash"])
        first = capsys.readouterr().out.strip()
        main(["spec", "C", "--hash"])
        assert capsys.readouterr().out.strip() == first
        main(["spec", "A", "--hash"])
        assert capsys.readouterr().out.strip() != first
        # Wrapping the system in a RunSpec changes the addressed document.
        main(["spec", "C", "--env", "outdoor", "--hash"])
        assert capsys.readouterr().out.strip() != first


class TestCatalogCLI:
    SWEEP = ["sweep", "--systems", "C", "--envs", "outdoor",
             "--days", "0.05", "--dt", "300", "--seed", "3"]

    def _seed_store(self, store, capsys):
        assert main(self.SWEEP + ["--catalog", store]) == 0
        return capsys.readouterr().out

    def test_sweep_dedup_cycle_reports_hits(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        first = self._seed_store(store, capsys)
        assert "catalog: 0 hit(s), 1 miss(es), 1 archived" in first
        assert main(self.SWEEP + ["--catalog", store]) == 0
        second = capsys.readouterr().out
        assert "catalog: 1 hit(s), 0 miss(es), 0 archived" in second
        # The cached rows render identically — only the summary differs.
        strip = lambda s: [line for line in s.splitlines()  # noqa: E731
                           if not line.startswith("catalog:")]
        assert strip(first) == strip(second)

    def test_mc_catalog_json_carries_the_report(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = ["mc", "C", "--days", "0.05", "--dt", "300",
                "--replicates", "2", "--seed", "11", "--json",
                "--catalog", store]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["catalog"]["misses"] == 2
        assert payload["catalog"]["archived"] == 2
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["catalog"]["hits"] == 2
        assert payload["catalog"]["misses"] == 0

    def test_ls_renders_runs_with_hit_counts(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._seed_store(store, capsys)
        main(self.SWEEP + ["--catalog", store])
        capsys.readouterr()
        assert main(["catalog", "ls", store]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out
        assert "ambimax" in out
        assert "outdoor" in out

    def test_ls_empty_store(self, tmp_path, capsys):
        store = str(tmp_path / "empty")
        assert main(["catalog", "ls", store]) == 0
        assert "no run records" in capsys.readouterr().out

    def test_show_resolves_a_prefix(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._seed_store(store, capsys)
        main(["catalog", "ls", store])
        capsys.readouterr()
        from repro.catalog import Catalog
        record = next(iter(Catalog(store).manifest))
        assert main(["catalog", "show", store, record.run_id[:8]]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["record"]["run_id"] == record.run_id
        assert payload["spec_document"]["kind"] == "scenario-key"
        assert main(["catalog", "show", store, "zzz-no-such"]) == 2

    def test_query_filters_and_json(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._seed_store(store, capsys)
        assert main(["catalog", "query", store, "--system", "ambimax",
                     "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["environment"] == "outdoor"
        assert main(["catalog", "query", store, "--system", "ehlink"]) == 0
        assert "no matching records" in capsys.readouterr().out
        assert main(["catalog", "query", store, "--metric-band",
                     "uptime_fraction", "-", "1.0", "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 1
        assert main(["catalog", "query", store, "--metric-band",
                     "uptime_fraction", "bogus", "1.0"]) == 2

    def test_gc_stale_prunes_superseded_runs(self, tmp_path, capsys,
                                             monkeypatch):
        store = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_CODE_VERSION", "v-old")
        self._seed_store(store, capsys)
        monkeypatch.setenv("REPRO_CODE_VERSION", "v-new")
        assert main(["catalog", "gc", store, "--stale", "--dry-run"]) == 0
        assert "would remove 1 record(s)" in capsys.readouterr().out
        assert main(["catalog", "gc", store, "--stale"]) == 0
        assert "removed 1 record(s)" in capsys.readouterr().out
        assert main(["catalog", "ls", store]) == 0
        assert "no run records" in capsys.readouterr().out

    def test_bench_emits_the_trajectory_document(self, tmp_path, capsys,
                                                 monkeypatch):
        # Point the legacy-trajectory lookup away from the repo's real
        # BENCH_sweep.json so the regenerated document is exactly the
        # store's contents.
        monkeypatch.setenv("BENCH_SWEEP_JSON",
                           str(tmp_path / "no-legacy.json"))
        store = str(tmp_path / "store")
        from repro.catalog import Catalog
        Catalog(store).append_bench("sweep", {"speedup": 12.0})
        assert main(["catalog", "bench", store]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["runs"] == [{"benchmark": "sweep",
                                     "speedup": 12.0}]
        out_file = tmp_path / "BENCH_sweep.json"
        assert main(["catalog", "bench", store, "-o",
                     str(out_file)]) == 0
        assert json.loads(out_file.read_text()) == document

    def test_bench_seeds_the_store_from_the_legacy_file(self, tmp_path,
                                                        capsys,
                                                        monkeypatch):
        """Regression: regenerating BENCH_sweep.json on a fresh clone
        (empty store, committed trajectory) must import the legacy
        history instead of truncating the file to []."""
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps(
            {"runs": [{"benchmark": "sweep", "speedup": 12.0}]}))
        monkeypatch.setenv("BENCH_SWEEP_JSON", str(legacy))
        store = str(tmp_path / "store")
        out_file = tmp_path / "out.json"
        assert main(["catalog", "bench", store, "-o",
                     str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "imported 1 legacy sample(s)" in out
        assert json.loads(out_file.read_text())["runs"] == \
            [{"benchmark": "sweep", "speedup": 12.0}]
        # Idempotent: a second regeneration imports nothing new.
        assert main(["catalog", "bench", store, "-o",
                     str(out_file)]) == 0
        assert "imported" not in capsys.readouterr().out

    def test_bench_refuses_to_write_an_empty_trajectory(self, tmp_path,
                                                        capsys,
                                                        monkeypatch):
        monkeypatch.setenv("BENCH_SWEEP_JSON",
                           str(tmp_path / "no-legacy.json"))
        store = str(tmp_path / "empty-store")
        out_file = tmp_path / "out.json"
        assert main(["catalog", "bench", store, "-o",
                     str(out_file)]) == 1
        assert "empty" in capsys.readouterr().err
        assert not out_file.exists()

    def test_unreadable_catalog_is_a_clean_error(self, tmp_path, capsys):
        root = tmp_path / "broken"
        root.mkdir()
        (root / "catalog.json").write_text('{"layout": 99}\n')
        assert main(["catalog", "ls", str(root)]) == 2
        assert "cannot open catalog" in capsys.readouterr().err
