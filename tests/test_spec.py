"""Tests for the declarative spec layer (repro.spec).

Acceptance gates:

* every Table I letter's canonical spec survives dict -> JSON -> rebuild
  and simulates bit-identically to the hand-built system;
* a spec-driven process-parallel sweep (pure data, no module-level
  factories) matches the sequential legacy-factory sweep row-for-row.
"""

import json
import pickle
from functools import partial

import numpy as np
import pytest

from repro.environment.composite import outdoor_environment
from repro.simulation import ScenarioSpec, SweepRunner, simulate
from repro.simulation.recorder import SCALAR_COLUMNS
from repro.spec import (
    REGISTRY,
    ComponentSpec,
    EnvironmentSpec,
    RunSpec,
    SweepSpec,
    SystemSpec,
    build,
    build_component,
    build_environment,
    describe_registry,
    load_spec,
    run,
    run_sweep,
    spec_for,
    spec_from_dict,
    to_scenario,
)
from repro.systems import SYSTEM_BUILDERS, build_system

DAY = 86_400.0
LETTERS = sorted(SYSTEM_BUILDERS)

#: Short shared environment for identity checks: enough steps to exercise
#: managers and storage routing, short enough to keep the suite fast.
ENV_KWARGS = dict(duration=0.15 * DAY, dt=300.0, seed=11)


def short_env():
    return outdoor_environment(**ENV_KWARGS)


class TestRegistry:
    def test_all_categories_populated(self):
        for category in ("harvester", "storage", "tracker", "converter",
                         "manager", "node", "environment", "system"):
            assert REGISTRY.names(category), category

    def test_seven_systems_registered(self):
        assert REGISTRY.names("system") == sorted(
            ["smart_power_unit", "plug_and_play", "ambimax", "mpwinode",
             "max17710_eval", "cymbet_eval", "ehlink"])

    def test_parameters_are_introspectable(self):
        params = REGISTRY.parameters("harvester", "photovoltaic")
        assert params["area_cm2"] == {"default": 50.0, "required": False}
        assert "efficiency" in params

    def test_unknown_lookups_fail_clearly(self):
        with pytest.raises(KeyError, match="registered harvester"):
            REGISTRY.get("harvester", "antimatter")
        with pytest.raises(KeyError, match="category"):
            REGISTRY.get("flux_capacitor", "x")

    def test_cross_module_name_collision_rejected(self):
        """Regression: a same-named factory from a different module must
        not silently overwrite an existing registration."""
        from repro.spec.registry import ComponentRegistry
        registry = ComponentRegistry()

        @registry.register("harvester", "clash")
        class Dupe:  # noqa: F811
            pass

        impostor = type("Dupe", (), {})
        impostor.__module__ = "somewhere.else"
        with pytest.raises(ValueError, match="already registered"):
            registry.register("harvester", "clash")(impostor)
        # Re-registering the same definition stays tolerated.
        assert registry.register("harvester", "clash")(Dupe) is Dupe

    def test_describe_is_jsonable(self):
        catalog = describe_registry()
        text = json.dumps(catalog)
        assert "photovoltaic" in text
        assert "ambimax" in text


class TestComponentSpecs:
    def test_component_roundtrip(self):
        spec = ComponentSpec("harvester", "photovoltaic",
                             {"area_cm2": 12.5, "name": "pv"})
        assert ComponentSpec.from_json(spec.to_json()) == spec

    def test_component_builds(self):
        pv = build_component(ComponentSpec(
            "harvester", "photovoltaic", {"area_cm2": 12.5}))
        assert pv.area_cm2 == 12.5

    def test_nested_component_specs_resolve(self):
        spec = SystemSpec("ambimax", params={
            "manager": ComponentSpec("manager", "threshold",
                                     {"backup_on_soc": 0.2,
                                      "backup_off_soc": 0.4}),
        })
        rebuilt = SystemSpec.from_json(spec.to_json())
        assert rebuilt == spec
        system = build(rebuilt)
        assert type(system.manager).__name__ == "ThresholdManager"
        assert system.manager.backup_on_soc == 0.2

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            SystemSpec("")
        with pytest.raises(ValueError):
            ComponentSpec("harvester", "")
        with pytest.raises(TypeError):
            RunSpec(system="ambimax",
                    environment=EnvironmentSpec("outdoor"))

    def test_non_dict_params_rejected_at_construction(self):
        """Regression: ``"params": null`` in a config must fail at load
        time with a clear message, not deep inside factory_kwargs."""
        for bad in (None, ["a"], "x"):
            with pytest.raises(TypeError, match="params must be a dict"):
                SystemSpec("ambimax", params=bad)
            with pytest.raises(TypeError, match="params must be a dict"):
                EnvironmentSpec("outdoor", params=bad)
        with pytest.raises(TypeError, match="params must be a dict"):
            EnvironmentSpec.from_dict(
                {"kind": "environment", "environment": "outdoor",
                 "params": None})

    def test_non_string_dict_keys_normalize(self):
        """Regression: non-string dict keys stringify at construction so
        authored and round-tripped specs are equal."""
        spec = EnvironmentSpec("outdoor", params={"profile": {1: 0.5}})
        assert spec.params == {"profile": {"1": 0.5}}
        assert EnvironmentSpec.from_json(spec.to_json()) == spec

    def test_spec_from_dict_dispatches(self):
        run_spec = RunSpec(system=spec_for("A"),
                           environment=EnvironmentSpec("outdoor", seed=1))
        assert spec_from_dict(run_spec.to_dict()) == run_spec
        with pytest.raises(ValueError, match="kind"):
            spec_from_dict({"no": "tag"})

    def test_build_rejects_execution_specs(self):
        run_spec = RunSpec(system=spec_for("A"),
                           environment=EnvironmentSpec("outdoor"))
        with pytest.raises(TypeError, match="run_sweep|run"):
            build(run_spec)


class TestCanonicalSpecs:
    @pytest.mark.parametrize("letter", LETTERS)
    def test_spec_roundtrips_to_identical_metrics(self, letter):
        """A-G: spec -> JSON -> build simulates identically to the
        hand-coded builder (identical RunMetrics on a short run)."""
        spec = spec_for(letter)
        rebuilt = SystemSpec.from_json(spec.to_json())
        assert rebuilt == spec
        via_spec = simulate(build(rebuilt), short_env())
        via_builder = simulate(build_system(letter), short_env())
        assert via_spec.metrics == via_builder.metrics

    @pytest.mark.parametrize("letter", LETTERS)
    def test_recorded_columns_bit_identical(self, letter):
        """A-G: every recorded column matches bit-for-bit."""
        rec_spec = simulate(
            build(SystemSpec.from_json(spec_for(letter).to_json())),
            short_env()).recorder
        rec_builder = simulate(build_system(letter), short_env()).recorder
        assert len(rec_spec) == len(rec_builder)
        for name in SCALAR_COLUMNS:
            assert np.array_equal(rec_spec.column(name),
                                  rec_builder.column(name)), name
        for i in range(rec_builder.n_stores):
            assert np.array_equal(rec_spec.store_energy_trace(i).values,
                                  rec_builder.store_energy_trace(i).values)

    def test_overrides_flow_into_builder(self):
        system = build(spec_for("C", initial_soc=0.9))
        assert system.bank.stores[0].energy_j > \
            build(spec_for("C", initial_soc=0.1)).bank.stores[0].energy_j

    def test_spec_for_rejects_bad_letters(self):
        with pytest.raises(KeyError, match="choose from"):
            spec_for("Z")
        with pytest.raises(KeyError, match="string"):
            spec_for(3)


class TestRunAndSweepSpecs:
    def test_run_spec_executes_like_simulate(self):
        spec = RunSpec(system=spec_for("D"),
                       environment=EnvironmentSpec("outdoor", **ENV_KWARGS))
        reloaded = RunSpec.from_json(spec.to_json())
        result = run(reloaded)
        direct = simulate(build_system("D"), short_env())
        assert result.metrics == direct.metrics

    def test_run_seed_overrides_environment_seed(self):
        env_spec = EnvironmentSpec("outdoor", duration=0.1 * DAY, dt=600.0,
                                   seed=1)
        base = run(RunSpec(system=spec_for("C"), environment=env_spec))
        reseeded = run(RunSpec(system=spec_for("C"), environment=env_spec,
                               seed=2))
        assert base.metrics != reseeded.metrics
        direct = simulate(build_system("C"),
                          outdoor_environment(duration=0.1 * DAY, dt=600.0,
                                              seed=2))
        assert reseeded.metrics == direct.metrics

    def test_sweep_spec_roundtrip(self):
        spec = SweepSpec.grid(
            [spec_for(x) for x in "ABC"],
            [EnvironmentSpec("outdoor", **ENV_KWARGS)],
            name="grid-test")
        assert SweepSpec.from_json(spec.to_json()) == spec
        assert [r.label for r in spec.runs] == [
            "smart_power_unit@outdoor", "plug_and_play@outdoor",
            "ambimax@outdoor"]

    def test_grid_disambiguates_same_system_variants(self):
        """Regression: two variants of one platform in a grid must get
        unique row names, not collide in the runner."""
        spec = SweepSpec.grid(
            [spec_for("A", initial_soc=0.2), spec_for("A", initial_soc=0.8)],
            [EnvironmentSpec("outdoor", **ENV_KWARGS)])
        names = [r.label for r in spec.runs]
        assert names == ["smart_power_unit@outdoor",
                         "smart_power_unit@outdoor#2"]
        result = run_sweep(spec, processes=1)
        assert (result[names[0]].metrics.harvested_delivered_j !=
                result[names[1]].metrics.harvested_delivered_j or
                result[names[0]].metrics != result[names[1]].metrics)

    def test_tuple_params_roundtrip_losslessly(self):
        """Regression: tuples normalize to lists at construction, so an
        authored spec equals its JSON round-trip."""
        spec = RunSpec(system=SystemSpec("ambimax"),
                       environment=EnvironmentSpec(
                           "outdoor",
                           params={"overcast_windows": ((0.0, 3600.0),)}),
                       params={"knobs": (1, 2)})
        assert spec.params == {"knobs": [1, 2]}
        assert RunSpec.from_json(spec.to_json()) == spec
        build_environment(spec.environment)  # factory accepts the list form

    def test_load_spec_file(self, tmp_path):
        spec = RunSpec(system=spec_for("E"),
                       environment=EnvironmentSpec("urban-rf", seed=0))
        path = tmp_path / "run.json"
        spec.save(path)
        assert load_spec(path) == spec


class TestSpecDrivenSweeps:
    def _spec_scenarios(self):
        return [
            to_scenario(RunSpec(
                system=spec_for(letter),
                environment=EnvironmentSpec("outdoor", duration=0.15 * DAY,
                                            dt=300.0),
                name=f"{letter}@outdoor",
                seed=11,
                params={"system": letter},
            ))
            for letter in LETTERS
        ]

    def _legacy_scenarios(self):
        return [
            ScenarioSpec(
                name=f"{letter}@outdoor",
                system=partial(build_system, letter),
                environment=partial(outdoor_environment,
                                    duration=0.15 * DAY, dt=300.0),
                seed=11,
                params={"system": letter},
            )
            for letter in LETTERS
        ]

    def test_spec_scenarios_pickle_without_module_factories(self):
        """Acceptance: pure-spec scenarios are plain data — they pickle
        unconditionally, with no module-level factory functions."""
        scenarios = self._spec_scenarios()
        for scenario in scenarios:
            assert isinstance(scenario.system, SystemSpec)
            assert isinstance(scenario.environment, EnvironmentSpec)
        payloads = [(s, "auto") for s in scenarios]
        assert pickle.loads(pickle.dumps(payloads))
        assert SweepRunner._picklable(payloads)

    def test_parallel_spec_sweep_matches_sequential_legacy(self):
        """Acceptance: SweepRunner with processes>1 on pure-spec
        scenarios returns rows identical to the sequential legacy run."""
        parallel = SweepRunner(processes=3).run(self._spec_scenarios())
        sequential = SweepRunner(processes=1).run(self._legacy_scenarios())
        assert len(parallel) == len(sequential) == len(LETTERS)
        for spec_row, legacy_row in zip(parallel, sequential):
            assert spec_row.name == legacy_row.name
            assert spec_row.metrics == legacy_row.metrics
            assert spec_row.n_steps == legacy_row.n_steps
            assert spec_row.params == legacy_row.params

    def test_run_sweep_executes_sweep_spec(self):
        spec = SweepSpec.grid(
            [spec_for(x) for x in "AD"],
            [EnvironmentSpec("outdoor", **ENV_KWARGS)])
        result = run_sweep(SweepSpec.from_json(spec.to_json()), processes=2)
        direct = simulate(build_system("A"), short_env())
        assert result["smart_power_unit@outdoor"].metrics == direct.metrics

    def test_environment_spec_builds_standalone(self):
        env = build_environment(EnvironmentSpec("outdoor", **ENV_KWARGS))
        reference = short_env()
        assert env.duration == reference.duration
        for source in reference.sources:
            assert np.array_equal(env.trace(source).values,
                                  reference.trace(source).values)

    def test_bad_system_in_scenario_rejected(self):
        scenario = ScenarioSpec(name="bad", system="not-a-system",
                                environment=partial(outdoor_environment,
                                                    duration=3600.0))
        with pytest.raises(TypeError, match="system"):
            SweepRunner(processes=1).run([scenario])
