"""Tests for the deployment advisor."""

import pytest

from repro.analysis import advise
from repro.environment import (
    Environment,
    SourceType,
    Trace,
    indoor_industrial_environment,
    outdoor_environment,
)

DAY = 86_400.0


@pytest.fixture(scope="module")
def outdoor_advice():
    return advise(outdoor_environment(duration=2 * DAY, dt=300.0, seed=13))


@pytest.fixture(scope="module")
def indoor_advice():
    return advise(indoor_industrial_environment(duration=2 * DAY, dt=300.0,
                                                seed=13))


class TestAdvise:
    def test_all_platforms_assessed(self, outdoor_advice):
        assert {a.letter for a in outdoor_advice.assessments} == set("ABCDEFG")

    def test_sorted_best_first(self, outdoor_advice):
        scores = [a.score for a in outdoor_advice.assessments]
        assert scores == sorted(scores, reverse=True)

    def test_vibration_only_platform_loses_outdoors(self, outdoor_advice):
        # System G (piezo/inductive/RF) has nothing to harvest outdoors.
        assert outdoor_advice.assessments[-1].letter == "G"
        assert outdoor_advice.by_letter("G").source_match == 0.0

    def test_indoor_favours_indoor_platforms(self, indoor_advice):
        # The top of the indoor ranking must be one of the broad-input
        # indoor-capable platforms, not the outdoor specialists.
        assert indoor_advice.best.letter in ("B", "F")

    def test_indoor_b_is_viable(self, indoor_advice):
        # System B is *designed* for this deployment: full uptime expected.
        assert indoor_advice.by_letter("B").uptime_fraction == 1.0

    def test_source_match_reflects_exploitable_channels(self, indoor_advice):
        # F supports light+RF+thermal+vibration: everything the indoor
        # environment offers.
        assert indoor_advice.by_letter("F").source_match == 1.0

    def test_report_renders(self, outdoor_advice):
        text = outdoor_advice.report()
        assert "recommendation" in text
        assert "Deployment advice" in text

    def test_dead_environment_rejected(self):
        env = Environment({}, name="void")
        with pytest.raises(ValueError):
            advise(env)

    def test_explicit_days_override(self):
        env = Environment(
            {SourceType.LIGHT: Trace.constant(300.0, 2 * DAY, dt=600.0)},
            name="flat")
        advice = advise(env, days=0.5)
        assert advice.days == pytest.approx(0.5)
