"""Cross-module property-based tests: system-level invariants.

These are the invariants that must hold for *any* composition of the
library's parts — the contract a downstream user relies on when building
platforms the test suite never saw.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import make_reference_system
from repro.conditioning import FixedVoltage, OracleMPPT, PerturbObserve
from repro.core import StaticManager
from repro.environment import AmbientSample, Environment, SourceType, Trace
from repro.harvesters import MicroWindTurbine, PhotovoltaicCell
from repro.simulation import simulate
from repro.storage import IdealStorage, LiIonBattery, Supercapacitor


def _flat_env(light, wind, duration=3600.0, dt=60.0):
    return Environment({
        SourceType.LIGHT: Trace.constant(light, duration, dt=dt),
        SourceType.WIND: Trace.constant(wind, duration, dt=dt),
    })


@settings(max_examples=25, deadline=None)
@given(
    light=st.floats(min_value=0.0, max_value=1000.0),
    wind=st.floats(min_value=0.0, max_value=15.0),
    interval=st.floats(min_value=1.0, max_value=600.0),
)
def test_step_accounting_invariants(light, wind, interval):
    """Per-step flows always satisfy raw <= mpp, delivered <= raw,
    accepted <= delivered, supplied <= demand."""
    system = make_reference_system(
        [PhotovoltaicCell(area_cm2=25.0), MicroWindTurbine()],
        capacitance_f=20.0, measurement_interval_s=interval)
    sample = AmbientSample({SourceType.LIGHT: light, SourceType.WIND: wind})
    for _ in range(5):
        record = system.step(sample, 60.0)
        assert record.harvest_raw_w <= record.harvest_mpp_w * (1 + 1e-9) + 1e-12
        assert record.harvest_delivered_w <= record.harvest_raw_w + 1e-12
        assert record.charge_accepted_w <= record.harvest_delivered_w + 1e-12
        assert record.node_supplied_w <= record.node_demand_w + 1e-12
        assert record.quiescent_w >= 0.0


@settings(max_examples=20, deadline=None)
@given(
    light=st.floats(min_value=0.0, max_value=1000.0),
    soc=st.floats(min_value=0.05, max_value=0.95),
)
def test_energy_never_created(light, soc):
    """Total system energy (stored + consumed) never exceeds stored-start
    plus everything the harvesters delivered."""
    system = make_reference_system(
        [PhotovoltaicCell(area_cm2=25.0)],
        stores=[IdealStorage(capacity_j=500.0, initial_soc=soc)],
        measurement_interval_s=30.0)
    e_start = system.bank.total_energy_j
    env = _flat_env(light, 0.0, duration=1800.0)
    result = simulate(system, env)
    m = result.metrics
    e_end = system.bank.total_energy_j
    budget = e_start + m.charge_accepted_j
    spent = e_end + m.node_consumed_j + m.quiescent_j
    # Losses only ever subtract, so stored+spent <= budget.
    assert spent <= budget * (1 + 1e-9) + 1e-6


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=1.0, max_value=1000.0))
def test_oracle_tracker_dominates_everywhere(light):
    """No tracker extracts more than the oracle at any ambient level."""
    pv = PhotovoltaicCell(area_cm2=25.0)
    oracle = OracleMPPT()
    challengers = [PerturbObserve(), FixedVoltage(2.0), FixedVoltage(5.0)]
    oracle_power = pv.power_at(oracle.step(pv, light, 1.0).voltage, light)
    for tracker in challengers:
        for _ in range(30):
            decision = tracker.step(pv, light, 1.0)
        power = pv.power_at(decision.voltage, light) * decision.duty
        assert power <= oracle_power * (1 + 1e-9)


@settings(max_examples=20, deadline=None)
@given(
    c1=st.floats(min_value=1.0, max_value=50.0),
    c2=st.floats(min_value=1.0, max_value=50.0),
    power=st.floats(min_value=0.0, max_value=2.0),
)
def test_bank_charge_conserves_at_store_level(c1, c2, power):
    """Bank-accepted power equals the sum of store-level acceptances."""
    from repro.core import StorageBank
    stores = [Supercapacitor(capacitance_f=c1, initial_soc=0.3),
              Supercapacitor(capacitance_f=c2, initial_soc=0.3)]
    bank = StorageBank(stores)
    e_before = bank.total_energy_j
    accepted = bank.charge(power, 60.0)
    gained = bank.total_energy_j - e_before
    # Supercap charging is lossless in the model: gain == accepted energy.
    assert gained == pytest.approx(accepted * 60.0, rel=1e-9, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    demand=st.floats(min_value=0.0, max_value=5.0),
    soc=st.floats(min_value=0.0, max_value=1.0),
)
def test_bank_discharge_never_overdelivers(demand, soc):
    from repro.core import StorageBank
    bank = StorageBank([LiIonBattery(capacity_mah=100.0, initial_soc=soc)])
    e_before = bank.total_energy_j
    delivered = bank.discharge(demand, 60.0)
    assert delivered <= demand + 1e-12
    # Energy drawn from the store covers the delivery (with losses).
    assert e_before - bank.total_energy_j >= delivered * 60.0 - 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_simulation_is_deterministic_per_seed(seed):
    from repro.environment import outdoor_environment

    def run():
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=20.0)],
            capacitance_f=20.0, measurement_interval_s=120.0,
            manager=StaticManager())
        env = outdoor_environment(duration=6 * 3600.0, dt=600.0, seed=seed)
        return simulate(system, env).metrics

    a, b = run(), run()
    assert a.harvested_delivered_j == b.harvested_delivered_j
    assert a.node_consumed_j == b.node_consumed_j
    assert a.uptime_fraction == b.uptime_fraction
