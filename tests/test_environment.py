"""Tests for ambient channels and the synthetic environment generators."""

import numpy as np
import pytest

from repro.environment import (
    AmbientSample,
    BroadcastRFModel,
    DiurnalThermalModel,
    Environment,
    IrrigationFlowModel,
    MachineThermalModel,
    MachineVibrationModel,
    OfficeLightingModel,
    ReaderRFModel,
    SolarModel,
    SourceType,
    StreamFlowModel,
    Trace,
    WindModel,
    lux_to_irradiance,
)

DAY = 86_400.0


class TestSourceType:
    def test_every_source_has_units(self):
        for source in SourceType:
            assert isinstance(source.units, str) and source.units

    def test_light_units(self):
        assert SourceType.LIGHT.units == "W/m^2"


class TestAmbientSample:
    def test_missing_channel_reads_zero(self):
        assert AmbientSample({}).get(SourceType.WIND) == 0.0

    def test_with_channel_is_functional(self):
        base = AmbientSample({SourceType.LIGHT: 100.0})
        updated = base.with_channel(SourceType.WIND, 5.0)
        assert base.get(SourceType.WIND) == 0.0
        assert updated.get(SourceType.WIND) == 5.0
        assert updated.get(SourceType.LIGHT) == 100.0


class TestEnvironment:
    def test_rejects_non_sourcetype_keys(self):
        with pytest.raises(TypeError):
            Environment({"light": Trace([1.0], dt=1.0)})

    def test_rejects_mixed_dt(self):
        with pytest.raises(ValueError, match="share dt"):
            Environment({
                SourceType.LIGHT: Trace([1.0], dt=1.0),
                SourceType.WIND: Trace([1.0], dt=2.0),
            })

    def test_sample_returns_all_channels(self):
        env = Environment({
            SourceType.LIGHT: Trace([100.0, 200.0], dt=10.0),
            SourceType.WIND: Trace([3.0, 4.0], dt=10.0),
        })
        sample = env.sample(10.0)
        assert sample.get(SourceType.LIGHT) == 200.0
        assert sample.get(SourceType.WIND) == 4.0

    def test_duration_is_longest_channel(self):
        env = Environment({
            SourceType.LIGHT: Trace([1.0] * 10, dt=1.0),
            SourceType.WIND: Trace([1.0] * 5, dt=1.0),
        })
        assert env.duration == 10.0

    def test_merged_with_overrides(self):
        a = Environment({SourceType.LIGHT: Trace([1.0], dt=1.0)}, name="a")
        b = Environment({SourceType.LIGHT: Trace([9.0], dt=1.0)}, name="b")
        merged = a.merged_with(b)
        assert merged.trace(SourceType.LIGHT).values[0] == 9.0

    def test_has(self):
        env = Environment({SourceType.LIGHT: Trace([1.0], dt=1.0)})
        assert env.has(SourceType.LIGHT)
        assert not env.has(SourceType.RF)


class TestSolarModel:
    def test_seed_determinism(self):
        a = SolarModel(seed=7).trace(DAY, dt=300.0)
        b = SolarModel(seed=7).trace(DAY, dt=300.0)
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = SolarModel(seed=1).trace(DAY, dt=300.0)
        b = SolarModel(seed=2).trace(DAY, dt=300.0)
        assert not np.array_equal(a.values, b.values)

    def test_night_is_dark(self):
        model = SolarModel(day_fraction=0.5, cloudiness=0.0, seed=0)
        # Midnight (t=0) and 3am must be dark with a noon-centred sun.
        assert model.clear_sky(0.0) == 0.0
        assert model.clear_sky(3 * 3600.0) == 0.0

    def test_noon_is_peak(self):
        model = SolarModel(peak_irradiance=800.0, day_fraction=0.5)
        assert model.clear_sky(DAY / 2) == pytest.approx(800.0)

    def test_clear_sky_never_exceeds_peak(self):
        model = SolarModel(peak_irradiance=1000.0)
        values = [model.clear_sky(t) for t in np.arange(0, DAY, 600)]
        assert max(values) <= 1000.0

    def test_trace_nonnegative_and_bounded(self):
        tr = SolarModel(seed=3).trace(2 * DAY, dt=300.0)
        assert tr.min() >= 0.0
        assert tr.max() <= 1000.0

    def test_overcast_window_attenuates(self):
        clear = SolarModel(cloudiness=0.0, seed=0).trace(DAY, dt=300.0)
        lull = SolarModel(cloudiness=0.0, seed=0).trace(
            DAY, dt=300.0, overcast_windows=((0.0, DAY),))
        noon = int((DAY / 2) / 300)
        assert lull.values[noon] == pytest.approx(0.07 * clear.values[noon])

    def test_day_fraction_validation(self):
        with pytest.raises(ValueError):
            SolarModel(day_fraction=0.01)

    def test_cloudiness_validation(self):
        with pytest.raises(ValueError):
            SolarModel(cloudiness=1.5)

    def test_longer_day_more_energy(self):
        winter = SolarModel(day_fraction=0.33, cloudiness=0.0).trace(DAY, 300)
        summer = SolarModel(day_fraction=0.67, cloudiness=0.0).trace(DAY, 300)
        assert summer.integral() > winter.integral()


class TestWindModel:
    def test_seed_determinism(self):
        a = WindModel(seed=5).trace(DAY, dt=300.0)
        b = WindModel(seed=5).trace(DAY, dt=300.0)
        assert np.array_equal(a.values, b.values)

    def test_nonnegative(self):
        tr = WindModel(seed=9).trace(2 * DAY, dt=300.0)
        assert tr.min() >= 0.0

    def test_long_run_mean_near_target(self):
        tr = WindModel(mean_speed=5.0, diurnal_amplitude=0.0,
                       gustiness=0.0, seed=11).trace(30 * DAY, dt=1800.0)
        assert tr.mean() == pytest.approx(5.0, rel=0.25)

    def test_calm_window_reduces_speed(self):
        normal = WindModel(seed=2).trace(DAY, dt=300.0)
        calmed = WindModel(seed=2).trace(DAY, dt=300.0,
                                         calm_windows=((0.0, DAY),))
        assert calmed.mean() == pytest.approx(0.15 * normal.mean(), rel=1e-9)

    def test_zero_mean_speed_gives_zero_trace(self):
        tr = WindModel(mean_speed=0.0, seed=1).trace(DAY, dt=600.0)
        assert tr.max() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindModel(mean_speed=-1.0)
        with pytest.raises(ValueError):
            WindModel(weibull_k=0.0)
        with pytest.raises(ValueError):
            WindModel(diurnal_amplitude=1.0)


class TestIndoorLight:
    def test_lux_conversion(self):
        assert lux_to_irradiance(120.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            lux_to_irradiance(-1.0)

    def test_weekday_lit_weekend_dark(self):
        model = OfficeLightingModel(seed=0)
        week = model.trace(7 * DAY, dt=600.0, start_weekday=0)
        # Working-hours mean (Tue 10:00-16:00) far exceeds Sunday's.
        def window_mean(day, h0, h1):
            i0 = int((day * DAY + h0 * 3600) / 600)
            i1 = int((day * DAY + h1 * 3600) / 600)
            return week.values[i0:i1].mean()
        assert window_mean(1, 10, 16) > 5 * window_mean(6, 10, 16)

    def test_night_is_dark(self):
        model = OfficeLightingModel(seed=0)
        tr = model.trace(DAY, dt=600.0)
        night = tr.values[: int(5 * 3600 / 600)]
        assert night.max() == pytest.approx(0.0)

    def test_levels_are_office_scale(self):
        tr = OfficeLightingModel(work_lux=400.0, seed=1).trace(DAY, dt=600.0)
        # Indoor harvestable irradiance is watts per m^2, not hundreds.
        assert tr.max() < 10.0

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            OfficeLightingModel(on_hour=19.0, off_hour=8.0)


class TestThermalModels:
    def test_machine_gradient_follows_shift(self):
        tr = MachineThermalModel(seed=0).trace(DAY, dt=600.0)
        night = tr.values[: int(5 * 3600 / 600)]
        assert night.mean() < 2.0  # machine off at night

    def test_machine_determinism(self):
        a = MachineThermalModel(seed=4).trace(DAY, dt=600.0)
        b = MachineThermalModel(seed=4).trace(DAY, dt=600.0)
        assert np.array_equal(a.values, b.values)

    def test_diurnal_peaks_in_afternoon(self):
        tr = DiurnalThermalModel(amplitude=4.0, noise=0.0, seed=0).trace(
            DAY, dt=600.0)
        peak_index = int(np.argmax(tr.values))
        peak_hour = peak_index * 600.0 / 3600.0
        assert 12.0 <= peak_hour <= 16.0

    def test_nonnegative(self):
        assert DiurnalThermalModel(seed=1).trace(DAY, 600.0).min() >= 0.0
        assert MachineThermalModel(seed=1).trace(DAY, 600.0).min() >= 0.0


class TestVibration:
    def test_profile_traces_align(self):
        profile = MachineVibrationModel(seed=0).profile(DAY, dt=600.0)
        assert len(profile.acceleration) == len(profile.frequency)

    def test_night_is_quiet(self):
        tr = MachineVibrationModel(seed=0).trace(DAY, dt=600.0)
        night = tr.values[: int(5 * 3600 / 600)]
        assert night.max() == 0.0

    def test_frequency_stays_near_nominal(self):
        profile = MachineVibrationModel(base_frequency=50.0,
                                        seed=2).profile(2 * DAY, dt=600.0)
        assert profile.frequency.min() >= 45.0
        assert profile.frequency.max() <= 55.0


class TestRFModels:
    def test_broadcast_positive_and_fading(self):
        tr = BroadcastRFModel(mean_density=0.01, seed=0).trace(DAY, dt=600.0)
        assert tr.min() > 0.0
        assert tr.values.std() > 0.0  # fading actually varies

    def test_reader_is_bursty(self):
        tr = ReaderRFModel(burst_density=1.0, bursts_per_hour=6.0,
                           seed=0).trace(DAY, dt=60.0)
        on = tr.fraction_above(0.5)
        assert 0.0 < on < 0.5  # bursts exist but are sparse

    def test_reader_zero_rate_is_silent(self):
        tr = ReaderRFModel(bursts_per_hour=0.0, seed=0).trace(DAY, dt=600.0)
        assert tr.max() == 0.0


class TestWaterFlow:
    def test_irrigation_only_in_windows(self):
        model = IrrigationFlowModel(windows=((6.0, 8.0),),
                                    skip_probability=0.0, seed=0)
        tr = model.trace(DAY, dt=600.0)
        noon = int(12 * 3600 / 600)
        assert tr.values[noon] == 0.0
        window = tr.values[int(6.5 * 3600 / 600)]
        assert window > 0.0

    def test_stream_flows_continuously(self):
        tr = StreamFlowModel(mean_speed=0.8, seed=0).trace(DAY, dt=600.0)
        assert tr.fraction_above(0.0) > 0.95

    def test_window_validation(self):
        with pytest.raises(ValueError):
            IrrigationFlowModel(windows=((8.0, 6.0),))


class TestCompositeEnvironments:
    def test_outdoor_channels(self, outdoor_env):
        assert outdoor_env.has(SourceType.LIGHT)
        assert outdoor_env.has(SourceType.WIND)
        assert outdoor_env.has(SourceType.THERMAL)

    def test_indoor_channels(self, indoor_env):
        for source in (SourceType.LIGHT, SourceType.VIBRATION,
                       SourceType.THERMAL, SourceType.RF):
            assert indoor_env.has(source)

    def test_indoor_light_dimmer_than_outdoor(self, outdoor_env, indoor_env):
        out = outdoor_env.trace(SourceType.LIGHT).mean()
        ind = indoor_env.trace(SourceType.LIGHT).mean()
        assert out > 20 * ind
