"""The headline reproduction tests: Table I and Figures 1-2 (T1, F1, F2)."""

import networkx as nx
import pytest

from repro.analysis import (
    PAPER_TABLE_I,
    architecture_graph,
    compare_with_paper,
    generate_table1,
    render_architecture,
    render_table1,
)
from repro.analysis.table1 import ROW_LABELS, _parse_quiescent
from repro.systems import build_system


class TestPaperTranscription:
    def test_seven_devices(self):
        assert sorted(PAPER_TABLE_I) == list("ABCDEFG")

    def test_every_row_present_for_every_device(self):
        for letter, row in PAPER_TABLE_I.items():
            for label in ROW_LABELS:
                assert label in row, f"{letter} missing {label}"

    def test_quiescent_parser(self):
        amps, bound = _parse_quiescent("5 uA")
        assert amps == pytest.approx(5e-6) and bound is False
        amps, bound = _parse_quiescent("< 32 uA")
        assert amps == pytest.approx(32e-6) and bound is True


class TestTable1Reproduction:
    """T1: the regenerated table must match the paper cell-for-cell."""

    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_with_paper()

    def test_full_agreement(self, comparison):
        assert comparison.mismatches == (), comparison.report()
        assert comparison.agreement == 1.0

    def test_cell_count(self, comparison):
        # 7 devices x 10 rows.
        assert len(comparison.cells) == 70

    def test_render_contains_all_devices(self):
        text = render_table1()
        for name in ("Smart Power Unit", "Plug-and-Play", "AmbiMax",
                     "MPWiNode", "Maxim MAX17710 Eval", "Cymbet EVAL-09",
                     "Microstrain EH-Link"):
            assert name in text

    def test_render_contains_all_row_labels(self):
        text = render_table1()
        for label in ROW_LABELS:
            assert label in text

    def test_generated_rows_match_letters(self):
        rows = generate_table1()
        assert sorted(rows) == list("ABCDEFG")

    def test_comparison_detects_deliberate_mismatch(self):
        rows = generate_table1()
        # Sabotage one cell and confirm the differ catches it.
        import dataclasses
        rows["A"] = dataclasses.replace(rows["A"],
                                        swappable_sensor_node="No")
        comparison = compare_with_paper(rows)
        assert any(c.device == "A" and c.row == "Swappable Sensor Node"
                   for c in comparison.mismatches)


class TestFigure1:
    """F1: the Smart Power Unit block diagram (survey Fig. 1)."""

    @pytest.fixture(scope="class")
    def graph(self):
        return architecture_graph(build_system("A"))

    def test_three_harvest_paths_into_bus(self, graph):
        conditioners = [n for n, d in graph.nodes(data=True)
                        if d.get("role") == "input_conditioner"]
        assert len(conditioners) == 3
        for node in conditioners:
            assert graph.has_edge(node, "storage-bus")

    def test_mppt_on_every_input(self, graph):
        trackers = {d["tracker"] for n, d in graph.nodes(data=True)
                    if d.get("role") == "input_conditioner"}
        assert trackers == {"PerturbObserve"}

    def test_three_stores_on_bus(self, graph):
        stores = [n for n, d in graph.nodes(data=True)
                  if d.get("role") == "storage"]
        assert len(stores) == 3

    def test_fuel_cell_is_discharge_only(self, graph):
        fuel = next(n for n, d in graph.nodes(data=True)
                    if d.get("role") == "storage" and d.get("backup"))
        assert graph.has_edge(fuel, "storage-bus")
        assert not graph.has_edge("storage-bus", fuel)

    def test_buck_boost_output_path(self, graph):
        assert graph.nodes["output-conditioner"]["converter"] == \
            "BuckBoostConverter"
        assert graph.has_edge("storage-bus", "output-conditioner")
        assert graph.has_edge("output-conditioner", "embedded-device")

    def test_mcu_bidirectional_with_node(self, graph):
        # Fig. 1: the SPU MCU exchanges data with the sensor node (I2C).
        assert graph.has_edge("power-unit-mcu", "embedded-device")
        assert graph.has_edge("embedded-device", "power-unit-mcu")
        assert graph.edges["power-unit-mcu",
                           "embedded-device"]["kind"] == "data"

    def test_power_path_reaches_node_from_every_harvester(self, graph):
        power = nx.DiGraph((u, v) for u, v, d in graph.edges(data=True)
                           if d["kind"] == "power")
        harvesters = [n for n, d in graph.nodes(data=True)
                      if d.get("role") == "harvester"]
        for h in harvesters:
            assert nx.has_path(power, h, "embedded-device")

    def test_render_mentions_key_blocks(self):
        text = render_architecture(build_system("A"))
        assert "Smart Power Unit" in text
        assert "BuckBoostConverter" in text
        assert "fuel-cell" in text
        assert "power-unit-mcu" in text


class TestFigure2:
    """F2: the Plug-and-Play block diagram (survey Fig. 2)."""

    @pytest.fixture(scope="class")
    def system(self):
        return build_system("B")

    @pytest.fixture(scope="class")
    def graph(self, system):
        return architecture_graph(system)

    def test_six_module_slots(self, graph):
        slots = [n for n, d in graph.nodes(data=True)
                 if d.get("role") == "module_slot"]
        assert len(slots) == 6

    def test_every_slot_has_datasheet(self, graph):
        for node, data in graph.nodes(data=True):
            if data.get("role") == "module_slot":
                assert data["has_datasheet"], node

    def test_slots_mix_harvesters_and_storage(self, graph):
        kinds = [d["kind"] for n, d in graph.nodes(data=True)
                 if d.get("role") == "module_slot"]
        assert kinds.count("harvester") == 4
        assert kinds.count("storage") == 2

    def test_no_power_unit_mcu(self, graph):
        # Fig. 2: no on-board microcontroller; the node's MCU hosts the
        # intelligence (survey Sec. II.4).
        assert "power-unit-mcu" not in graph.nodes

    def test_data_links_go_to_embedded_device(self, graph):
        slots = [n for n, d in graph.nodes(data=True)
                 if d.get("role") == "module_slot"]
        for slot in slots:
            assert graph.has_edge(slot, "embedded-device")
            assert graph.edges[slot, "embedded-device"]["kind"] == "data"

    def test_ldo_output_stage(self, graph):
        assert graph.nodes["output-conditioner"]["converter"] == \
            "LinearRegulator"

    def test_fixed_point_conditioning(self, graph):
        trackers = {d["tracker"] for n, d in graph.nodes(data=True)
                    if d.get("role") == "input_conditioner"}
        assert trackers == {"FixedVoltage"}

    def test_render_mentions_slots(self, system):
        text = render_architecture(system)
        assert "Plug-and-Play" in text
        assert "slot[" in text
        assert "LinearRegulator" in text
