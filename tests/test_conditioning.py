"""Tests for converters, MPPT trackers, conditioners, interface circuits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conditioning import (
    BoostConverter,
    BuckBoostConverter,
    DiodeRectifier,
    FixedVoltage,
    FractionalOpenCircuit,
    IdealConverter,
    IncrementalConductance,
    InputConditioner,
    LinearRegulator,
    ModuleInterfaceCircuit,
    OracleMPPT,
    OutputConditioner,
    PerturbObserve,
    TrackerStep,
)
from repro.harvesters import (
    DeviceKind,
    ElectronicDatasheet,
    PhotovoltaicCell,
    ThermoelectricGenerator,
    attach_datasheet,
)
from repro.storage import Supercapacitor


class TestConverters:
    def test_ideal_is_lossless(self):
        c = IdealConverter()
        assert c.efficiency(1.0, 3.0, 5.0) == 1.0
        assert c.output_power(0.5, 3.0, 5.0) == 0.5

    def test_buckboost_light_load_collapse(self):
        c = BuckBoostConverter(peak_efficiency=0.9, overhead_power=100e-6)
        assert c.efficiency(1.0, 3.0, 3.3) == pytest.approx(0.9, rel=1e-3)
        assert c.efficiency(100e-6, 3.0, 3.3) == pytest.approx(0.45)
        assert c.efficiency(1e-6, 3.0, 3.3) < 0.01

    def test_buckboost_voltage_window(self):
        c = BuckBoostConverter(min_input_voltage=0.5, max_input_voltage=20.0)
        assert c.efficiency(1.0, 0.4, 3.3) == 0.0
        assert c.efficiency(1.0, 25.0, 3.3) == 0.0
        assert c.efficiency(1.0, 5.0, 3.3) > 0.0

    def test_boost_requires_step_up(self):
        c = BoostConverter()
        assert c.efficiency(1.0, 5.0, 3.3) == 0.0
        assert c.efficiency(1.0, 2.0, 3.3) > 0.0

    def test_input_power_inverts_output_power(self):
        c = BuckBoostConverter(peak_efficiency=0.9, overhead_power=100e-6)
        p_out = 0.01
        p_in = c.input_power(p_out, 4.0, 3.0)
        assert c.output_power(p_in, 4.0, 3.0) == pytest.approx(p_out,
                                                               rel=1e-6)

    def test_input_power_infinite_when_unable(self):
        c = BuckBoostConverter(min_input_voltage=1.0)
        assert c.input_power(0.01, 0.5, 3.0) == float("inf")

    def test_ldo_efficiency_is_voltage_ratio(self):
        ldo = LinearRegulator(dropout_voltage=0.15)
        assert ldo.efficiency(1.0, 4.0, 3.0) == pytest.approx(0.75)

    def test_ldo_dropout_enforced(self):
        ldo = LinearRegulator(dropout_voltage=0.15)
        assert ldo.efficiency(1.0, 3.1, 3.0) == 0.0
        assert ldo.efficiency(1.0, 3.2, 3.0) > 0.0

    def test_rectifier_drop(self):
        d = DiodeRectifier(forward_drop=0.3, diodes_in_path=2)
        assert d.total_drop == pytest.approx(0.6)
        assert d.efficiency(1.0, 3.0, 3.0) == pytest.approx(2.4 / 3.0)
        assert d.efficiency(1.0, 0.5, 0.5) == 0.0  # below the drop

    def test_rectifier_punishes_low_voltage(self):
        d = DiodeRectifier(forward_drop=0.3)
        assert d.efficiency(1.0, 0.6, 0.6) < d.efficiency(1.0, 5.0, 5.0)

    @settings(max_examples=40)
    @given(p=st.floats(min_value=1e-9, max_value=10.0))
    def test_efficiency_always_unit_interval(self, p):
        for c in (BuckBoostConverter(), LinearRegulator(), DiodeRectifier(),
                  BoostConverter()):
            eff = c.efficiency(p, 3.0, 3.3)
            assert 0.0 <= eff <= 1.0


class TestTrackerStep:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrackerStep(-1.0)
        with pytest.raises(ValueError):
            TrackerStep(1.0, duty=1.5)


class TestTrackers:
    def setup_method(self):
        self.pv = PhotovoltaicCell(area_cm2=50.0, efficiency=0.15)
        self.irr = 600.0
        self.mpp = self.pv.mpp(self.irr).power

    def _converged_efficiency(self, tracker, steps=200):
        total = 0.0
        for _ in range(steps):
            decision = tracker.step(self.pv, self.irr, 1.0)
            if decision.harvesting:
                total += self.pv.power_at(decision.voltage,
                                          self.irr) * decision.duty
        return total / (self.mpp * steps)

    def test_oracle_is_perfect(self):
        assert self._converged_efficiency(OracleMPPT()) == pytest.approx(1.0)

    def test_perturb_observe_converges(self):
        assert self._converged_efficiency(PerturbObserve()) > 0.95

    def test_incremental_conductance_converges(self):
        assert self._converged_efficiency(IncrementalConductance()) > 0.95

    def test_focv_approaches_mpp(self):
        assert self._converged_efficiency(FractionalOpenCircuit()) > 0.9

    def test_fixed_point_depends_on_choice(self):
        good = self._converged_efficiency(
            FixedVoltage(self.pv.mpp(self.irr).voltage))
        bad = self._converged_efficiency(FixedVoltage(1.0))
        assert good > 0.99
        assert bad < 0.6

    def test_po_recovers_after_darkness(self):
        tracker = PerturbObserve()
        for _ in range(50):
            tracker.step(self.pv, self.irr, 1.0)
        for _ in range(5):
            decision = tracker.step(self.pv, 0.0, 1.0)
            assert decision.voltage == 0.0
        # Light returns: tracker re-seeds and converges again.
        total = 0.0
        for _ in range(100):
            decision = tracker.step(self.pv, self.irr, 1.0)
            total += self.pv.power_at(decision.voltage, self.irr)
        assert total / (100 * self.mpp) > 0.9

    def test_focv_blackout_semantics_fine_dt(self):
        tracker = FractionalOpenCircuit(sample_period=10.0, sample_time=0.5)
        first = tracker.step(self.pv, self.irr, 0.25)
        assert not first.harvesting  # the first step samples Voc

    def test_focv_blackout_duty_coarse_dt(self):
        tracker = FractionalOpenCircuit(sample_period=10.0, sample_time=0.5)
        decision = tracker.step(self.pv, self.irr, 60.0)
        assert decision.harvesting
        assert decision.duty == pytest.approx(1.0 - 0.5 / 10.0)

    def test_reset_clears_state(self):
        tracker = PerturbObserve()
        for _ in range(20):
            tracker.step(self.pv, self.irr, 1.0)
        tracker.reset()
        assert tracker._voltage is None

    def test_tracker_validation(self):
        with pytest.raises(ValueError):
            PerturbObserve(step_fraction=0.9)
        with pytest.raises(ValueError):
            FractionalOpenCircuit(fraction=1.5)
        with pytest.raises(ValueError):
            FractionalOpenCircuit(sample_time=60.0, sample_period=30.0)
        with pytest.raises(ValueError):
            FixedVoltage(0.0)
        with pytest.raises(ValueError):
            IncrementalConductance(probe_fraction=0.5)

    def test_quiescent_current_validation(self):
        with pytest.raises(ValueError):
            OracleMPPT(quiescent_current_a=-1.0)


class TestInputConditioner:
    def test_accounting_record(self):
        pv = PhotovoltaicCell()
        ic = InputConditioner(tracker=OracleMPPT(),
                              converter=BuckBoostConverter(0.9, 100e-6))
        step = ic.step(pv, 800.0, 1.0, 3.3)
        assert step.raw_power == pytest.approx(pv.mpp(800.0).power, rel=1e-6)
        assert step.delivered_power < step.raw_power
        assert step.conversion_loss == pytest.approx(
            step.raw_power - step.delivered_power)
        assert step.tracking_efficiency == pytest.approx(1.0)

    def test_dead_source_yields_zero(self):
        pv = PhotovoltaicCell()
        ic = InputConditioner()
        step = ic.step(pv, 0.0, 1.0, 3.3)
        assert step.raw_power == 0.0
        assert step.delivered_power == 0.0

    def test_total_quiescent_sums_tracker(self):
        ic = InputConditioner(tracker=PerturbObserve(quiescent_current_a=5e-6),
                              quiescent_current_a=2e-6)
        assert ic.total_quiescent_a == pytest.approx(7e-6)

    def test_defaults_are_ideal(self):
        ic = InputConditioner()
        assert isinstance(ic.tracker, OracleMPPT)
        assert isinstance(ic.converter, IdealConverter)


class TestOutputConditioner:
    def test_input_power_for_demand(self):
        oc = OutputConditioner(converter=LinearRegulator(0.15),
                               output_voltage=3.0, min_input_voltage=3.2)
        p_in = oc.input_power_for(0.03, 4.0)
        assert p_in == pytest.approx(0.03 * 4.0 / 3.0)

    def test_brownout_below_cutoff(self):
        oc = OutputConditioner(output_voltage=3.0, min_input_voltage=1.0)
        assert oc.input_power_for(0.01, 0.5) == float("inf")
        assert not oc.can_supply(0.5)

    def test_zero_demand(self):
        oc = OutputConditioner()
        assert oc.input_power_for(0.0, 5.0) == 0.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            OutputConditioner().input_power_for(-1.0, 5.0)


class TestModuleInterfaceCircuit:
    def _pv_module(self):
        pv = attach_datasheet(
            PhotovoltaicCell(area_cm2=20.0, efficiency=0.07,
                             cells_in_series=6),
            ElectronicDatasheet(kind=DeviceKind.HARVESTER, model="pv-m",
                                source_type=PhotovoltaicCell.source_type,
                                mpp_fraction=0.75, nominal_voltage=3.0))
        return ModuleInterfaceCircuit(pv)

    def test_harvester_module_harvests(self):
        module = self._pv_module()
        step = module.harvest(200.0, 1.0)
        assert step.delivered_power > 0.0

    def test_storage_module_roundtrip(self):
        sc = Supercapacitor(capacitance_f=10.0, initial_soc=0.5)
        module = ModuleInterfaceCircuit(sc)
        accepted = module.store(0.1, 10.0)
        assert 0.0 < accepted <= 0.1
        retrieved = module.retrieve(0.05, 10.0)
        assert 0.0 < retrieved <= 0.05

    def test_interface_taxes_efficiency(self):
        sc = Supercapacitor(capacitance_f=10.0, initial_soc=0.5)
        module = ModuleInterfaceCircuit(sc)
        e0 = sc.energy_j
        module.store(0.1, 100.0)
        stored = sc.energy_j - e0
        assert stored < 0.1 * 100.0  # strictly less: the interface tax

    def test_wrong_kind_operations_raise(self):
        module = self._pv_module()
        with pytest.raises(TypeError):
            module.store(0.1, 1.0)
        sc_module = ModuleInterfaceCircuit(Supercapacitor())
        with pytest.raises(TypeError):
            sc_module.harvest(100.0, 1.0)

    def test_swap_requires_same_kind(self):
        module = self._pv_module()
        with pytest.raises(TypeError):
            module.swap_device(Supercapacitor())

    def test_swap_harvester_resets_tracker(self):
        module = self._pv_module()
        module.harvest(200.0, 1.0)
        replacement = PhotovoltaicCell(area_cm2=5.0, efficiency=0.05,
                                       cells_in_series=4)
        module.swap_device(replacement)
        assert module.device is replacement

    def test_default_fixed_tracker_uses_datasheet(self):
        module = self._pv_module()
        tracker = module._input.tracker
        assert isinstance(tracker, FixedVoltage)
        assert tracker.voltage == pytest.approx(0.75 * 3.0)

    def test_rejects_non_energy_devices(self):
        with pytest.raises(TypeError):
            ModuleInterfaceCircuit("not a device")


class TestThermoeletricThroughConditioner:
    def test_low_voltage_source_through_rectifier_suffers(self):
        teg = ThermoelectricGenerator(couples=50, internal_resistance=2.0)
        with_diode = InputConditioner(tracker=OracleMPPT(),
                                      converter=DiodeRectifier(0.3))
        ideal = InputConditioner(tracker=OracleMPPT())
        lossy = with_diode.step(teg, 20.0, 1.0, 3.3)
        clean = ideal.step(teg, 20.0, 1.0, 3.3)
        # TEG Voc at 20 K is ~0.2 V: a diode front end destroys it.
        assert lossy.delivered_power < 0.2 * clean.delivered_power
