"""Batched sweep kernel: bit-exactness, eligibility, and fallback.

The batched kernel's contract is that grouping scenarios and stepping
them in lockstep changes *throughput only*: every recorder column, every
metric, and the final component state must be bit-for-bit what the
per-scenario kernel produces. These tests enforce that per eligible
Table I system and on seeded stochastic grids, and pin the fallback
behaviour for everything outside the envelope (events, fuel-cell
backups, hill-climbing trackers, bus platforms).
"""

from functools import partial

import numpy as np
import pytest

from repro.analysis.experiments.common import make_reference_system
from repro.conditioning.mppt import FixedVoltage
from repro.environment.composite import (
    indoor_industrial_environment,
    outdoor_environment,
)
from repro.harvesters import PhotovoltaicCell
from repro.simulation import (
    ScenarioSpec,
    SweepRunner,
    batch_eligible,
    simulate,
    swap_storage_event,
    why_batch_ineligible,
)
from repro.simulation.kernel.plan import eligible as kernel_eligible
from repro.storage import Supercapacitor
from repro.storage.fuel_cell import HydrogenFuelCell
from repro.systems import SYSTEM_BUILDERS, build_system

DAY = 86_400.0

#: Table I letters inside / outside the batched envelope today.
BATCH_ELIGIBLE = ("C", "D", "E", "G")
BATCH_INELIGIBLE = ("A", "B", "F")

#: Every scalar recorder column, including the derived ones.
COLUMNS = ("harvest_raw", "harvest_delivered", "harvest_mpp",
           "charge_accepted", "quiescent", "node_demand", "node_supplied",
           "node_consumed", "backup_power", "measurements", "stored_energy",
           "bus_voltage", "alive")

ENV_FOR = {"C": outdoor_environment, "D": outdoor_environment,
           "E": indoor_industrial_environment,
           "G": indoor_industrial_environment}


def build_fixed_pv(capacitance_f: float = 50.0):
    """A batch-eligible reference platform (FixedVoltage conditioning)."""
    return make_reference_system(
        [PhotovoltaicCell(area_cm2=40.0, efficiency=0.16, name="pv")],
        tracker_factory=lambda: FixedVoltage(2.0),
        capacitance_f=capacitance_f, measurement_interval_s=120.0)


def _grab_recorders():
    """A collect hook capturing each scenario's recorder and system."""
    captured = []

    def collect(result):
        captured.append(result)
        return {}

    return captured, collect


def assert_bitwise_equal(recorder, reference, label: str) -> None:
    for column in COLUMNS:
        assert np.array_equal(recorder.column(column),
                              reference.column(column)), \
            f"{label}: column {column!r} diverged"
    assert np.array_equal(recorder.state_codes(), reference.state_codes()), \
        f"{label}: node state history diverged"
    for index in range(recorder.n_stores):
        assert np.array_equal(recorder.store_energy_trace(index).values,
                              reference.store_energy_trace(index).values), \
            f"{label}: store {index} energy diverged"
    for index in range(recorder.n_channels):
        assert np.array_equal(
            recorder.channel_delivered_trace(index).values,
            reference.channel_delivered_trace(index).values), \
            f"{label}: channel {index} power diverged"


class TestEligibility:
    def test_table1_envelope(self):
        for letter in BATCH_ELIGIBLE:
            assert batch_eligible(build_system(letter), 300.0), letter
        for letter in BATCH_INELIGIBLE:
            reason = why_batch_ineligible(build_system(letter), 300.0)
            assert reason is not None, letter

    def test_ineligible_reasons_name_the_component(self):
        assert "bus/MCU" in why_batch_ineligible(build_system("A"), 300.0)
        pando = make_reference_system(
            [PhotovoltaicCell(area_cm2=40.0, name="pv")])
        assert "PerturbObserve" in why_batch_ineligible(pando, 300.0)
        fuel = make_reference_system(
            [PhotovoltaicCell(area_cm2=40.0, name="pv")],
            tracker_factory=lambda: FixedVoltage(2.0),
            stores=[Supercapacitor(capacitance_f=50.0, name="sc"),
                    HydrogenFuelCell(name="fc")])
        assert "backup" in why_batch_ineligible(fuel, 300.0)

    def test_batched_envelope_is_inside_kernel_envelope(self):
        """Anything the batched kernel accepts, the scalar kernel must
        accept too (the batched compile validates through it)."""
        for letter in SYSTEM_BUILDERS:
            system = build_system(letter)
            if batch_eligible(system, 300.0):
                assert kernel_eligible(build_system(letter), 300.0), letter

    def test_subclassed_physics_refused(self):
        class TunedSupercap(Supercapacitor):
            def charge(self, power_w, dt):
                return super().charge(power_w, dt) * 0.5

        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=40.0, name="pv")],
            tracker_factory=lambda: FixedVoltage(2.0),
            stores=[TunedSupercap(capacitance_f=50.0, name="tuned")])
        reason = why_batch_ineligible(system, 300.0)
        assert reason is not None and "TunedSupercap" in reason


class TestBitExactness:
    @pytest.mark.parametrize("letter", BATCH_ELIGIBLE)
    def test_table1_system_matches_scalar_kernel(self, letter):
        """Each eligible Table I platform: a small grid over initial SoC
        and environment seed, every recorded bit equal to per-scenario
        kernel runs."""
        envf = ENV_FOR[letter]
        captured, collect = _grab_recorders()
        specs = [
            ScenarioSpec(
                name=f"{letter}-{k}",
                system=partial(build_system, letter,
                               initial_soc=0.25 + 0.15 * k),
                environment=partial(envf, duration=DAY, dt=300.0),
                duration=DAY, seed=40 + k, params={"k": k},
                collect=collect)
            for k in range(3)
        ]
        sweep = SweepRunner(processes=1, batch="auto").run(specs)
        assert [r.execution_path for r in sweep] == ["batched"] * 3
        for k, (row, result) in enumerate(zip(sweep, captured)):
            reference = simulate(
                build_system(letter, initial_soc=0.25 + 0.15 * k),
                envf(duration=DAY, dt=300.0, seed=40 + k),
                duration=DAY, fast=True)
            assert reference.execution_path == "kernel"
            assert_bitwise_equal(result.recorder, reference.recorder,
                                 row.name)
            assert row.metrics == reference.metrics, row.name

    def test_seeded_stochastic_grid(self):
        """Param x seed grid (distinct stochastic environments per lane,
        so no column compression): still bit-identical."""
        captured, collect = _grab_recorders()
        cases = [(cap, seed) for cap in (15.0, 60.0) for seed in (1, 2, 3)]
        specs = [
            ScenarioSpec(
                name=f"c{cap:g}-s{seed}",
                system=partial(build_fixed_pv, cap),
                environment=partial(outdoor_environment, duration=DAY,
                                    dt=300.0),
                duration=DAY, seed=seed, params={"cap": cap, "seed": seed},
                collect=collect)
            for cap, seed in cases
        ]
        sweep = SweepRunner(processes=1, batch="auto").run(specs)
        assert all(r.execution_path == "batched" for r in sweep)
        for (cap, seed), row, result in zip(cases, sweep, captured):
            reference = simulate(
                build_fixed_pv(cap),
                outdoor_environment(duration=DAY, dt=300.0, seed=seed),
                duration=DAY, fast=True)
            assert_bitwise_equal(result.recorder, reference.recorder,
                                 row.name)
            assert row.metrics == reference.metrics

    def test_shared_environment_grid(self):
        """One shared environment across the grid (the compressed-column
        fast path): still bit-identical."""
        env = outdoor_environment(duration=DAY, dt=300.0, seed=9)
        captured, collect = _grab_recorders()
        specs = [
            ScenarioSpec(name=f"c{cap:g}", system=partial(build_fixed_pv, cap),
                         environment=env, duration=DAY,
                         params={"cap": cap}, collect=collect)
            for cap in (10.0, 25.0, 50.0, 100.0)
        ]
        sweep = SweepRunner(processes=1, batch="auto").run(specs)
        assert all(r.execution_path == "batched" for r in sweep)
        for row, result in zip(sweep, captured):
            reference = simulate(build_fixed_pv(row.params["cap"]), env,
                                 duration=DAY, fast=True)
            assert_bitwise_equal(result.recorder, reference.recorder,
                                 row.name)
            assert row.metrics == reference.metrics

    def test_final_component_state_written_back(self):
        """After a batched run the component objects hold exactly the
        state a per-scenario run leaves behind."""
        captured, collect = _grab_recorders()
        specs = [
            ScenarioSpec(name=f"soc{k}",
                         system=partial(build_system, "D",
                                        initial_soc=0.2 + 0.2 * k),
                         environment=partial(outdoor_environment,
                                             duration=DAY, dt=300.0),
                         duration=DAY, seed=5, params={"k": k},
                         collect=collect)
            for k in range(3)
        ]
        SweepRunner(processes=1, batch="auto").run(specs)
        for k, result in enumerate(captured):
            reference = simulate(
                build_system("D", initial_soc=0.2 + 0.2 * k),
                outdoor_environment(duration=DAY, dt=300.0, seed=5),
                duration=DAY, fast=True)
            system, ref = result.system, reference.system
            assert system.node.state == ref.node.state
            assert system.node.total_measurements == \
                ref.node.total_measurements
            assert system.node.total_energy_j == ref.node.total_energy_j
            assert system.node.dead_seconds == ref.node.dead_seconds
            assert system.node.brownouts == ref.node.brownouts
            assert system.bank.spilled_j == ref.bank.spilled_j
            for store, ref_store in zip(system.bank.stores, ref.bank.stores):
                assert store.energy_j == ref_store.energy_j
                assert store.total_charged_j == ref_store.total_charged_j
                assert store.total_discharged_j == ref_store.total_discharged_j
            assert system.manager.control_passes == \
                ref.manager.control_passes
            assert system.manager._since_control == \
                ref.manager._since_control
            for channel, ref_channel in zip(system.channels, ref.channels):
                assert channel.last_step == ref_channel.last_step


class TestFallback:
    def _mixed_specs(self):
        env = partial(outdoor_environment, duration=DAY, dt=600.0)

        def make_events():
            return [swap_storage_event(
                0.5 * DAY, 0, Supercapacitor(capacitance_f=20.0))]

        return [
            ScenarioSpec(name="pando",
                         system=lambda: make_reference_system(
                             [PhotovoltaicCell(area_cm2=40.0, name="pv")]),
                         environment=env, seed=1),
            ScenarioSpec(name="fuelcell",
                         system=lambda: make_reference_system(
                             [PhotovoltaicCell(area_cm2=40.0, name="pv")],
                             tracker_factory=lambda: FixedVoltage(2.0),
                             stores=[Supercapacitor(capacitance_f=50.0,
                                                    name="sc"),
                                     HydrogenFuelCell(name="fc")]),
                         environment=env, seed=1),
            ScenarioSpec(name="events", system=partial(build_system, "D"),
                         environment=env, seed=1,
                         events=make_events),
            ScenarioSpec(name="eligible", system=partial(build_system, "D"),
                         environment=env, seed=1),
        ]

    def test_mixed_sweep_routes_and_preserves_order(self):
        sweep = SweepRunner(processes=1, batch="auto").run(
            self._mixed_specs())
        assert [r.name for r in sweep] == ["pando", "fuelcell", "events",
                                           "eligible"]
        paths = {r.name: r.execution_path for r in sweep}
        assert paths["eligible"] == "batched"
        # Fallback scenarios run the per-scenario engine and report it.
        assert paths["pando"] == "kernel"
        assert paths["fuelcell"] == "kernel"
        assert paths["events"] == "kernel"

    def test_event_scenario_rows_match_per_scenario_run(self):
        """An event-carrying scenario in a batched sweep produces the
        same row as running it alone."""
        specs = self._mixed_specs()
        mixed = SweepRunner(processes=1, batch="auto").run(specs)
        solo = SweepRunner(processes=1, batch=False).run(
            self._mixed_specs())
        for a, b in zip(mixed, solo):
            assert a.metrics == b.metrics, a.name

    def test_batch_true_requires_the_envelope(self):
        with pytest.raises(ValueError, match="PerturbObserve"):
            SweepRunner(processes=1, batch=True).run(self._mixed_specs())

    def test_batch_true_accepts_eligible_grids(self):
        env = partial(outdoor_environment, duration=DAY, dt=600.0)
        specs = [ScenarioSpec(name=f"d{k}",
                              system=partial(build_system, "D"),
                              environment=env, seed=k)
                 for k in range(2)]
        sweep = SweepRunner(processes=1, batch=True).run(specs)
        assert all(r.execution_path == "batched" for r in sweep)

    def test_batch_off_disables_the_tier(self):
        env = partial(outdoor_environment, duration=DAY, dt=600.0)
        specs = [ScenarioSpec(name="d0", system=partial(build_system, "D"),
                              environment=env, seed=0)]
        sweep = SweepRunner(processes=1, batch=False).run(specs)
        assert sweep["d0"].execution_path == "kernel"

    def test_invalid_batch_value_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            SweepRunner(batch="yes")
