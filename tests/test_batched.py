"""Batched sweep kernel: bit-exactness, eligibility, and masked lanes.

The batched kernel's contract is that grouping scenarios and stepping
them in lockstep changes *throughput only*: every recorder column, every
metric, and the final component state must be bit-for-bit what the
per-scenario kernel produces. These tests enforce that for all seven
Table I systems (the masked-lane model batches hill-climbing trackers,
fuel-cell backup cascades, bus/MCU platforms, and scheduled events),
exercise divergence buckets — lanes that peel into the scalar
side-channel and lanes that rejoin lockstep after an event horizon —
and pin the capability-negotiation behaviour for shapes that genuinely
have no batched lowering (replaced physics).
"""

from functools import partial

import numpy as np
import pytest

from repro.analysis.experiments.common import make_reference_system
from repro.conditioning.mppt import FixedVoltage
from repro.environment.composite import (
    indoor_industrial_environment,
    outdoor_environment,
)
from repro.harvesters import PhotovoltaicCell
from repro.simulation import (
    CapabilityReport,
    ScenarioSpec,
    SweepRunner,
    batch_capability_report,
    batch_eligible,
    simulate,
    swap_harvester_event,
    swap_storage_event,
    why_batch_ineligible,
)
from repro.simulation.kernel.plan import eligible as kernel_eligible
from repro.storage import Supercapacitor
from repro.storage.batteries import LiIonBattery
from repro.systems import SYSTEM_BUILDERS, build_system

DAY = 86_400.0

#: Every Table I letter is inside the batched envelope now that the
#: masked-lane model batches trackers, backups, and bus platforms.
BATCH_ELIGIBLE = ("A", "B", "C", "D", "E", "F", "G")

#: Every scalar recorder column, including the derived ones.
COLUMNS = ("harvest_raw", "harvest_delivered", "harvest_mpp",
           "charge_accepted", "quiescent", "node_demand", "node_supplied",
           "node_consumed", "backup_power", "measurements", "stored_energy",
           "bus_voltage", "alive")

ENV_FOR = {"A": outdoor_environment, "B": indoor_industrial_environment,
           "C": outdoor_environment, "D": outdoor_environment,
           "E": indoor_industrial_environment,
           "F": indoor_industrial_environment,
           "G": indoor_industrial_environment}


class TunedSupercap(Supercapacitor):
    """Replaced physics: genuinely outside every compiled envelope."""

    def charge(self, power_w, dt):
        return super().charge(power_w * 0.5, dt)


def build_tuned():
    return make_reference_system(
        [PhotovoltaicCell(area_cm2=40.0, name="pv")],
        tracker_factory=lambda: FixedVoltage(2.0),
        stores=[TunedSupercap(capacitance_f=50.0, name="tuned")])


def build_fixed_pv(capacitance_f: float = 50.0):
    """A batch-eligible reference platform (FixedVoltage conditioning)."""
    return make_reference_system(
        [PhotovoltaicCell(area_cm2=40.0, efficiency=0.16, name="pv")],
        tracker_factory=lambda: FixedVoltage(2.0),
        capacitance_f=capacitance_f, measurement_interval_s=120.0)


def _grab_recorders():
    """A collect hook capturing each scenario's recorder and system."""
    captured = []

    def collect(result):
        captured.append(result)
        return {}

    return captured, collect


def assert_bitwise_equal(recorder, reference, label: str) -> None:
    for column in COLUMNS:
        assert np.array_equal(recorder.column(column),
                              reference.column(column)), \
            f"{label}: column {column!r} diverged"
    assert np.array_equal(recorder.state_codes(), reference.state_codes()), \
        f"{label}: node state history diverged"
    for index in range(recorder.n_stores):
        assert np.array_equal(recorder.store_energy_trace(index).values,
                              reference.store_energy_trace(index).values), \
            f"{label}: store {index} energy diverged"
    for index in range(recorder.n_channels):
        assert np.array_equal(
            recorder.channel_delivered_trace(index).values,
            reference.channel_delivered_trace(index).values), \
            f"{label}: channel {index} power diverged"


class TestEligibility:
    def test_table1_envelope(self):
        """All seven survey platforms batch — including A (P&O trackers,
        fuel-cell backup, bus/MCU), B (module slots), and F (windowed
        converters, bus), which the pre-masked-lane kernel refused."""
        for letter in BATCH_ELIGIBLE:
            assert batch_eligible(build_system(letter), 300.0), letter

    def test_capability_report_names_the_component(self):
        report = batch_capability_report(build_tuned(), 300.0)
        assert isinstance(report, CapabilityReport)
        assert report.component == "TunedSupercap"
        assert "Supercapacitor physics" in report.capability
        assert report.divergence == "every step"
        assert "charge" in report.detail
        # The string facade stays in sync with the structured report.
        assert why_batch_ineligible(build_tuned(), 300.0) == report.detail
        # And an eligible system negotiates to "no refusal".
        assert batch_capability_report(build_system("A"), 300.0) is None

    def test_batched_envelope_is_inside_kernel_envelope(self):
        """Anything the batched kernel accepts, the scalar kernel must
        accept too (the batched compile validates through it)."""
        for letter in SYSTEM_BUILDERS:
            system = build_system(letter)
            if batch_eligible(system, 300.0):
                assert kernel_eligible(build_system(letter), 300.0), letter

    def test_subclassed_physics_refused(self):
        class TunedSupercap(Supercapacitor):
            def charge(self, power_w, dt):
                return super().charge(power_w, dt) * 0.5

        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=40.0, name="pv")],
            tracker_factory=lambda: FixedVoltage(2.0),
            stores=[TunedSupercap(capacitance_f=50.0, name="tuned")])
        reason = why_batch_ineligible(system, 300.0)
        assert reason is not None and "TunedSupercap" in reason


class TestBitExactness:
    @pytest.mark.parametrize("letter", BATCH_ELIGIBLE)
    def test_table1_system_matches_scalar_kernel(self, letter):
        """Each eligible Table I platform: a small grid over initial SoC
        and environment seed, every recorded bit equal to per-scenario
        kernel runs."""
        envf = ENV_FOR[letter]
        captured, collect = _grab_recorders()
        specs = [
            ScenarioSpec(
                name=f"{letter}-{k}",
                system=partial(build_system, letter,
                               initial_soc=0.25 + 0.15 * k),
                environment=partial(envf, duration=DAY, dt=300.0),
                duration=DAY, seed=40 + k, params={"k": k},
                collect=collect)
            for k in range(3)
        ]
        sweep = SweepRunner(processes=1, batch="auto").run(specs)
        assert [r.execution_path for r in sweep] == ["batched"] * 3
        for k, (row, result) in enumerate(zip(sweep, captured)):
            reference = simulate(
                build_system(letter, initial_soc=0.25 + 0.15 * k),
                envf(duration=DAY, dt=300.0, seed=40 + k),
                duration=DAY, fast=True)
            assert reference.execution_path == "kernel"
            assert_bitwise_equal(result.recorder, reference.recorder,
                                 row.name)
            assert row.metrics == reference.metrics, row.name

    def test_seeded_stochastic_grid(self):
        """Param x seed grid (distinct stochastic environments per lane,
        so no column compression): still bit-identical."""
        captured, collect = _grab_recorders()
        cases = [(cap, seed) for cap in (15.0, 60.0) for seed in (1, 2, 3)]
        specs = [
            ScenarioSpec(
                name=f"c{cap:g}-s{seed}",
                system=partial(build_fixed_pv, cap),
                environment=partial(outdoor_environment, duration=DAY,
                                    dt=300.0),
                duration=DAY, seed=seed, params={"cap": cap, "seed": seed},
                collect=collect)
            for cap, seed in cases
        ]
        sweep = SweepRunner(processes=1, batch="auto").run(specs)
        assert all(r.execution_path == "batched" for r in sweep)
        for (cap, seed), row, result in zip(cases, sweep, captured):
            reference = simulate(
                build_fixed_pv(cap),
                outdoor_environment(duration=DAY, dt=300.0, seed=seed),
                duration=DAY, fast=True)
            assert_bitwise_equal(result.recorder, reference.recorder,
                                 row.name)
            assert row.metrics == reference.metrics

    def test_shared_environment_grid(self):
        """One shared environment across the grid (the compressed-column
        fast path): still bit-identical."""
        env = outdoor_environment(duration=DAY, dt=300.0, seed=9)
        captured, collect = _grab_recorders()
        specs = [
            ScenarioSpec(name=f"c{cap:g}", system=partial(build_fixed_pv, cap),
                         environment=env, duration=DAY,
                         params={"cap": cap}, collect=collect)
            for cap in (10.0, 25.0, 50.0, 100.0)
        ]
        sweep = SweepRunner(processes=1, batch="auto").run(specs)
        assert all(r.execution_path == "batched" for r in sweep)
        for row, result in zip(sweep, captured):
            reference = simulate(build_fixed_pv(row.params["cap"]), env,
                                 duration=DAY, fast=True)
            assert_bitwise_equal(result.recorder, reference.recorder,
                                 row.name)
            assert row.metrics == reference.metrics

    def test_final_component_state_written_back(self):
        """After a batched run the component objects hold exactly the
        state a per-scenario run leaves behind."""
        captured, collect = _grab_recorders()
        specs = [
            ScenarioSpec(name=f"soc{k}",
                         system=partial(build_system, "D",
                                        initial_soc=0.2 + 0.2 * k),
                         environment=partial(outdoor_environment,
                                             duration=DAY, dt=300.0),
                         duration=DAY, seed=5, params={"k": k},
                         collect=collect)
            for k in range(3)
        ]
        SweepRunner(processes=1, batch="auto").run(specs)
        for k, result in enumerate(captured):
            reference = simulate(
                build_system("D", initial_soc=0.2 + 0.2 * k),
                outdoor_environment(duration=DAY, dt=300.0, seed=5),
                duration=DAY, fast=True)
            system, ref = result.system, reference.system
            assert system.node.state == ref.node.state
            assert system.node.total_measurements == \
                ref.node.total_measurements
            assert system.node.total_energy_j == ref.node.total_energy_j
            assert system.node.dead_seconds == ref.node.dead_seconds
            assert system.node.brownouts == ref.node.brownouts
            assert system.bank.spilled_j == ref.bank.spilled_j
            for store, ref_store in zip(system.bank.stores, ref.bank.stores):
                assert store.energy_j == ref_store.energy_j
                assert store.total_charged_j == ref_store.total_charged_j
                assert store.total_discharged_j == ref_store.total_discharged_j
            assert system.manager.control_passes == \
                ref.manager.control_passes
            assert system.manager._since_control == \
                ref.manager._since_control
            for channel, ref_channel in zip(system.channels, ref.channels):
                assert channel.last_step == ref_channel.last_step


class TestFallback:
    def _mixed_specs(self):
        env = partial(outdoor_environment, duration=DAY, dt=600.0)

        def make_events():
            return [swap_storage_event(
                0.5 * DAY, 0, Supercapacitor(capacitance_f=20.0))]

        return [
            ScenarioSpec(name="tuned", system=build_tuned,
                         environment=env, seed=1),
            ScenarioSpec(name="pando",
                         system=lambda: make_reference_system(
                             [PhotovoltaicCell(area_cm2=40.0, name="pv")]),
                         environment=env, seed=1),
            ScenarioSpec(name="events", system=partial(build_system, "D"),
                         environment=env, seed=1,
                         events=make_events),
            ScenarioSpec(name="eligible", system=partial(build_system, "D"),
                         environment=env, seed=1),
        ]

    def test_mixed_sweep_routes_and_preserves_order(self):
        sweep = SweepRunner(processes=1, batch="auto").run(
            self._mixed_specs())
        assert [r.name for r in sweep] == ["tuned", "pando", "events",
                                           "eligible"]
        paths = {r.name: r.execution_path for r in sweep}
        # P&O trackers and scheduled events batch now; only replaced
        # physics falls off the tier (and off the scalar kernel too).
        assert paths["eligible"] == "batched"
        assert paths["pando"] == "batched"
        # The swap changes the store class, so the lane peels into the
        # scalar side-channel mid-run — still the batched tier (the
        # per-bucket path contract is pinned in TestMaskedLane).
        assert paths["events"] == "batched+kernel"
        assert paths["tuned"] == "legacy"

    def test_fallback_rows_carry_the_capability_report(self):
        sweep = SweepRunner(processes=1, batch="auto").run(
            self._mixed_specs())
        report = sweep["tuned"].extras["batch_fallback_reason"]
        assert isinstance(report, CapabilityReport)
        assert report.component == "TunedSupercap"
        assert report.divergence == "every step"
        for name in ("pando", "events", "eligible"):
            assert "batch_fallback_reason" not in sweep[name].extras, name

    def test_event_scenario_rows_match_per_scenario_run(self):
        """An event-carrying scenario in a batched sweep produces the
        same row as running it alone."""
        specs = self._mixed_specs()
        mixed = SweepRunner(processes=1, batch="auto").run(specs)
        solo = SweepRunner(processes=1, batch=False).run(
            self._mixed_specs())
        for a, b in zip(mixed, solo):
            assert a.metrics == b.metrics, a.name

    def test_batch_true_requires_the_envelope(self):
        with pytest.raises(ValueError, match="TunedSupercap"):
            SweepRunner(processes=1, batch=True).run(self._mixed_specs())

    def test_batch_true_accepts_event_grids(self):
        """batch=True admits event-carrying scenarios: events are inside
        the masked-lane envelope, not a refusal."""
        env = partial(outdoor_environment, duration=DAY, dt=600.0)
        specs = [ScenarioSpec(
            name=f"ev{k}", system=partial(build_system, "D"),
            environment=env, seed=k,
            events=lambda: [swap_storage_event(
                0.25 * DAY, 0, Supercapacitor(capacitance_f=30.0))])
            for k in range(2)]
        sweep = SweepRunner(processes=1, batch=True).run(specs)
        assert all(r.execution_path.startswith("batched") for r in sweep)

    def test_batch_true_accepts_eligible_grids(self):
        env = partial(outdoor_environment, duration=DAY, dt=600.0)
        specs = [ScenarioSpec(name=f"d{k}",
                              system=partial(build_system, "D"),
                              environment=env, seed=k)
                 for k in range(2)]
        sweep = SweepRunner(processes=1, batch=True).run(specs)
        assert all(r.execution_path == "batched" for r in sweep)

    def test_batch_off_disables_the_tier(self):
        env = partial(outdoor_environment, duration=DAY, dt=600.0)
        specs = [ScenarioSpec(name="d0", system=partial(build_system, "D"),
                              environment=env, seed=0)]
        sweep = SweepRunner(processes=1, batch=False).run(specs)
        # batch=False lanes prefer the fused codegen tier now.
        assert sweep["d0"].execution_path == "codegen"

    def test_invalid_batch_value_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            SweepRunner(batch="yes")


class TestMaskedLane:
    """Divergence buckets: events segment the lockstep run at horizons;
    lanes whose mutated topology still matches the group rejoin (with
    write-back equality enforced), lanes that leave the envelope peel
    into the scalar side-channel — every shape bit-for-bit equal to a
    per-scenario run with the same schedule."""

    DT = 300.0

    @staticmethod
    def _pv(area=6.0):
        return PhotovoltaicCell(area_cm2=area, efficiency=0.12, name="pv")

    @classmethod
    def _build(cls, cap):
        from repro.core.manager import ThresholdManager
        return make_reference_system([cls._pv()], capacitance_f=cap,
                                     initial_soc=0.4,
                                     manager=ThresholdManager())

    # Event shapes and the execution path each must land on. Same-class
    # swaps keep the topology signature and REJOIN lockstep; cross-class
    # swaps (and t=0 swaps) peel to the scalar kernel side-channel; a
    # swap to a store with no lowering at all lands on the legacy strip.
    @staticmethod
    def _same_class():
        return [swap_storage_event(6 * 3600.0, 0,
                                   Supercapacitor(capacitance_f=40.0,
                                                  rated_voltage=5.0,
                                                  initial_soc=0.6,
                                                  name="spare"))]

    @staticmethod
    def _cross_class():
        return [swap_storage_event(6 * 3600.0, 0,
                                   LiIonBattery(capacity_mah=150.0,
                                                initial_soc=0.5,
                                                name="cell"))]

    @classmethod
    def _harvester(cls):
        return [swap_harvester_event(4 * 3600.0, 0, cls._pv(area=20.0))]

    @classmethod
    def _double(cls):
        return [swap_harvester_event(3 * 3600.0, 0, cls._pv(area=2.0)),
                swap_storage_event(15 * 3600.0, 0,
                                   Supercapacitor(capacitance_f=10.0,
                                                  rated_voltage=5.0,
                                                  initial_soc=0.3,
                                                  name="late"))]

    @staticmethod
    def _t0():
        return [swap_storage_event(0.0, 0,
                                   LiIonBattery(capacity_mah=80.0,
                                                initial_soc=0.7,
                                                name="zero"))]

    @staticmethod
    def _legacy():
        return [swap_storage_event(6 * 3600.0, 0,
                                   TunedSupercap(capacitance_f=20.0,
                                                 rated_voltage=5.0,
                                                 initial_soc=0.5,
                                                 name="odd"))]

    def _cases(self):
        return [
            ("none", None, "batched"),
            ("same-class", self._same_class, "batched"),
            ("cross-class", self._cross_class, "batched+kernel"),
            ("harvester", self._harvester, "batched"),
            ("double", self._double, "batched"),
            ("t0", self._t0, "batched+kernel"),
            ("legacy", self._legacy, "batched+legacy"),
        ]

    def test_event_shapes_bitwise_and_write_back(self):
        """Every divergence bucket in one mixed grid: expected path,
        bitwise recorders, metrics, and final component state all equal
        to per-scenario ``simulate(..., events=...)`` runs."""
        captured, collect = _grab_recorders()
        cases = self._cases()
        caps = (8.0, 25.0)
        specs = [
            ScenarioSpec(name=f"{label}-{k}",
                         system=partial(self._build, cap),
                         environment=partial(outdoor_environment,
                                             duration=DAY, dt=self.DT),
                         duration=DAY, seed=40 + k, events=events,
                         params={}, collect=collect)
            for label, events, _ in cases
            for k, cap in enumerate(caps)
        ]
        sweep = SweepRunner(processes=1, batch="auto").run(specs)
        i = 0
        for label, events, want_path in cases:
            for k, cap in enumerate(caps):
                row, result = sweep[i], captured[i]
                assert row.execution_path == want_path, \
                    (row.name, row.execution_path, want_path)
                ref = simulate(self._build(cap),
                               outdoor_environment(duration=DAY, dt=self.DT,
                                                   seed=40 + k),
                               duration=DAY, dt=self.DT,
                               events=events() if events else None)
                assert_bitwise_equal(result.recorder, ref.recorder,
                                     row.name)
                assert row.metrics == ref.metrics, row.name
                rs, bs = ref.system, result.system
                assert type(bs.bank.stores[0]) is type(rs.bank.stores[0])
                assert bs.bank.stores[0].energy_j == \
                    rs.bank.stores[0].energy_j, row.name
                assert bs.node.measurement_interval_s == \
                    rs.node.measurement_interval_s, row.name
                assert bs.manager.control_passes == \
                    rs.manager.control_passes, row.name
                i += 1

    def test_table1_event_scenarios_stay_batched(self):
        """A System A grid where one lane hot-swaps a harvester: the
        swapped lane rejoins lockstep (same topology signature) and the
        untouched lanes' write-back is unaffected — all bitwise."""
        from repro.harvesters import PhotovoltaicCell as PV
        captured, collect = _grab_recorders()

        def events_for(k):
            if k != 1:
                return None
            return lambda: [swap_harvester_event(
                6 * 3600.0, 0, PV(area_cm2=30.0, efficiency=0.2,
                                  name="swapped"))]

        specs = [
            ScenarioSpec(name=f"A-{k}", system=partial(build_system, "A"),
                         environment=partial(outdoor_environment,
                                             duration=DAY, dt=self.DT),
                         duration=DAY, seed=70 + k, events=events_for(k),
                         params={}, collect=collect)
            for k in range(3)
        ]
        sweep = SweepRunner(processes=1, batch="auto").run(specs)
        assert [r.execution_path for r in sweep] == ["batched"] * 3
        for k, (row, result) in enumerate(zip(sweep, captured)):
            events = events_for(k)
            ref = simulate(build_system("A"),
                           outdoor_environment(duration=DAY, dt=self.DT,
                                               seed=70 + k),
                           duration=DAY, dt=self.DT,
                           events=events() if events else None)
            assert_bitwise_equal(result.recorder, ref.recorder, row.name)
            assert row.metrics == ref.metrics, row.name
