"""Monte Carlo ensemble engine: seed streams, aggregation, tier parity.

The ensemble contract has three parts, each pinned here:

* **seed streams** — ``replicate_seeds`` is a pure, prefix-stable
  function of ``(root_seed, stream)``;
* **aggregation** — ``MetricSummary`` numbers are exactly numpy's
  mean/std(ddof=1)/linear-interpolation quantiles over the replicate
  values;
* **tier parity** (the acceptance criterion) — a 256-replicate ensemble
  of an eligible Table I system runs ``execution_path="batched"``
  end-to-end, and its per-replicate rows *and* quantile summaries are
  bitwise identical whether the replicates execute batched,
  multiprocessing, or in-process.
"""

import dataclasses
import math
from functools import partial

import numpy as np
import pytest

from repro.analysis.robustness import SeedSweep
from repro.analysis.table1 import ensemble_table1, render_ensemble_table1
from repro.environment.composite import outdoor_environment
from repro.simulation import (
    ScenarioSpec,
    replicate_seeds,
    replicate_sweep,
    run_ensemble,
)
from repro.simulation.montecarlo import DEFAULT_QUANTILES, summarize
from repro.spec import (
    EnvironmentSpec,
    MonteCarloSpec,
    RunSpec,
    SweepSpec,
    load_spec,
    run_montecarlo,
    spec_for,
    spec_from_dict,
)
from repro.systems import build_system

DAY = 86_400.0

#: Metrics whose summaries the cross-tier tests compare bitwise.
CHECKED_METRICS = ("uptime_fraction", "harvested_delivered_j",
                   "quiescent_j", "node_consumed_j", "measurements",
                   "harvest_coverage")


def mc_spec(letter="C", replicates=8, root_seed=3, duration=0.1 * DAY,
            dt=600.0, environment="outdoor"):
    return MonteCarloSpec(
        run=RunSpec(system=spec_for(letter),
                    environment=EnvironmentSpec(environment,
                                                duration=duration, dt=dt),
                    name=f"{letter}-mc"),
        replicates=replicates,
        root_seed=root_seed,
    )


class TestSeedStream:
    def test_deterministic_and_distinct(self):
        a = replicate_seeds(7, 16)
        assert a == replicate_seeds(7, 16)
        assert a != replicate_seeds(8, 16)
        assert len(set(a)) == 16

    def test_seeds_are_json_exact(self):
        """Seeds stay within float64's exact-integer range (53 bits) so
        JSON consumers round-trip per-replicate rows losslessly."""
        for seed in replicate_seeds(123, 64):
            assert 0 <= seed < 2 ** 53
            assert int(float(seed)) == seed

    def test_streams_are_independent(self):
        assert replicate_seeds(7, 8, stream=0) != \
            replicate_seeds(7, 8, stream=1)

    def test_prefix_stable(self):
        """Asking for more replicates extends the stream — replicate i
        never depends on the ensemble size."""
        assert replicate_seeds(7, 16)[:4] == replicate_seeds(7, 4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="replicate"):
            replicate_seeds(0, 0)


class TestMonteCarloSpec:
    def test_json_roundtrip(self):
        spec = mc_spec(replicates=12, root_seed=99)
        assert MonteCarloSpec.from_json(spec.to_json()) == spec
        assert spec_from_dict(spec.to_dict()) == spec

    def test_load_spec_dispatch(self, tmp_path):
        path = tmp_path / "mc.json"
        spec = mc_spec()
        spec.save(path)
        assert load_spec(path) == spec

    def test_label(self):
        assert mc_spec(replicates=8).label == "C-mc x8"
        assert mc_spec().run.label == "C-mc"

    def test_validation(self):
        run = mc_spec().run
        with pytest.raises(ValueError, match="replicates"):
            MonteCarloSpec(run=run, replicates=0)
        with pytest.raises(ValueError, match="quantiles"):
            MonteCarloSpec(run=run, quantiles=(0.5, 0.1))
        with pytest.raises(ValueError, match="quantiles"):
            MonteCarloSpec(run=run, quantiles=(0.1, 1.5))
        with pytest.raises(TypeError, match="RunSpec"):
            MonteCarloSpec(run="C")
        with pytest.raises(ValueError, match="root_seed"):
            MonteCarloSpec(run=run, root_seed="zero")

    def test_run_montecarlo_rejects_other_specs(self):
        with pytest.raises(TypeError, match="MonteCarloSpec"):
            run_montecarlo(mc_spec().run)


class TestAggregation:
    def test_summarize_matches_numpy(self):
        values = [3.0, 1.0, 4.0, 1.5]
        s = summarize("x", values)
        arr = np.asarray(values)
        assert s.n == 4
        assert s.mean == float(arr.mean())
        assert s.std == float(arr.std(ddof=1))
        assert s.minimum == 1.0 and s.maximum == 4.0
        for q, value in s.quantiles:
            assert value == float(np.quantile(arr, q))
        half = 1.96 * s.std / math.sqrt(4)
        assert s.ci_low == s.mean - half
        assert s.ci_high == s.mean + half

    def test_single_replicate_degenerates(self):
        s = summarize("x", [2.0])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 2.0

    def test_quantile_lookup(self):
        s = summarize("x", [1.0, 2.0, 3.0])
        assert s.quantile(0.5) == 2.0
        assert s.band() == (s.quantile(0.05), s.quantile(0.95))
        with pytest.raises(KeyError):
            s.quantile(0.33)

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize("x", [])


class TestEnsemble:
    @pytest.fixture(scope="class")
    def ensemble(self):
        return run_ensemble(mc_spec(replicates=6, root_seed=11),
                            tier="auto")

    def test_shape_and_identity(self, ensemble):
        assert len(ensemble) == 6
        assert ensemble.root_seed == 11
        assert ensemble.seeds == replicate_seeds(11, 6)
        names = [r.name for r in ensemble]
        assert names == [f"C-mc#r{i}" for i in range(6)]
        for i, row in enumerate(ensemble.rows()):
            assert row["replicate"] == i
            assert row["seed"] == ensemble.seeds[i]

    def test_replicates_ride_the_batched_tier(self, ensemble):
        assert ensemble.execution_paths() == {"batched": 6}

    def test_metric_and_summary_agree(self, ensemble):
        values = ensemble.metric("harvested_delivered_j")
        assert values.shape == (6,)
        assert ensemble.summary("harvested_delivered_j") == \
            summarize("harvested_delivered_j", values, DEFAULT_QUANTILES)
        # Properties work too, not just dataclass fields.
        per_day = ensemble.metric("measurements_per_day")
        assert per_day.shape == (6,)

    def test_unknown_metric_rejected(self, ensemble):
        with pytest.raises(KeyError, match="unknown ensemble metric"):
            ensemble.metric("nope")

    def test_cdf_is_a_distribution(self, ensemble):
        values, probs = ensemble.cdf("harvested_delivered_j")
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probs) > 0)
        assert probs[-1] == 1.0

    def test_report_renders(self, ensemble):
        text = ensemble.report()
        assert "6 replicates" in text
        assert "root seed 11" in text
        assert "batched x6" in text

    def test_report_renders_for_custom_quantiles(self):
        """The displayed p5/p50/p95 are merged into the spec's own
        levels, so any quantile selection reports cleanly."""
        spec = MonteCarloSpec(run=mc_spec().run, replicates=3,
                              quantiles=(0.1, 0.9))
        text = run_ensemble(spec, tier="auto").report()
        assert "p95" in text

    def test_seed_sweep_adapter(self, ensemble):
        sweep = SeedSweep.from_ensemble(ensemble, "harvested_delivered_j")
        assert sweep.seeds == ensemble.seeds
        assert sweep.values == tuple(ensemble.metric("harvested_delivered_j"))
        assert 0.0 <= sweep.holds_fraction(lambda v: v > 0) <= 1.0

    def test_scenario_template_accepted(self):
        """run_ensemble also replicates a ready ScenarioSpec (factory
        style), not just declarative RunSpecs."""
        base = ScenarioSpec(
            name="d-ref",
            system=partial(build_system, "D"),
            environment=partial(outdoor_environment, duration=0.05 * DAY,
                                dt=600.0),
            duration=0.05 * DAY,
        )
        ensemble = run_ensemble(base, 4, root_seed=5, tier="auto")
        assert ensemble.execution_paths() == {"batched": 4}
        assert [r.name for r in ensemble] == [f"d-ref#r{i}"
                                              for i in range(4)]

    def test_formerly_ineligible_table1_systems_now_batch(self):
        """A (P&O trackers, fuel-cell backup, bus/MCU) rides the batched
        tier — the masked-lane envelope covers all of Table I."""
        ensemble = run_ensemble(mc_spec(letter="A", replicates=3),
                                tier="auto")
        assert ensemble.execution_paths() == {"batched": 3}

    def test_ineligible_system_falls_back_and_batched_tier_refuses(self):
        """Replaced physics stays outside every envelope: tier="auto"
        falls back, and pinning tier="batched" fails with the refusing
        component's capability report, not a generic tier error."""
        from repro.analysis.experiments.common import make_reference_system
        from repro.conditioning.mppt import FixedVoltage
        from repro.harvesters import PhotovoltaicCell
        from repro.storage import Supercapacitor

        class WarpedSupercap(Supercapacitor):
            def charge(self, power_w, dt):
                return super().charge(power_w * 0.7, dt)

        base = ScenarioSpec(
            name="warped",
            system=lambda: make_reference_system(
                [PhotovoltaicCell(area_cm2=40.0, name="pv")],
                tracker_factory=lambda: FixedVoltage(2.0),
                stores=[WarpedSupercap(capacitance_f=50.0, name="w")]),
            environment=partial(outdoor_environment, duration=0.05 * DAY,
                                dt=600.0),
            duration=0.05 * DAY,
        )
        ensemble = run_ensemble(base, 3, root_seed=3, tier="auto")
        assert "batched" not in ensemble.execution_paths()
        with pytest.raises(ValueError, match="batched envelope") as err:
            run_ensemble(base, 3, root_seed=3, tier="batched")
        # The error carries the capability report: component, missing
        # capability, and the divergence batching would have caused.
        message = str(err.value)
        assert "WarpedSupercap" in message
        assert "Supercapacitor physics" in message
        assert "every step" in message

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            run_ensemble(mc_spec(replicates=2), tier="gpu")


class TestCrossTierDeterminism:
    """The acceptance criterion: 256 batched replicates, bitwise equal
    to the multiprocessing and in-process tiers, summary reproducible
    from the root seed alone."""

    SPEC = dict(letter="C", replicates=256, root_seed=20260730,
                duration=0.05 * DAY, dt=600.0)

    @pytest.fixture(scope="class")
    def tiers(self):
        spec = mc_spec(**self.SPEC)
        return {tier: run_ensemble(spec, tier=tier)
                for tier in ("batched", "multiprocessing", "in-process")}

    def test_batched_end_to_end(self, tiers):
        assert tiers["batched"].execution_paths() == {"batched": 256}

    def test_rows_bitwise_identical_across_tiers(self, tiers):
        batched, multi, inproc = (tiers["batched"], tiers["multiprocessing"],
                                  tiers["in-process"])
        assert batched.seeds == multi.seeds == inproc.seeds
        for a, b, c in zip(batched, multi, inproc):
            assert a.name == b.name == c.name
            # RunMetrics is a frozen float dataclass: == is bitwise here.
            assert a.metrics == b.metrics == c.metrics, a.name
            assert a.n_steps == b.n_steps == c.n_steps

    def test_quantile_summary_bitwise_identical_across_tiers(self, tiers):
        for metric in CHECKED_METRICS:
            summaries = {tier: ensemble.summary(metric)
                         for tier, ensemble in tiers.items()}
            assert summaries["batched"] == summaries["multiprocessing"] \
                == summaries["in-process"], metric

    def test_summary_reproducible_from_root_seed(self, tiers):
        again = run_ensemble(mc_spec(**self.SPEC), tier="batched")
        for metric in CHECKED_METRICS:
            assert again.summary(metric) == \
                tiers["batched"].summary(metric), metric


class TestReplicateSweep:
    def test_expansion(self):
        base = SweepSpec(runs=(mc_spec("C").run, mc_spec("D").run),
                         name="pair")
        expanded = replicate_sweep(base, 3, root_seed=9)
        assert len(expanded.runs) == 6
        assert [r.name for r in expanded.runs[:3]] == \
            [f"C-mc#r{i}" for i in range(3)]
        # Run j draws from stream j: runs stay mutually independent.
        assert tuple(r.seed for r in expanded.runs[:3]) == \
            replicate_seeds(9, 3, stream=0)
        assert tuple(r.seed for r in expanded.runs[3:]) == \
            replicate_seeds(9, 3, stream=1)
        for run in expanded.runs:
            assert run.params["seed"] == run.seed

    def test_rejects_bad_inputs(self):
        with pytest.raises(TypeError, match="SweepSpec"):
            replicate_sweep(mc_spec().run, 2)
        with pytest.raises(ValueError, match="replicate"):
            replicate_sweep(SweepSpec(runs=(mc_spec().run,)), 0)


class TestEnsembleTable1:
    def test_cells_carry_bands(self):
        table = ensemble_table1(letters=("C", "E"), replicates=3,
                                duration=0.05 * DAY, dt=600.0)
        assert sorted(table) == ["C", "E"]
        summary = table["C"]["uptime_fraction"]
        assert summary.n == 3
        lo, hi = summary.band()
        assert lo <= summary.mean <= hi or math.isclose(lo, hi)
        text = render_ensemble_table1(table)
        assert "[" in text
        assert "Metric (mean [p5, p95])" in text
        assert "3 replicates" in text

    def test_letters_share_the_replicate_stream(self):
        """Replicate i sees the same weather draw on every platform —
        the comparison is paired per draw."""
        table_seed_stream = replicate_seeds(0, 2)
        ensembles = {}
        for letter in ("C", "D"):
            spec = mc_spec(letter=letter, replicates=2, root_seed=0,
                           duration=0.05 * DAY)
            ensembles[letter] = run_ensemble(spec, tier="auto")
        assert ensembles["C"].seeds == ensembles["D"].seeds == \
            table_seed_stream
