"""Tests for the digital/analog interface substrate."""

import pytest

from repro.environment import SourceType
from repro.harvesters import (
    DeviceKind,
    ElectronicDatasheet,
    PhotovoltaicCell,
    attach_datasheet,
)
from repro.conditioning import ModuleInterfaceCircuit
from repro.interfaces import (
    AnalogSenseLine,
    BusError,
    DatasheetROM,
    ModuleSlots,
    PowerUnitMCU,
    RegisterBus,
    read_datasheet,
)
from repro.interfaces.power_unit_mcu import (
    REG_ACTIVE_MASK,
    REG_BACKUP_ENABLE,
    REG_DUTY_LEVEL,
    REG_IDENT,
    REG_INPUT_100UW,
    REG_SOC_PERMILLE,
    REG_STATUS,
    REG_STORE_MV,
)
from repro.storage import Supercapacitor


def _harvester_datasheet(model="pv-x"):
    return ElectronicDatasheet(kind=DeviceKind.HARVESTER, model=model,
                               source_type=SourceType.LIGHT,
                               nominal_power_w=0.01, mpp_fraction=0.75,
                               nominal_voltage=3.0)


def _storage_datasheet(model="sc-x", capacity=100.0):
    return ElectronicDatasheet(kind=DeviceKind.STORAGE, model=model,
                               capacity_j=capacity, nominal_voltage=5.0)


class TestElectronicDatasheet:
    def test_roundtrip(self):
        ds = _harvester_datasheet()
        assert ElectronicDatasheet.decode(ds.encode()) == ds

    def test_storage_roundtrip(self):
        ds = _storage_datasheet()
        assert ElectronicDatasheet.decode(ds.encode()) == ds

    def test_harvester_requires_source(self):
        with pytest.raises(ValueError, match="source_type"):
            ElectronicDatasheet(kind=DeviceKind.HARVESTER, model="x")

    def test_storage_requires_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ElectronicDatasheet(kind=DeviceKind.STORAGE, model="x")

    def test_malformed_image_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            ElectronicDatasheet.decode(b"\x00\x01garbage")

    def test_mpp_fraction_bounds(self):
        with pytest.raises(ValueError):
            ElectronicDatasheet(kind=DeviceKind.HARVESTER, model="x",
                                source_type=SourceType.LIGHT,
                                mpp_fraction=1.2)

    def test_attach_datasheet(self):
        pv = PhotovoltaicCell()
        ds = _harvester_datasheet()
        assert attach_datasheet(pv, ds) is pv
        assert pv.datasheet is ds


class TestRegisterBus:
    def test_attach_and_read(self):
        bus = RegisterBus()
        bus.attach(0x10, DatasheetROM(_harvester_datasheet()))
        assert bus.read(0x10, 0x00) == 0x4544

    def test_address_conflicts(self):
        bus = RegisterBus()
        rom = DatasheetROM(_harvester_datasheet())
        bus.attach(0x10, rom)
        with pytest.raises(BusError, match="already in use"):
            bus.attach(0x10, rom)

    def test_missing_device(self):
        bus = RegisterBus()
        with pytest.raises(BusError, match="no device"):
            bus.read(0x22, 0)
        with pytest.raises(BusError, match="no device"):
            bus.detach(0x22)

    def test_address_range_enforced(self):
        bus = RegisterBus()
        with pytest.raises(BusError, match="7-bit"):
            bus.read(0x80, 0)

    def test_transaction_accounting(self):
        bus = RegisterBus(energy_per_transaction_j=2e-6)
        bus.attach(0x10, DatasheetROM(_harvester_datasheet()))
        bus.read(0x10, 0x00)
        bus.read(0x10, 0x01)
        assert bus.transactions == 2
        assert bus.energy_spent_j == pytest.approx(4e-6)

    def test_scan(self):
        bus = RegisterBus()
        bus.attach(0x30, DatasheetROM(_harvester_datasheet()))
        bus.attach(0x10, DatasheetROM(_storage_datasheet()))
        assert bus.scan() == (0x10, 0x30)

    def test_word_bounds(self):
        bus = RegisterBus()
        mcu = PowerUnitMCU(lambda: {})
        bus.attach(0x20, mcu)
        with pytest.raises(BusError, match="16-bit"):
            bus.write(0x20, REG_DUTY_LEVEL, -1)

    def test_read_only_device_write(self):
        bus = RegisterBus()
        bus.attach(0x10, DatasheetROM(_harvester_datasheet()))
        with pytest.raises(BusError, match="read-only"):
            bus.write(0x10, 0x00, 1)


class TestDatasheetProtocol:
    def test_read_over_bus(self):
        bus = RegisterBus()
        ds = _storage_datasheet(capacity=321.5)
        bus.attach(0x21, DatasheetROM(ds))
        decoded = read_datasheet(bus, 0x21)
        assert decoded == ds

    def test_wrong_magic_raises(self):
        bus = RegisterBus()
        mcu = PowerUnitMCU(lambda: {"store_voltage": 3.0})
        bus.attach(0x21, mcu)
        with pytest.raises(BusError, match="datasheet"):
            read_datasheet(bus, 0x21)

    def test_read_costs_transactions(self):
        bus = RegisterBus()
        bus.attach(0x21, DatasheetROM(_storage_datasheet()))
        before = bus.transactions
        read_datasheet(bus, 0x21)
        assert bus.transactions > before + 2  # magic + length + data words

    def test_rom_rejects_out_of_range(self):
        rom = DatasheetROM(_harvester_datasheet())
        with pytest.raises(BusError, match="past end"):
            rom.read_register(0x10 + 10_000)


class TestAnalogSenseLine:
    def test_quantisation(self):
        line = AnalogSenseLine(lambda: 2.5, adc_bits=10, v_ref=3.3)
        reading = line.read_voltage()
        assert reading == pytest.approx(2.5, abs=line.lsb_volts)

    def test_divider_referred(self):
        line = AnalogSenseLine(lambda: 5.0, divider_ratio=0.5, adc_bits=12,
                               v_ref=3.3)
        assert line.read_voltage() == pytest.approx(5.0, abs=line.lsb_volts)

    def test_saturates_at_reference(self):
        line = AnalogSenseLine(lambda: 100.0, adc_bits=8, v_ref=3.3)
        assert line.read_raw() == 255

    def test_counts_samples(self):
        line = AnalogSenseLine(lambda: 1.0)
        line.read_voltage()
        line.read_voltage()
        assert line.samples == 2

    def test_validation(self):
        with pytest.raises(TypeError):
            AnalogSenseLine(3.3)
        with pytest.raises(ValueError):
            AnalogSenseLine(lambda: 1.0, divider_ratio=0.0)


class TestPowerUnitMCU:
    def _mcu(self):
        telemetry = {"store_voltage": 4.123, "soc": 0.456,
                     "input_power": 0.0123, "n_channels": 3,
                     "active_mask": 0b101, "backup_active": False}
        return PowerUnitMCU(lambda: dict(telemetry)), telemetry

    def test_register_map(self):
        mcu, _ = self._mcu()
        assert mcu.read_register(REG_IDENT) == 0x5350
        assert mcu.read_register(REG_STORE_MV) == 4123
        assert mcu.read_register(REG_SOC_PERMILLE) == 456
        assert mcu.read_register(REG_INPUT_100UW) == 123
        assert mcu.read_register(REG_ACTIVE_MASK) == 0b101
        assert mcu.read_register(REG_STATUS) & 0x01

    def test_duty_level_write_invokes_callback(self):
        seen = []
        mcu = PowerUnitMCU(lambda: {}, on_duty_level=seen.append)
        mcu.write_register(REG_DUTY_LEVEL, 9)
        assert seen == [9]
        assert mcu.read_register(REG_DUTY_LEVEL) == 9

    def test_backup_enable_write(self):
        seen = []
        mcu = PowerUnitMCU(lambda: {}, on_backup_enable=seen.append)
        mcu.write_register(REG_BACKUP_ENABLE, 1)
        assert seen == [True]

    def test_duty_level_range(self):
        mcu, _ = self._mcu()
        with pytest.raises(BusError):
            mcu.write_register(REG_DUTY_LEVEL, 99)

    def test_unknown_register(self):
        mcu, _ = self._mcu()
        with pytest.raises(BusError):
            mcu.read_register(0x55)
        with pytest.raises(BusError):
            mcu.write_register(0x55, 0)

    def test_clamping(self):
        mcu = PowerUnitMCU(lambda: {"store_voltage": 1e6})
        assert mcu.read_register(REG_STORE_MV) == 0xFFFF


class TestModuleSlots:
    def _slots(self):
        bus = RegisterBus()
        return ModuleSlots(bus=bus, n_slots=6), bus

    def _pv_module(self, model="pv-m"):
        pv = attach_datasheet(PhotovoltaicCell(area_cm2=10, efficiency=0.06),
                              _harvester_datasheet(model))
        return ModuleInterfaceCircuit(pv, name=model)

    def _store_module(self, model="sc-m", capacity=123.0):
        sc = Supercapacitor(capacitance_f=10.0)
        attach_datasheet(sc, _storage_datasheet(model, capacity))
        return ModuleInterfaceCircuit(sc, name=model)

    def test_attach_detach(self):
        slots, _ = self._slots()
        module = self._pv_module()
        slots.attach(0, module)
        assert slots.module_at(0) is module
        assert slots.detach(0) is module
        assert slots.module_at(0) is None

    def test_occupied_slot_rejected(self):
        slots, _ = self._slots()
        slots.attach(0, self._pv_module())
        with pytest.raises(ValueError, match="occupied"):
            slots.attach(0, self._pv_module("pv-2"))

    def test_slot_range(self):
        slots, _ = self._slots()
        with pytest.raises(ValueError):
            slots.attach(6, self._pv_module())

    def test_enumeration_discovers_datasheets(self):
        slots, _ = self._slots()
        slots.attach(0, self._pv_module("pv-a"))
        slots.attach(3, self._store_module("sc-a", 250.0))
        inventory = slots.enumerate()
        assert [r.slot for r in inventory.records] == [0, 3]
        assert inventory.harvesters[0].datasheet.model == "pv-a"
        assert inventory.total_storage_capacity_j == pytest.approx(250.0)

    def test_bare_module_is_unrecognized(self):
        slots, _ = self._slots()
        bare = ModuleInterfaceCircuit(Supercapacitor(capacitance_f=5.0))
        slots.attach(1, bare)
        inventory = slots.enumerate()
        assert len(inventory.unrecognized) == 1
        assert inventory.total_storage_capacity_j == 0.0

    def test_hot_swap_updates_enumeration(self):
        slots, _ = self._slots()
        slots.attach(0, self._store_module("sc-old", 100.0))
        assert slots.enumerate().total_storage_capacity_j == 100.0
        slots.swap(0, self._store_module("sc-new", 400.0))
        assert slots.enumerate().total_storage_capacity_j == 400.0
        assert slots.attach_events == 2
        assert slots.detach_events == 1

    def test_enumeration_costs_bus_energy(self):
        slots, bus = self._slots()
        slots.attach(0, self._pv_module())
        before = bus.energy_spent_j
        slots.enumerate()
        assert bus.energy_spent_j > before
