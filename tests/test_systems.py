"""Tests for the seven surveyed system models (Table I columns A-G)."""

import pytest

from repro.core import (
    HardwareFlexibility,
    IntelligenceLocation,
    MonitoringCapability,
    classify,
)
from repro.environment import SourceType
from repro.simulation import simulate
from repro.systems import (
    SYSTEM_BUILDERS,
    SYSTEM_NAMES,
    all_systems,
    build_system,
)

DAY = 86_400.0

#: Table I quiescent entries: (amps, is_upper_bound).
TABLE_QUIESCENT = {
    "A": (5e-6, False),
    "B": (7e-6, False),
    "C": (5e-6, True),
    "D": (75e-6, False),
    "E": (1e-6, True),
    "F": (20e-6, False),
    "G": (32e-6, True),
}


@pytest.fixture(scope="module")
def systems():
    return all_systems()


class TestRegistry:
    def test_all_seven_present(self, systems):
        assert sorted(systems) == list("ABCDEFG")

    def test_build_by_letter_case_insensitive(self):
        assert build_system("a").architecture.short_name == "A"

    def test_unknown_letter(self):
        with pytest.raises(KeyError):
            build_system("Z")

    def test_unknown_letter_lists_choices(self):
        with pytest.raises(KeyError, match=r"choose from.*'A'"):
            build_system("Z")

    def test_non_string_letter_raises_documented_keyerror(self):
        """Regression: a non-string key used to escape as AttributeError
        from ``letter.upper()``; it must raise the documented KeyError
        naming the valid letters."""
        for bad in (3, None, ("A",), b"A"):
            with pytest.raises(KeyError, match="must be a string"):
                build_system(bad)

    def test_names_match_builders(self):
        assert sorted(SYSTEM_NAMES) == sorted(SYSTEM_BUILDERS)


class TestQuiescentBudgets:
    @pytest.mark.parametrize("letter", list("ABCDEFG"))
    def test_platform_quiescent_matches_table(self, systems, letter):
        system = systems[letter]
        amps, is_bound = TABLE_QUIESCENT[letter]
        total = system.total_quiescent_current_a
        if is_bound:
            assert total < amps, f"system {letter} exceeds its '<' bound"
        else:
            assert total == pytest.approx(amps, abs=0.1e-6)


class TestStructure:
    def test_a_has_fuel_cell_backup(self, systems):
        backups = systems["A"].bank.backup_stores
        assert len(backups) == 1
        assert backups[0].table_label == "Fuel cell"

    def test_a_has_mcu_and_bus(self, systems):
        assert systems["A"].mcu is not None
        assert systems["A"].bus is not None
        assert systems["A"].architecture.has_digital_interface

    def test_a_counts(self, systems):
        assert len(systems["A"].channels) == 3
        assert len(systems["A"].bank.stores) == 3

    def test_b_has_six_slots_with_datasheets(self, systems):
        slots = systems["B"].slots
        assert slots is not None
        assert slots.n_slots == 6
        inventory = slots.enumerate()
        assert len(inventory.unrecognized) == 0
        assert len(inventory.harvesters) == 4
        assert len(inventory.stores) == 2

    def test_b_auto_recognition(self, systems):
        assert systems["B"].architecture.auto_recognition
        assert not systems["A"].architecture.auto_recognition

    def test_b_is_fully_flexible(self, systems):
        assert systems["B"].architecture.flexibility is \
            HardwareFlexibility.COMPLETELY_FLEXIBLE

    def test_c_has_no_intelligence(self, systems):
        assert systems["C"].architecture.intelligence is \
            IntelligenceLocation.NONE
        assert systems["C"].monitor.soc_estimate() is None

    def test_d_limited_monitoring(self, systems):
        assert systems["D"].architecture.monitoring is \
            MonitoringCapability.STORE_VOLTAGE
        assert systems["D"].monitor.store_voltage() is not None
        assert systems["D"].monitor.input_power() is None

    def test_d_sources(self, systems):
        assert set(systems["D"].harvester_types) == {
            SourceType.LIGHT, SourceType.WIND, SourceType.WATER_FLOW}

    def test_e_two_inputs_one_store(self, systems):
        assert len(systems["E"].channels) == 2
        assert len(systems["E"].bank.stores) == 1

    def test_f_activity_monitoring_with_mcu(self, systems):
        assert systems["F"].architecture.monitoring is \
            MonitoringCapability.DEVICE_ACTIVITY
        assert systems["F"].mcu is not None
        assert systems["F"].architecture.has_digital_interface

    def test_f_restrictive_input_windows(self, systems):
        # Table I remark: F's inputs have hard voltage windows.
        converters = [c.conditioner.converter for c in systems["F"].channels]
        assert any(conv.max_input_voltage == pytest.approx(4.06)
                   for conv in converters)

    def test_g_fixed_node(self, systems):
        assert not systems["G"].architecture.swappable_sensor_node
        assert not systems["D"].architecture.swappable_sensor_node

    def test_commercial_flags(self, systems):
        for letter, expected in (("A", False), ("B", False), ("C", False),
                                 ("D", False), ("E", True), ("F", True),
                                 ("G", True)):
            assert systems[letter].architecture.commercial is expected


class TestInstalledHardwareConsistency:
    """The supported-labels metadata must cover the installed hardware."""

    @pytest.mark.parametrize("letter", list("ABCDEFG"))
    def test_installed_harvesters_subset_of_supported(self, systems, letter):
        system = systems[letter]
        supported = set(system.architecture.supported_harvester_labels)
        installed = {c.harvester.table_label for c in system.channels}
        assert installed <= supported, (
            f"system {letter}: installed {installed} not covered by "
            f"Table I supported types {supported}")


class TestSimulationRuns:
    @pytest.mark.parametrize("letter", list("ABCD"))
    def test_outdoor_class_systems_run(self, systems, letter, outdoor_env):
        system = build_system(letter)
        result = simulate(system, outdoor_env, duration=DAY)
        assert result.metrics.harvested_delivered_j > 0.0

    @pytest.mark.parametrize("letter", list("BEFG"))
    def test_indoor_class_systems_run(self, letter, indoor_env):
        system = build_system(letter)
        result = simulate(system, indoor_env, duration=DAY)
        # Commercial micro-kits harvest little indoors but must not crash,
        # and the recorder must cover the full day.
        assert len(result.recorder) == int(DAY / indoor_env.dt)

    def test_system_a_harvests_meaningfully_outdoors(self, outdoor_env):
        system = build_system("A", initial_soc=0.5)
        result = simulate(system, outdoor_env, duration=2 * DAY)
        # mW-scale platform: should gather kJ over two outdoor days.
        assert result.metrics.harvested_delivered_j > 1000.0
        assert result.metrics.uptime_fraction == 1.0

    def test_system_b_survives_indoors(self, indoor_env):
        system = build_system("B", initial_soc=0.6)
        result = simulate(system, indoor_env, duration=2 * DAY)
        assert result.metrics.uptime_fraction > 0.95

    def test_builders_accept_custom_node(self):
        from repro.load import WirelessSensorNode
        node = WirelessSensorNode(measurement_interval_s=123.0)
        system = build_system("A", node=node)
        assert system.node is node


class TestClassificationRows:
    def test_counts_row(self, systems):
        rows = {k: classify(s, device=k) for k, s in systems.items()}
        assert rows["A"].harvesters_stores == "3/3"
        assert rows["B"].harvesters_stores == "6 (shared)"
        assert rows["C"].harvesters_stores == "3/2"
        assert rows["D"].harvesters_stores == "3/1"
        assert rows["E"].harvesters_stores == "2/1"
        assert rows["F"].harvesters_stores == "4/2"
        assert rows["G"].harvesters_stores == "3/1"

    def test_digital_interface_row(self, systems):
        rows = {k: classify(s, device=k) for k, s in systems.items()}
        assert rows["A"].digital_interface == "Yes"
        assert rows["F"].digital_interface == "Yes"
        for letter in "BCDEG":
            assert rows[letter].digital_interface == "No"

    def test_energy_monitoring_row(self, systems):
        rows = {k: classify(s, device=k) for k, s in systems.items()}
        assert rows["D"].energy_monitoring == "Limited"
        for letter in "ABF":
            assert rows[letter].energy_monitoring == "Yes"
        for letter in "CEG":
            assert rows[letter].energy_monitoring == "No"
