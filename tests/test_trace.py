"""Unit and property tests for repro.environment.trace.Trace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment import Trace


class TestConstruction:
    def test_values_coerced_to_float64(self):
        tr = Trace([1, 2, 3], dt=1.0)
        assert tr.values.dtype == np.float64

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError, match="1-D"):
            Trace(np.zeros((2, 2)), dt=1.0)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError, match="dt"):
            Trace([1.0], dt=0.0)
        with pytest.raises(ValueError, match="dt"):
            Trace([1.0], dt=-1.0)

    def test_constant_factory(self):
        tr = Trace.constant(2.5, duration=10.0, dt=2.0)
        assert len(tr) == 5
        assert np.all(tr.values == 2.5)

    def test_zeros_factory(self):
        tr = Trace.zeros(duration=6.0, dt=2.0)
        assert len(tr) == 3
        assert tr.max() == 0.0

    def test_constant_minimum_one_sample(self):
        tr = Trace.constant(1.0, duration=0.1, dt=60.0)
        assert len(tr) == 1


class TestBasicProtocol:
    def test_len_iter_getitem(self):
        tr = Trace([1.0, 2.0, 3.0], dt=1.0)
        assert len(tr) == 3
        assert list(tr) == [1.0, 2.0, 3.0]
        assert tr[1] == 2.0

    def test_duration(self):
        assert Trace([0.0] * 10, dt=60.0).duration == 600.0

    def test_times(self):
        tr = Trace([0.0, 0.0, 0.0], dt=2.0)
        assert list(tr.times) == [0.0, 2.0, 4.0]


class TestAt:
    def test_zero_order_hold(self):
        tr = Trace([10.0, 20.0, 30.0], dt=1.0)
        assert tr.at(0.0) == 10.0
        assert tr.at(0.99) == 10.0
        assert tr.at(1.0) == 20.0

    def test_holds_last_value_past_end(self):
        tr = Trace([1.0, 2.0], dt=1.0)
        assert tr.at(100.0) == 2.0

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            Trace([1.0], dt=1.0).at(-0.1)

    def test_boundary_time_from_fp_accumulation(self):
        """Accumulated times that land a few ULPs below an exact step
        boundary must read the boundary sample, not the previous one."""
        tr = Trace([0.0, 1.0, 2.0, 3.0, 4.0], dt=1.0)
        t = 0.0
        for _ in range(3):
            t += 0.1
        t *= 10  # 2.9999999999999996: mathematically 3.0
        assert t != 3.0  # the classic FP drift this guards against
        assert tr.at(t) == 3.0

    def test_boundary_times_fractional_dt(self):
        tr = Trace(np.arange(10, dtype=float), dt=0.1)
        for i in range(10):
            # i * 0.1 is inexact for most i; each must hit sample i.
            assert tr.at(i * 0.1) == float(i)

    def test_exact_boundaries_unchanged(self):
        tr = Trace([5.0, 6.0, 7.0], dt=2.0)
        assert tr.at(0.0) == 5.0
        assert tr.at(2.0) == 6.0
        assert tr.at(3.999999) == 6.0
        assert tr.at(4.0) == 7.0

    def test_mid_interval_times_not_promoted(self):
        """The tolerance must not be so wide it rounds real mid-interval
        times up to the next sample."""
        tr = Trace([1.0, 2.0], dt=1.0)
        assert tr.at(0.5) == 1.0
        assert tr.at(0.9999) == 1.0


class TestArithmetic:
    def test_add_traces(self):
        a = Trace([1.0, 2.0], dt=1.0)
        b = Trace([10.0, 20.0], dt=1.0)
        assert list((a + b).values) == [11.0, 22.0]

    def test_add_scalar(self):
        tr = Trace([1.0, 2.0], dt=1.0) + 5.0
        assert list(tr.values) == [6.0, 7.0]

    def test_radd_scalar(self):
        tr = 5.0 + Trace([1.0], dt=1.0)
        assert tr.values[0] == 6.0

    def test_sub_and_mul(self):
        a = Trace([4.0, 6.0], dt=1.0)
        assert list((a - 1.0).values) == [3.0, 5.0]
        assert list((a * 2.0).values) == [8.0, 12.0]

    def test_mismatched_dt_rejected(self):
        a = Trace([1.0], dt=1.0)
        b = Trace([1.0], dt=2.0)
        with pytest.raises(ValueError, match="mismatched dt"):
            a + b

    def test_mismatched_length_rejected(self):
        a = Trace([1.0], dt=1.0)
        b = Trace([1.0, 2.0], dt=1.0)
        with pytest.raises(ValueError, match="length"):
            a + b

    def test_clip(self):
        tr = Trace([-1.0, 0.5, 2.0], dt=1.0).clip(0.0, 1.0)
        assert list(tr.values) == [0.0, 0.5, 1.0]

    def test_scaled(self):
        tr = Trace([1.0, 2.0], dt=1.0).scaled(3.0)
        assert list(tr.values) == [3.0, 6.0]


class TestStatistics:
    def test_integral_rectangle_rule(self):
        tr = Trace([2.0, 2.0, 2.0], dt=10.0)
        assert tr.integral() == pytest.approx(60.0)

    def test_mean_max_min(self):
        tr = Trace([1.0, 3.0, 2.0], dt=1.0)
        assert tr.mean() == pytest.approx(2.0)
        assert tr.max() == 3.0
        assert tr.min() == 1.0

    def test_fraction_above(self):
        tr = Trace([0.0, 1.0, 2.0, 3.0], dt=1.0)
        assert tr.fraction_above(1.5) == pytest.approx(0.5)
        assert tr.fraction_above(-1.0) == 1.0
        assert tr.fraction_above(10.0) == 0.0


class TestResample:
    def test_identity_resample_copies(self):
        tr = Trace([1.0, 2.0], dt=1.0)
        out = tr.resample(1.0)
        assert list(out.values) == [1.0, 2.0]
        out.values[0] = 99.0
        assert tr.values[0] == 1.0  # original untouched

    def test_upsample_repeats(self):
        tr = Trace([1.0, 2.0], dt=2.0)
        out = tr.resample(1.0)
        assert list(out.values) == [1.0, 1.0, 2.0, 2.0]

    def test_downsample_averages_blocks(self):
        tr = Trace([1.0, 3.0, 5.0, 7.0], dt=1.0)
        out = tr.resample(2.0)
        assert list(out.values) == [2.0, 6.0]

    def test_downsample_preserves_integral(self):
        rng = np.random.default_rng(0)
        tr = Trace(rng.random(120), dt=1.0)
        out = tr.resample(10.0)
        assert out.integral() == pytest.approx(tr.integral(), rel=1e-9)

    def test_rejects_nonpositive_new_dt(self):
        with pytest.raises(ValueError):
            Trace([1.0], dt=1.0).resample(0.0)


class TestSlicing:
    def test_slice_time(self):
        tr = Trace(np.arange(10.0), dt=1.0)
        sub = tr.slice_time(2.0, 5.0)
        assert list(sub.values) == [2.0, 3.0, 4.0]

    def test_slice_time_clamps_to_bounds(self):
        tr = Trace(np.arange(3.0), dt=1.0)
        sub = tr.slice_time(0.0, 100.0)
        assert len(sub) == 3

    def test_slice_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            Trace([1.0], dt=1.0).slice_time(5.0, 2.0)


@settings(max_examples=50)
@given(
    values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=200),
    dt=st.floats(min_value=0.1, max_value=3600.0),
)
def test_integral_nonnegative_for_nonnegative_traces(values, dt):
    assert Trace(values, dt=dt).integral() >= 0.0


@settings(max_examples=50)
@given(
    values=st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2,
                    max_size=100),
    factor=st.integers(min_value=2, max_value=10),
)
def test_downsample_integral_invariant(values, factor):
    tr = Trace(values, dt=1.0)
    out = tr.resample(float(factor))
    # Block averaging preserves the integral up to the ragged tail block.
    tail = len(values) % factor
    if tail == 0 and len(values) >= factor:
        assert out.integral() == pytest.approx(tr.integral(), abs=1e-6)


@settings(max_examples=50)
@given(st.floats(min_value=0.0, max_value=1e5))
def test_at_matches_getitem_on_grid(t):
    tr = Trace(np.arange(100.0), dt=7.0)
    idx = min(int(t / 7.0), 99)
    assert tr.at(t) == tr.values[idx]
