"""Edge-case coverage: engine dt overrides, repr contracts, conditioner
corner behaviours, and numerical extremes."""

import pytest

from repro.analysis.experiments import make_reference_system
from repro.conditioning import (
    BuckBoostConverter,
    FixedVoltage,
    InputConditioner,
    OracleMPPT,
    OutputConditioner,
)
from repro.core import HarvestingChannel, StorageBank
from repro.environment import Environment, SourceType, Trace
from repro.harvesters import PhotovoltaicCell, ThermoelectricGenerator
from repro.load import WirelessSensorNode
from repro.simulation import Simulator, simulate
from repro.storage import IdealStorage, Supercapacitor


class TestEngineDtHandling:
    def test_dt_override_coarser_than_env(self):
        system = make_reference_system([PhotovoltaicCell(area_cm2=20.0)])
        env = Environment(
            {SourceType.LIGHT: Trace.constant(400.0, 3600.0, dt=60.0)})
        result = simulate(system, env, dt=300.0)
        assert len(result.recorder) == 12

    def test_dt_override_finer_than_env(self):
        system = make_reference_system([PhotovoltaicCell(area_cm2=20.0)])
        env = Environment(
            {SourceType.LIGHT: Trace.constant(400.0, 3600.0, dt=600.0)})
        result = simulate(system, env, dt=60.0)
        assert len(result.recorder) == 60

    def test_fine_and_coarse_dt_agree_on_energy(self):
        def run(dt):
            system = make_reference_system(
                [PhotovoltaicCell(area_cm2=20.0)],
                tracker_factory=OracleMPPT,
                measurement_interval_s=120.0)
            env = Environment(
                {SourceType.LIGHT: Trace.constant(400.0, 7200.0, dt=60.0)})
            return simulate(system, env, dt=dt).metrics

        coarse, fine = run(600.0), run(60.0)
        assert coarse.harvested_delivered_j == pytest.approx(
            fine.harvested_delivered_j, rel=0.02)

    def test_negative_dt_rejected(self):
        system = make_reference_system([PhotovoltaicCell(area_cm2=20.0)])
        env = Environment(
            {SourceType.LIGHT: Trace.constant(400.0, 600.0, dt=60.0)})
        with pytest.raises(ValueError):
            Simulator(system, env, dt=-5.0)


class TestReprContracts:
    """__repr__ must be informative and never raise — debuggers rely on it."""

    def test_reprs_render(self):
        objects = [
            Trace([1.0], dt=1.0),
            PhotovoltaicCell(),
            Supercapacitor(),
            IdealStorage(),
            FixedVoltage(2.0),
            InputConditioner(),
            OutputConditioner(),
            WirelessSensorNode(),
            StorageBank([IdealStorage()]),
            HarvestingChannel(PhotovoltaicCell(), InputConditioner()),
            make_reference_system([PhotovoltaicCell()]),
        ]
        for obj in objects:
            text = repr(obj)
            assert isinstance(text, str) and text

    def test_environment_repr_lists_channels(self):
        env = Environment({SourceType.LIGHT: Trace([1.0], dt=1.0)},
                          name="spot")
        assert "spot" in repr(env)
        assert "light" in repr(env)


class TestConditionerCorners:
    def test_fixed_voltage_above_voc_clips_to_voc(self):
        teg = ThermoelectricGenerator()
        conditioner = InputConditioner(tracker=FixedVoltage(10.0))
        step = conditioner.step(teg, 5.0, 1.0, 3.3)
        # Clipped to Voc: zero current, zero power — not an error.
        assert step.raw_power == 0.0

    def test_converter_window_zeroes_extraction(self):
        pv = PhotovoltaicCell()
        conditioner = InputConditioner(
            tracker=OracleMPPT(),
            converter=BuckBoostConverter(min_input_voltage=50.0,
                                         max_input_voltage=100.0))
        step = conditioner.step(pv, 800.0, 1.0, 3.3)
        assert step.raw_power == 0.0
        assert step.delivered_power == 0.0
        assert step.mpp_power > 0.0  # opportunity cost still visible

    def test_output_conditioner_can_supply_boundary(self):
        out = OutputConditioner(output_voltage=3.0, min_input_voltage=3.0)
        assert out.can_supply(3.0)
        assert not out.can_supply(2.999)


class TestNumericalExtremes:
    def test_huge_irradiance_finite(self):
        pv = PhotovoltaicCell()
        mpp = pv.mpp(1e6)
        assert mpp.power > 0.0
        assert mpp.power < 1e6

    def test_tiny_irradiance_nonnegative(self):
        pv = PhotovoltaicCell()
        assert pv.mpp(1e-12).power >= 0.0

    def test_zero_capacity_headroom(self):
        store = IdealStorage(capacity_j=1.0, initial_soc=1.0)
        assert store.headroom_j == 0.0
        assert store.charge(100.0, 100.0) == 0.0

    def test_bank_idle_on_empty_stores(self):
        bank = StorageBank([Supercapacitor(capacitance_f=5.0,
                                           initial_soc=0.0)])
        lost = bank.idle(86_400.0)
        assert lost >= 0.0

    def test_long_idle_never_negative_energy(self):
        sc = Supercapacitor(capacitance_f=5.0, initial_soc=0.2,
                            leakage_resistance=1000.0)
        for _ in range(50):
            sc.step_idle(86_400.0)
        assert sc.energy_j >= 0.0
        assert sc.voltage() >= 0.0
