"""The survey's prose claims, asserted against the live models.

Sections III-IV of the paper make specific statements about the seven
systems; a faithful reproduction must make every one of them true of the
executable models. Each test quotes the claim it checks.
"""

import pytest

from repro.core import (
    ConditioningLocation,
    HardwareFlexibility,
    IntelligenceLocation,
    MonitoringCapability,
    classify,
)
from repro.systems import all_systems


@pytest.fixture(scope="module")
def systems():
    return all_systems()


class TestSectionIII1PowerConditioning:
    """Sec. III.1 — conditioning location and topology flexibility."""

    def test_all_but_b_condition_on_the_power_unit(self, systems):
        """'All the listed systems (apart from B) have their power
        conditioning circuits on the power unit.'"""
        for letter, system in systems.items():
            location = system.architecture.conditioning_location
            if letter == "B":
                assert location is ConditioningLocation.PER_MODULE
            else:
                assert location is ConditioningLocation.POWER_UNIT, letter

    def test_d_and_g_have_node_on_power_unit(self, systems):
        """'systems D and G have the sensor node on the power unit, which
        means that the system topology is inflexible.'"""
        for letter in ("D", "G"):
            assert not systems[letter].architecture.swappable_sensor_node
        for letter in ("A", "B", "C", "E", "F"):
            assert systems[letter].architecture.swappable_sensor_node


class TestSectionIII2ExchangeableHardware:
    """Sec. III.2 — swappability and its monitoring consequences."""

    def test_only_b_swaps_everything_without_losing_awareness(self, systems):
        """'The only system ... which allows all sources and stores to be
        swapped dynamically without impacting on the software's
        energy-awareness is System B.'"""
        for letter, system in systems.items():
            arch = system.architecture
            fully_flexible_and_aware = (
                arch.auto_recognition and
                arch.flexibility is HardwareFlexibility.COMPLETELY_FLEXIBLE)
            assert fully_flexible_and_aware == (letter == "B"), letter

    def test_f_has_restrictive_voltage_windows(self, systems):
        """'for System F, certain inputs must be below 4.06 V, while
        others must be between 4.06 V and 20 V.'"""
        converters = [c.conditioner.converter
                      for c in systems["F"].channels]
        below = [c for c in converters
                 if c.max_input_voltage == pytest.approx(4.06)]
        above = [c for c in converters
                 if c.min_input_voltage == pytest.approx(4.06) and
                 c.max_input_voltage == pytest.approx(20.0)]
        assert below and above


class TestSectionIII3Monitoring:
    """Sec. III.3 — monitoring capabilities per system."""

    def test_a_manages_autonomously_with_visibility(self, systems):
        """'System A ... has a dedicated microcontroller on the power unit
        which is able to manage the system autonomously, or provide
        visibility and control facilities to the sensor node.'"""
        a = systems["A"]
        assert a.mcu is not None
        assert a.architecture.monitoring is MonitoringCapability.FULL
        assert a.manager is not None

    def test_b_monitors_power_and_energy_across_changes(self, systems):
        """'System B allows the system to monitor incoming power and
        stored energy and can accommodate changes in the energy
        devices.'"""
        b = systems["B"]
        assert b.architecture.monitoring is MonitoringCapability.FULL
        assert b.architecture.auto_recognition

    def test_d_store_voltage_only(self, systems):
        """'System D only allows the store voltage to be monitored.'"""
        d = systems["D"]
        assert d.monitor.store_voltage() is not None
        assert d.monitor.input_power() is None
        assert d.monitor.estimated_stored_energy() is None

    def test_f_sees_active_devices(self, systems):
        """'System F allows the system to see which devices are
        active.'"""
        f = systems["F"]
        assert f.architecture.monitoring is \
            MonitoringCapability.DEVICE_ACTIVITY
        assert f.monitor.active_channel_mask() is not None
        assert f.monitor.input_power() is None


class TestSectionIII4Intelligence:
    """Sec. III.4 — where the intelligence lives."""

    def test_a_and_f_have_dedicated_controllers(self, systems):
        """'Systems A and F have dedicated controllers that carry out the
        energy-awareness tasks and interface with the sensor node.'"""
        for letter in ("A", "F"):
            assert systems[letter].architecture.intelligence is \
                IntelligenceLocation.POWER_UNIT
            assert systems[letter].mcu is not None

    def test_b_relies_on_the_node_mcu(self, systems):
        """'System B has no on-board microcontroller, and relies on the
        sensor node's microcontroller.'"""
        b = systems["B"]
        assert b.mcu is None
        assert b.architecture.intelligence is \
            IntelligenceLocation.EMBEDDED_DEVICE

    def test_the_rest_have_no_intelligence(self, systems):
        """'The rest of the systems have no intelligence on board.'"""
        for letter in ("C", "D", "E", "G"):
            assert systems[letter].architecture.intelligence is \
                IntelligenceLocation.NONE, letter


class TestSectionIVDiscussion:
    """Sec. IV — the concluding comparisons."""

    def test_a_and_f_only_explicit_digital_interfaces(self, systems):
        """'Systems A and F are the only ones to provide an explicit
        digital interface to the embedded system.'"""
        for letter, system in systems.items():
            expected = letter in ("A", "F")
            assert system.architecture.has_digital_interface == expected, \
                letter

    def test_b_six_agnostic_slots(self, systems):
        """'System B allows up to six energy devices to be connected, and
        is agnostic about whether these are storage or harvesting
        devices.'"""
        b = systems["B"]
        assert b.slots.n_slots == 6
        inventory = b.slots.enumerate()
        assert inventory.harvesters and inventory.stores  # mixed kinds

    def test_most_are_not_energy_aware(self, systems):
        """'most are not energy-aware' — 4 of 7 have no or limited
        monitoring."""
        weak = [letter for letter, s in systems.items()
                if s.architecture.monitoring in
                (MonitoringCapability.NONE,
                 MonitoringCapability.STORE_VOLTAGE)]
        assert len(weak) >= 4

    def test_only_one_auto_recognizes_hardware_changes(self, systems):
        """'only one allows changes in the connected hardware to be
        automatically recognized.'"""
        recognizers = [letter for letter, s in systems.items()
                       if s.architecture.auto_recognition]
        assert recognizers == ["B"]

    def test_systems_mandate_harvesters_or_interfaces(self, systems):
        """'they either mandate that certain types of energy harvester
        should be used (systems A, C-G), or require that devices have a
        certain interface circuit (System B).'"""
        for letter, system in systems.items():
            arch = system.architecture
            if letter == "B":
                assert arch.conditioning_location is \
                    ConditioningLocation.PER_MODULE
            else:
                # Mandated harvester types: the supported list is closed.
                assert arch.supported_harvester_labels, letter

    def test_classification_is_self_consistent(self, systems):
        """The classifier derives the same story as the taxonomy flags."""
        for letter, system in systems.items():
            row = classify(system, device=letter)
            assert (row.digital_interface == "Yes") == \
                system.architecture.has_digital_interface
            assert (row.commercial == "Yes") == \
                system.architecture.commercial
