"""Tests for the opportunistic channel-gating manager."""

import pytest

from repro.analysis.experiments import make_reference_system
from repro.core import ChannelGatingManager, StaticManager, ThresholdManager
from repro.environment import outdoor_environment
from repro.harvesters import PhotovoltaicCell, RFHarvester
from repro.simulation import Simulator, simulate

DAY = 86_400.0


def _system(manager, channel_quiescent_a=3e-6):
    return make_reference_system(
        [PhotovoltaicCell(area_cm2=30.0, efficiency=0.16, name="pv"),
         RFHarvester(name="rf")],  # the outdoor env has no RF channel
        capacitance_f=50.0, measurement_interval_s=120.0,
        manager=manager, channel_quiescent_a=channel_quiescent_a)


class TestChannelGating:
    def test_dead_channel_gated_live_channel_kept(self):
        # Probe far beyond the run so the end state is unambiguous.
        manager = ChannelGatingManager(inner=StaticManager(),
                                       probe_period=30 * DAY)
        system = _system(manager)
        env = outdoor_environment(duration=2 * DAY, dt=300.0, seed=3)
        simulate(system, env)
        assert manager.gated_channels(system) == ("rf",)
        assert system.channels[0].enabled  # pv survives its idle nights

    def test_gating_saves_quiescent_energy(self):
        env = outdoor_environment(duration=3 * DAY, dt=300.0, seed=3)
        gated = _system(ChannelGatingManager(inner=StaticManager()),
                        channel_quiescent_a=10e-6)
        plain = _system(StaticManager(), channel_quiescent_a=10e-6)
        m_gated = simulate(gated, env).metrics
        m_plain = simulate(plain, env).metrics
        assert m_gated.quiescent_j < m_plain.quiescent_j

    def test_probe_reenables_channel(self):
        manager = ChannelGatingManager(inner=StaticManager(),
                                       probe_period=4 * 3600.0)
        system = _system(manager)
        env = outdoor_environment(duration=3 * DAY, dt=300.0, seed=3)
        sim = Simulator(system, env, dt=300.0)
        sim.run(duration=DAY)          # long enough to gate the rf channel
        assert not system.channels[1].enabled
        # Probe cycles re-enable it at least transiently over the next days.
        events_before = manager.gate_events
        sim.run(duration=2 * DAY)
        assert manager.gate_events > events_before

    def test_inner_manager_still_runs(self):
        inner = ThresholdManager()
        manager = ChannelGatingManager(inner=inner)
        system = _system(manager)
        env = outdoor_environment(duration=DAY / 2, dt=300.0, seed=3)
        simulate(system, env)
        assert inner.control_passes > 0

    def test_no_decision_without_evidence(self):
        manager = ChannelGatingManager(inner=StaticManager())
        system = _system(manager)
        env = outdoor_environment(duration=3600.0, dt=300.0, seed=3)
        simulate(system, env)
        # One hour is far below half the 24 h window: nothing gated yet.
        assert manager.gated_channels(system) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelGatingManager(window_s=0.0)
        with pytest.raises(ValueError):
            ChannelGatingManager(probe_duration=7200.0, probe_period=3600.0)
        with pytest.raises(ValueError):
            ChannelGatingManager(bus_voltage=0.0)
