"""Codegen tier unit suite: cache identity, warm-cache reuse, backends.

The bitwise-equivalence gates live in ``tests/test_determinism.py``
(Table I letters A-G, mid-run event handoff) and
``tests/test_differential.py`` (fuzzed corpus); this file covers the
compile-cache machinery itself:

* the cache identity is byte-for-byte what ``repro spec --hash``
  prints — the regression guard for ISSUE 8's identity-drift fix;
* a second identical run performs zero compilations and increments the
  hit counter (the warm-cache contract, on whichever backend is
  installed);
* the on-disk source cache survives a cleared in-process cache;
* eligibility falls back with a structured CapabilityReport.
"""

import pytest

from repro.cli import main
from repro.environment.composite import outdoor_environment
from repro.simulation import simulate
from repro.simulation.kernel import (
    clear_codegen_cache,
    codegen_cache_identity,
    codegen_stats,
    prepare_codegen,
)
from repro.simulation.kernel.plan import KernelPlan
from repro.spec import spec_for
from repro.spec.build import build
from repro.systems import SYSTEM_BUILDERS

DAY = 86_400.0
DT = 600.0


def _spec_system(letter: str):
    """A Table I system built through the spec layer (hash stamped)."""
    return build(spec_for(letter))


def _env(seed: int = 5):
    return outdoor_environment(duration=0.1 * DAY, dt=DT, seed=seed)


class TestCacheIdentity:
    @pytest.mark.parametrize("letter", sorted(SYSTEM_BUILDERS))
    def test_cli_spec_hash_matches_codegen_cache_key(self, letter, capsys):
        """`repro spec --hash` and the codegen cache must agree on
        identity: the hash the CLI prints is byte-for-byte the
        spec_hash component of the compile-cache key."""
        assert main(["spec", letter, "--hash"]) == 0
        printed = capsys.readouterr().out.strip()
        identity = codegen_cache_identity(_spec_system(letter), DT)
        assert identity["spec_hash"] == printed
        assert len(printed) == 64 and set(printed) <= set("0123456789abcdef")

    def test_identity_carries_dt_and_code_version(self):
        identity = codegen_cache_identity(_spec_system("C"), 300.0)
        assert identity["dt"] == repr(300.0)
        assert identity["code_version"]

    def test_hand_built_systems_have_no_spec_hash(self):
        system = SYSTEM_BUILDERS["C"]()
        assert codegen_cache_identity(system, DT)["spec_hash"] is None


class TestWarmCache:
    def test_second_identical_run_compiles_nothing(self, tmp_path,
                                                   monkeypatch):
        """The warm-cache contract: run an identical spec twice — the
        second run performs zero compilations and zero emissions, and
        the in-process hit counter increments."""
        # Isolate the on-disk source cache: a prior process's entry
        # would legitimately satisfy the cold run's source lookup
        # (disk_hits instead of emitted) and mask what this asserts.
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
        clear_codegen_cache()
        env = _env()
        before = codegen_stats()
        first = simulate(_spec_system("C"), env, dt=DT, fast="codegen")
        cold = codegen_stats()
        assert first.execution_path == "codegen"
        assert cold["compiles"] == before["compiles"] + 1
        assert cold["emitted"] == before["emitted"] + 1
        assert cold["compile_s"] > before["compile_s"]

        second = simulate(_spec_system("C"), env, dt=DT, fast="codegen")
        warm = codegen_stats()
        assert second.execution_path == "codegen"
        assert warm["compiles"] == cold["compiles"]
        assert warm["emitted"] == cold["emitted"]
        assert warm["hits"] == cold["hits"] + 1

    def test_disk_cache_survives_inprocess_clear(self, tmp_path,
                                                 monkeypatch):
        """Spec-hashed systems persist emitted source on disk: a fresh
        process (simulated by clearing the in-process caches) reuses it
        instead of re-emitting."""
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
        clear_codegen_cache()
        env = _env()
        first = simulate(_spec_system("C"), env, dt=DT, fast="codegen")
        assert first.execution_path == "codegen"
        cached = list(tmp_path.glob("*.py"))
        assert len(cached) == 1

        clear_codegen_cache()
        before = codegen_stats()
        second = simulate(_spec_system("C"), env, dt=DT, fast="codegen")
        after = codegen_stats()
        assert second.execution_path == "codegen"
        assert after["disk_hits"] == before["disk_hits"] + 1
        assert after["emitted"] == before["emitted"]
        # The source still has to be compiled once per process...
        assert after["compiles"] == before["compiles"] + 1
        # ...and the runs agree bitwise.
        for column in ("harvest_delivered", "stored_energy"):
            a = first.recorder.column(column)
            b = second.recorder.column(column)
            assert (a == b).all(), column

    def test_hand_built_systems_cache_in_process_only(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
        clear_codegen_cache()
        result = simulate(SYSTEM_BUILDERS["C"](), _env(), dt=DT,
                          fast="codegen")
        assert result.execution_path == "codegen"
        assert list(tmp_path.glob("*.py")) == []


class TestBackendsAndEligibility:
    def test_runner_reports_backend(self):
        """The compiled step advertises which backend executes it:
        numba when the [codegen] extra is importable and jit succeeds,
        the pure-Python exec fallback otherwise."""
        from repro.environment.compiled import CompiledEnvironment
        system = _spec_system("C")
        plan = KernelPlan.compile(system, DT)
        compiled = CompiledEnvironment(_env(), 0.0, 16, DT, step_offset=0)
        runner = prepare_codegen(plan, compiled)
        assert runner.mode in ("fused", "driver")
        assert runner.backend in ("python", "numba", "numba?")

    def test_invalid_fast_value_rejected(self):
        with pytest.raises(ValueError, match="fast must be"):
            simulate(SYSTEM_BUILDERS["C"](), _env(), dt=DT, fast="bogus")

    def test_ineligible_system_reports_capability(self):
        from repro.storage import Supercapacitor

        class _Replaced(Supercapacitor):
            def charge(self, power_w, dt):
                return super().charge(power_w * 0.5, dt)

        from repro.analysis.experiments.common import make_reference_system
        from repro.harvesters import PhotovoltaicCell
        system = make_reference_system(
            [PhotovoltaicCell(area_cm2=30.0, name="pv")],
            stores=[_Replaced(capacitance_f=25.0, name="odd")])
        result = simulate(system, _env(), dt=DT, fast="codegen")
        assert result.execution_path == "legacy"
        report = result.codegen_fallback
        assert report is not None
        assert report.component == "_Replaced"
        assert report.capability and report.detail
