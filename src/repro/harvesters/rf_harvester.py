"""RF rectenna (radio-frequency harvester) model.

"Radio" inputs appear in Table I for systems E, F and G. A rectenna is an
antenna feeding a rectifier: the antenna captures

    P_in = density * A_eff

(incident power density times effective aperture), and the rectifier
converts a fraction of it to DC. Rectifier efficiency collapses at low
input power because the diode threshold dominates — the defining
non-linearity of RF harvesting, and the reason ambient-RF systems harvest
microwatts. The efficiency curve is modelled as a smooth saturating
function of input power calibrated by a half-efficiency point.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from ..environment.ambient import SourceType
from .base import TheveninHarvester

__all__ = ["RFHarvester"]


@register("harvester", "rf")
class RFHarvester(TheveninHarvester):
    """Antenna + rectifier RF energy harvester.

    Parameters
    ----------
    effective_aperture_cm2:
        Antenna effective aperture, cm^2 (a 2.4 GHz patch: ~10-50).
    peak_efficiency:
        Rectifier efficiency at high input power (0.5-0.7 typical).
    half_efficiency_uw:
        Input power (microwatts) at which efficiency reaches half its peak;
        sets the low-power collapse.
    output_voltage:
        Nominal rectified open-circuit voltage at the DC output, V.
    name:
        Optional instance label.
    """

    source_type = SourceType.RF
    table_label = "Radio"

    def __init__(self, effective_aperture_cm2: float = 25.0,
                 peak_efficiency: float = 0.6, half_efficiency_uw: float = 50.0,
                 output_voltage: float = 2.0, name: str = ""):
        super().__init__(name=name)
        if effective_aperture_cm2 <= 0:
            raise ValueError("effective_aperture_cm2 must be positive")
        if not 0.0 < peak_efficiency <= 1.0:
            raise ValueError("peak_efficiency must be in (0, 1]")
        if half_efficiency_uw <= 0:
            raise ValueError("half_efficiency_uw must be positive")
        if output_voltage <= 0:
            raise ValueError("output_voltage must be positive")
        self.effective_aperture_m2 = effective_aperture_cm2 * 1e-4
        self.peak_efficiency = peak_efficiency
        self.half_efficiency_w = half_efficiency_uw * 1e-6
        self.output_voltage = output_voltage

    def captured_power(self, density: float) -> float:
        """RF power captured by the antenna (W) at the given density."""
        if density < 0:
            raise ValueError(f"density must be non-negative, got {density}")
        return density * self.effective_aperture_m2

    def rectifier_efficiency(self, input_power: float) -> float:
        """Conversion efficiency as a function of input power (W).

        Saturating curve ``eta = eta_peak * P / (P + P_half)``: tends to
        ``eta_peak`` at high power, collapses linearly below ``P_half``.
        """
        if input_power <= 0:
            return 0.0
        return self.peak_efficiency * input_power / \
            (input_power + self.half_efficiency_w)

    def dc_power(self, density: float) -> float:
        """Available DC power (W) after rectification."""
        p_in = self.captured_power(density)
        return p_in * self.rectifier_efficiency(p_in)

    def thevenin(self, ambient: float) -> tuple:
        p_dc = self.dc_power(max(0.0, ambient))
        if p_dc <= 0:
            return 0.0, 1.0
        voc = self.output_voltage
        # Scale Voc weakly with available power below ~1 uW to reflect the
        # rectifier failing to reach its nominal output when starved.
        if p_dc < 1e-6:
            voc *= math.sqrt(p_dc / 1e-6)
        r_int = voc * voc / (4.0 * p_dc)
        return voc, r_int

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_thevenin(self, siblings, values):
        import numpy as np
        from ..simulation.kernel.batched import gather
        aperture = gather(siblings, lambda h: h.effective_aperture_m2)
        peak = gather(siblings, lambda h: h.peak_efficiency)
        half_w = gather(siblings, lambda h: h.half_efficiency_w)
        v_out = gather(siblings, lambda h: h.output_voltage)
        density = np.where(values > 0.0, values, 0.0)
        p_in = density * aperture
        eff = np.where(p_in <= 0.0, 0.0, peak * p_in / (p_in + half_w))
        p_dc = p_in * eff
        dead = p_dc <= 0.0
        voc = np.where(p_dc < 1e-6,
                       v_out * np.sqrt(p_dc / 1e-6), v_out)
        r_int = voc * voc / (4.0 * p_dc)
        return (np.where(dead, 0.0, voc), np.where(dead, 1.0, r_int))
