"""Generic AC/DC input "harvester".

System G (Microstrain EH-Link) accepts a "General AC/DC > 5 V" input in
Table I — i.e. any external source above a minimum voltage, rectified and
conditioned on board. The model treats the ambient channel as the source's
RMS voltage and presents a Thevenin equivalent behind a bridge rectifier:
below the minimum input voltage nothing is harvested (the Table I
constraint made executable); above it, the rectified open-circuit voltage
is ``sqrt(2) * Vrms - 2 * Vdiode``.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from ..environment.ambient import SourceType
from .base import TheveninHarvester

__all__ = ["GenericACDCInput"]


@register("harvester", "ac_generic")
class GenericACDCInput(TheveninHarvester):
    """Bridge-rectified generic AC (or DC) input.

    Parameters
    ----------
    min_input_voltage:
        Minimum usable RMS input, V (EH-Link: 5 V per Table I).
    source_resistance:
        Assumed source + rectifier series resistance, ohms.
    diode_drop:
        Per-diode forward drop, V (two diodes conduct in a bridge).
    max_power:
        Safety/ratings cap on extracted power, W.
    name:
        Optional instance label.
    """

    source_type = SourceType.AC_GENERIC
    table_label = "General AC/DC > 5 V"

    def __init__(self, min_input_voltage: float = 5.0,
                 source_resistance: float = 50.0, diode_drop: float = 0.4,
                 max_power: float = 0.5, name: str = ""):
        super().__init__(name=name)
        if min_input_voltage <= 0:
            raise ValueError("min_input_voltage must be positive")
        if source_resistance <= 0:
            raise ValueError("source_resistance must be positive")
        if diode_drop < 0:
            raise ValueError("diode_drop must be non-negative")
        if max_power <= 0:
            raise ValueError("max_power must be positive")
        self.min_input_voltage = min_input_voltage
        self.source_resistance = source_resistance
        self.diode_drop = diode_drop
        self.max_power_rating = max_power

    def thevenin(self, ambient: float) -> tuple:
        vrms = max(0.0, ambient)
        if vrms < self.min_input_voltage:
            return 0.0, self.source_resistance
        voc = math.sqrt(2.0) * vrms - 2.0 * self.diode_drop
        return max(0.0, voc), self.source_resistance

    def power_ceiling(self, ambient: float) -> float:
        return self.max_power_rating
