"""Resonant piezoelectric vibration harvester model.

Piezo harvesters appear in Table I for systems E ("Piezo/Mech") and G
("Piezo"), and vibration harvesting generally for B and F. A cantilever
piezo harvester is a second-order resonator: driven at its resonant
frequency ``f0`` by base acceleration ``a``, the power delivered to a
matched load follows the classic William-Yates result

    P_res = m * a^2 / (8 * zeta * omega0)

(m: proof mass, zeta: total damping ratio, omega0 = 2 pi f0). Away from
resonance the response falls off as a Lorentzian in the detuning, which is
why the survey stresses matching harvesters to the deployment: a 50 Hz
harvester on a 120 Hz machine is nearly useless.

Electrically the rectified output is modelled as a Thevenin source whose
open-circuit voltage scales with the (detuned) vibration response, with the
source resistance set so the matched-load power equals the mechanical
result above.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from ..environment.ambient import SourceType
from .base import TheveninHarvester

__all__ = ["PiezoelectricHarvester"]


@register("harvester", "piezoelectric")
class PiezoelectricHarvester(TheveninHarvester):
    """Cantilever piezoelectric vibration harvester.

    The ambient channel is the RMS base acceleration (m/s^2). The excitation
    frequency may be fixed at construction (``excitation_frequency``) or
    updated per-step by the simulator via :attr:`current_frequency` when the
    environment provides a frequency trace.

    Parameters
    ----------
    proof_mass_g:
        Proof mass in grams (MEMS: <1 g; macro cantilevers: 1-20 g).
    resonant_frequency:
        Mechanical resonance f0, Hz.
    damping_ratio:
        Total (mechanical + electrical) damping ratio zeta (0.01-0.1).
    voltage_per_ms2:
        Rectified open-circuit volts per (m/s^2) at resonance.
    excitation_frequency:
        Default excitation frequency, Hz. ``None`` means "assume resonant".
    name:
        Optional instance label.
    """

    source_type = SourceType.VIBRATION
    table_label = "Piezo"

    def __init__(self, proof_mass_g: float = 5.0, resonant_frequency: float = 50.0,
                 damping_ratio: float = 0.03, voltage_per_ms2: float = 1.0,
                 excitation_frequency: float | None = None, name: str = ""):
        super().__init__(name=name)
        if proof_mass_g <= 0:
            raise ValueError("proof_mass_g must be positive")
        if resonant_frequency <= 0:
            raise ValueError("resonant_frequency must be positive")
        if not 0.0 < damping_ratio < 1.0:
            raise ValueError("damping_ratio must be in (0, 1)")
        if voltage_per_ms2 <= 0:
            raise ValueError("voltage_per_ms2 must be positive")
        self.proof_mass_kg = proof_mass_g * 1e-3
        self.resonant_frequency = resonant_frequency
        self.damping_ratio = damping_ratio
        self.voltage_per_ms2 = voltage_per_ms2
        self.current_frequency = excitation_frequency

    # ------------------------------------------------------------------
    def detuning_gain(self, frequency: float | None) -> float:
        """Lorentzian response factor in (0, 1]; 1 at resonance.

        Uses the half-power form ``1 / (1 + ((f - f0) / (zeta * f0))^2)``,
        which matches the second-order resonator near resonance.
        """
        if frequency is None:
            return 1.0
        if frequency <= 0:
            return 0.0
        detune = (frequency - self.resonant_frequency) / \
            (self.damping_ratio * self.resonant_frequency)
        return 1.0 / (1.0 + detune * detune)

    def resonant_power(self, accel_rms: float) -> float:
        """Matched-load power at resonance (W): m a^2 / (8 zeta omega0)."""
        if accel_rms < 0:
            raise ValueError(f"accel_rms must be non-negative, got {accel_rms}")
        omega0 = 2.0 * math.pi * self.resonant_frequency
        return self.proof_mass_kg * accel_rms ** 2 / \
            (8.0 * self.damping_ratio * omega0)

    def available_power(self, accel_rms: float,
                        frequency: float | None = None) -> float:
        """Matched-load power including detuning (W)."""
        freq = frequency if frequency is not None else self.current_frequency
        return self.resonant_power(accel_rms) * self.detuning_gain(freq)

    # ------------------------------------------------------------------
    def thevenin(self, ambient: float) -> tuple:
        accel = max(0.0, ambient)
        gain = self.detuning_gain(self.current_frequency)
        # Amplitude scales with sqrt of the power gain (linear resonator).
        voc = self.voltage_per_ms2 * accel * math.sqrt(gain)
        p_matched = self.available_power(accel)
        if voc <= 0 or p_matched <= 0:
            return 0.0, 1.0
        # Choose Rint so that Voc^2 / (4 R) equals the mechanical result.
        r_int = voc * voc / (4.0 * p_matched)
        return voc, r_int

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_thevenin(self, siblings, values):
        import numpy as np
        from ..simulation.kernel.batched import exact_pow, gather
        # Per-lane constants, hoisted with scalar Python arithmetic in
        # the methods' association order (current_frequency is fixed for
        # the run: smart-harvester retuning is outside the batched
        # envelope because it needs a managing controller).
        k_v = gather(siblings, lambda h: h.voltage_per_ms2)
        sqrt_gain = gather(
            siblings,
            lambda h: math.sqrt(h.detuning_gain(h.current_frequency)))
        gain = gather(siblings,
                      lambda h: h.detuning_gain(h.current_frequency))
        mass = gather(siblings, lambda h: h.proof_mass_kg)
        denom = gather(
            siblings,
            lambda h: 8.0 * h.damping_ratio *
            (2.0 * math.pi * h.resonant_frequency))
        accel = np.where(values > 0.0, values, 0.0)
        voc = k_v * accel * sqrt_gain
        p_matched = mass * exact_pow(accel, 2) / denom * gain
        dead = (voc <= 0.0) | (p_matched <= 0.0)
        r_int = voc * voc / (4.0 * p_matched)
        return (np.where(dead, 0.0, voc), np.where(dead, 1.0, r_int))
