"""Harvester base classes: the I-V operating-surface protocol.

The survey's power-conditioning taxonomy (Sec. II.1) revolves around where
on its current-voltage characteristic a harvester is operated: MPPT circuits
"work to ensure that the energy harvesters operate at their optimal point",
while System B's modules "operate at a fixed point which offers a compromise
between efficiency and quiescent current draw". To make that trade-off real,
every harvester model exposes a full I-V surface parameterised by the
ambient channel value, not just a power number:

* :meth:`Harvester.current_at` — terminal current at a terminal voltage;
* :meth:`Harvester.open_circuit_voltage` / :meth:`short_circuit_current`;
* :meth:`Harvester.mpp` — the true maximum power point (what a perfect
  MPPT would find);
* :meth:`Harvester.power_at` — power extracted at an arbitrary point (what
  a fixed-point conditioner actually gets).

Most non-photovoltaic transducers (TEG, wind/water generator, piezo after
rectification, inductive, rectenna) are well described near their operating
range by a Thevenin equivalent — an open-circuit voltage and a source
resistance, both functions of the ambient input — so
:class:`TheveninHarvester` implements the protocol once, analytically.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from ..environment.ambient import SourceType

__all__ = ["OperatingPoint", "Harvester", "TheveninHarvester"]


@dataclass(frozen=True)
class OperatingPoint:
    """One point on a harvester's I-V surface."""

    voltage: float  # V
    current: float  # A
    power: float    # W

    def __post_init__(self):
        if self.voltage < 0 or self.current < 0 or self.power < 0:
            raise ValueError(
                f"operating point must be non-negative, got "
                f"({self.voltage}, {self.current}, {self.power})"
            )


class Harvester(abc.ABC):
    """Abstract energy transducer.

    Subclasses declare which ambient channel they transduce via
    ``source_type`` and implement the I-V surface. An optional
    :class:`~repro.harvesters.datasheet.ElectronicDatasheet` may be attached
    for plug-and-play systems (survey Sec. II.3, System B).
    """

    #: The ambient channel this harvester transduces.
    source_type: SourceType = SourceType.LIGHT

    #: Harvester-technology label used when regenerating Table I.
    table_label: str = "Harvester"

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self.datasheet = None  # attached by repro.harvesters.datasheet

    # ------------------------------------------------------------------
    # I-V surface protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def current_at(self, voltage: float, ambient: float) -> float:
        """Terminal current (A) at terminal voltage ``voltage`` (V) given
        the ambient channel value. Must be non-negative and non-increasing
        in ``voltage`` over [0, Voc]."""

    @abc.abstractmethod
    def open_circuit_voltage(self, ambient: float) -> float:
        """Voltage (V) at zero current for the given ambient value."""

    def short_circuit_current(self, ambient: float) -> float:
        """Current (A) at zero terminal voltage."""
        return self.current_at(0.0, ambient)

    def power_at(self, voltage: float, ambient: float) -> float:
        """Extracted power (W) when held at ``voltage``."""
        if voltage < 0:
            raise ValueError(f"voltage must be non-negative, got {voltage}")
        return voltage * self.current_at(voltage, ambient)

    def mpp(self, ambient: float) -> OperatingPoint:
        """Maximum power point, found by golden-section search on [0, Voc].

        Subclasses with analytic MPPs (e.g. Thevenin models) override this.
        The I-V surfaces used in this library are unimodal in power over
        [0, Voc], which golden-section search requires.
        """
        voc = self.open_circuit_voltage(ambient)
        if voc <= 0:
            return OperatingPoint(0.0, 0.0, 0.0)
        inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
        lo, hi = 0.0, voc
        a = hi - inv_phi * (hi - lo)
        b = lo + inv_phi * (hi - lo)
        pa, pb = self.power_at(a, ambient), self.power_at(b, ambient)
        for _ in range(60):
            if pa < pb:
                lo, a, pa = a, b, pb
                b = lo + inv_phi * (hi - lo)
                pb = self.power_at(b, ambient)
            else:
                hi, b, pb = b, a, pa
                a = hi - inv_phi * (hi - lo)
                pa = self.power_at(a, ambient)
            if hi - lo < 1e-9 * voc:
                break
        v = 0.5 * (lo + hi)
        i = self.current_at(v, ambient)
        return OperatingPoint(v, i, v * i)

    def max_power(self, ambient: float) -> float:
        """Power (W) at the maximum power point."""
        return self.mpp(ambient).power

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def lower_batched(self, siblings):
        """Surface builder for a group of identical-class harvesters.

        Returns an object whose ``build(values, width)`` precomputes the
        I-V surface over a stacked ambient tensor (``voc``, ``power_at``,
        ``mpp_voltage``/``mpp_power``) bit-identically to the scalar
        methods. The base class has no batched surface — subclasses with
        vectorizable physics opt in.
        """
        from ..simulation.kernel.protocol import LoweringUnsupported
        raise LoweringUnsupported(
            f"{type(self).__name__} has no batched lowering")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, source={self.source_type.value})"


class TheveninHarvester(Harvester):
    """Harvester modelled as a Thevenin source: Voc(ambient), Rint(ambient).

    The I-V curve is the straight line ``I = (Voc - V) / Rint`` clipped to
    the first quadrant, so the MPP is analytic: ``V* = Voc/2``,
    ``P* = Voc^2 / (4 Rint)`` — the classic matched-load result used
    throughout the energy-harvesting literature for TEGs, small generators
    and rectified piezo elements.

    Subclasses implement :meth:`thevenin` mapping the ambient value to a
    ``(voc, r_int)`` pair, and may override :meth:`power_ceiling` to impose
    a physical limit (e.g. aerodynamic Betz power for turbines) that caps
    extraction regardless of the electrical model.
    """

    @abc.abstractmethod
    def thevenin(self, ambient: float) -> tuple:
        """Return ``(voc, r_int)`` for the given ambient value (SI units).

        ``r_int`` must be positive whenever ``voc`` is positive.
        """

    def power_ceiling(self, ambient: float) -> float:
        """Physical upper bound on extractable power (W). Default: none."""
        return math.inf

    # ------------------------------------------------------------------
    def _thevenin_cached(self, ambient: float) -> tuple:
        """One-entry memo over :meth:`thevenin`.

        A simulation step queries the Thevenin pair several times (tracker
        Voc, MPP, operating-point current) with the same ambient value;
        ``thevenin`` is a pure function of that value, so the repeats are
        free. The key includes ``current_frequency`` because resonant
        harvesters (piezo, electromagnetic) are retuned at runtime by
        smart-harvester controllers; all other model parameters are fixed
        at construction.
        """
        key = (ambient, getattr(self, "current_frequency", None))
        cached = getattr(self, "_thev_memo", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        pair = self.thevenin(ambient)
        self._thev_memo = (key, pair)
        return pair

    def open_circuit_voltage(self, ambient: float) -> float:
        voc, _ = self._thevenin_cached(ambient)
        return max(0.0, voc)

    def current_at(self, voltage: float, ambient: float) -> float:
        if voltage < 0:
            raise ValueError(f"voltage must be non-negative, got {voltage}")
        voc, r_int = self._thevenin_cached(ambient)
        if voc <= 0:
            return 0.0
        if r_int <= 0:
            raise ValueError(f"internal resistance must be positive, got {r_int}")
        i = (voc - voltage) / r_int
        if i <= 0:
            return 0.0
        # Apply the physical power ceiling by limiting current at this voltage.
        ceiling = self.power_ceiling(ambient)
        if voltage > 0 and voltage * i > ceiling:
            i = ceiling / voltage
        return i

    def mpp(self, ambient: float) -> OperatingPoint:
        voc, r_int = self._thevenin_cached(ambient)
        if voc <= 0:
            return OperatingPoint(0.0, 0.0, 0.0)
        v = voc / 2.0
        p_matched = voc * voc / (4.0 * r_int)
        ceiling = self.power_ceiling(ambient)
        if p_matched <= ceiling:
            return OperatingPoint(v, p_matched / v, p_matched)
        # Ceiling-limited: power plateau; report the matched voltage point
        # at the capped power.
        return OperatingPoint(v, ceiling / v, ceiling)

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def lower_batched(self, siblings):
        """Generic batched Thevenin surface.

        A subclass opts in by providing ``_batch_thevenin(siblings,
        values) -> (voc, r_int)`` (and optionally
        ``_batch_power_ceiling(siblings, values) -> ceiling | None``),
        each the vectorized twin of its scalar method. The surface
        replicates :meth:`current_at`/:meth:`power_at`/:meth:`mpp`
        expression by expression over those tensors.
        """
        from ..simulation.kernel.protocol import (
            LoweringUnsupported,
            ensure_unmodified,
        )
        from ..simulation.kernel.batched import same_class
        cls = same_class(siblings, "harvester")
        if getattr(cls, "_batch_thevenin", None) is None:
            raise LoweringUnsupported(
                f"{cls.__name__} has no batched lowering "
                f"(no _batch_thevenin hook)")
        for harvester in siblings:
            ensure_unmodified(
                harvester, TheveninHarvester, "current_at", "power_at",
                "mpp", "max_power", "open_circuit_voltage",
                "_thevenin_cached")
        return _TheveninSurfaceBuilder(siblings)

    def _batch_power_ceiling(self, siblings, values):
        """Vectorized :meth:`power_ceiling`; ``None`` = uncapped (inf)."""
        return None


class _TheveninSurfaceBuilder:
    __slots__ = ("siblings",)

    #: The surface supports per-row I-V queries (``current_at_row`` /
    #: ``power_at_row``) — required by hill-climbing tracker replays.
    provides_iv_rows = True

    def __init__(self, siblings):
        self.siblings = siblings

    def build(self, values, width: int):
        lanes = self.siblings[:width] if width == 1 else self.siblings
        first = lanes[0]
        voc_raw, r_int = first._batch_thevenin(lanes, values)
        ceiling = first._batch_power_ceiling(lanes, values)
        return _TheveninSurface(voc_raw, r_int, ceiling)


class _TheveninSurface:
    """Vectorized Thevenin I-V surface over one ambient tensor."""

    __slots__ = ("voc_raw", "r_int", "ceiling", "voc", "_mpp")

    def __init__(self, voc_raw, r_int, ceiling):
        import numpy as np
        self.voc_raw = voc_raw
        self.r_int = r_int
        self.ceiling = ceiling  # None means "no physical cap" (inf)
        # open_circuit_voltage: max(0.0, voc)
        self.voc = np.where(voc_raw > 0.0, voc_raw, 0.0)
        self._mpp = None

    def power_at(self, voltage):
        """Twin of ``voltage * TheveninHarvester.current_at(voltage)``."""
        import numpy as np
        voc, r = self.voc_raw, self.r_int
        i = (voc - voltage) / r
        i = np.where((voc <= 0.0) | (i <= 0.0), 0.0, i)
        if self.ceiling is not None:
            over = (voltage > 0.0) & (voltage * i > self.ceiling)
            i = np.where(over, self.ceiling / voltage, i)
        return voltage * i

    @staticmethod
    def _row(tensor, i: int):
        return tensor[i] if getattr(tensor, "ndim", 0) == 2 else tensor

    def current_at_row(self, i: int, voltage):
        """Step-``i`` twin of :meth:`TheveninHarvester.current_at` for
        per-lane tracker replay (validation hoisted: tracker voltages
        are never negative)."""
        import numpy as np
        voc = self._row(self.voc_raw, i)
        r = self._row(self.r_int, i)
        cur = (voc - voltage) / r
        cur = np.where((voc <= 0.0) | (cur <= 0.0), 0.0, cur)
        if self.ceiling is not None:
            ceil = self._row(self.ceiling, i)
            over = (voltage > 0.0) & (voltage * cur > ceil)
            cur = np.where(over, ceil / voltage, cur)
        return cur

    def power_at_row(self, i: int, voltage):
        return voltage * self.current_at_row(i, voltage)

    def _compute_mpp(self):
        import numpy as np
        voc, r = self.voc_raw, self.r_int
        v = voc / 2.0
        p = voc * voc / (4.0 * r)
        if self.ceiling is not None:
            p = np.where(p <= self.ceiling, p, self.ceiling)
        dead = voc <= 0.0
        self._mpp = (np.where(dead, 0.0, v), np.where(dead, 0.0, p))

    def mpp_voltage(self):
        if self._mpp is None:
            self._compute_mpp()
        return self._mpp[0]

    def mpp_power(self):
        if self._mpp is None:
            self._compute_mpp()
        return self._mpp[1]
