"""Micro water-flow turbine model.

Water flow drives the third input of System D (MPWiNode; Morais et al.
survey ref. [4], an agricultural platform powered by "sun, wind and water
flow"). The physics mirrors the wind turbine with water's ~800x higher
density: ``P = 0.5 * rho_w * A * Cp * v^3``, so even slow irrigation flow
(~1 m/s) through a small rotor yields tens to hundreds of milliwatts.
Electrically: a DC generator Thevenin source, with the hydrodynamic power
as ceiling.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from ..environment.ambient import SourceType
from .base import TheveninHarvester

__all__ = ["WaterTurbine"]

#: Density of water, kg/m^3.
WATER_DENSITY = 1000.0


@register("harvester", "water_turbine")
class WaterTurbine(TheveninHarvester):
    """Small in-pipe / in-channel water turbine.

    Parameters
    ----------
    rotor_diameter_m:
        Rotor diameter, metres (in-pipe micro turbines: 0.02-0.1).
    power_coefficient:
        Hydro + drivetrain Cp (0.1-0.3 for micro units).
    cut_in_speed:
        Flow speed below which the rotor stalls, m/s.
    kv:
        Generator open-circuit volts per (m/s) of flow.
    internal_resistance:
        Generator winding resistance, ohms.
    name:
        Optional instance label.
    """

    source_type = SourceType.WATER_FLOW
    table_label = "Water Flow"

    def __init__(self, rotor_diameter_m: float = 0.05,
                 power_coefficient: float = 0.2, cut_in_speed: float = 0.2,
                 kv: float = 4.0, internal_resistance: float = 20.0,
                 name: str = ""):
        super().__init__(name=name)
        if rotor_diameter_m <= 0:
            raise ValueError("rotor_diameter_m must be positive")
        if not 0.0 < power_coefficient < 0.593:
            raise ValueError("power_coefficient must be in (0, 0.593)")
        if cut_in_speed < 0:
            raise ValueError("cut_in_speed must be non-negative")
        if kv <= 0 or internal_resistance <= 0:
            raise ValueError("kv and internal_resistance must be positive")
        self.rotor_diameter_m = rotor_diameter_m
        self.power_coefficient = power_coefficient
        self.cut_in_speed = cut_in_speed
        self.kv = kv
        self.internal_resistance = internal_resistance

    @property
    def swept_area_m2(self) -> float:
        return math.pi * (self.rotor_diameter_m / 2.0) ** 2

    def hydraulic_power(self, flow_speed: float) -> float:
        """Hydrodynamic power ceiling (W)."""
        if flow_speed < 0:
            raise ValueError(f"flow_speed must be non-negative, got {flow_speed}")
        if flow_speed < self.cut_in_speed:
            return 0.0
        return 0.5 * WATER_DENSITY * self.swept_area_m2 * \
            self.power_coefficient * flow_speed ** 3

    def thevenin(self, ambient: float) -> tuple:
        if ambient < self.cut_in_speed:
            return 0.0, self.internal_resistance
        return self.kv * ambient, self.internal_resistance

    def power_ceiling(self, ambient: float) -> float:
        ceiling = self.hydraulic_power(max(0.0, ambient))
        return ceiling if ceiling > 0 else math.inf

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_thevenin(self, siblings, values):
        import numpy as np
        from ..simulation.kernel.batched import gather
        cut_in = gather(siblings, lambda h: h.cut_in_speed)
        kv = gather(siblings, lambda h: h.kv)
        r_int = gather(siblings, lambda h: h.internal_resistance)
        voc = np.where(values < cut_in, 0.0, kv * values)
        return voc, np.broadcast_to(r_int, values.shape)

    def _batch_power_ceiling(self, siblings, values):
        import numpy as np
        from ..simulation.kernel.batched import exact_pow, gather
        cut_in = gather(siblings, lambda h: h.cut_in_speed)
        k = gather(siblings, lambda h: 0.5 * WATER_DENSITY *
                   h.swept_area_m2 * h.power_coefficient)
        fs = np.where(values > 0.0, values, 0.0)
        hydro = np.where(fs < cut_in, 0.0, k * exact_pow(fs, 3))
        return np.where(hydro > 0.0, hydro, math.inf)
