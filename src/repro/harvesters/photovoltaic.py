"""Photovoltaic cell model (single-diode).

PV cells are "the most commonly-used harvester type" in the survey's
Table I — present in six of the seven systems. The model is the standard
single-diode equation without parasitic resistances:

    I(V) = Iph - I0 * (exp(V / (Ns * n * Vt)) - 1)

with the photocurrent ``Iph`` proportional to irradiance. This yields the
characteristic PV knee, a fill factor in the realistic 0.7-0.85 range, and
an MPP voltage near 80 % of Voc — the property exploited by the fractional
open-circuit-voltage MPPT method implemented in
:mod:`repro.conditioning.mppt`.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from ..environment.ambient import SourceType
from .base import Harvester, OperatingPoint

__all__ = ["PhotovoltaicCell"]

#: Thermal voltage kT/q at 25 degC, volts.
THERMAL_VOLTAGE = 0.02585

#: Standard test condition irradiance, W/m^2.
STC_IRRADIANCE = 1000.0


@register("harvester", "photovoltaic")
class PhotovoltaicCell(Harvester):
    """Single-diode PV module.

    Parameters
    ----------
    area_cm2:
        Active cell area in cm^2.
    efficiency:
        Conversion efficiency at standard test conditions (mono-Si ~0.18,
        amorphous indoor cells ~0.06).
    cells_in_series:
        Number of series cells Ns (sets the voltage scale; a typical small
        outdoor module has 8-12, an indoor cell 4-6).
    ideality:
        Diode ideality factor n (1.0-2.0; default 1.3).
    dark_current_density:
        Diode saturation current per cm^2 of cell area, A/cm^2.
    name:
        Optional instance label.
    """

    source_type = SourceType.LIGHT
    table_label = "Light"

    def __init__(self, area_cm2: float = 50.0, efficiency: float = 0.15,
                 cells_in_series: int = 10, ideality: float = 1.3,
                 dark_current_density: float = 1e-9, name: str = ""):
        super().__init__(name=name)
        if area_cm2 <= 0:
            raise ValueError("area_cm2 must be positive")
        if not 0.0 < efficiency < 1.0:
            raise ValueError("efficiency must be in (0, 1)")
        if cells_in_series < 1:
            raise ValueError("cells_in_series must be >= 1")
        if ideality <= 0:
            raise ValueError("ideality must be positive")
        if dark_current_density <= 0:
            raise ValueError("dark_current_density must be positive")
        self.area_cm2 = area_cm2
        self.efficiency = efficiency
        self.cells_in_series = cells_in_series
        self.ideality = ideality
        self.i0 = dark_current_density * area_cm2

        # Calibrate photocurrent so that MPP power at STC equals
        # area * efficiency * 1000 W/m^2. MPP power is nearly linear in Iph
        # (the Voc log term varies slowly), so fixed-point iteration on the
        # scale converges in a handful of steps.
        self._iph_per_w_m2 = self.area_cm2 * 1e-4  # initial scale, A per (W/m^2)
        target = self.area_cm2 * 1e-4 * STC_IRRADIANCE * self.efficiency
        for _ in range(12):
            raw = super().mpp(STC_IRRADIANCE).power
            if raw <= 0:
                raise ValueError("degenerate PV calibration; check parameters")
            ratio = target / raw
            self._iph_per_w_m2 *= ratio
            if abs(ratio - 1.0) < 1e-10:
                break

    # ------------------------------------------------------------------
    @property
    def _nvt(self) -> float:
        """Aggregate diode thermal voltage Ns * n * Vt."""
        return self.cells_in_series * self.ideality * THERMAL_VOLTAGE

    def photocurrent(self, irradiance: float) -> float:
        """Light-generated current (A) at the given irradiance (W/m^2)."""
        if irradiance < 0:
            raise ValueError(f"irradiance must be non-negative, got {irradiance}")
        return self._iph_per_w_m2 * irradiance

    def open_circuit_voltage(self, ambient: float) -> float:
        iph = self.photocurrent(ambient)
        if iph <= 0:
            return 0.0
        return self._nvt * math.log1p(iph / self.i0)

    def current_at(self, voltage: float, ambient: float) -> float:
        if voltage < 0:
            raise ValueError(f"voltage must be non-negative, got {voltage}")
        iph = self.photocurrent(ambient)
        if iph <= 0:
            return 0.0
        arg = voltage / self._nvt
        # Guard exp overflow far above Voc: current is 0 there anyway.
        if arg > 500.0:
            return 0.0
        i = iph - self.i0 * math.expm1(arg)
        return max(0.0, i)

    def mpp(self, ambient: float) -> OperatingPoint:
        """Analytic-ish MPP via Newton iteration on d(VI)/dV = 0.

        dP/dV = Iph + I0 - I0 * e^x * (1 + x) with x = V / nvt; solve for x
        by Newton from a log-based initial guess. Falls back to the base
        golden-section search if Newton fails to converge.
        """
        iph = self.photocurrent(ambient)
        if iph <= 0:
            return OperatingPoint(0.0, 0.0, 0.0)
        nvt = self._nvt
        k = (iph + self.i0) / self.i0
        # Solve e^x (1+x) = k. Initial guess from x ~ ln(k) - ln(1+ln(k)).
        x = max(1e-6, math.log(k) - math.log(1.0 + max(1e-9, math.log(k))))
        converged = False
        for _ in range(50):
            ex = math.exp(x)
            f = ex * (1.0 + x) - k
            fp = ex * (2.0 + x)
            step = f / fp
            x -= step
            if abs(step) < 1e-12 * max(1.0, abs(x)):
                converged = True
                break
        if not converged or x <= 0:
            return super().mpp(ambient)
        v = x * nvt
        i = self.current_at(v, ambient)
        return OperatingPoint(v, i, v * i)

    def fill_factor(self, ambient: float) -> float:
        """Fill factor FF = Pmpp / (Voc * Isc); realistic cells: 0.7-0.85."""
        voc = self.open_circuit_voltage(ambient)
        isc = self.short_circuit_current(ambient)
        if voc <= 0 or isc <= 0:
            return 0.0
        return self.mpp(ambient).power / (voc * isc)

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def lower_batched(self, siblings):
        """Batched single-diode surface.

        Vectorizes the diode equation, Voc, and the Newton MPP solve
        over a stacked ambient tensor. Transcendental call sites go
        through the exact-libm maps (numpy's SIMD ``exp``/``log1p``/
        ``expm1`` round differently on ~0.1% of inputs), and each lane's
        Newton iteration freezes at *its* convergence step, reproducing
        the scalar iteration history bit for bit. The rare
        Newton-failure lanes fall back to the scalar golden-section
        method per lane, exactly like :meth:`mpp`.
        """
        from ..simulation.kernel.protocol import ensure_unmodified
        from ..simulation.kernel.batched import same_class
        same_class(siblings, "harvester")
        for harvester in siblings:
            ensure_unmodified(
                harvester, PhotovoltaicCell, "current_at", "power_at",
                "mpp", "max_power", "open_circuit_voltage", "photocurrent")
        return _PVSurfaceBuilder(siblings)


class _PVSurfaceBuilder:
    __slots__ = ("siblings",)

    #: The surface supports per-row I-V queries (``current_at_row`` /
    #: ``power_at_row``) — required by hill-climbing tracker replays.
    provides_iv_rows = True

    def __init__(self, siblings):
        self.siblings = siblings

    def build(self, values, width: int):
        return _PVSurface(self.siblings[:width] if width == 1
                          else self.siblings, values)


class _PVSurface:
    __slots__ = ("lanes", "values", "nvt", "i0", "iph", "pos", "voc", "_mpp")

    def __init__(self, lanes, values):
        import numpy as np
        from ..simulation.kernel.batched import exact_log1p, gather
        self.lanes = lanes
        self.values = values
        self.nvt = gather(lanes, lambda h: h._nvt)
        self.i0 = gather(lanes, lambda h: h.i0)
        iph_per = gather(lanes, lambda h: h._iph_per_w_m2)
        self.iph = iph_per * values
        self.pos = self.iph > 0.0
        self.voc = np.where(self.pos,
                            self.nvt * exact_log1p(self.iph / self.i0), 0.0)
        self._mpp = None

    def _current_at(self, voltage):
        """Twin of :meth:`PhotovoltaicCell.current_at` (validation
        hoisted: tracker voltages are never negative)."""
        import numpy as np
        from ..simulation.kernel.batched import exact_expm1
        arg = voltage / self.nvt
        big = arg > 500.0
        i = self.iph - self.i0 * exact_expm1(np.where(big, 0.0, arg))
        i = np.where(i > 0.0, i, 0.0)
        return np.where(self.pos & ~big, i, 0.0)

    def power_at(self, voltage):
        return voltage * self._current_at(voltage)

    def current_at_row(self, i: int, voltage):
        """Step-``i`` twin of :meth:`PhotovoltaicCell.current_at` for
        per-lane tracker replay."""
        import numpy as np
        from ..simulation.kernel.batched import exact_expm1
        arg = voltage / self.nvt
        big = arg > 500.0
        cur = self.iph[i] - self.i0 * exact_expm1(np.where(big, 0.0, arg))
        cur = np.where(cur > 0.0, cur, 0.0)
        return np.where(self.pos[i] & ~big, cur, 0.0)

    def power_at_row(self, i: int, voltage):
        return voltage * self.current_at_row(i, voltage)

    def _compute_mpp(self):
        import numpy as np
        from ..simulation.kernel.batched import exact_exp, exact_log
        iph, i0, nvt = self.iph, self.i0, self.nvt
        shape = iph.shape
        k = ((iph + i0) / i0).ravel()
        # Initial guess x ~ ln(k) - ln(1 + ln(k)), clamped like the scalar.
        lk = exact_log(np.where(k > 0.0, k, 1.0))
        inner = np.where(lk > 1e-9, lk, 1e-9)
        x = lk - exact_log(1.0 + inner)
        x = np.where(x > 1e-6, x, 1e-6)
        converged = np.zeros(x.shape, dtype=bool)
        active = np.nonzero(k > 0.0)[0]
        for _ in range(50):
            if active.size == 0:
                break
            xa = x[active]
            ex = exact_exp(xa)
            f = ex * (1.0 + xa) - k[active]
            fp = ex * (2.0 + xa)
            xa = xa - f / fp
            x[active] = xa
            conv = np.abs(f / fp) < 1e-12 * np.where(np.abs(xa) > 1.0,
                                                     np.abs(xa), 1.0)
            converged[active] |= conv
            active = active[~conv]
        x = x.reshape(shape)
        converged = converged.reshape(shape)
        v = x * nvt
        i = self._current_at(v)
        p = v * i
        # Newton-failure lanes: the scalar method's golden-section
        # fallback, run through the scalar code itself (exact and rare).
        fallback = (~converged | (x <= 0.0)) & self.pos
        if fallback.any():
            width = shape[1]
            for row, col in zip(*np.nonzero(fallback)):
                lane = self.lanes[col if width > 1 else 0]
                op = lane.mpp(float(self.values[row, col]))
                v[row, col] = op.voltage
                p[row, col] = op.power
        dead = ~self.pos
        self._mpp = (np.where(dead, 0.0, v), np.where(dead, 0.0, p))

    def mpp_voltage(self):
        if self._mpp is None:
            self._compute_mpp()
        return self._mpp[0]

    def mpp_power(self):
        if self._mpp is None:
            self._compute_mpp()
        return self._mpp[1]
