"""Micro wind turbine model.

Wind turbines power the survey's System A (Smart Power Unit), AmbiMax (C)
and MPWiNode (D). The model follows the authors' own micro-turbine work
(Carli et al., SPEEDAM 2010, survey ref. [7]): a small horizontal-axis
rotor driving a DC generator.

Electrically the generator is a Thevenin source whose open-circuit voltage
scales with rotor speed, itself proportional to wind speed when operated
near the optimal tip-speed ratio. Aerodynamically the extractable power is
bounded by ``0.5 * rho * A * Cp * v^3`` with Cp well below the Betz limit
for cm-scale rotors (Carli et al. report system efficiencies in the
single-digit percent range). The Thevenin matched-load power is therefore
capped by the aerodynamic ceiling — at low wind the electrical side limits,
at high wind the rotor does, reproducing the flattening P(v) curve of real
micro turbines. Cut-in and survival cut-out speeds complete the model.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from ..environment.ambient import SourceType
from .base import TheveninHarvester

__all__ = ["MicroWindTurbine"]

#: Air density at sea level, kg/m^3.
AIR_DENSITY = 1.225


@register("harvester", "wind_turbine")
class MicroWindTurbine(TheveninHarvester):
    """Small horizontal-axis wind turbine with DC generator.

    Parameters
    ----------
    rotor_diameter_m:
        Rotor diameter in metres (micro turbines: 0.05-0.3 m).
    power_coefficient:
        Aerodynamic+drivetrain Cp (micro scale: 0.03-0.15; Betz = 0.593).
    cut_in_speed:
        Wind speed below which the rotor does not turn, m/s.
    cut_out_speed:
        Survival furling speed above which output is cut, m/s.
    kv:
        Generator voltage constant: open-circuit volts per (m/s) of wind.
    internal_resistance:
        Generator winding + rectifier resistance, ohms.
    name:
        Optional instance label.
    """

    source_type = SourceType.WIND
    table_label = "Wind"

    def __init__(self, rotor_diameter_m: float = 0.12,
                 power_coefficient: float = 0.08,
                 cut_in_speed: float = 2.0, cut_out_speed: float = 18.0,
                 kv: float = 1.0, internal_resistance: float = 30.0,
                 name: str = ""):
        super().__init__(name=name)
        if rotor_diameter_m <= 0:
            raise ValueError("rotor_diameter_m must be positive")
        if not 0.0 < power_coefficient < 0.593:
            raise ValueError("power_coefficient must be in (0, 0.593) (Betz limit)")
        if cut_in_speed < 0 or cut_out_speed <= cut_in_speed:
            raise ValueError("need 0 <= cut_in_speed < cut_out_speed")
        if kv <= 0 or internal_resistance <= 0:
            raise ValueError("kv and internal_resistance must be positive")
        self.rotor_diameter_m = rotor_diameter_m
        self.power_coefficient = power_coefficient
        self.cut_in_speed = cut_in_speed
        self.cut_out_speed = cut_out_speed
        self.kv = kv
        self.internal_resistance = internal_resistance

    @property
    def swept_area_m2(self) -> float:
        return math.pi * (self.rotor_diameter_m / 2.0) ** 2

    def aerodynamic_power(self, wind_speed: float) -> float:
        """Aerodynamic power ceiling 0.5 rho A Cp v^3 (W), with cut-in/out."""
        if wind_speed < 0:
            raise ValueError(f"wind_speed must be non-negative, got {wind_speed}")
        if wind_speed < self.cut_in_speed or wind_speed > self.cut_out_speed:
            return 0.0
        return 0.5 * AIR_DENSITY * self.swept_area_m2 * \
            self.power_coefficient * wind_speed ** 3

    # ------------------------------------------------------------------
    def thevenin(self, ambient: float) -> tuple:
        if ambient < self.cut_in_speed or ambient > self.cut_out_speed:
            return 0.0, self.internal_resistance
        return self.kv * ambient, self.internal_resistance

    def power_ceiling(self, ambient: float) -> float:
        ceiling = self.aerodynamic_power(max(0.0, ambient))
        return ceiling if ceiling > 0 else math.inf

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_thevenin(self, siblings, values):
        import numpy as np
        from ..simulation.kernel.batched import gather
        cut_in = gather(siblings, lambda h: h.cut_in_speed)
        cut_out = gather(siblings, lambda h: h.cut_out_speed)
        kv = gather(siblings, lambda h: h.kv)
        r_int = gather(siblings, lambda h: h.internal_resistance)
        stalled = (values < cut_in) | (values > cut_out)
        voc = np.where(stalled, 0.0, kv * values)
        return voc, np.broadcast_to(r_int, values.shape)

    def _batch_power_ceiling(self, siblings, values):
        import numpy as np
        from ..simulation.kernel.batched import exact_pow, gather
        cut_in = gather(siblings, lambda h: h.cut_in_speed)
        cut_out = gather(siblings, lambda h: h.cut_out_speed)
        # 0.5 * rho * A * Cp hoisted with scalar Python arithmetic, in
        # the method's association order.
        k = gather(siblings, lambda h: 0.5 * AIR_DENSITY *
                   h.swept_area_m2 * h.power_coefficient)
        ws = np.where(values > 0.0, values, 0.0)
        aero = np.where((ws < cut_in) | (ws > cut_out), 0.0,
                        k * exact_pow(ws, 3))
        return np.where(aero > 0.0, aero, math.inf)
