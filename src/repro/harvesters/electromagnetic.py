"""Electromagnetic (inductive) vibration harvester model.

System G (Microstrain EH-Link) lists an "Inductive" input in Table I.
An electromagnetic harvester is a magnet-and-coil resonator: base vibration
moves a magnet through a coil, inducing EMF ``V = B*l*v`` (transduction
constant times relative velocity). Like the piezo cantilever it is a
second-order resonator, so the same matched-load mechanical bound applies;
the electrical side differs in being low-voltage / low-impedance (coils of
tens to hundreds of ohms, sub-volt EMF) where piezo elements are
high-voltage / high-impedance. That difference matters to the input power
conditioning (rectifier drops eat low-voltage sources), which is exactly
the kind of constraint Table I's "certain inputs must be below 4.06 V"
remark captures.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from ..environment.ambient import SourceType
from .base import TheveninHarvester

__all__ = ["ElectromagneticHarvester"]


@register("harvester", "electromagnetic")
class ElectromagneticHarvester(TheveninHarvester):
    """Magnet-and-coil resonant vibration harvester.

    Parameters
    ----------
    proof_mass_g:
        Moving magnet mass, grams.
    resonant_frequency:
        Mechanical resonance f0, Hz.
    damping_ratio:
        Total damping ratio zeta.
    transduction_constant:
        EMF per unit relative velocity (B*l), V/(m/s).
    coil_resistance:
        Coil winding resistance, ohms.
    excitation_frequency:
        Default excitation frequency, Hz. ``None`` means "assume resonant".
    name:
        Optional instance label.
    """

    source_type = SourceType.VIBRATION
    table_label = "Inductive"

    def __init__(self, proof_mass_g: float = 10.0, resonant_frequency: float = 60.0,
                 damping_ratio: float = 0.05, transduction_constant: float = 5.0,
                 coil_resistance: float = 100.0,
                 excitation_frequency: float | None = None, name: str = ""):
        super().__init__(name=name)
        if proof_mass_g <= 0:
            raise ValueError("proof_mass_g must be positive")
        if resonant_frequency <= 0:
            raise ValueError("resonant_frequency must be positive")
        if not 0.0 < damping_ratio < 1.0:
            raise ValueError("damping_ratio must be in (0, 1)")
        if transduction_constant <= 0:
            raise ValueError("transduction_constant must be positive")
        if coil_resistance <= 0:
            raise ValueError("coil_resistance must be positive")
        self.proof_mass_kg = proof_mass_g * 1e-3
        self.resonant_frequency = resonant_frequency
        self.damping_ratio = damping_ratio
        self.transduction_constant = transduction_constant
        self.coil_resistance = coil_resistance
        self.current_frequency = excitation_frequency

    def detuning_gain(self, frequency: float | None) -> float:
        """Lorentzian response factor in (0, 1]; 1 at resonance."""
        if frequency is None:
            return 1.0
        if frequency <= 0:
            return 0.0
        detune = (frequency - self.resonant_frequency) / \
            (self.damping_ratio * self.resonant_frequency)
        return 1.0 / (1.0 + detune * detune)

    def mechanical_power(self, accel_rms: float) -> float:
        """Matched-load mechanical power bound (W), incl. detuning."""
        if accel_rms < 0:
            raise ValueError(f"accel_rms must be non-negative, got {accel_rms}")
        omega0 = 2.0 * math.pi * self.resonant_frequency
        p_res = self.proof_mass_kg * accel_rms ** 2 / \
            (8.0 * self.damping_ratio * omega0)
        return p_res * self.detuning_gain(self.current_frequency)

    def thevenin(self, ambient: float) -> tuple:
        accel = max(0.0, ambient)
        p = self.mechanical_power(accel)
        if p <= 0:
            return 0.0, self.coil_resistance
        # Relative proof-mass velocity at resonance: v = a / (2 zeta omega0),
        # scaled by the sqrt of the detuning power gain.
        omega0 = 2.0 * math.pi * self.resonant_frequency
        gain = self.detuning_gain(self.current_frequency)
        velocity = accel / (2.0 * self.damping_ratio * omega0) * math.sqrt(gain)
        voc = self.transduction_constant * velocity
        # Cap matched power at the mechanical bound via effective Rint.
        r_int = max(self.coil_resistance, voc * voc / (4.0 * p))
        return voc, r_int

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_thevenin(self, siblings, values):
        import numpy as np
        from ..simulation.kernel.batched import exact_pow, gather
        mass = gather(siblings, lambda h: h.proof_mass_kg)
        p_denom = gather(
            siblings,
            lambda h: 8.0 * h.damping_ratio *
            (2.0 * math.pi * h.resonant_frequency))
        gain = gather(siblings,
                      lambda h: h.detuning_gain(h.current_frequency))
        sqrt_gain = gather(
            siblings,
            lambda h: math.sqrt(h.detuning_gain(h.current_frequency)))
        v_denom = gather(
            siblings,
            lambda h: 2.0 * h.damping_ratio *
            (2.0 * math.pi * h.resonant_frequency))
        k_t = gather(siblings, lambda h: h.transduction_constant)
        coil_r = gather(siblings, lambda h: h.coil_resistance)
        accel = np.where(values > 0.0, values, 0.0)
        p = mass * exact_pow(accel, 2) / p_denom * gain
        dead = p <= 0.0
        velocity = accel / v_denom * sqrt_gain
        voc = k_t * velocity
        r_int = np.maximum(coil_r, voc * voc / (4.0 * p))
        return (np.where(dead, 0.0, voc),
                np.where(dead, coil_r, r_int))
