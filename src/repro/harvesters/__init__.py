"""Energy transducer models exposing full I-V operating surfaces.

Each harvester transduces one ambient channel (see
:class:`repro.environment.SourceType`) into electrical power. The I-V
protocol defined by :class:`~repro.harvesters.Harvester` is what makes the
survey's power-conditioning trade-offs (MPPT vs fixed-point operation)
executable.
"""

from .ac_generic import GenericACDCInput
from .base import Harvester, OperatingPoint, TheveninHarvester
from .datasheet import DeviceKind, ElectronicDatasheet, attach_datasheet
from .electromagnetic import ElectromagneticHarvester
from .photovoltaic import PhotovoltaicCell
from .piezoelectric import PiezoelectricHarvester
from .rf_harvester import RFHarvester
from .thermoelectric import ThermoelectricGenerator
from .water_turbine import WaterTurbine
from .wind_turbine import MicroWindTurbine

__all__ = [
    "Harvester",
    "TheveninHarvester",
    "OperatingPoint",
    "PhotovoltaicCell",
    "MicroWindTurbine",
    "ThermoelectricGenerator",
    "PiezoelectricHarvester",
    "ElectromagneticHarvester",
    "RFHarvester",
    "WaterTurbine",
    "GenericACDCInput",
    "DeviceKind",
    "ElectronicDatasheet",
    "attach_datasheet",
]
