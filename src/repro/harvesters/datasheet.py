"""Electronic datasheets for plug-and-play energy devices.

System B (the Plug-and-Play Architecture, survey Sec. II.3) "has an
electronic datasheet on each energy module which may be individually
interrogated to determine their properties" — the mechanism that lets the
system stay energy-aware across hardware swaps, which the survey singles
out as unique among the seven platforms ("only one allows changes in the
connected hardware to be automatically recognized", Sec. IV).

The datasheet here is a small typed record (in the spirit of IEEE 1451
TEDS) describing either a harvester or a storage device. It can be encoded
to / decoded from a compact byte image, which is what travels over the
digital module bus in :mod:`repro.interfaces`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field

from ..environment.ambient import SourceType

__all__ = ["DeviceKind", "ElectronicDatasheet", "attach_datasheet"]


class DeviceKind(enum.Enum):
    """What kind of energy device a datasheet describes."""

    HARVESTER = "harvester"
    STORAGE = "storage"


@dataclass(frozen=True)
class ElectronicDatasheet:
    """TEDS-style descriptor for an energy module.

    Fields relevant to harvesters: ``source_type``, ``nominal_power_w``,
    ``mpp_fraction`` (recommended fixed operating point as a fraction of
    Voc). Fields relevant to storage: ``capacity_j``, ``nominal_voltage``,
    ``max_charge_w``, ``max_discharge_w``. Unused fields are zero/None.
    """

    kind: DeviceKind
    model: str
    source_type: SourceType | None = None
    nominal_power_w: float = 0.0
    mpp_fraction: float = 0.0
    capacity_j: float = 0.0
    nominal_voltage: float = 0.0
    max_charge_w: float = 0.0
    max_discharge_w: float = 0.0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind is DeviceKind.HARVESTER and self.source_type is None:
            raise ValueError("harvester datasheets require a source_type")
        if self.kind is DeviceKind.STORAGE and self.capacity_j <= 0:
            raise ValueError("storage datasheets require a positive capacity_j")
        for attr in ("nominal_power_w", "capacity_j", "nominal_voltage",
                     "max_charge_w", "max_discharge_w"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if not 0.0 <= self.mpp_fraction <= 1.0:
            raise ValueError("mpp_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    # Wire image
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Compact byte image for transmission over the module bus."""
        payload = asdict(self)
        payload["kind"] = self.kind.value
        payload["source_type"] = self.source_type.value if self.source_type else None
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def decode(cls, blob: bytes) -> "ElectronicDatasheet":
        """Inverse of :meth:`encode`."""
        try:
            payload = json.loads(blob.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"malformed datasheet image: {exc}") from exc
        payload["kind"] = DeviceKind(payload["kind"])
        if payload.get("source_type"):
            payload["source_type"] = SourceType(payload["source_type"])
        else:
            payload["source_type"] = None
        return cls(**payload)


def attach_datasheet(device, datasheet: ElectronicDatasheet):
    """Attach a datasheet to a harvester or storage device, returning it.

    The attribute is read by the plug-and-play enumeration protocol
    (:mod:`repro.interfaces.plug_and_play`); devices without a datasheet
    are usable but cannot be auto-recognized after a swap — reproducing
    the monitoring breakage the survey describes for systems C-G.
    """
    device.datasheet = datasheet
    return device
