"""Thermoelectric generator (TEG) model.

Thermal harvesting appears in Table I for systems B and F. A TEG is the
textbook Thevenin harvester: by the Seebeck effect its open-circuit voltage
is ``S * Np * deltaT`` (couple Seebeck coefficient times couples in series
times temperature difference) behind the module's internal resistance, and
maximum power transfer occurs into a matched load:

    P* = (S * Np * deltaT)^2 / (4 * R)

Typical Bi2Te3 modules: S ~ 200 uV/K per couple, tens to hundreds of
couples, ohm-scale internal resistance — giving the mW-per-10K outputs that
motivate TEGs for machine monitoring.
"""

from __future__ import annotations

from ..spec.registry import register

from ..environment.ambient import SourceType
from .base import TheveninHarvester

__all__ = ["ThermoelectricGenerator"]


@register("harvester", "thermoelectric")
class ThermoelectricGenerator(TheveninHarvester):
    """Bi2Te3-style TEG module.

    Parameters
    ----------
    seebeck_per_couple:
        Effective Seebeck coefficient per thermocouple, V/K (~200e-6).
    couples:
        Number of series couples Np (commercial modules: 30-300).
    internal_resistance:
        Module electrical resistance, ohms.
    max_delta_t:
        Rated maximum temperature difference, K; inputs are clamped here
        (beyond it a real module saturates or is out of spec).
    name:
        Optional instance label.
    """

    source_type = SourceType.THERMAL
    table_label = "Thermal"

    def __init__(self, seebeck_per_couple: float = 200e-6, couples: int = 100,
                 internal_resistance: float = 2.0, max_delta_t: float = 70.0,
                 name: str = ""):
        super().__init__(name=name)
        if seebeck_per_couple <= 0:
            raise ValueError("seebeck_per_couple must be positive")
        if couples < 1:
            raise ValueError("couples must be >= 1")
        if internal_resistance <= 0:
            raise ValueError("internal_resistance must be positive")
        if max_delta_t <= 0:
            raise ValueError("max_delta_t must be positive")
        self.seebeck_per_couple = seebeck_per_couple
        self.couples = couples
        self.internal_resistance = internal_resistance
        self.max_delta_t = max_delta_t

    @property
    def seebeck_total(self) -> float:
        """Module Seebeck coefficient, V/K."""
        return self.seebeck_per_couple * self.couples

    def thevenin(self, ambient: float) -> tuple:
        delta_t = min(max(0.0, ambient), self.max_delta_t)
        return self.seebeck_total * delta_t, self.internal_resistance

    def _batch_thevenin(self, siblings, values):
        """Vectorized twin of :meth:`thevenin` (Seebeck line, clamped dT)."""
        import numpy as np
        from ..simulation.kernel.batched import gather
        max_dt = gather(siblings, lambda h: h.max_delta_t)
        seebeck = gather(siblings, lambda h: h.seebeck_total)
        r_int = gather(siblings, lambda h: h.internal_resistance)
        delta_t = np.minimum(np.where(values > 0.0, values, 0.0), max_dt)
        return seebeck * delta_t, np.broadcast_to(r_int, values.shape)

    def matched_power(self, delta_t: float) -> float:
        """Analytic matched-load power at a given gradient (W)."""
        voc = self.seebeck_total * min(max(0.0, delta_t), self.max_delta_t)
        return voc * voc / (4.0 * self.internal_resistance)
