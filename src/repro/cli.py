"""Command-line interface for the reproduction.

Subcommands:

* ``table1``      — regenerate Table I and diff it against the paper.
* ``figure A|B``  — print the architecture rendition of Fig. 1 / Fig. 2.
* ``simulate X``  — run one of the seven systems on a chosen environment.
* ``sweep``       — fan systems x environments across worker processes.
* ``experiment``  — run a claim-validation experiment (e3..e11).
* ``advise``      — rank all seven platforms for a deployment.
* ``audit X``     — run a system and print the energy waterfall.

Examples::

    python -m repro table1
    python -m repro simulate A --env outdoor --days 7
    python -m repro sweep --systems A B C --envs outdoor indoor --days 3
    python -m repro experiment e5
    python -m repro audit B --env indoor --days 3
"""

from __future__ import annotations

import argparse
import sys
from functools import partial

from .analysis import (advise, compare_with_paper, render_architecture,
                       render_table1)
from .analysis.audit import audit_run
from .environment import (
    agricultural_environment,
    indoor_industrial_environment,
    outdoor_environment,
    urban_rf_environment,
)
from .simulation import ScenarioSpec, SweepRunner, simulate
from .systems import SYSTEM_NAMES, build_system

__all__ = ["main"]

DAY = 86_400.0

ENVIRONMENTS = {
    "outdoor": outdoor_environment,
    "indoor": indoor_industrial_environment,
    "agricultural": agricultural_environment,
    "urban-rf": urban_rf_environment,
}

EXPERIMENTS = {
    "e3": ("multisource gain", "run_multisource_gain", {}),
    "e4": ("buffer sizing", "run_buffer_sizing", {}),
    "e5": ("MPPT trade-off", "run_mppt_study", {}),
    "e6": ("quiescent study", "run_quiescent_study", {}),
    "e7": ("energy awareness", "run_awareness_study", {}),
    "e8": ("hot-swap", "run_swap_study", {}),
    "e9": ("smart harvester", "run_smart_harvester_study", {}),
    "e10": ("fuel-cell backup", "run_fuel_cell_study", {}),
    "e11": ("storage lifetime", "run_lifetime_study", {}),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-source energy harvesting systems "
                    "(DATE 2013 survey reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="regenerate Table I and diff vs the paper")

    p_fig = sub.add_parser("figure", help="print an architecture figure")
    p_fig.add_argument("system", choices=sorted(SYSTEM_NAMES),
                       help="system letter (A = Fig. 1, B = Fig. 2)")

    p_sim = sub.add_parser("simulate", help="simulate a surveyed system")
    p_sim.add_argument("system", choices=sorted(SYSTEM_NAMES))
    p_sim.add_argument("--env", choices=sorted(ENVIRONMENTS),
                       default="outdoor")
    p_sim.add_argument("--days", type=float, default=7.0)
    p_sim.add_argument("--dt", type=float, default=120.0)
    p_sim.add_argument("--seed", type=int, default=0)

    p_swp = sub.add_parser(
        "sweep", help="run a systems x environments grid via SweepRunner")
    p_swp.add_argument("--systems", nargs="+", choices=sorted(SYSTEM_NAMES),
                       default=sorted(SYSTEM_NAMES),
                       help="system letters to include (default: all seven)")
    p_swp.add_argument("--envs", nargs="+", choices=sorted(ENVIRONMENTS),
                       default=["outdoor"],
                       help="deployment environments to include")
    p_swp.add_argument("--days", type=float, default=3.0)
    p_swp.add_argument("--dt", type=float, default=300.0)
    p_swp.add_argument("--seed", type=int, default=0)
    p_swp.add_argument("--processes", type=int, default=None,
                       help="worker processes (default: one per CPU, "
                            "capped at the scenario count)")

    p_exp = sub.add_parser("experiment", help="run a claim experiment")
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS),
                       help="experiment id (e3..e10)")

    p_adv = sub.add_parser("advise",
                           help="rank all platforms for a deployment")
    p_adv.add_argument("--env", choices=sorted(ENVIRONMENTS),
                       default="outdoor")
    p_adv.add_argument("--days", type=float, default=3.0)
    p_adv.add_argument("--dt", type=float, default=300.0)
    p_adv.add_argument("--seed", type=int, default=0)

    p_audit = sub.add_parser("audit", help="energy waterfall for a system")
    p_audit.add_argument("system", choices=sorted(SYSTEM_NAMES))
    p_audit.add_argument("--env", choices=sorted(ENVIRONMENTS),
                         default="outdoor")
    p_audit.add_argument("--days", type=float, default=3.0)
    p_audit.add_argument("--dt", type=float, default=120.0)
    p_audit.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_table1() -> int:
    print(render_table1())
    print()
    comparison = compare_with_paper()
    print(comparison.report())
    return 0 if comparison.agreement == 1.0 else 1


def _cmd_figure(letter: str) -> int:
    print(render_architecture(build_system(letter)))
    return 0


def _run_system(letter: str, env_name: str, days: float, dt: float,
                seed: int):
    system = build_system(letter)
    env = ENVIRONMENTS[env_name](duration=days * DAY, dt=dt, seed=seed)
    return system, simulate(system, env)


def _cmd_simulate(args) -> int:
    system, result = _run_system(args.system, args.env, args.days, args.dt,
                                 args.seed)
    m = result.metrics
    print(f"{SYSTEM_NAMES[args.system]} on {args.env}, "
          f"{args.days:g} days (seed {args.seed})")
    print(f"  uptime                {m.uptime_fraction * 100:.2f} %")
    print(f"  harvested (raw)       {m.harvested_raw_j:.1f} J")
    print(f"  harvested (to bus)    {m.harvested_delivered_j:.1f} J")
    print(f"  tracking efficiency   {m.tracking_efficiency * 100:.1f} %")
    print(f"  conversion efficiency {m.conversion_efficiency * 100:.1f} %")
    print(f"  quiescent losses      {m.quiescent_j:.2f} J")
    print(f"  node consumed         {m.node_consumed_j:.2f} J")
    print(f"  measurements/day      {m.measurements_per_day:.0f}")
    print(f"  backup used           {m.backup_used_j:.2f} J")
    print(f"  brownouts             {m.brownouts}")
    return 0


def _cmd_sweep(args) -> int:
    specs = [
        ScenarioSpec(
            name=f"{letter}@{env_name}",
            system=partial(build_system, letter),
            environment=partial(ENVIRONMENTS[env_name],
                                duration=args.days * DAY, dt=args.dt),
            seed=args.seed,
            dt=args.dt,
            params={"system": letter, "environment": env_name},
        )
        for letter in args.systems
        for env_name in args.envs
    ]
    sweep = SweepRunner(processes=args.processes).run(specs)
    print(sweep.report(
        columns=("uptime_fraction", "harvested_delivered_j",
                 "quiescent_j", "measurements", "brownouts"),
        title=f"sweep: {len(specs)} scenarios, {args.days:g} days, "
              f"seed {args.seed}"))
    return 0


def _cmd_experiment(exp_id: str) -> int:
    from .analysis import experiments as exp_pkg
    label, fn_name, kwargs = EXPERIMENTS[exp_id]
    print(f"running {exp_id}: {label} ...")
    result = getattr(exp_pkg, fn_name)(**kwargs)
    print(result.report())
    return 0


def _cmd_audit(args) -> int:
    system, result = _run_system(args.system, args.env, args.days, args.dt,
                                 args.seed)
    audit = audit_run(result.recorder)
    print(audit.report(
        title=f"Energy audit — {SYSTEM_NAMES[args.system]} on {args.env}, "
              f"{args.days:g} days"))
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "figure":
        return _cmd_figure(args.system)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "experiment":
        return _cmd_experiment(args.id)
    if args.command == "advise":
        env = ENVIRONMENTS[args.env](duration=args.days * DAY, dt=args.dt,
                                     seed=args.seed)
        print(advise(env).report())
        return 0
    if args.command == "audit":
        return _cmd_audit(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
