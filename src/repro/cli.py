"""Command-line interface for the reproduction.

Subcommands:

* ``table1``      — regenerate Table I and diff it against the paper.
* ``figure A|B``  — print the architecture rendition of Fig. 1 / Fig. 2.
* ``simulate X``  — run one of the seven systems on a chosen environment.
* ``run``         — execute a RunSpec / SweepSpec / MonteCarloSpec JSON
  config file.
* ``sweep``       — fan systems x environments across worker processes,
  from grid flags or a ``--spec`` file (``--replicates N`` expands every
  run into N seed-replicated variants).
* ``mc``          — Monte Carlo ensemble of one system x environment:
  N seed replicates ride the lockstep batched tier and aggregate into a
  quantile summary (mean/std/p5/p50/p95 + CI per metric).
* ``fleet``       — multi-node co-simulation on one ambient field:
  ``fleet run`` executes one fleet (same-hardware nodes become lockstep
  batched lanes, radio links become quasi-static listen power) and
  ``fleet mc`` repeats it under N ambient realizations.
* ``spec``        — emit canonical spec JSON (``--hash`` for its
  content address, ``--registry`` to list every registered component).
* ``catalog``     — inspect / maintain a content-addressed result store
  (``ls``, ``show``, ``query``, ``gc``, ``bench``).
* ``experiment``  — run a claim-validation experiment (e3..e11).
* ``advise``      — rank all seven platforms for a deployment.
* ``audit X``     — run a system and print the energy waterfall.

``run``/``sweep``/``mc`` accept ``--catalog PATH``: scenarios already
archived in the store return their rows without simulating (dedup on
content-addressed spec hash + seed + code version), fresh scenarios
archive as they complete (so an interrupted sweep resumes with only the
missing remainder), and the summary reports the hit/miss counts.

Every simulating subcommand goes through the declarative spec layer
(:mod:`repro.spec`): ``simulate A --env outdoor`` is sugar for building
and running a :class:`~repro.spec.RunSpec`, and the exact spec any
invocation executes can be exported with ``spec`` and replayed with
``run`` — the config-file path to the same numbers.

``simulate``/``run``/``sweep`` accept ``--fast {auto,codegen,on,off}``
to pin the engine path: ``on`` requires the compiled kernel, ``off``
forces the legacy per-step loop, ``codegen`` prefers the fused
compiled tier (the kernel plan emitted as one flat step function,
cached on ``(spec_hash, dt, code_version)`` — see ``docs/codegen.md``),
and ``auto`` picks. All paths are bit-for-bit identical; output
summaries report which one actually ran.

Examples::

    python -m repro table1
    python -m repro simulate A --env outdoor --days 7
    python -m repro spec C --env outdoor --days 3 > run.json
    python -m repro run run.json
    python -m repro sweep --systems A B C --envs outdoor indoor --days 3
    python -m repro sweep --systems A B F --batch on --explain --days 1
    python -m repro sweep --spec sweep.json --processes 4
    python -m repro sweep --systems C --replicates 16 --days 1
    python -m repro sweep --systems A B --catalog results-store
    python -m repro mc C --env outdoor --days 2 --replicates 64
    python -m repro mc --spec mc.json --tier batched
    python -m repro fleet run C --nodes 16 --topology ring --spread 0.2
    python -m repro fleet mc C --nodes 8 --replicates 16 --json
    python -m repro spec --registry
    python -m repro spec C --env outdoor --hash
    python -m repro catalog ls results-store
    python -m repro catalog query results-store --system smart_power_unit
    python -m repro catalog gc results-store --stale
    python -m repro experiment e5
    python -m repro audit B --env indoor --days 3
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from .analysis import (advise, compare_with_paper, render_architecture,
                       render_table1)
from .analysis.audit import audit_run
from .analysis.export import dumps_json
from .spec import (
    EnvironmentSpec,
    FleetSpec,
    MonteCarloSpec,
    RunSpec,
    SweepSpec,
    build_environment,
    describe_registry,
    load_spec,
    run,
    run_fleet,
    run_montecarlo,
    run_sweep,
    spec_for,
)
from .systems import SYSTEM_NAMES

__all__ = ["main"]

DAY = 86_400.0

#: CLI environment alias -> registered environment name (see repro.spec).
ENVIRONMENTS = {
    "outdoor": "outdoor",
    "indoor": "indoor-industrial",
    "agricultural": "agricultural",
    "urban-rf": "urban-rf",
}

#: --fast flag value -> engine `fast` argument.
FAST_MODES = {"auto": "auto", "on": True, "off": False,
              "codegen": "codegen"}

EXPERIMENTS = {
    "e3": ("multisource gain", "run_multisource_gain", {}),
    "e4": ("buffer sizing", "run_buffer_sizing", {}),
    "e5": ("MPPT trade-off", "run_mppt_study", {}),
    "e6": ("quiescent study", "run_quiescent_study", {}),
    "e7": ("energy awareness", "run_awareness_study", {}),
    "e8": ("hot-swap", "run_swap_study", {}),
    "e9": ("smart harvester", "run_smart_harvester_study", {}),
    "e10": ("fuel-cell backup", "run_fuel_cell_study", {}),
    "e11": ("storage lifetime", "run_lifetime_study", {}),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-source energy harvesting systems "
                    "(DATE 2013 survey reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="regenerate Table I and diff vs the paper")

    p_fig = sub.add_parser("figure", help="print an architecture figure")
    p_fig.add_argument("system", choices=sorted(SYSTEM_NAMES),
                       help="system letter (A = Fig. 1, B = Fig. 2)")

    def add_fast_flag(subparser):
        subparser.add_argument(
            "--fast", choices=sorted(FAST_MODES), default=None,
            help="engine path: 'on' requires the compiled kernel, 'off' "
                 "forces the legacy per-step loop, 'codegen' prefers the "
                 "fused compiled tier (cached on spec hash), 'auto' "
                 "picks. When the flag is omitted, the spec's own setting "
                 "applies ('auto' unless a config file says otherwise); "
                 "the path actually taken is reported in the summary")

    def add_catalog_flag(subparser):
        subparser.add_argument(
            "--catalog", metavar="PATH", default=None,
            help="content-addressed result store: archived scenarios "
                 "return their rows without simulating, fresh scenarios "
                 "archive as they complete (checkpoint/resume), and the "
                 "summary reports the hit/miss counts")

    p_sim = sub.add_parser("simulate", help="simulate a surveyed system")
    p_sim.add_argument("system", choices=sorted(SYSTEM_NAMES))
    p_sim.add_argument("--env", choices=sorted(ENVIRONMENTS),
                       default="outdoor")
    p_sim.add_argument("--days", type=float, default=7.0)
    p_sim.add_argument("--dt", type=float, default=120.0)
    p_sim.add_argument("--seed", type=int, default=0)
    add_fast_flag(p_sim)

    p_run = sub.add_parser(
        "run", help="execute a RunSpec/SweepSpec/MonteCarloSpec JSON "
                    "config file")
    p_run.add_argument("config", help="path to a spec JSON file "
                                      "(kind: 'run', 'sweep', or "
                                      "'montecarlo')")
    p_run.add_argument("--processes", type=int, default=None,
                       help="worker processes for sweep configs")
    p_run.add_argument("--json", action="store_true",
                       help="emit results as JSON instead of a table")
    add_fast_flag(p_run)
    add_catalog_flag(p_run)

    p_swp = sub.add_parser(
        "sweep", help="run a systems x environments grid via SweepRunner")
    p_swp.add_argument("--spec", metavar="FILE", default=None,
                       help="run the scenarios of a SweepSpec JSON file "
                            "instead of the grid flags")
    p_swp.add_argument("--systems", nargs="+", choices=sorted(SYSTEM_NAMES),
                       default=sorted(SYSTEM_NAMES),
                       help="system letters to include (default: all seven)")
    p_swp.add_argument("--envs", nargs="+", choices=sorted(ENVIRONMENTS),
                       default=["outdoor"],
                       help="deployment environments to include")
    p_swp.add_argument("--days", type=float, default=3.0)
    p_swp.add_argument("--dt", type=float, default=300.0)
    p_swp.add_argument("--seed", type=int, default=0)
    p_swp.add_argument("--processes", type=int, default=None,
                       help="worker processes (default: one per CPU, "
                            "capped at the scenario count)")
    p_swp.add_argument("--replicates", type=int, default=1,
                       help="expand every run into N seed-replicated "
                            "variants (replicate seed streams derived "
                            "from --seed; default 1 = no replication)")
    p_swp.add_argument("--batch", choices=("auto", "on", "off"),
                       default="auto",
                       help="lockstep batched tier: 'auto' uses it for "
                            "eligible scenario groups, 'on' requires it "
                            "for every scenario, 'off' disables it; rows "
                            "report the tier in execution_path")
    p_swp.add_argument("--explain", action="store_true",
                       help="after the sweep, print each fallback row's "
                            "capability report (which component refused "
                            "the batched tier, which capability it "
                            "lacks, and the divergence batching it "
                            "would cause)")
    add_fast_flag(p_swp)
    add_catalog_flag(p_swp)

    p_mc = sub.add_parser(
        "mc", help="Monte Carlo ensemble of one system x environment")
    p_mc.add_argument("system", nargs="?", choices=sorted(SYSTEM_NAMES),
                      help="system letter (omit when using --spec)")
    p_mc.add_argument("--spec", metavar="FILE", default=None,
                      help="run a MonteCarloSpec JSON file instead of "
                           "the grid flags (--replicates/--seed still "
                           "override the file's values)")
    p_mc.add_argument("--env", choices=sorted(ENVIRONMENTS), default=None,
                      help="deployment environment (default outdoor; "
                           "flag mode only)")
    p_mc.add_argument("--days", type=float, default=None,
                      help="simulated days (default 2; flag mode only)")
    p_mc.add_argument("--dt", type=float, default=None,
                      help="simulation step, seconds (default 300; "
                           "flag mode only)")
    p_mc.add_argument("--seed", type=int, default=None,
                      help="root seed of the replicate seed stream "
                           "(default 0, or the spec file's root_seed)")
    p_mc.add_argument("--replicates", type=int, default=None,
                      help="ensemble size (default 32, or the spec "
                           "file's value)")
    p_mc.add_argument("--tier", choices=("auto", "batched",
                                         "multiprocessing", "in-process"),
                      default="auto",
                      help="execution tier: 'auto' picks (batched -> "
                           "multiprocessing -> in-process), the others "
                           "pin one tier; all three produce bitwise-"
                           "identical replicate rows")
    p_mc.add_argument("--processes", type=int, default=None,
                      help="worker processes for the multiprocessing tier")
    p_mc.add_argument("--json", action="store_true",
                      help="emit the per-metric summaries and replicate "
                           "rows as JSON instead of a table")
    add_fast_flag(p_mc)
    add_catalog_flag(p_mc)

    p_flt = sub.add_parser(
        "fleet", help="multi-node fleet co-simulation on one ambient "
                      "field (batched lanes + radio listen coupling)")
    flt_sub = p_flt.add_subparsers(dest="fleet_command", required=True)

    def add_fleet_flags(subparser):
        subparser.add_argument(
            "system", nargs="?", choices=sorted(SYSTEM_NAMES),
            help="system letter of a same-hardware fleet (omit when "
                 "using --spec)")
        subparser.add_argument(
            "--spec", metavar="FILE", default=None,
            help="run a FleetSpec JSON file instead of the flags")
        subparser.add_argument("--env", choices=sorted(ENVIRONMENTS),
                               default=None,
                               help="shared ambient field (default "
                                    "outdoor; flag mode only)")
        subparser.add_argument("--nodes", type=int, default=None,
                               help="fleet size (default 8; flag mode "
                                    "only)")
        subparser.add_argument("--topology",
                               choices=("none", "ring", "star", "line"),
                               default=None,
                               help="radio link topology (default ring; "
                                    "links add quasi-static listen "
                                    "power to each receiver)")
        subparser.add_argument("--spread", type=float, default=None,
                               help="micro-siting diversity: node "
                                    "ambient scales span [1-s, 1+s] "
                                    "(default 0 = identical siting)")
        subparser.add_argument("--days", type=float, default=None,
                               help="simulated days (default 2; flag "
                                    "mode only)")
        subparser.add_argument("--dt", type=float, default=None,
                               help="simulation step, seconds (default "
                                    "300; flag mode only)")
        subparser.add_argument("--seed", type=int, default=None,
                               help="ambient seed ('run') / root seed "
                                    "of the replicate stream ('mc'); "
                                    "default 0")
        subparser.add_argument("--listen", type=float, default=None,
                               metavar="S",
                               help="receiver idle-listen window per "
                                    "frame, seconds (default 0.002; "
                                    "flag mode only)")
        subparser.add_argument("--tier",
                               choices=("auto", "batched",
                                        "multiprocessing", "in-process"),
                               default="auto",
                               help="execution tier for the per-node "
                                    "lanes; all three produce bitwise-"
                                    "identical rows")
        subparser.add_argument("--processes", type=int, default=None,
                               help="worker processes for the "
                                    "multiprocessing tier")
        subparser.add_argument("--json", action="store_true",
                               help="emit fleet metrics and per-node "
                                    "rows as JSON instead of a table")
        add_fast_flag(subparser)
        add_catalog_flag(subparser)

    f_run = flt_sub.add_parser(
        "run", help="one fleet on one ambient realization")
    add_fleet_flags(f_run)

    f_mc = flt_sub.add_parser(
        "mc", help="fleet under N ambient realizations (Monte Carlo)")
    add_fleet_flags(f_mc)
    f_mc.add_argument("--replicates", type=int, default=16,
                      help="number of ambient realizations (default 16)")

    p_spc = sub.add_parser(
        "spec", help="emit canonical spec JSON / inspect the registry")
    p_spc.add_argument("system", nargs="?", choices=sorted(SYSTEM_NAMES),
                       help="system letter whose canonical spec to emit")
    p_spc.add_argument("--env", choices=sorted(ENVIRONMENTS), default=None,
                       help="wrap the system spec in a full RunSpec "
                            "against this environment")
    p_spc.add_argument("--days", type=float, default=None,
                       help="RunSpec duration (requires --env; default 3)")
    p_spc.add_argument("--dt", type=float, default=None,
                       help="RunSpec step (requires --env; default 300)")
    p_spc.add_argument("--seed", type=int, default=None,
                       help="RunSpec seed (requires --env; default 0)")
    p_spc.add_argument("--registry", action="store_true",
                       help="list every registered component and its "
                            "parameters as JSON")
    p_spc.add_argument("--hash", action="store_true",
                       help="print the spec's content address (SHA-256 "
                            "of its canonical JSON) instead of the JSON "
                            "itself — the identity the catalog keys on")

    p_cat = sub.add_parser(
        "catalog", help="inspect / maintain a content-addressed "
                        "result store")
    cat_sub = p_cat.add_subparsers(dest="catalog_command", required=True)

    c_ls = cat_sub.add_parser("ls", help="list archived runs")
    c_ls.add_argument("path", help="catalog directory")
    c_ls.add_argument("--kind", choices=("run", "bench"), default="run",
                      help="record kind to list (default: run)")

    c_show = cat_sub.add_parser(
        "show", help="show one archived run (record, spec document, "
                     "hit count)")
    c_show.add_argument("path", help="catalog directory")
    c_show.add_argument("run_id", help="run id, or a unique run-id / "
                                       "spec-hash prefix")

    c_q = cat_sub.add_parser("query", help="filter archived runs")
    c_q.add_argument("path", help="catalog directory")
    c_q.add_argument("--system", default=None,
                     help="registered system name (e.g. smart_power_unit)")
    c_q.add_argument("--environment", default=None,
                     help="registered environment name (e.g. outdoor)")
    c_q.add_argument("--name", default=None,
                     help="row-name prefix filter")
    c_q.add_argument("--seed", type=int, default=None,
                     help="exact effective seed")
    c_q.add_argument("--spec-hash", default=None, metavar="HEX",
                     help="spec-hash prefix filter")
    c_q.add_argument("--metric-band", nargs=3, default=None,
                     metavar=("METRIC", "LOW", "HIGH"),
                     help="keep runs whose archived METRIC lies in "
                          "[LOW, HIGH] ('-' leaves a bound open), e.g. "
                          "--metric-band uptime_fraction 0.9 -")
    c_q.add_argument("--seed-stream", nargs=3, type=int, default=None,
                     metavar=("ROOT_SEED", "STREAM", "N"),
                     help="keep runs whose seed belongs to the first N "
                          "replicate seeds of this root seed / stream "
                          "(finds an ensemble's replicate family)")
    c_q.add_argument("--json", action="store_true",
                     help="emit matching records as JSON")

    c_gc = cat_sub.add_parser(
        "gc", help="prune records and sweep unreferenced files")
    c_gc.add_argument("path", help="catalog directory")
    c_gc.add_argument("--stale", action="store_true",
                      help="drop runs archived under a different code "
                           "version (their keys can never hit again)")
    c_gc.add_argument("--keep-last", type=int, default=None, metavar="N",
                      help="keep only the newest N runs per "
                           "(spec hash, seed) family")
    c_gc.add_argument("--keep-days", type=float, default=None, metavar="D",
                      help="drop runs older than D days")
    c_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be removed without "
                           "touching the store")

    c_bench = cat_sub.add_parser(
        "bench", help="emit the benchmark trajectory JSON from the "
                      "store's bench records (the BENCH_sweep.json "
                      "document CI uploads)")
    c_bench.add_argument("path", help="catalog directory")
    c_bench.add_argument("-o", "--output", default=None, metavar="FILE",
                         help="write the trajectory document here "
                              "(default: stdout)")

    p_exp = sub.add_parser("experiment", help="run a claim experiment")
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS),
                       help="experiment id (e3..e10)")

    p_adv = sub.add_parser("advise",
                           help="rank all platforms for a deployment")
    p_adv.add_argument("--env", choices=sorted(ENVIRONMENTS),
                       default="outdoor")
    p_adv.add_argument("--days", type=float, default=3.0)
    p_adv.add_argument("--dt", type=float, default=300.0)
    p_adv.add_argument("--seed", type=int, default=0)

    p_audit = sub.add_parser("audit", help="energy waterfall for a system")
    p_audit.add_argument("system", choices=sorted(SYSTEM_NAMES))
    p_audit.add_argument("--env", choices=sorted(ENVIRONMENTS),
                         default="outdoor")
    p_audit.add_argument("--days", type=float, default=3.0)
    p_audit.add_argument("--dt", type=float, default=120.0)
    p_audit.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_table1() -> int:
    print(render_table1())
    print()
    comparison = compare_with_paper()
    print(comparison.report())
    return 0 if comparison.agreement == 1.0 else 1


def _cmd_figure(letter: str) -> int:
    from .spec import build
    print(render_architecture(build(spec_for(letter))))
    return 0


def _cli_run_spec(letter: str, env_name: str, days: float, dt: float,
                  seed: int, name: str = "") -> RunSpec:
    """The RunSpec behind a simulate/audit/spec invocation."""
    return RunSpec(
        system=spec_for(letter),
        environment=EnvironmentSpec(ENVIRONMENTS[env_name],
                                    duration=days * DAY, dt=dt, seed=seed),
        name=name or f"{letter}@{env_name}",
        params={"system": letter, "environment": env_name},
    )


def _cli_fast(args):
    """Engine-path override from --fast (None = respect the spec)."""
    if getattr(args, "fast", None) is None:
        return None
    return FAST_MODES[args.fast]


def _open_catalog(args):
    """The Catalog behind --catalog / a catalog subcommand path.

    Returns ``(catalog, error_code)``: ``(None, None)`` when no catalog
    was requested, ``(None, 2)`` after printing the failure.
    """
    path = getattr(args, "catalog", None) or getattr(args, "path", None)
    if path is None:
        return None, None
    from .catalog import Catalog, CatalogError
    try:
        return Catalog(path), None
    except (CatalogError, RuntimeError, OSError, ValueError) as exc:
        print(f"error: cannot open catalog {path}: {exc}", file=sys.stderr)
        return None, 2


def _print_catalog_report(report) -> None:
    if report is not None:
        print(report)


def _print_metrics(title: str, metrics, execution_path=None) -> None:
    m = metrics
    print(title)
    if execution_path is not None:
        print(f"  execution path        {execution_path}")
    print(f"  uptime                {m.uptime_fraction * 100:.2f} %")
    print(f"  harvested (raw)       {m.harvested_raw_j:.1f} J")
    print(f"  harvested (to bus)    {m.harvested_delivered_j:.1f} J")
    print(f"  tracking efficiency   {m.tracking_efficiency * 100:.1f} %")
    print(f"  conversion efficiency {m.conversion_efficiency * 100:.1f} %")
    print(f"  quiescent losses      {m.quiescent_j:.2f} J")
    print(f"  node consumed         {m.node_consumed_j:.2f} J")
    print(f"  measurements/day      {m.measurements_per_day:.0f}")
    print(f"  backup used           {m.backup_used_j:.2f} J")
    print(f"  brownouts             {m.brownouts}")


def _cmd_simulate(args) -> int:
    spec = _cli_run_spec(args.system, args.env, args.days, args.dt,
                         args.seed)
    result = run(spec, fast=_cli_fast(args))
    _print_metrics(
        f"{SYSTEM_NAMES[args.system]} on {args.env}, "
        f"{args.days:g} days (seed {args.seed})", result.metrics,
        execution_path=result.execution_path)
    return 0


def _load_spec_file(path):
    """load_spec with CLI-friendly failure (message + exit code 2)."""
    try:
        return load_spec(path)
    except KeyError as exc:
        print(f"error: cannot load spec file {path}: missing required "
              f"field {exc.args[0]!r}", file=sys.stderr)
        return None
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: cannot load spec file {path}: {exc}",
              file=sys.stderr)
        return None


def _cmd_run(args) -> int:
    spec = _load_spec_file(args.config)
    if spec is None:
        return 2
    catalog, code = _open_catalog(args)
    if code is not None:
        return code
    if isinstance(spec, RunSpec):
        try:
            if catalog is not None:
                # Route through the sweep machinery so the single run
                # hits the dedup cache / archives like any scenario.
                from .simulation.sweep import SweepRunner
                from .spec import to_scenario
                scenario = to_scenario(spec)
                fast = _cli_fast(args)
                if fast is not None:
                    scenario = dataclasses.replace(scenario, fast=fast)
                sweep = SweepRunner(processes=1, catalog=catalog).run(
                    [scenario])
                row = sweep[0]
                metrics, path = row.metrics, row.execution_path
                report = sweep.catalog_report
            else:
                result = run(spec, fast=_cli_fast(args))
                metrics, path = result.metrics, result.execution_path
                report = None
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: cannot execute {args.config}: {exc}",
                  file=sys.stderr)
            return 2
        if args.json:
            payload = {"name": spec.label, "metrics": metrics,
                       "execution_path": path}
            if report is not None:
                payload["catalog"] = report.to_dict()
            print(dumps_json(payload))
        else:
            _print_metrics(f"run: {spec.label}", metrics,
                           execution_path=path)
            _print_catalog_report(report)
        return 0
    if isinstance(spec, SweepSpec):
        try:
            sweep = run_sweep(spec, processes=args.processes,
                              fast=_cli_fast(args), catalog=catalog)
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: cannot execute {args.config}: {exc}",
                  file=sys.stderr)
            return 2
        if args.json:
            print(dumps_json(sweep.rows()))
        else:
            print(sweep.report(
                columns=("uptime_fraction", "harvested_delivered_j",
                         "quiescent_j", "measurements", "brownouts",
                         "execution_path"),
                title=f"sweep: {spec.name} ({len(sweep)} scenarios)"))
            _print_catalog_report(sweep.catalog_report)
        return 0
    if isinstance(spec, MonteCarloSpec):
        try:
            ensemble = run_montecarlo(spec, processes=args.processes,
                                      fast=_cli_fast(args),
                                      catalog=catalog)
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: cannot execute {args.config}: {exc}",
                  file=sys.stderr)
            return 2
        if args.json:
            payload = _ensemble_jsonable(ensemble)
            if ensemble.catalog_report is not None:
                payload["catalog"] = ensemble.catalog_report.to_dict()
            print(dumps_json(payload))
        else:
            print(ensemble.report())
            _print_catalog_report(ensemble.catalog_report)
        return 0
    if isinstance(spec, FleetSpec):
        try:
            result = run_fleet(spec, processes=args.processes,
                               fast=_cli_fast(args), catalog=catalog)
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: cannot execute {args.config}: {exc}",
                  file=sys.stderr)
            return 2
        if args.json:
            payload = _fleet_jsonable(result)
            if result.catalog_report is not None:
                payload["catalog"] = result.catalog_report.to_dict()
            print(dumps_json(payload))
        else:
            print(result.report())
            _print_catalog_report(result.catalog_report)
        return 0
    print(f"error: {args.config} holds a {type(spec).__name__}; "
          f"'run' executes RunSpec, SweepSpec, MonteCarloSpec, or "
          f"FleetSpec configs", file=sys.stderr)
    return 2


def _cmd_sweep(args) -> int:
    if args.spec is not None:
        spec = _load_spec_file(args.spec)
        if spec is None:
            return 2
        if not isinstance(spec, SweepSpec):
            print(f"error: --spec file must hold a SweepSpec, got "
                  f"{type(spec).__name__}", file=sys.stderr)
            return 2
        title = f"sweep: {spec.name} ({len(spec.runs)} scenarios)"
    else:
        spec = SweepSpec(
            runs=tuple(
                _cli_run_spec(letter, env_name, args.days, args.dt,
                              args.seed, name=f"{letter}@{env_name}")
                for letter in args.systems
                for env_name in args.envs
            ),
            name="cli-grid",
        )
        title = (f"sweep: {len(spec.runs)} scenarios, {args.days:g} days, "
                 f"seed {args.seed}")
    if args.replicates < 1:
        print("error: --replicates must be a positive integer",
              file=sys.stderr)
        return 2
    if args.replicates > 1:
        from .simulation.montecarlo import replicate_sweep
        spec = replicate_sweep(spec, args.replicates, root_seed=args.seed)
        title = (f"{title} x{args.replicates} replicates "
                 f"({len(spec.runs)} rows)")
    batch = {"auto": "auto", "on": True, "off": False}[args.batch]
    catalog, code = _open_catalog(args)
    if code is not None:
        return code
    try:
        sweep = run_sweep(spec, processes=args.processes,
                          fast=_cli_fast(args), batch=batch,
                          catalog=catalog)
    except (KeyError, ValueError, TypeError) as exc:
        print(f"error: cannot execute sweep: {exc}", file=sys.stderr)
        return 2
    print(sweep.report(
        columns=("uptime_fraction", "harvested_delivered_j",
                 "quiescent_j", "measurements", "brownouts",
                 "execution_path"),
        title=title))
    _print_catalog_report(sweep.catalog_report)
    if args.explain:
        print()
        print(_explain_batch(sweep))
    return 0


def _explain_batch(sweep) -> str:
    """Capability-report table for rows that missed a compiled tier.

    Renders both kinds of refusal side by side: rows that fell out of
    the lockstep batched tier (``batch_fallback_reason``) and fallback
    lanes that could not compile on the fused codegen tier either
    (``codegen_fallback_reason``).
    """
    from .analysis.reporting import render_table
    body = []
    for result in sweep:
        for tier, key in (("batched", "batch_fallback_reason"),
                          ("codegen", "codegen_fallback_reason")):
            report = result.extras.get(key)
            if report is None:
                continue
            body.append((result.name, result.execution_path, tier,
                         getattr(report, "component", "?"),
                         getattr(report, "capability", "?"),
                         getattr(report, "divergence", None) or "-",
                         getattr(report, "detail", str(report))))
    if not body:
        return ("compiled tiers: every scenario rode a compiled path "
                "(no capability refusals)")
    return render_table(
        ("scenario", "path", "tier", "component", "missing capability",
         "divergence", "detail"),
        body,
        title=f"compiled tiers: {len(body)} capability refusal(s)")


def _ensemble_jsonable(ensemble) -> dict:
    """JSON payload of an ensemble: summaries + per-replicate rows."""
    return {
        "name": ensemble.name,
        "replicates": ensemble.replicates,
        "root_seed": ensemble.root_seed,
        "execution_paths": ensemble.execution_paths(),
        "summaries": ensemble.summaries(),
        "rows": ensemble.rows(),
    }


def _cmd_mc(args) -> int:
    if args.spec is not None:
        if args.system is not None or \
                any(v is not None for v in (args.env, args.days, args.dt)):
            print("error: --spec carries the run itself; a system letter "
                  "and --env/--days/--dt only apply in flag mode "
                  "(--replicates/--seed/--tier still override)",
                  file=sys.stderr)
            return 2
        spec = _load_spec_file(args.spec)
        if spec is None:
            return 2
        if not isinstance(spec, MonteCarloSpec):
            print(f"error: --spec file must hold a MonteCarloSpec, got "
                  f"{type(spec).__name__}", file=sys.stderr)
            return 2
        overrides = {}
        if args.replicates is not None:
            overrides["replicates"] = args.replicates
        if args.seed is not None:
            overrides["root_seed"] = args.seed
        if overrides:
            try:
                spec = dataclasses.replace(spec, **overrides)
            except (ValueError, TypeError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    elif args.system is None:
        print("error: give a system letter, or --spec FILE",
              file=sys.stderr)
        return 2
    else:
        try:
            spec = MonteCarloSpec(
                run=_cli_run_spec(args.system,
                                  args.env if args.env is not None
                                  else "outdoor",
                                  args.days if args.days is not None
                                  else 2.0,
                                  args.dt if args.dt is not None else 300.0,
                                  seed=0),
                replicates=args.replicates if args.replicates is not None
                else 32,
                root_seed=args.seed if args.seed is not None else 0,
            )
        except (ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    catalog, code = _open_catalog(args)
    if code is not None:
        return code
    try:
        ensemble = run_montecarlo(spec, tier=args.tier,
                                  processes=args.processes,
                                  fast=_cli_fast(args), catalog=catalog)
    except (KeyError, ValueError, TypeError) as exc:
        print(f"error: cannot execute ensemble: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = _ensemble_jsonable(ensemble)
        if ensemble.catalog_report is not None:
            payload["catalog"] = ensemble.catalog_report.to_dict()
        print(dumps_json(payload))
    else:
        print(ensemble.report())
        _print_catalog_report(ensemble.catalog_report)
    return 0


def _fleet_jsonable(result) -> dict:
    """JSON payload of one fleet run: aggregate + per-node rows."""
    return {
        "name": result.spec.label,
        "fleet_metrics": result.metrics,
        "execution_paths": result.execution_paths(),
        "rows": result.rows(),
    }


def _fleet_spec_from_args(args):
    """Resolve the fleet subcommands' flags into a FleetSpec (or None)."""
    flag_mode_values = (args.env, args.nodes, args.topology, args.spread,
                        args.days, args.dt, args.listen)
    if args.spec is not None:
        if args.system is not None or \
                any(v is not None for v in flag_mode_values):
            print("error: --spec carries the fleet itself; a system "
                  "letter and --env/--nodes/--topology/--spread/--days/"
                  "--dt/--listen only apply in flag mode",
                  file=sys.stderr)
            return None
        spec = _load_spec_file(args.spec)
        if spec is None:
            return None
        if not isinstance(spec, FleetSpec):
            print(f"error: --spec file must hold a FleetSpec, got "
                  f"{type(spec).__name__}", file=sys.stderr)
            return None
        return spec
    if args.system is None:
        print("error: give a system letter, or --spec FILE",
              file=sys.stderr)
        return None
    from .fleet import homogeneous_fleet
    env_name = args.env if args.env is not None else "outdoor"
    nodes = args.nodes if args.nodes is not None else 8
    days = args.days if args.days is not None else 2.0
    dt = args.dt if args.dt is not None else 300.0
    seed = args.seed if args.seed is not None else 0
    try:
        environment = EnvironmentSpec(ENVIRONMENTS[env_name],
                                      duration=days * DAY, dt=dt,
                                      seed=seed)
        return homogeneous_fleet(
            spec_for(args.system), environment, nodes,
            topology=args.topology if args.topology is not None
            else "ring",
            spread=args.spread if args.spread is not None else 0.0,
            seed=seed,
            listen_window_s=args.listen if args.listen is not None
            else 0.002,
            name=f"fleet-{args.system}x{nodes}",
        )
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_fleet(args) -> int:
    spec = _fleet_spec_from_args(args)
    if spec is None:
        return 2
    catalog, code = _open_catalog(args)
    if code is not None:
        return code
    if args.fleet_command == "run":
        try:
            result = run_fleet(spec, tier=args.tier,
                               processes=args.processes,
                               fast=_cli_fast(args), catalog=catalog)
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: cannot execute fleet: {exc}", file=sys.stderr)
            return 2
        if args.json:
            payload = _fleet_jsonable(result)
            if result.catalog_report is not None:
                payload["catalog"] = result.catalog_report.to_dict()
            print(dumps_json(payload))
        else:
            print(result.report())
            _print_catalog_report(result.catalog_report)
        return 0
    if args.fleet_command == "mc":
        from .fleet import run_fleet_ensemble
        try:
            ensemble = run_fleet_ensemble(
                spec, args.replicates,
                root_seed=args.seed if args.seed is not None else 0,
                tier=args.tier, processes=args.processes,
                fast=_cli_fast(args), catalog=catalog)
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: cannot execute fleet ensemble: {exc}",
                  file=sys.stderr)
            return 2
        if args.json:
            payload = {
                "name": ensemble.name,
                "replicates": ensemble.replicates,
                "root_seed": ensemble.root_seed,
                "execution_paths": ensemble.execution_paths(),
                "summaries": ensemble.summaries(),
                "rows": ensemble.rows(),
            }
            if ensemble.catalog_report is not None:
                payload["catalog"] = ensemble.catalog_report.to_dict()
            print(dumps_json(payload))
        else:
            print(ensemble.report())
            _print_catalog_report(ensemble.catalog_report)
        return 0
    raise AssertionError(
        f"unhandled fleet command {args.fleet_command!r}")


def _cmd_spec(args) -> int:
    if args.registry:
        print(json.dumps(describe_registry(), indent=2, sort_keys=True))
        return 0
    if args.system is None:
        print("error: give a system letter, or --registry",
              file=sys.stderr)
        return 2
    if args.env is None:
        if any(v is not None for v in (args.days, args.dt, args.seed)):
            print("error: --days/--dt/--seed only apply to a full RunSpec; "
                  "add --env to emit one", file=sys.stderr)
            return 2
        spec = spec_for(args.system)
    else:
        days = 3.0 if args.days is None else args.days
        dt = 300.0 if args.dt is None else args.dt
        seed = 0 if args.seed is None else args.seed
        spec = _cli_run_spec(args.system, args.env, days, dt, seed)
    if args.hash:
        from .spec import spec_hash
        print(spec_hash(spec))
    else:
        print(spec.to_json())
    return 0


def _cmd_catalog(args) -> int:
    from .analysis.reporting import render_table
    catalog, code = _open_catalog(args)
    if code is not None:
        return code
    if args.catalog_command == "ls":
        records = catalog.query(kind=args.kind)
        if not records:
            print(f"catalog {catalog.root}: no {args.kind} records")
            return 0
        if args.kind == "bench":
            body = [(r.run_id, r.name, r.code_version, r.created_at)
                    for r in records]
            print(render_table(("run id", "benchmark", "code", "created"),
                               body,
                               title=f"catalog {catalog.root}: "
                                     f"{len(records)} bench record(s)"))
            return 0
        hits = catalog.hit_counts()
        body = [(r.run_id, r.name, r.system, r.environment,
                 "-" if r.seed is None else str(r.seed),
                 r.execution_path, str(hits.get(r.run_id, 0)),
                 r.created_at)
                for r in records]
        print(render_table(
            ("run id", "name", "system", "environment", "seed", "path",
             "hits", "created"),
            body,
            title=f"catalog {catalog.root}: {len(records)} run(s)"))
        return 0
    if args.catalog_command == "show":
        record = catalog.manifest.by_run_id(args.run_id)
        if record is None:
            print(f"error: no unique record matches {args.run_id!r}",
                  file=sys.stderr)
            return 2
        payload = {"record": record.to_dict(),
                   "hits": catalog.hit_counts().get(record.run_id, 0)}
        if record.spec_hash:
            from .catalog import CatalogError
            try:
                payload["spec_document"] = \
                    catalog.spec_document(record.spec_hash)
            except CatalogError:
                pass
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.catalog_command == "query":
        metric_band = None
        if args.metric_band is not None:
            metric, low, high = args.metric_band
            try:
                metric_band = (metric,
                               None if low == "-" else float(low),
                               None if high == "-" else float(high))
            except ValueError:
                print("error: --metric-band bounds must be numbers "
                      "or '-'", file=sys.stderr)
                return 2
        seed_stream = tuple(args.seed_stream) \
            if args.seed_stream is not None else None
        records = catalog.query(
            system=args.system, environment=args.environment,
            name=args.name, seed=args.seed, spec_hash=args.spec_hash,
            metric_band=metric_band, seed_stream=seed_stream)
        if args.json:
            print(json.dumps([r.to_dict() for r in records], indent=2,
                             sort_keys=True))
            return 0
        if not records:
            print("no matching records")
            return 0
        body = [(r.run_id, r.name, r.system, r.environment,
                 "-" if r.seed is None else str(r.seed),
                 f"{r.metrics.get('uptime_fraction', float('nan')):.4g}",
                 f"{r.metrics.get('harvested_delivered_j', float('nan')):.4g}")
                for r in records]
        print(render_table(
            ("run id", "name", "system", "environment", "seed",
             "uptime", "delivered J"),
            body, title=f"{len(records)} matching run(s)"))
        return 0
    if args.catalog_command == "gc":
        report = catalog.gc(stale=args.stale, keep_last=args.keep_last,
                            keep_days=args.keep_days,
                            dry_run=args.dry_run)
        verb = "would remove" if report.dry_run else "removed"
        print(f"gc: {verb} {report.removed} record(s), "
              f"{len(report.removed_artifacts)} artifact(s), "
              f"{len(report.removed_specs)} spec document(s); "
              f"{report.kept_records} record(s) kept")
        for run_id in report.removed_records:
            print(f"  - {run_id}")
        return 0
    if args.catalog_command == "bench":
        from .catalog import (bench_trajectory, default_trajectory_path,
                              import_trajectory, write_trajectory)
        if args.output is not None:
            # Fold any committed legacy history into the store first, so
            # regenerating against a fresh clone's empty .bench-catalog
            # extends the trajectory instead of truncating it to [].
            legacy = default_trajectory_path()
            imported = import_trajectory(catalog, legacy)
            if imported:
                print(f"imported {imported} legacy sample(s) "
                      f"from {legacy}")
            try:
                document = write_trajectory(catalog, args.output,
                                            require_runs=True)
            except RuntimeError:
                print(f"error: benchmark trajectory is empty — "
                      f"{catalog.root} holds no bench records and "
                      f"{legacy} has no history to import",
                      file=sys.stderr)
                return 1
            print(f"wrote {len(document['runs'])} benchmark record(s) "
                  f"to {args.output}")
        else:
            print(json.dumps(bench_trajectory(catalog), indent=2))
        return 0
    raise AssertionError(
        f"unhandled catalog command {args.catalog_command!r}")


def _cmd_experiment(exp_id: str) -> int:
    from .analysis import experiments as exp_pkg
    label, fn_name, kwargs = EXPERIMENTS[exp_id]
    print(f"running {exp_id}: {label} ...")
    result = getattr(exp_pkg, fn_name)(**kwargs)
    print(result.report())
    return 0


def _cmd_audit(args) -> int:
    result = run(_cli_run_spec(args.system, args.env, args.days, args.dt,
                               args.seed))
    audit = audit_run(result.recorder)
    print(audit.report(
        title=f"Energy audit — {SYSTEM_NAMES[args.system]} on {args.env}, "
              f"{args.days:g} days"))
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "figure":
        return _cmd_figure(args.system)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "mc":
        return _cmd_mc(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "spec":
        return _cmd_spec(args)
    if args.command == "catalog":
        return _cmd_catalog(args)
    if args.command == "experiment":
        return _cmd_experiment(args.id)
    if args.command == "advise":
        env = build_environment(
            EnvironmentSpec(ENVIRONMENTS[args.env],
                            duration=args.days * DAY, dt=args.dt,
                            seed=args.seed))
        print(advise(env).report())
        return 0
    if args.command == "audit":
        return _cmd_audit(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
