"""Seasonal (multi-month) environment generation.

Survey Sec. I: "Energy availability can be a temporal as well as spatial
effect." The daily generators in this package capture the diurnal
component; this module adds the *seasonal* one — day length and peak
irradiance swinging across months, and winter-biased wind — so that
buffer-sizing and lifetime studies can ask the question a real deployment
faces: not "can it survive the night?" but "can it survive January?".

The model drives :class:`~repro.environment.SolarModel` parameters with a
sinusoidal annual cycle anchored at a winter solstice, generating the
trace month by month so the underlying daily machinery is reused
unchanged.
"""

from __future__ import annotations

from ..spec.registry import register

import math

import numpy as np

from .ambient import Environment, SourceType
from .solar import SolarModel
from .thermal import DiurnalThermalModel
from .trace import Trace
from .wind import WindModel

__all__ = ["SeasonalSolarModel", "seasonal_outdoor_environment"]

DAY = 86_400.0
YEAR = 365.25 * DAY


class SeasonalSolarModel:
    """Solar irradiance with an annual day-length/intensity cycle.

    Parameters
    ----------
    summer_day_fraction / winter_day_fraction:
        Daylight fraction at the solstices (mid-latitudes: ~0.67 / ~0.33).
    summer_peak / winter_peak:
        Clear-sky noon irradiance at the solstices, W/m^2 (the winter sun
        sits lower: less irradiance even at noon).
    cloudiness_summer / cloudiness_winter:
        Mean cloud cover per season (winters are cloudier at temperate
        sites).
    start_day_of_year:
        Day of year at t=0 (0 = winter solstice).
    seed:
        RNG seed.
    """

    def __init__(self, summer_day_fraction: float = 0.67,
                 winter_day_fraction: float = 0.33,
                 summer_peak: float = 1000.0, winter_peak: float = 500.0,
                 cloudiness_summer: float = 0.25,
                 cloudiness_winter: float = 0.55,
                 start_day_of_year: float = 0.0, seed: int = 0):
        for label, value in (("summer_day_fraction", summer_day_fraction),
                             ("winter_day_fraction", winter_day_fraction)):
            if not 0.05 <= value <= 0.95:
                raise ValueError(f"{label} must be in [0.05, 0.95]")
        if winter_day_fraction > summer_day_fraction:
            raise ValueError("winter day fraction must not exceed summer's")
        if winter_peak > summer_peak:
            raise ValueError("winter peak must not exceed summer's")
        for label, value in (("cloudiness_summer", cloudiness_summer),
                             ("cloudiness_winter", cloudiness_winter)):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{label} must be in [0, 1)")
        self.summer_day_fraction = summer_day_fraction
        self.winter_day_fraction = winter_day_fraction
        self.summer_peak = summer_peak
        self.winter_peak = winter_peak
        self.cloudiness_summer = cloudiness_summer
        self.cloudiness_winter = cloudiness_winter
        self.start_day_of_year = start_day_of_year
        self.seed = seed

    def _season_phase(self, t: float) -> float:
        """0 at winter solstice, 1 at summer solstice (cosine blend)."""
        doy = (self.start_day_of_year + t / DAY) % 365.25
        return 0.5 * (1.0 - math.cos(2.0 * math.pi * doy / 365.25))

    def parameters_at(self, t: float) -> dict:
        """SolarModel parameters in effect at absolute time ``t``."""
        s = self._season_phase(t)
        return {
            "day_fraction": self.winter_day_fraction + s *
            (self.summer_day_fraction - self.winter_day_fraction),
            "peak_irradiance": self.winter_peak + s *
            (self.summer_peak - self.winter_peak),
            "cloudiness": self.cloudiness_winter + s *
            (self.cloudiness_summer - self.cloudiness_winter),
        }

    def trace(self, duration: float, dt: float = 300.0) -> Trace:
        """Generate the seasonal irradiance trace day by day."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        chunks = []
        t = 0.0
        day_index = 0
        while t < duration:
            span = min(DAY, duration - t)
            params = self.parameters_at(t + span / 2.0)
            daily = SolarModel(seed=self.seed + day_index,
                               **params).trace(span, dt)
            chunks.append(daily.values)
            t += span
            day_index += 1
        return Trace(np.concatenate(chunks), dt, name="irradiance",
                     units="W/m^2")


@register("environment", "seasonal-outdoor")
def seasonal_outdoor_environment(duration: float = 90 * DAY,
                                 dt: float = 600.0, *,
                                 start_day_of_year: float = 0.0,
                                 mean_wind: float = 5.0,
                                 winter_wind_boost: float = 0.3,
                                 seed: int = 0) -> Environment:
    """Multi-month outdoor site with seasonal sun and winter-biased wind.

    Parameters
    ----------
    duration / dt:
        Span and timestep (default: one quarter at 10-min resolution).
    start_day_of_year:
        0 = winter solstice; 182.6 = summer solstice.
    mean_wind:
        Annual-mean wind speed, m/s.
    winter_wind_boost:
        Relative wind increase at mid-winter (storm season) — the
        complementarity that makes multi-source platforms seasonal-proof.
    seed:
        RNG seed.
    """
    solar = SeasonalSolarModel(start_day_of_year=start_day_of_year,
                               seed=seed).trace(duration, dt)

    # Winter-biased wind: modulate a stationary trace by the season.
    base_wind = WindModel(mean_speed=mean_wind, seed=seed + 1).trace(
        duration, dt)
    season = SeasonalSolarModel(start_day_of_year=start_day_of_year)
    factors = np.array([
        1.0 + winter_wind_boost * (1.0 - season._season_phase(i * dt))
        for i in range(len(base_wind))
    ])
    wind = Trace(base_wind.values * factors, dt, name="wind_speed",
                 units="m/s")

    thermal = DiurnalThermalModel(seed=seed + 2).trace(duration, dt)
    return Environment(
        {SourceType.LIGHT: solar, SourceType.WIND: wind,
         SourceType.THERMAL: thermal},
        name=f"seasonal-outdoor(doy={start_day_of_year:.0f})",
    )
