"""Synthetic wind speed traces.

Wind is the second source of the survey's System A and appears in systems
C (AmbiMax) and D (MPWiNode) in Table I. The survey's motivating example
(Sec. I) is precisely a wind turbine + solar cell combination harvesting
"more energy ... and for a longer period per day" than either alone —
because wind persists at night. The generator therefore produces:

* a Weibull-distributed long-run speed distribution (the standard empirical
  model for wind sites),
* slow mean reversion (weather systems) via an Ornstein-Uhlenbeck process
  driving the Weibull quantile,
* a diurnal modulation that *peaks in the evening/night* by default, making
  wind complementary to solar, and
* short gusts.

All randomness is seeded.
"""

from __future__ import annotations

import math

import numpy as np

from .trace import Trace

__all__ = ["WindModel", "wind_speed_trace"]

DAY = 86_400.0


class WindModel:
    """Parametric generator of wind-speed traces.

    Parameters
    ----------
    mean_speed:
        Long-run mean wind speed, m/s (typical small-turbine site: 3-7).
    weibull_k:
        Weibull shape parameter (2.0 = Rayleigh, typical for wind).
    diurnal_amplitude:
        Relative amplitude of the day/night modulation in [0, 1).
    diurnal_peak_hour:
        Local hour of maximum wind (default 20:00 — evening peak, making
        wind complementary to solar as the survey's example assumes).
    gustiness:
        Relative intensity of short-period gust fluctuations.
    seed:
        RNG seed.
    """

    def __init__(self, mean_speed: float = 5.0, weibull_k: float = 2.0,
                 diurnal_amplitude: float = 0.3, diurnal_peak_hour: float = 20.0,
                 gustiness: float = 0.15, seed: int = 0):
        if mean_speed < 0:
            raise ValueError("mean_speed must be non-negative")
        if weibull_k <= 0:
            raise ValueError("weibull_k must be positive")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        self.mean_speed = mean_speed
        self.weibull_k = weibull_k
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_peak_hour = diurnal_peak_hour
        self.gustiness = gustiness
        self.seed = seed
        # Weibull scale from mean: mean = scale * Gamma(1 + 1/k).
        self._scale = mean_speed / math.gamma(1.0 + 1.0 / weibull_k) if mean_speed else 0.0

    def _diurnal(self, t: float) -> float:
        return float(self._diurnal_array(np.asarray([float(t)]))[0])

    def _diurnal_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorized day/night modulation; the single formula behind
        both the scalar :meth:`_diurnal` and whole-trace synthesis."""
        hours = (times % DAY) / 3600.0
        phase = 2.0 * np.pi * (hours - self.diurnal_peak_hour) / 24.0
        return 1.0 + self.diurnal_amplitude * np.cos(phase)

    def trace(self, duration: float, dt: float = 60.0,
              calm_windows: tuple = ()) -> Trace:
        """Generate a wind-speed trace.

        Synthesis is vectorized (ensemble sweeps build hundreds of
        seeded traces, so this is a measured hot path): one bulk normal
        draw replaces the per-step scalar draw pair — bit stream and
        interleaved draw order are identical, so the stochastic draws
        are exactly preserved; the vectorized transcendentals downstream
        may differ from a scalar loop at the ulp level. Only the
        mean-reverting recurrence itself stays sequential.

        Parameters
        ----------
        duration, dt:
            Length and timestep in seconds.
        calm_windows:
            ``(t_start, t_end)`` ranges forced to near-calm (85 % speed
            reduction) — used to script lulls for backup-storage studies.
        """
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        times = np.arange(n) * dt

        # OU process on a latent normal variable; its CDF picks the Weibull
        # quantile, giving the right stationary distribution with temporal
        # correlation (correlation time ~ 6 h, weather-system scale).
        tau = 6 * 3600.0
        theta = dt / tau
        x = rng.standard_normal()
        draws = rng.standard_normal(2 * n)
        gust_z = draws[1::2]
        coeff = math.sqrt(2 * theta)
        latent = np.empty(n)
        for i, z in enumerate(draws[0::2].tolist()):
            x += -theta * x + coeff * z
            latent[i] = x
        erf = math.erf
        u = 0.5 * (1.0 + np.fromiter(
            map(erf, (latent / math.sqrt(2.0)).tolist()),
            dtype=np.float64, count=n))
        u = np.clip(u, 1e-9, 1 - 1e-9)
        base = self._scale * (-np.log1p(-u)) ** (1.0 / self.weibull_k)
        diurnal = self._diurnal_array(times)
        gust = np.maximum(1.0 + self.gustiness * gust_z, 0.0)
        values = np.maximum(0.0, base * diurnal * gust)

        for t_start, t_end in calm_windows:
            mask = (times >= t_start) & (times < t_end)
            values[mask] *= 0.15

        return Trace(values, dt, name="wind_speed", units="m/s")


def wind_speed_trace(duration: float, dt: float = 60.0, *,
                     mean_speed: float = 5.0, diurnal_amplitude: float = 0.3,
                     seed: int = 0, calm_windows: tuple = ()) -> Trace:
    """Convenience wrapper building a :class:`WindModel` and one trace."""
    return WindModel(
        mean_speed=mean_speed, diurnal_amplitude=diurnal_amplitude, seed=seed
    ).trace(duration, dt, calm_windows=calm_windows)
