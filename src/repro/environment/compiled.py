"""Pre-materialized environment windows for the fast-path engine.

:meth:`Environment.sample` builds an :class:`~repro.environment.ambient.
AmbientSample` dict per call and runs one :meth:`Trace.at` lookup per
channel — fine for a single query, ruinous inside a million-step hot loop.
:class:`CompiledEnvironment` evaluates every channel for every step of a
run window up front into one dense ``(n_steps, n_channels)`` float64
matrix, so the simulation loop reduces per-step ambient sampling to a row
index.

The compilation uses exactly the same index arithmetic as
:meth:`Trace.at` (tolerance-aware floor, clamp-to-last-sample), so a
compiled window is sample-for-sample identical to per-step ``sample()``
calls at ``t = t0 + i * dt`` — the equivalence the fast path's bit-for-bit
guarantee rests on.
"""

from __future__ import annotations

import numpy as np

from .ambient import AmbientSample, Environment, SourceType
from .trace import TIME_INDEX_EPS

__all__ = ["CompiledEnvironment"]


class CompiledEnvironment:
    """A dense per-step view of an :class:`Environment` run window.

    Parameters
    ----------
    environment:
        Source of channel traces.
    t0:
        Absolute time of global step 0, seconds.
    n_steps:
        Number of simulation steps to materialize.
    dt:
        Simulation timestep, seconds (may differ from the traces' dt).
    step_offset:
        Global index of the window's first step. Row ``i`` covers time
        ``t0 + (step_offset + i) * dt`` — computed in exactly that form so
        the materialized times are bit-identical to the engine's
        integer-step clock across segmented runs.

    Attributes
    ----------
    sources:
        Tuple of :class:`SourceType`, one per matrix column.
    matrix:
        ``(n_steps, n_channels)`` float64 array; ``matrix[i, j]`` is
        channel ``sources[j]`` at the row's time.
    times:
        ``(n_steps,)`` float64 array of the rows' absolute times.
    """

    def __init__(self, environment: Environment, t0: float, n_steps: int,
                 dt: float, step_offset: int = 0):
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if t0 < 0:
            raise ValueError(f"t0 must be non-negative, got {t0}")
        if step_offset < 0:
            raise ValueError(f"step_offset must be non-negative, got {step_offset}")
        self.environment = environment
        self.t0 = t0
        self.dt = dt
        self.n_steps = n_steps
        self.step_offset = step_offset
        self.sources: tuple = environment.sources
        self._col_index = {s: j for j, s in enumerate(self.sources)}
        times = t0 + np.arange(step_offset, step_offset + n_steps,
                               dtype=np.float64) * dt
        self.times = times
        matrix = np.empty((n_steps, len(self.sources)), dtype=np.float64)
        for j, source in enumerate(self.sources):
            trace = environment.trace(source)
            idx = np.floor(times / trace.dt + TIME_INDEX_EPS).astype(np.int64)
            np.clip(idx, 0, len(trace.values) - 1, out=idx)
            matrix[:, j] = trace.values[idx]
        self.matrix = matrix
        # Lazily-materialized Python-list views for the kernel hot loop
        # (indexing a list beats indexing an ndarray from CPython). Cached
        # here — not rebuilt per run_plan call — so event-triggered
        # recompiles and segmented runs do not re-convert the matrix.
        self._times_list: list | None = None
        self._column_lists: dict = {}

    def times_list(self) -> list:
        """Row times as a cached Python list (kernel hot-loop view)."""
        if self._times_list is None:
            self._times_list = self.times.tolist()
        return self._times_list

    def column_list(self, j: int) -> list:
        """Matrix column ``j`` as a cached Python list (kernel view)."""
        values = self._column_lists.get(j)
        if values is None:
            values = self._column_lists[j] = self.matrix[:, j].tolist()
        return values

    def __len__(self) -> int:
        return self.n_steps

    def column_of(self, source: SourceType) -> int | None:
        """Matrix column for one channel, or None if the channel is absent."""
        return self._col_index.get(source)

    def column(self, source: SourceType) -> np.ndarray:
        """Dense per-step values of one channel (KeyError if absent)."""
        return self.matrix[:, self._col_index[source]]

    def sample(self, i: int) -> AmbientSample:
        """Row ``i`` as an :class:`AmbientSample` (slow-path convenience)."""
        row = self.matrix[i]
        return AmbientSample(
            {source: float(row[j]) for j, source in enumerate(self.sources)}
        )

    def __repr__(self) -> str:
        return (f"CompiledEnvironment({self.environment.name!r}, "
                f"steps={self.n_steps}, channels={len(self.sources)}, "
                f"dt={self.dt})")
