"""Synthetic outdoor solar irradiance traces.

System A in the survey ("Smart Power Unit", Fig. 1) is an outdoor platform
harvesting light and wind. Its design rationale — and experiments E3/E4 in
DESIGN.md — depend on the day/night structure and weather variability of
solar input. This module generates irradiance traces with:

* deterministic clear-sky geometry (sinusoidal solar elevation with season-
  dependent day length),
* stochastic cloud cover evolving as a bounded random walk (slow synoptic
  component) plus short-lived cloud transients,
* an optional multi-day "lull" (overcast spell) used by the fuel-cell backup
  experiment (E10).

All randomness is seeded; the same seed yields the same trace.
"""

from __future__ import annotations

import math

import numpy as np

from .trace import Trace

__all__ = ["SolarModel", "solar_irradiance_trace"]

#: Peak clear-sky irradiance at solar noon for a mid-latitude site, W/m^2.
DEFAULT_PEAK_IRRADIANCE = 1000.0

#: Seconds per day.
DAY = 86_400.0


class SolarModel:
    """Parametric generator of outdoor irradiance traces.

    Parameters
    ----------
    peak_irradiance:
        Clear-sky irradiance at solar noon (W/m^2).
    day_fraction:
        Fraction of the 24 h cycle with the sun above the horizon
        (0.5 = equinox; ~0.33 winter; ~0.67 summer at mid latitudes).
    cloudiness:
        Long-run mean cloud attenuation in [0, 1); 0 = always clear.
    cloud_volatility:
        Scale of the random-walk steps driving slow cloud evolution.
    seed:
        RNG seed; identical seeds reproduce identical traces.
    """

    def __init__(self, peak_irradiance: float = DEFAULT_PEAK_IRRADIANCE,
                 day_fraction: float = 0.5, cloudiness: float = 0.3,
                 cloud_volatility: float = 0.05, seed: int = 0):
        if not 0.05 <= day_fraction <= 0.95:
            raise ValueError(f"day_fraction must be in [0.05, 0.95], got {day_fraction}")
        if not 0.0 <= cloudiness < 1.0:
            raise ValueError(f"cloudiness must be in [0, 1), got {cloudiness}")
        if peak_irradiance <= 0:
            raise ValueError("peak_irradiance must be positive")
        self.peak_irradiance = peak_irradiance
        self.day_fraction = day_fraction
        self.cloudiness = cloudiness
        self.cloud_volatility = cloud_volatility
        self.seed = seed

    # ------------------------------------------------------------------
    def clear_sky(self, t: float) -> float:
        """Deterministic clear-sky irradiance at time ``t`` seconds.

        The sun is modelled as a raised cosine centred on local noon with a
        width set by ``day_fraction``; this reproduces sunrise/sunset ramps
        without full astronomical geometry, which the survey's claims do not
        require.
        """
        return float(self._clear_sky_array(np.asarray([float(t)]))[0])

    def _clear_sky_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorized raised cosine; the single formula behind both the
        scalar :meth:`clear_sky` and whole-trace synthesis."""
        tod = (times % DAY) / DAY  # time of day in [0, 1)
        half_day = self.day_fraction / 2.0
        phase = (tod - 0.5) / half_day  # 0 at noon, +-1 at sunrise/sunset
        return np.where(
            np.abs(phase) >= 1.0, 0.0,
            self.peak_irradiance * 0.5 * (1.0 + np.cos(np.pi * phase)))

    # ------------------------------------------------------------------
    def trace(self, duration: float, dt: float = 60.0,
              overcast_windows: tuple = ()) -> Trace:
        """Generate an irradiance trace.

        Parameters
        ----------
        duration:
            Trace length in seconds.
        dt:
            Timestep in seconds (default 1 min).
        overcast_windows:
            Iterable of ``(t_start, t_end)`` second-ranges forced to heavy
            overcast (93 % attenuation) — used to script multi-day lulls
            for the fuel-cell backup experiment.
        """
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        times = np.arange(n) * dt

        # Vectorized synthesis: ensemble sweeps build hundreds of seeded
        # traces, so trace construction is a measured hot path.
        clear = self._clear_sky_array(times)

        # Slow synoptic cloud cover: mean-reverting bounded random walk.
        # One bulk draw preserves the bit stream of the per-step scalar
        # draws; the recurrence itself is sequential.
        cover = np.empty(n)
        c = self.cloudiness
        vol = self.cloud_volatility * math.sqrt(dt / 3600.0)
        hours = dt / 3600.0
        for i, z in enumerate(rng.standard_normal(n).tolist()):
            c += vol * z
            c += 0.02 * (self.cloudiness - c) * hours
            c = min(max(c, 0.0), 0.98)
            cover[i] = c

        # Short cloud transients: occasional sharp dips lasting minutes.
        transient = np.ones(n)
        mean_events_per_day = 20.0 * self.cloudiness
        p_event = mean_events_per_day * dt / DAY
        i = 0
        while i < n:
            if rng.random() < p_event:
                length = max(1, int(rng.exponential(600.0) / dt))
                depth = 0.3 + 0.6 * rng.random()
                transient[i : i + length] = np.minimum(
                    transient[i : i + length], 1.0 - depth
                )
                i += length
            else:
                i += 1

        attenuation = (1.0 - cover) * transient
        values = clear * np.clip(attenuation, 0.0, 1.0)

        for t_start, t_end in overcast_windows:
            mask = (times >= t_start) & (times < t_end)
            values[mask] *= 0.07

        return Trace(values, dt, name="irradiance", units="W/m^2")


def solar_irradiance_trace(duration: float, dt: float = 60.0, *,
                           peak_irradiance: float = DEFAULT_PEAK_IRRADIANCE,
                           day_fraction: float = 0.5, cloudiness: float = 0.3,
                           seed: int = 0,
                           overcast_windows: tuple = ()) -> Trace:
    """Convenience wrapper building a :class:`SolarModel` and one trace."""
    model = SolarModel(
        peak_irradiance=peak_irradiance,
        day_fraction=day_fraction,
        cloudiness=cloudiness,
        seed=seed,
    )
    return model.trace(duration, dt, overcast_windows=overcast_windows)
