"""Synthetic deployment environments: seeded ambient-condition traces.

This package substitutes for the physical deployment environments of the
surveyed systems (see DESIGN.md, substitution table). Each generator
produces :class:`~repro.environment.Trace` objects bundled into
:class:`~repro.environment.Environment` channel maps keyed by
:class:`~repro.environment.SourceType`.
"""

from .ambient import AmbientSample, Environment, SourceType
from .compiled import CompiledEnvironment
from .composite import (
    agricultural_environment,
    indoor_industrial_environment,
    outdoor_environment,
    urban_rf_environment,
)
from .persistence import (
    load_environment,
    load_trace,
    save_environment,
    save_trace,
    trace_from_csv,
)
from .indoor_light import OfficeLightingModel, indoor_light_trace, lux_to_irradiance
from .rf_field import BroadcastRFModel, ReaderRFModel, rf_field_trace
from .seasonal import SeasonalSolarModel, seasonal_outdoor_environment
from .solar import SolarModel, solar_irradiance_trace
from .thermal import DiurnalThermalModel, MachineThermalModel, thermal_gradient_trace
from .trace import Trace
from .vibration import MachineVibrationModel, VibrationProfile, vibration_trace
from .water_flow import IrrigationFlowModel, StreamFlowModel, water_flow_trace
from .wind import WindModel, wind_speed_trace

__all__ = [
    "AmbientSample",
    "CompiledEnvironment",
    "Environment",
    "SourceType",
    "Trace",
    "SolarModel",
    "solar_irradiance_trace",
    "OfficeLightingModel",
    "indoor_light_trace",
    "lux_to_irradiance",
    "WindModel",
    "wind_speed_trace",
    "MachineThermalModel",
    "DiurnalThermalModel",
    "thermal_gradient_trace",
    "MachineVibrationModel",
    "VibrationProfile",
    "vibration_trace",
    "BroadcastRFModel",
    "ReaderRFModel",
    "rf_field_trace",
    "IrrigationFlowModel",
    "StreamFlowModel",
    "water_flow_trace",
    "outdoor_environment",
    "indoor_industrial_environment",
    "agricultural_environment",
    "urban_rf_environment",
    "save_trace",
    "load_trace",
    "save_environment",
    "load_environment",
    "trace_from_csv",
    "SeasonalSolarModel",
    "seasonal_outdoor_environment",
]
