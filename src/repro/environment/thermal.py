"""Synthetic temperature-difference traces for thermoelectric harvesting.

Thermal gradients appear in Table I for System B (Plug-and-Play) and
System F (Cymbet EVAL-09). Two deployment archetypes are modelled:

* **Machine-mounted TEG** — a hot industrial surface (pipe, motor casing)
  against ambient air. The gradient follows the machine's duty schedule:
  large when running, decaying exponentially toward zero when stopped.
* **Diurnal TEG** — a passive outdoor gradient driven by day/night ambient
  swings; small (a few kelvin) and slow.

Both are seeded and reproducible.
"""

from __future__ import annotations

import math

import numpy as np

from .trace import Trace

__all__ = ["MachineThermalModel", "DiurnalThermalModel", "thermal_gradient_trace"]

DAY = 86_400.0


class MachineThermalModel:
    """Temperature difference across a TEG on duty-cycled machinery.

    Parameters
    ----------
    delta_t_running:
        Steady-state gradient while the machine runs, K.
    heat_time_constant:
        Thermal time constant for warm-up/cool-down, seconds.
    shift_hours:
        ``(start, end)`` local hours during which the machine may run.
    run_fraction:
        Probability the machine is running in any work-shift interval.
    seed:
        RNG seed.
    """

    def __init__(self, delta_t_running: float = 25.0,
                 heat_time_constant: float = 900.0,
                 shift_hours: tuple = (7.0, 19.0),
                 run_fraction: float = 0.7, seed: int = 0):
        if delta_t_running < 0:
            raise ValueError("delta_t_running must be non-negative")
        if heat_time_constant <= 0:
            raise ValueError("heat_time_constant must be positive")
        if not 0.0 <= run_fraction <= 1.0:
            raise ValueError("run_fraction must be in [0, 1]")
        self.delta_t_running = delta_t_running
        self.heat_time_constant = heat_time_constant
        self.shift_hours = shift_hours
        self.run_fraction = run_fraction
        self.seed = seed

    def trace(self, duration: float, dt: float = 60.0) -> Trace:
        """Generate a gradient trace (K across the TEG)."""
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        values = np.empty(n)

        delta = 0.0
        running = False
        # Machine toggles state on average every 30 min while in shift.
        p_toggle = dt / 1800.0
        lo, hi = self.shift_hours
        for i in range(n):
            hour = ((i * dt) % DAY) / 3600.0
            in_shift = lo <= hour <= hi
            if not in_shift:
                running = False
            elif rng.random() < p_toggle:
                running = rng.random() < self.run_fraction
            target = self.delta_t_running if running else 0.0
            alpha = 1.0 - math.exp(-dt / self.heat_time_constant)
            delta += alpha * (target - delta)
            values[i] = max(0.0, delta + 0.3 * rng.standard_normal())

        return Trace(values, dt, name="delta_t", units="K")


class DiurnalThermalModel:
    """Small passive outdoor day/night thermal gradient.

    Parameters
    ----------
    amplitude:
        Peak gradient, K (passive outdoor setups rarely exceed ~5 K).
    peak_hour:
        Local hour of maximum gradient (default 14:00).
    noise:
        Gaussian jitter, K.
    seed:
        RNG seed.
    """

    def __init__(self, amplitude: float = 4.0, peak_hour: float = 14.0,
                 noise: float = 0.2, seed: int = 0):
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        self.amplitude = amplitude
        self.peak_hour = peak_hour
        self.noise = noise
        self.seed = seed

    def trace(self, duration: float, dt: float = 60.0) -> Trace:
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        times = np.arange(n) * dt
        hours = (times % DAY) / 3600.0
        phase = 2.0 * math.pi * (hours - self.peak_hour) / 24.0
        base = self.amplitude * np.maximum(0.0, np.cos(phase))
        values = np.maximum(0.0, base + self.noise * rng.standard_normal(n))
        return Trace(values, dt, name="delta_t", units="K")


def thermal_gradient_trace(duration: float, dt: float = 60.0, *,
                           style: str = "machine", seed: int = 0,
                           **kwargs) -> Trace:
    """Convenience dispatcher: ``style`` is ``"machine"`` or ``"diurnal"``."""
    if style == "machine":
        return MachineThermalModel(seed=seed, **kwargs).trace(duration, dt)
    if style == "diurnal":
        return DiurnalThermalModel(seed=seed, **kwargs).trace(duration, dt)
    raise ValueError(f"unknown thermal style {style!r}; use 'machine' or 'diurnal'")
