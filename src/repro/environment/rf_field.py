"""Synthetic RF power-density traces for radio-frequency harvesting.

RF ("radio") harvesting appears in Table I for systems E (MAX17710 eval),
F (Cymbet EVAL-09) and G (EH-Link). Ambient RF is the weakest of the
surveyed sources — typical far-field power densities near transmitters are
microwatts to tens of microwatts per cm^2 — but it is nearly always present,
which is exactly why it features in "opportunistic" multi-source platforms.

Two archetypes:

* **Broadcast field** — quasi-constant density from a distant fixed
  transmitter (TV/cell tower) with slow fading.
* **Reader field** — intermittent strong bursts from a nearby intentional
  source (e.g. an RFID reader or a dedicated RF power beacon).
"""

from __future__ import annotations

import numpy as np

from .trace import Trace

__all__ = ["BroadcastRFModel", "ReaderRFModel", "rf_field_trace"]


class BroadcastRFModel:
    """Slowly-fading ambient broadcast RF field.

    Parameters
    ----------
    mean_density:
        Mean incident power density, W/m^2. 1 uW/cm^2 = 0.01 W/m^2; ambient
        urban levels are typically 1e-4 .. 1e-1 W/m^2.
    fading_sigma_db:
        Log-normal shadow-fading standard deviation in dB.
    fading_time_constant:
        Correlation time of the fading process, seconds.
    seed:
        RNG seed.
    """

    def __init__(self, mean_density: float = 0.01, fading_sigma_db: float = 4.0,
                 fading_time_constant: float = 600.0, seed: int = 0):
        if mean_density < 0:
            raise ValueError("mean_density must be non-negative")
        if fading_time_constant <= 0:
            raise ValueError("fading_time_constant must be positive")
        self.mean_density = mean_density
        self.fading_sigma_db = fading_sigma_db
        self.fading_time_constant = fading_time_constant
        self.seed = seed

    def trace(self, duration: float, dt: float = 60.0) -> Trace:
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        theta = min(1.0, dt / self.fading_time_constant)
        x = rng.standard_normal()
        values = np.empty(n)
        for i in range(n):
            x += -theta * x + (2 * theta) ** 0.5 * rng.standard_normal()
            fade_db = self.fading_sigma_db * x
            values[i] = self.mean_density * 10.0 ** (fade_db / 10.0)
        return Trace(values, dt, name="rf_density", units="W/m^2")


class ReaderRFModel:
    """Intermittent strong bursts from a nearby intentional RF source.

    Parameters
    ----------
    burst_density:
        Power density during a burst, W/m^2.
    burst_duration:
        Mean burst length, seconds.
    bursts_per_hour:
        Mean burst arrival rate.
    seed:
        RNG seed.
    """

    def __init__(self, burst_density: float = 1.0, burst_duration: float = 30.0,
                 bursts_per_hour: float = 6.0, seed: int = 0):
        if burst_density < 0:
            raise ValueError("burst_density must be non-negative")
        if burst_duration <= 0:
            raise ValueError("burst_duration must be positive")
        if bursts_per_hour < 0:
            raise ValueError("bursts_per_hour must be non-negative")
        self.burst_density = burst_density
        self.burst_duration = burst_duration
        self.bursts_per_hour = bursts_per_hour
        self.seed = seed

    def trace(self, duration: float, dt: float = 60.0) -> Trace:
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        values = np.zeros(n)
        p_start = self.bursts_per_hour * dt / 3600.0
        i = 0
        while i < n:
            if rng.random() < p_start:
                length = max(1, int(rng.exponential(self.burst_duration) / dt))
                values[i : i + length] = self.burst_density
                i += length
            else:
                i += 1
        return Trace(values, dt, name="rf_density", units="W/m^2")


def rf_field_trace(duration: float, dt: float = 60.0, *,
                   style: str = "broadcast", seed: int = 0, **kwargs) -> Trace:
    """Convenience dispatcher: ``style`` is ``"broadcast"`` or ``"reader"``."""
    if style == "broadcast":
        return BroadcastRFModel(seed=seed, **kwargs).trace(duration, dt)
    if style == "reader":
        return ReaderRFModel(seed=seed, **kwargs).trace(duration, dt)
    raise ValueError(f"unknown RF style {style!r}; use 'broadcast' or 'reader'")
