"""Prebuilt deployment environments used across the experiment suite.

The survey stresses that harvester choice is *deployment-specific*
("the importance of considering the deployment environment when choosing
energy hardware", Sec. IV). These factories bundle the channel generators
into the deployment archetypes the surveyed systems target:

* :func:`outdoor_environment` — System A / AmbiMax territory: sun + wind
  (+ small diurnal thermal gradient).
* :func:`indoor_industrial_environment` — System B territory: office-level
  light, machine vibration, machine thermal gradients, ambient RF.
* :func:`agricultural_environment` — System D (MPWiNode) territory: sun,
  wind, irrigation water flow.
* :func:`urban_rf_environment` — systems E/F/G territory: indoor light,
  broadcast RF, occasional reader bursts, mains vibration.
"""

from __future__ import annotations

from ..spec.registry import register

from .ambient import Environment, SourceType
from .indoor_light import OfficeLightingModel
from .rf_field import BroadcastRFModel, ReaderRFModel
from .solar import SolarModel
from .thermal import DiurnalThermalModel, MachineThermalModel
from .vibration import MachineVibrationModel
from .water_flow import IrrigationFlowModel
from .wind import WindModel

__all__ = [
    "outdoor_environment",
    "indoor_industrial_environment",
    "agricultural_environment",
    "urban_rf_environment",
    "scaled_environment",
]

DAY = 86_400.0


@register("environment", "scaled")
def scaled_environment(duration: float | None = None,
                       dt: float | None = None, *,
                       base: str = "outdoor", scale: float = 1.0,
                       offset: float = 0.0, base_params: dict | None = None,
                       seed: int = 0) -> Environment:
    """An affine per-channel transform of a registered base environment.

    Every channel trace of the base becomes ``trace * scale + offset``
    (offsets in the channel's native units). The base environment is
    built from the same ``seed``, so N scaled variants of one seed share
    a single stochastic realization — how fleet nodes see one ambient
    field through per-node micro-siting factors (partial shading, mast
    height, distance to the machine). The identity transform
    (``scale == 1.0 and offset == 0.0``) returns the base environment
    itself, bit-for-bit.
    """
    from ..spec.registry import REGISTRY
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    kwargs = dict(base_params or {})
    if duration is not None:
        kwargs["duration"] = duration
    if dt is not None:
        kwargs["dt"] = dt
    environment = REGISTRY.get("environment", base)(seed=seed, **kwargs)
    if scale == 1.0 and offset == 0.0:
        return environment
    channels = {source: environment.trace(source) * scale + offset
                for source in environment.sources}
    return Environment(channels,
                       name=f"{environment.name}*{scale:g}{offset:+g}")


@register("environment", "outdoor")
def outdoor_environment(duration: float = 7 * DAY, dt: float = 60.0, *,
                        cloudiness: float = 0.3, mean_wind: float = 5.0,
                        day_fraction: float = 0.5, seed: int = 0,
                        overcast_windows: tuple = (),
                        calm_windows: tuple = ()) -> Environment:
    """Temperate outdoor site: solar + complementary wind + diurnal thermal.

    ``overcast_windows`` / ``calm_windows`` script lulls for backup-storage
    experiments (E10).
    """
    solar = SolarModel(cloudiness=cloudiness, day_fraction=day_fraction,
                       seed=seed).trace(duration, dt,
                                        overcast_windows=overcast_windows)
    wind = WindModel(mean_speed=mean_wind, seed=seed + 1).trace(
        duration, dt, calm_windows=calm_windows)
    thermal = DiurnalThermalModel(seed=seed + 2).trace(duration, dt)
    return Environment(
        {SourceType.LIGHT: solar, SourceType.WIND: wind, SourceType.THERMAL: thermal},
        name="outdoor-temperate",
    )


@register("environment", "indoor-industrial")
def indoor_industrial_environment(duration: float = 7 * DAY, dt: float = 60.0, *,
                                  work_lux: float = 400.0, accel_rms: float = 2.0,
                                  delta_t_running: float = 25.0,
                                  seed: int = 0) -> Environment:
    """Indoor industrial site (System B's target): light, vibration,
    machine thermal gradient, weak ambient RF."""
    light = OfficeLightingModel(work_lux=work_lux, seed=seed).trace(duration, dt)
    vib = MachineVibrationModel(accel_rms=accel_rms, seed=seed + 1).trace(duration, dt)
    thermal = MachineThermalModel(delta_t_running=delta_t_running,
                                  seed=seed + 2).trace(duration, dt)
    rf = BroadcastRFModel(mean_density=0.005, seed=seed + 3).trace(duration, dt)
    return Environment(
        {
            SourceType.LIGHT: light,
            SourceType.VIBRATION: vib,
            SourceType.THERMAL: thermal,
            SourceType.RF: rf,
        },
        name="indoor-industrial",
    )


@register("environment", "agricultural")
def agricultural_environment(duration: float = 7 * DAY, dt: float = 60.0, *,
                             cloudiness: float = 0.25, mean_wind: float = 4.0,
                             flow_speed: float = 1.0, seed: int = 0) -> Environment:
    """Agricultural site (System D's target): sun, wind, irrigation flow."""
    solar = SolarModel(cloudiness=cloudiness, seed=seed).trace(duration, dt)
    wind = WindModel(mean_speed=mean_wind, seed=seed + 1).trace(duration, dt)
    water = IrrigationFlowModel(flow_speed=flow_speed, seed=seed + 2).trace(duration, dt)
    return Environment(
        {SourceType.LIGHT: solar, SourceType.WIND: wind, SourceType.WATER_FLOW: water},
        name="agricultural",
    )


@register("environment", "urban-rf")
def urban_rf_environment(duration: float = 7 * DAY, dt: float = 60.0, *,
                         work_lux: float = 300.0, broadcast_density: float = 0.01,
                         seed: int = 0) -> Environment:
    """Urban indoor site for RF-centric commercial kits (systems E/F/G)."""
    light = OfficeLightingModel(work_lux=work_lux, seed=seed).trace(duration, dt)
    broadcast = BroadcastRFModel(mean_density=broadcast_density,
                                 seed=seed + 1).trace(duration, dt)
    reader = ReaderRFModel(seed=seed + 2).trace(duration, dt)
    vib = MachineVibrationModel(accel_rms=0.8, shift_hours=(0.0, 24.0),
                                run_fraction=0.5, seed=seed + 3).trace(duration, dt)
    return Environment(
        {
            SourceType.LIGHT: light,
            SourceType.RF: broadcast + reader,
            SourceType.VIBRATION: vib,
        },
        name="urban-rf",
    )
