"""Synthetic vibration traces for piezoelectric / electromagnetic harvesting.

Vibration harvesters appear in systems B, E, F and G of Table I. Industrial
vibration sources (the indoor monitoring scenario that motivates System B)
are dominated by rotating machinery: a strong narrowband component at the
machine's running frequency whose *amplitude* follows the machine duty
schedule. Resonant harvesters (see :mod:`repro.harvesters.piezoelectric`)
care about both the acceleration amplitude and how far the excitation
frequency sits from their resonance, so the generator produces a pair of
traces: RMS acceleration amplitude and instantaneous dominant frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import Trace

__all__ = ["MachineVibrationModel", "VibrationProfile", "vibration_trace"]

DAY = 86_400.0


@dataclass(frozen=True)
class VibrationProfile:
    """Paired amplitude/frequency traces describing a vibration source."""

    acceleration: Trace  # RMS acceleration amplitude, m/s^2
    frequency: Trace     # dominant excitation frequency, Hz

    def __post_init__(self):
        if len(self.acceleration) != len(self.frequency):
            raise ValueError("acceleration and frequency traces must align")
        if abs(self.acceleration.dt - self.frequency.dt) > 1e-12:
            raise ValueError("acceleration and frequency traces must share dt")


class MachineVibrationModel:
    """Vibration from duty-cycled rotating machinery.

    Parameters
    ----------
    accel_rms:
        RMS acceleration while the machine runs, m/s^2 (industrial motors:
        0.5-10).
    base_frequency:
        Nominal running frequency, Hz (50/60 Hz mains machinery and
        multiples are common; default 50).
    frequency_drift:
        Relative slow drift of the running frequency (load changes).
    shift_hours:
        ``(start, end)`` local hours of the work shift.
    run_fraction:
        Fraction of shift time the machine runs.
    seed:
        RNG seed.
    """

    def __init__(self, accel_rms: float = 2.0, base_frequency: float = 50.0,
                 frequency_drift: float = 0.02, shift_hours: tuple = (7.0, 19.0),
                 run_fraction: float = 0.7, seed: int = 0):
        if accel_rms < 0:
            raise ValueError("accel_rms must be non-negative")
        if base_frequency <= 0:
            raise ValueError("base_frequency must be positive")
        if not 0.0 <= run_fraction <= 1.0:
            raise ValueError("run_fraction must be in [0, 1]")
        self.accel_rms = accel_rms
        self.base_frequency = base_frequency
        self.frequency_drift = frequency_drift
        self.shift_hours = shift_hours
        self.run_fraction = run_fraction
        self.seed = seed

    def profile(self, duration: float, dt: float = 60.0) -> VibrationProfile:
        """Generate paired amplitude/frequency traces."""
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        accel = np.zeros(n)
        freq = np.full(n, self.base_frequency)

        running = False
        p_toggle = dt / 1800.0
        lo, hi = self.shift_hours
        f = self.base_frequency
        for i in range(n):
            hour = ((i * dt) % DAY) / 3600.0
            in_shift = lo <= hour <= hi
            if not in_shift:
                running = False
            elif rng.random() < p_toggle:
                running = rng.random() < self.run_fraction
            if running:
                accel[i] = max(0.0, self.accel_rms * (1.0 + 0.1 * rng.standard_normal()))
                f += self.frequency_drift * self.base_frequency * \
                    rng.standard_normal() * (dt / 3600.0) ** 0.5
                f = min(max(f, 0.9 * self.base_frequency), 1.1 * self.base_frequency)
            freq[i] = f

        return VibrationProfile(
            acceleration=Trace(accel, dt, name="acceleration", units="m/s^2"),
            frequency=Trace(freq, dt, name="frequency", units="Hz"),
        )

    def trace(self, duration: float, dt: float = 60.0) -> Trace:
        """Amplitude-only trace (frequency assumed pinned at nominal)."""
        return self.profile(duration, dt).acceleration


def vibration_trace(duration: float, dt: float = 60.0, *,
                    accel_rms: float = 2.0, base_frequency: float = 50.0,
                    seed: int = 0) -> Trace:
    """Convenience wrapper: amplitude trace from a machine vibration model."""
    return MachineVibrationModel(
        accel_rms=accel_rms, base_frequency=base_frequency, seed=seed
    ).trace(duration, dt)
