"""Synthetic indoor lighting traces.

System B in the survey ("Plug-and-Play Architecture", Fig. 2) targets
*indoor* industrial monitoring with a <1 mW budget. Indoor light differs
from outdoor sun in ways that drive the survey's trade-off discussion:
levels are 2-3 orders of magnitude lower (hundreds of lux, i.e. roughly
0.1-5 W/m^2 of harvestable irradiance), follow occupancy schedules rather
than solar geometry, and switch between discrete levels (lights on/off)
rather than ramping. At these power levels the quiescent overhead of MPPT
can exceed its benefit — the crossover probed by experiment E5.
"""

from __future__ import annotations

import numpy as np

from .trace import Trace

__all__ = ["OfficeLightingModel", "indoor_light_trace", "lux_to_irradiance"]

DAY = 86_400.0
WEEK = 7 * DAY

#: Approximate conversion for white LED/fluorescent office light.
#: 1 W/m^2 of visible irradiance is roughly 120 lux for these spectra.
LUX_PER_W_M2 = 120.0


def lux_to_irradiance(lux: float) -> float:
    """Convert illuminance (lux) to approximate irradiance (W/m^2)."""
    if lux < 0:
        raise ValueError(f"lux must be non-negative, got {lux}")
    return lux / LUX_PER_W_M2


class OfficeLightingModel:
    """Occupancy-scheduled indoor lighting.

    Weekday pattern: lights on from ``on_hour`` to ``off_hour`` with small
    random jitter per day, occasional lunchtime dimming, and rare after-hours
    activity. Weekends are mostly dark with sporadic short visits. A constant
    ``ambient_lux`` models daylight spill through windows during daytime.

    Parameters
    ----------
    work_lux:
        Illuminance at the node while lights are on (typical office: 300-500).
    ambient_lux:
        Daytime window-spill illuminance when lights are off.
    on_hour / off_hour:
        Nominal lighting schedule (local hours, 0-24).
    seed:
        RNG seed.
    """

    def __init__(self, work_lux: float = 400.0, ambient_lux: float = 50.0,
                 on_hour: float = 8.0, off_hour: float = 18.0, seed: int = 0):
        if not 0 <= on_hour < off_hour <= 24:
            raise ValueError("need 0 <= on_hour < off_hour <= 24")
        if work_lux < 0 or ambient_lux < 0:
            raise ValueError("lux levels must be non-negative")
        self.work_lux = work_lux
        self.ambient_lux = ambient_lux
        self.on_hour = on_hour
        self.off_hour = off_hour
        self.seed = seed

    def trace(self, duration: float, dt: float = 60.0,
              start_weekday: int = 0) -> Trace:
        """Generate an irradiance trace (W/m^2 at the harvester).

        Parameters
        ----------
        duration:
            Trace length, seconds.
        dt:
            Timestep, seconds.
        start_weekday:
            Weekday of t=0 (0=Monday .. 6=Sunday).
        """
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        values = np.zeros(n)

        n_days = int(np.ceil(duration / DAY)) + 1
        # Per-day jittered schedule (arrival/departure vary ~20 min).
        on_jitter = rng.normal(0.0, 1 / 3, size=n_days)
        off_jitter = rng.normal(0.0, 1 / 3, size=n_days)

        for i in range(n):
            t = i * dt
            day = int(t // DAY)
            weekday = (start_weekday + day) % 7
            hour = (t % DAY) / 3600.0

            daylight = self.ambient_lux if 7.0 <= hour <= 19.0 else 0.0

            if weekday < 5:
                on_h = self.on_hour + on_jitter[day]
                off_h = self.off_hour + off_jitter[day]
                lit = on_h <= hour <= off_h
                # Lunchtime dimming on ~30 % of days.
                if lit and 12.0 <= hour <= 13.0 and rng.random() < 0.3 * dt / 3600.0:
                    lit = False
                # Rare after-hours work (cleaning, overtime).
                if not lit and 18.0 < hour < 22.0 and rng.random() < 0.02 * dt / 3600.0:
                    lit = True
            else:
                # Weekend: sporadic short visits.
                lit = rng.random() < 0.01 * dt / 3600.0

            lux = (self.work_lux if lit else 0.0) + daylight
            values[i] = lux_to_irradiance(lux)

        return Trace(values, dt, name="irradiance", units="W/m^2")


def indoor_light_trace(duration: float, dt: float = 60.0, *,
                       work_lux: float = 400.0, ambient_lux: float = 50.0,
                       seed: int = 0) -> Trace:
    """Convenience wrapper building an :class:`OfficeLightingModel` trace."""
    return OfficeLightingModel(
        work_lux=work_lux, ambient_lux=ambient_lux, seed=seed
    ).trace(duration, dt)
