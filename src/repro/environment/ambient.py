"""Ambient condition channels shared between environments and harvesters.

The survey classifies systems by the energy *sources* they can exploit
(Table I "Harvesters" row: light, wind, thermal, vibration, piezo/mech,
radio, water flow, generic AC/DC). Each source type corresponds to one
ambient channel with a physical unit; an environment is a bundle of channel
traces, and each harvester subscribes to exactly one channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .trace import Trace

__all__ = ["SourceType", "AmbientSample", "Environment"]


class SourceType(enum.Enum):
    """Physical energy source categories used throughout the library.

    The values name the ambient quantity each harvester transduces, matching
    the harvester types enumerated in Table I of the survey.
    """

    LIGHT = "light"                  # irradiance, W/m^2
    WIND = "wind"                    # wind speed, m/s
    THERMAL = "thermal"              # temperature difference, K
    VIBRATION = "vibration"          # acceleration amplitude, m/s^2
    RF = "rf"                        # incident RF power density, W/m^2
    WATER_FLOW = "water_flow"        # water flow speed, m/s
    MECHANICAL = "mechanical"        # direct mechanical strain events, m/s^2
    AC_GENERIC = "ac_generic"        # generic AC source voltage, V

    @property
    def units(self) -> str:
        return _UNITS[self]


_UNITS = {
    SourceType.LIGHT: "W/m^2",
    SourceType.WIND: "m/s",
    SourceType.THERMAL: "K",
    SourceType.VIBRATION: "m/s^2",
    SourceType.RF: "W/m^2",
    SourceType.WATER_FLOW: "m/s",
    SourceType.MECHANICAL: "m/s^2",
    SourceType.AC_GENERIC: "V",
}


@dataclass(frozen=True)
class AmbientSample:
    """Snapshot of all ambient channels at one instant.

    Channels not present in the environment read as 0.0, which every
    harvester model maps to zero harvestable power.
    """

    channels: dict = field(default_factory=dict)

    def get(self, source: SourceType) -> float:
        return float(self.channels.get(source, 0.0))

    def with_channel(self, source: SourceType, value: float) -> "AmbientSample":
        merged = dict(self.channels)
        merged[source] = float(value)
        return AmbientSample(merged)


class Environment:
    """A deployment environment: a bundle of ambient channel traces.

    Parameters
    ----------
    channels:
        Mapping of :class:`SourceType` to :class:`Trace`. All traces must
        share the same timestep; lengths may differ (shorter channels hold
        their final value, mirroring :meth:`Trace.at`).
    name:
        Label used in experiment reports (e.g. ``"outdoor-temperate"``).
    """

    def __init__(self, channels: dict, name: str = "environment"):
        self.name = name
        self._channels: dict = {}
        dt = None
        for source, trace in channels.items():
            if not isinstance(source, SourceType):
                raise TypeError(f"channel keys must be SourceType, got {source!r}")
            if dt is None:
                dt = trace.dt
            elif abs(trace.dt - dt) > 1e-12:
                raise ValueError(
                    f"all channel traces must share dt; {source} has {trace.dt}, expected {dt}"
                )
            self._channels[source] = trace
        self._dt = dt if dt is not None else 1.0

    @property
    def dt(self) -> float:
        return self._dt

    @property
    def duration(self) -> float:
        """Duration of the longest channel, in seconds."""
        if not self._channels:
            return 0.0
        return max(trace.duration for trace in self._channels.values())

    @property
    def sources(self) -> tuple:
        return tuple(self._channels.keys())

    def trace(self, source: SourceType) -> Trace:
        """The raw trace for one channel (KeyError if absent)."""
        return self._channels[source]

    def has(self, source: SourceType) -> bool:
        return source in self._channels

    def sample(self, t: float) -> AmbientSample:
        """All channel values at time ``t`` seconds."""
        return AmbientSample(
            {source: trace.at(t) for source, trace in self._channels.items()}
        )

    def merged_with(self, other: "Environment", name: str | None = None) -> "Environment":
        """Combine two environments; ``other`` wins on overlapping channels."""
        channels = dict(self._channels)
        channels.update({s: other.trace(s) for s in other.sources})
        return Environment(channels, name=name or f"{self.name}+{other.name}")

    def __repr__(self) -> str:
        srcs = ", ".join(s.value for s in self._channels)
        return f"Environment({self.name!r}, channels=[{srcs}], dt={self._dt})"
