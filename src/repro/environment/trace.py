"""Time-series container for environmental and electrical quantities.

Every synthetic environment generator in :mod:`repro.environment` produces a
:class:`Trace`: a uniformly-sampled time series with an explicit timestep.
Traces support the arithmetic needed by the experiment harnesses (sums of
power flows, clipping, integration to energy) and resampling so that traces
generated at different resolutions can drive the same simulation.

The survey's claims are about *temporal availability* of energy ("energy
availability can be a temporal as well as spatial effect", Sec. I), so the
trace abstraction is the foundation of the whole reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Trace", "TIME_INDEX_EPS", "time_to_index"]

#: Relative tolerance used when mapping an absolute time to a sample index.
#: ``t / dt`` lands a few ULPs below an exact integer whenever ``t`` was
#: accumulated in floating point (e.g. ``3 * 1.0 -> 2.9999999999999996``),
#: and plain truncation then returns the *previous* sample. Nudging by this
#: epsilon before flooring makes exact step boundaries deterministic.
TIME_INDEX_EPS = 1e-9


def time_to_index(t: float, dt: float) -> int:
    """Sample index covering absolute time ``t`` for timestep ``dt``.

    Uses a tolerance-aware floor so times that are mathematically exact
    step boundaries (but a few ULPs off in floating point) map to the
    boundary sample rather than the one before it.
    """
    return int(math.floor(t / dt + TIME_INDEX_EPS))


@dataclass
class Trace:
    """A uniformly-sampled time series.

    Parameters
    ----------
    values:
        Sample values, one per timestep. Stored as a float64 numpy array.
    dt:
        Timestep in seconds between consecutive samples.
    name:
        Optional label used in reports (e.g. ``"irradiance"``).
    units:
        Optional unit string used in reports (e.g. ``"W/m^2"``).
    """

    values: np.ndarray
    dt: float
    name: str = ""
    units: str = ""

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise ValueError(f"Trace values must be 1-D, got shape {self.values.shape}")
        if self.dt <= 0:
            raise ValueError(f"Trace dt must be positive, got {self.dt}")

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index):
        return self.values[index]

    @property
    def duration(self) -> float:
        """Total covered time in seconds."""
        return len(self.values) * self.dt

    @property
    def times(self) -> np.ndarray:
        """Sample times in seconds (start of each step)."""
        return np.arange(len(self.values)) * self.dt

    def at(self, t: float) -> float:
        """Value at absolute time ``t`` seconds (zero-order hold).

        Times beyond the end of the trace return the last sample, so a short
        trace can drive a longer simulation tail deterministically.
        """
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        if len(self.values) == 0:
            raise ValueError("cannot sample an empty trace")
        idx = min(time_to_index(t, self.dt), len(self.values) - 1)
        return float(self.values[idx])

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other, op, name: str) -> "Trace":
        if isinstance(other, Trace):
            if abs(other.dt - self.dt) > 1e-12:
                raise ValueError(
                    f"traces have mismatched dt ({self.dt} vs {other.dt}); resample first"
                )
            if len(other) != len(self):
                raise ValueError(
                    f"traces have mismatched length ({len(self)} vs {len(other)})"
                )
            vals = op(self.values, other.values)
        else:
            vals = op(self.values, float(other))
        return Trace(vals, self.dt, name=name or self.name, units=self.units)

    def __add__(self, other) -> "Trace":
        return self._binary(other, np.add, self.name)

    __radd__ = __add__

    def __sub__(self, other) -> "Trace":
        return self._binary(other, np.subtract, self.name)

    def __mul__(self, other) -> "Trace":
        return self._binary(other, np.multiply, self.name)

    __rmul__ = __mul__

    def clip(self, lo: float = 0.0, hi: float | None = None) -> "Trace":
        """Return a copy clipped to ``[lo, hi]``."""
        vals = np.clip(self.values, lo, hi if hi is not None else np.inf)
        return Trace(vals, self.dt, name=self.name, units=self.units)

    def scaled(self, factor: float) -> "Trace":
        """Return a copy with every sample multiplied by ``factor``."""
        return Trace(self.values * factor, self.dt, name=self.name, units=self.units)

    # ------------------------------------------------------------------
    # Statistics and integration
    # ------------------------------------------------------------------
    def integral(self) -> float:
        """Rectangle-rule integral (e.g. power trace -> energy in joules)."""
        return float(np.sum(self.values) * self.dt)

    def mean(self) -> float:
        return float(np.mean(self.values)) if len(self.values) else 0.0

    def max(self) -> float:
        return float(np.max(self.values)) if len(self.values) else 0.0

    def min(self) -> float:
        return float(np.min(self.values)) if len(self.values) else 0.0

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold``.

        Used for the survey's "hours per day with energy available" style
        metrics (Sec. I: multiple harvesters generate "for a longer period
        per day").
        """
        if len(self.values) == 0:
            return 0.0
        return float(np.mean(self.values > threshold))

    # ------------------------------------------------------------------
    # Resampling and slicing
    # ------------------------------------------------------------------
    def resample(self, new_dt: float) -> "Trace":
        """Resample to a new timestep with zero-order hold / block averaging.

        Upsampling repeats samples; downsampling averages whole blocks so
        that the integral is preserved up to boundary effects.
        """
        if new_dt <= 0:
            raise ValueError(f"new_dt must be positive, got {new_dt}")
        if abs(new_dt - self.dt) < 1e-12:
            return Trace(self.values.copy(), self.dt, name=self.name, units=self.units)
        n_new = max(1, int(round(self.duration / new_dt)))
        # Positions of the new sample mid-points in old-index space.
        old_t = self.times
        new_t = np.arange(n_new) * new_dt
        if new_dt < self.dt:
            idx = np.minimum(
                np.floor(new_t / self.dt + TIME_INDEX_EPS).astype(int),
                len(self.values) - 1)
            vals = self.values[idx]
        else:
            ratio = new_dt / self.dt
            vals = np.empty(n_new)
            for i in range(n_new):
                lo = int(round(i * ratio))
                hi = min(int(round((i + 1) * ratio)), len(self.values))
                block = self.values[lo:hi] if hi > lo else self.values[lo : lo + 1]
                vals[i] = block.mean()
        return Trace(vals, new_dt, name=self.name, units=self.units)

    def slice_time(self, t_start: float, t_end: float) -> "Trace":
        """Return the sub-trace covering ``[t_start, t_end)`` seconds."""
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        i0 = max(0, time_to_index(t_start, self.dt))
        i1 = min(len(self.values),
                 int(math.ceil(t_end / self.dt - TIME_INDEX_EPS)))
        return Trace(self.values[i0:i1].copy(), self.dt, name=self.name, units=self.units)

    @classmethod
    def constant(cls, value: float, duration: float, dt: float = 1.0,
                 name: str = "", units: str = "") -> "Trace":
        """A constant-valued trace of the given duration."""
        n = max(1, int(round(duration / dt)))
        return cls(np.full(n, float(value)), dt, name=name, units=units)

    @classmethod
    def zeros(cls, duration: float, dt: float = 1.0,
              name: str = "", units: str = "") -> "Trace":
        """An all-zero trace of the given duration."""
        return cls.constant(0.0, duration, dt, name=name, units=units)
