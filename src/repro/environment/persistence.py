"""Trace and environment persistence.

Real deployments are evaluated against *recorded* ambient traces (the
survey's systems were all validated in specific physical deployments).
These helpers let users capture synthetic traces to disk — or import
measured ones — and rerun experiments against the exact same input:

* :func:`save_trace` / :func:`load_trace` — one trace, ``.npz``.
* :func:`save_environment` / :func:`load_environment` — a full channel
  bundle with its metadata, one ``.npz`` per environment.
* :func:`trace_from_csv` — import measured data (``time,value`` rows with
  arbitrary, possibly irregular timestamps; resampled onto a uniform
  grid by zero-order hold).
"""

from __future__ import annotations

import csv
import io
import os

import numpy as np

from .ambient import Environment, SourceType
from .trace import Trace

__all__ = [
    "save_trace",
    "load_trace",
    "save_environment",
    "load_environment",
    "trace_from_csv",
]


def save_trace(trace: Trace, path) -> None:
    """Persist one trace to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        values=trace.values,
        dt=np.float64(trace.dt),
        name=np.str_(trace.name),
        units=np.str_(trace.units),
    )


def load_trace(path) -> Trace:
    """Inverse of :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        return Trace(
            values=data["values"],
            dt=float(data["dt"]),
            name=str(data["name"]),
            units=str(data["units"]),
        )


def save_environment(environment: Environment, path) -> None:
    """Persist an environment's channels and metadata to ``path`` (.npz)."""
    payload = {"__name__": np.str_(environment.name),
               "__dt__": np.float64(environment.dt)}
    for source in environment.sources:
        payload[f"channel:{source.value}"] = environment.trace(source).values
    np.savez_compressed(path, **payload)


def load_environment(path) -> Environment:
    """Inverse of :func:`save_environment`."""
    with np.load(path, allow_pickle=False) as data:
        name = str(data["__name__"])
        dt = float(data["__dt__"])
        channels = {}
        for key in data.files:
            if not key.startswith("channel:"):
                continue
            source = SourceType(key.split(":", 1)[1])
            channels[source] = Trace(data[key], dt, name=source.value,
                                     units=source.units)
    return Environment(channels, name=name)


def trace_from_csv(source, dt: float, name: str = "", units: str = "",
                   time_column: str = "time",
                   value_column: str = "value") -> Trace:
    """Build a uniform trace from ``time,value`` CSV data.

    Parameters
    ----------
    source:
        File path or text-mode file object.
    dt:
        Target uniform timestep, seconds.
    time_column / value_column:
        Column names in the CSV header. Times are seconds from an
        arbitrary origin and need not be uniform; values between samples
        follow zero-order hold.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if isinstance(source, (str, os.PathLike)):
        with open(source, newline="") as handle:
            rows = _read_rows(handle, time_column, value_column)
    elif isinstance(source, io.TextIOBase):
        rows = _read_rows(source, time_column, value_column)
    else:
        raise TypeError("source must be a path or a text file object")
    if not rows:
        raise ValueError("CSV contains no data rows")

    rows.sort(key=lambda r: r[0])
    t0 = rows[0][0]
    t_end = rows[-1][0]
    n = max(1, int(round((t_end - t0) / dt)) + 1)
    values = np.empty(n)
    j = 0
    current = rows[0][1]
    for i in range(n):
        t = t0 + i * dt
        while j + 1 < len(rows) and rows[j + 1][0] <= t:
            j += 1
            current = rows[j][1]
        values[i] = current
    return Trace(values, dt, name=name, units=units)


def _read_rows(handle, time_column: str, value_column: str) -> list:
    reader = csv.DictReader(handle)
    if reader.fieldnames is None or time_column not in reader.fieldnames \
            or value_column not in reader.fieldnames:
        raise ValueError(
            f"CSV must have columns {time_column!r} and {value_column!r}; "
            f"found {reader.fieldnames}"
        )
    rows = []
    for record in reader:
        try:
            rows.append((float(record[time_column]),
                         float(record[value_column])))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed CSV row {record!r}: {exc}") from exc
    return rows
