"""Synthetic water-flow traces.

Water flow is the third source of System D (MPWiNode, Morais et al. —
"Sun, wind and water flow as energy supply for small stationary data
acquisition platforms", an agricultural irrigation platform). Flow in an
irrigation channel is scheduled: long on/off cycles tied to watering
periods, plus seasonal base flow in natural streams.
"""

from __future__ import annotations

import numpy as np

from .trace import Trace

__all__ = ["IrrigationFlowModel", "StreamFlowModel", "water_flow_trace"]

DAY = 86_400.0


class IrrigationFlowModel:
    """Scheduled irrigation channel flow.

    Parameters
    ----------
    flow_speed:
        Water speed while irrigation runs, m/s.
    windows:
        Daily watering windows as ``(start_hour, end_hour)`` tuples
        (default: early morning and evening watering).
    skip_probability:
        Probability any given window is skipped (rain days etc.).
    seed:
        RNG seed.
    """

    def __init__(self, flow_speed: float = 1.0,
                 windows: tuple = ((5.0, 8.0), (18.0, 21.0)),
                 skip_probability: float = 0.2, seed: int = 0):
        if flow_speed < 0:
            raise ValueError("flow_speed must be non-negative")
        if not 0.0 <= skip_probability <= 1.0:
            raise ValueError("skip_probability must be in [0, 1]")
        for lo, hi in windows:
            if not 0 <= lo < hi <= 24:
                raise ValueError(f"invalid window ({lo}, {hi})")
        self.flow_speed = flow_speed
        self.windows = tuple(windows)
        self.skip_probability = skip_probability
        self.seed = seed

    def trace(self, duration: float, dt: float = 60.0) -> Trace:
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        n_days = int(np.ceil(duration / DAY)) + 1
        # Decide per-day, per-window whether irrigation happens.
        active = rng.random((n_days, len(self.windows))) >= self.skip_probability

        values = np.zeros(n)
        for i in range(n):
            t = i * dt
            day = int(t // DAY)
            hour = (t % DAY) / 3600.0
            for w, (lo, hi) in enumerate(self.windows):
                if lo <= hour <= hi and active[day, w]:
                    ripple = 1.0 + 0.05 * rng.standard_normal()
                    values[i] = max(0.0, self.flow_speed * ripple)
                    break
        return Trace(values, dt, name="water_flow", units="m/s")


class StreamFlowModel:
    """Continuously flowing natural stream with slow level variation.

    Parameters
    ----------
    mean_speed:
        Long-run mean flow speed, m/s.
    variation:
        Relative amplitude of the slow (multi-day) variation.
    seed:
        RNG seed.
    """

    def __init__(self, mean_speed: float = 0.8, variation: float = 0.3,
                 seed: int = 0):
        if mean_speed < 0:
            raise ValueError("mean_speed must be non-negative")
        if not 0.0 <= variation < 1.0:
            raise ValueError("variation must be in [0, 1)")
        self.mean_speed = mean_speed
        self.variation = variation
        self.seed = seed

    def trace(self, duration: float, dt: float = 60.0) -> Trace:
        n = max(1, int(round(duration / dt)))
        rng = np.random.default_rng(self.seed)
        tau = 2 * DAY
        theta = min(1.0, dt / tau)
        x = rng.standard_normal()
        values = np.empty(n)
        for i in range(n):
            x += -theta * x + (2 * theta) ** 0.5 * rng.standard_normal()
            values[i] = max(0.0, self.mean_speed * (1.0 + self.variation * x * 0.5))
        return Trace(values, dt, name="water_flow", units="m/s")


def water_flow_trace(duration: float, dt: float = 60.0, *,
                     style: str = "irrigation", seed: int = 0, **kwargs) -> Trace:
    """Convenience dispatcher: ``style`` is ``"irrigation"`` or ``"stream"``."""
    if style == "irrigation":
        return IrrigationFlowModel(seed=seed, **kwargs).trace(duration, dt)
    if style == "stream":
        return StreamFlowModel(seed=seed, **kwargs).trace(duration, dt)
    raise ValueError(f"unknown water style {style!r}; use 'irrigation' or 'stream'")
