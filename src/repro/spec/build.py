"""Resolve declarative specs into live objects and execute them.

The other half of the spec layer: :mod:`repro.spec.specs` describes a
simulation as plain data; this module materializes and runs it.

* :func:`build` — any spec -> live object (system, environment, or bare
  component);
* :func:`run` — a :class:`~repro.spec.specs.RunSpec` -> a finished
  :class:`~repro.simulation.SimulationResult`;
* :func:`run_sweep` — a :class:`~repro.spec.specs.SweepSpec` -> a
  :class:`~repro.simulation.SweepResult` (process-parallel: specs are
  pure data, so no module-level factories are needed);
* :func:`spec_for` — the canonical :class:`SystemSpec` of a Table I
  letter, guaranteed to rebuild the exact platform of
  :func:`repro.systems.build_system`.

All repro imports happen lazily inside functions: component modules
import :mod:`repro.spec.registry` at class-definition time, so this
module must never import them back at import time.
"""

from __future__ import annotations

import dataclasses

from .registry import REGISTRY
from .specs import (
    ComponentSpec,
    EnvironmentSpec,
    MonteCarloSpec,
    RunSpec,
    SweepSpec,
    SystemSpec,
)

__all__ = [
    "build",
    "build_component",
    "build_environment",
    "run",
    "run_sweep",
    "run_montecarlo",
    "run_fleet",
    "spec_for",
    "to_scenario",
    "describe_registry",
]

_registered = False


def _ensure_registered() -> None:
    """Import every package that self-registers components.

    Registration happens at class-definition time via decorators; this
    forces those modules in so a bare ``import repro.spec`` suffices to
    resolve any canonical spec.
    """
    global _registered
    if _registered:
        return
    # Import every component package explicitly — relying on the system
    # modules' transitive imports would silently skip any component that
    # no surveyed platform happens to use yet.
    from .. import (  # noqa: F401
        conditioning,
        core,
        environment,
        harvesters,
        load,
        storage,
        systems,
    )
    _registered = True


def _resolve_params(params: dict) -> dict:
    """Recursively materialize nested component specs inside params."""
    return {key: _resolve_value(value) for key, value in params.items()}


def _resolve_value(value):
    if isinstance(value, ComponentSpec):
        return build_component(value)
    if isinstance(value, dict):
        return {key: _resolve_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_resolve_value(item) for item in value]
    return value


def build_component(spec: ComponentSpec):
    """Materialize one registered component from its spec."""
    _ensure_registered()
    factory = REGISTRY.get(spec.category, spec.type)
    return factory(**_resolve_params(spec.params))


def build_environment(spec: EnvironmentSpec, *, seed: int | None = None):
    """Materialize an :class:`~repro.environment.Environment`.

    ``seed`` (when given) overrides the spec's own seed — how sweeps
    inject deterministic per-scenario seeding.
    """
    _ensure_registered()
    factory = REGISTRY.get("environment", spec.environment)
    return factory(**_resolve_params(spec.factory_kwargs(seed=seed)))


def build(spec):
    """Materialize any spec into the live object it describes.

    * :class:`SystemSpec` -> :class:`~repro.core.MultiSourceSystem`
    * :class:`EnvironmentSpec` -> :class:`~repro.environment.Environment`
    * :class:`ComponentSpec` -> the registered component

    :class:`RunSpec` / :class:`SweepSpec` describe *executions*, not
    single objects — use :func:`run` / :func:`run_sweep` for those.
    """
    if isinstance(spec, SystemSpec):
        _ensure_registered()
        factory = REGISTRY.get("system", spec.system)
        system = factory(**_resolve_params(spec.params))
        # Stamp the canonical spec identity on the instance: the codegen
        # tier keys its compile cache on this exact hash (see
        # repro.simulation.kernel.codegen), so spec-built systems are
        # compile-once-run-many across replicates and CLI invocations —
        # and `repro spec --hash` prints the same value by construction.
        from .canonical import spec_hash
        system._codegen_spec_hash = spec_hash(spec)
        return system
    if isinstance(spec, EnvironmentSpec):
        return build_environment(spec)
    if isinstance(spec, ComponentSpec):
        return build_component(spec)
    if isinstance(spec, (RunSpec, SweepSpec)):
        raise TypeError(f"{type(spec).__name__} describes an execution; "
                        f"use repro.spec.run()/run_sweep() instead of build()")
    raise TypeError(f"cannot build {spec!r}; expected a SystemSpec, "
                    f"EnvironmentSpec, or ComponentSpec")


def spec_for(letter: str, **overrides) -> SystemSpec:
    """Canonical spec of a surveyed platform by its Table I letter.

    ``build(spec_for("C"))`` is the same platform as
    ``build_system("C")`` — bit-identical under simulation. Keyword
    overrides flow into the builder (e.g. ``initial_soc=0.8``).
    """
    _ensure_registered()
    from ..systems.registry import spec_for as _system_spec_for
    return _system_spec_for(letter, **overrides)


def run(spec: RunSpec, *, fast=None):
    """Execute one run spec; returns a
    :class:`~repro.simulation.SimulationResult`."""
    from ..simulation.engine import simulate
    if not isinstance(spec, RunSpec):
        raise TypeError(f"run() takes a RunSpec, got {type(spec).__name__}")
    system = build(spec.system)
    environment = build_environment(spec.environment, seed=spec.seed)
    return simulate(system, environment, duration=spec.duration,
                    dt=spec.dt, fast=spec.fast if fast is None else fast)


def to_scenario(spec: RunSpec):
    """One run spec as a :class:`~repro.simulation.ScenarioSpec` row.

    The scenario carries the specs themselves (plain data), so the
    resulting sweep payload pickles across process boundaries without
    module-level factory functions.
    """
    from ..simulation.sweep import ScenarioSpec
    params = dict(spec.params) or {
        "system": spec.system.system,
        "environment": spec.environment.environment,
    }
    return ScenarioSpec(
        name=spec.label,
        system=spec.system,
        environment=spec.environment,
        duration=spec.duration,
        dt=spec.dt,
        seed=spec.seed,
        params=params,
        fast=spec.fast,
    )


def run_sweep(spec: SweepSpec, *, processes: int | None = None, fast=None,
              batch="auto", catalog=None):
    """Execute every run of a sweep spec via
    :class:`~repro.simulation.SweepRunner`; returns a
    :class:`~repro.simulation.SweepResult` in input order.

    ``fast`` (when given) overrides the engine-path selection of every
    scenario — how the CLI's ``--fast on/off`` reaches a sweep.
    ``batch`` selects the lockstep batched tier (``"auto"``/``True``/
    ``False``, see :class:`~repro.simulation.SweepRunner`). ``catalog``
    (a :class:`~repro.catalog.Catalog`) enables the dedup cache and
    per-scenario checkpointing.
    """
    from ..simulation.sweep import SweepRunner
    if not isinstance(spec, SweepSpec):
        raise TypeError(f"run_sweep() takes a SweepSpec, "
                        f"got {type(spec).__name__}")
    effective = spec.processes if processes is None else processes
    runner = SweepRunner(processes=effective,
                         fast=spec.fast if fast is None else fast,
                         batch=batch, catalog=catalog)
    scenarios = [to_scenario(run_spec) for run_spec in spec.runs]
    if fast is not None:
        scenarios = [dataclasses.replace(s, fast=fast) for s in scenarios]
    return runner.run(scenarios)


def run_montecarlo(spec: MonteCarloSpec, *, tier: str = "auto",
                   processes: int | None = None, fast=None, catalog=None):
    """Execute a Monte Carlo spec via
    :func:`repro.simulation.montecarlo.run_ensemble`; returns an
    :class:`~repro.simulation.EnsembleResult`.

    ``tier`` pins the execution tier (``"auto"`` / ``"batched"`` /
    ``"multiprocessing"`` / ``"in-process"``); ``fast`` (when given)
    overrides the engine-path selection of every replicate; ``catalog``
    enables per-replicate dedup and checkpointing.
    """
    from ..simulation.montecarlo import run_ensemble
    if not isinstance(spec, MonteCarloSpec):
        raise TypeError(f"run_montecarlo() takes a MonteCarloSpec, "
                        f"got {type(spec).__name__}")
    return run_ensemble(spec, tier=tier, processes=processes,
                        fast="auto" if fast is None else fast,
                        catalog=catalog)


def run_fleet(spec, *, tier: str = "auto", processes: int | None = None,
              fast=None, catalog=None):
    """Execute a :class:`~repro.spec.specs.FleetSpec` via
    :func:`repro.fleet.run_fleet`; returns a
    :class:`~repro.fleet.FleetResult`.

    Same knobs as :func:`run_montecarlo`: ``tier`` pins the execution
    tier, ``fast`` overrides every node's engine path, ``catalog``
    dedups the derived per-node scenarios.
    """
    from ..fleet import run_fleet as _run_fleet
    from .specs import FleetSpec
    if not isinstance(spec, FleetSpec):
        raise TypeError(f"run_fleet() takes a FleetSpec, "
                        f"got {type(spec).__name__}")
    return _run_fleet(spec, tier=tier, processes=processes, fast=fast,
                      catalog=catalog)


def describe_registry(category: str | None = None) -> dict:
    """JSON-able catalog of every registered component."""
    _ensure_registered()
    return REGISTRY.describe(category)
