"""Canonical spec serialization: one byte representation, one hash.

Every spec in :mod:`repro.spec.specs` serializes through this module, so
there is exactly one definition of "the bytes of a spec":

* :func:`canonical_dumps` — the canonical JSON *text* (sorted keys,
  strict floats, no NaN); ``indent`` is presentation only and does not
  change what the document says;
* :func:`canonical_bytes` — the canonical UTF-8 byte string (compact
  indent-free form) that content addressing is defined over;
* :func:`spec_hash` — SHA-256 hex digest of :func:`canonical_bytes`,
  the identity the :mod:`repro.catalog` store keys specs by.

The hash contract: two specs hash identically iff they describe the same
simulation. ``sort_keys`` makes the hash invariant under dict key
ordering, and because JSON numbers parse to IEEE-754 doubles before they
are re-serialized with Python's shortest round-trip ``repr``, it is also
invariant under float *formatting* (``0.5`` vs ``0.50`` vs ``5e-1`` in a
config file all hash the same). Anything that changes the simulation —
a parameter value, a seed, a component type — changes the bytes and
therefore the hash.

This module never imports the rest of the package (the spec layer's
standing rule), so hashing a spec can never drag in simulation code.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_dumps", "canonical_bytes", "spec_hash"]


def _coerce_scalar(value):
    """Last-resort encoder hook: numpy scalars -> native Python scalars.

    ``json.dumps`` rejects ``np.int64``/``np.bool_`` outright (they are
    not ``int``/``bool`` subclasses), so a spec params tree that picked
    up numpy values from an analysis sweep would crash — or, worse,
    serialize through a repr that is not canonical JSON, silently
    splitting the spec-hash space. Zero-dimensional ``item()`` carriers
    collapse to the native scalar they wrap; everything else stays a
    ``TypeError``, loudly (no numpy import here — the spec layer stays
    dependency-free and the hook duck-types on the scalar protocol).
    """
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", 0) == 0:
        native = item()
        if isinstance(native, (bool, int, float, str)):
            return native
    raise TypeError(f"Object of type {type(value).__name__} "
                    f"is not JSON serializable")


def _as_dict(spec) -> dict:
    """A spec (or an already-plain dict tree) as its dict form."""
    if isinstance(spec, dict):
        return spec
    to_dict = getattr(spec, "to_dict", None)
    if to_dict is None:
        raise TypeError(
            f"cannot canonicalize {type(spec).__name__}: expected a spec "
            f"with to_dict() or a plain dict tree")
    return to_dict()


def canonical_dumps(spec, indent: int | None = None) -> str:
    """The canonical JSON text of a spec.

    ``indent`` only affects whitespace; key order and number formatting
    are fixed (``sort_keys``, shortest round-trip float ``repr``), so an
    indented document parses back to byte-identical canonical form.
    """
    return json.dumps(_as_dict(spec), indent=indent, sort_keys=True,
                      allow_nan=False, default=_coerce_scalar)


def canonical_bytes(spec) -> bytes:
    """The canonical UTF-8 bytes of a spec — what content hashes cover."""
    return canonical_dumps(spec).encode("utf-8")


def spec_hash(spec) -> str:
    """SHA-256 hex digest of :func:`canonical_bytes`.

    The content address of a spec: invariant under dict key ordering and
    float formatting of the source document, sensitive to every value
    that describes the simulation.
    """
    return hashlib.sha256(canonical_bytes(spec)).hexdigest()
