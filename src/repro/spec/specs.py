"""Declarative simulation descriptions: frozen, JSON round-trippable specs.

These dataclasses are the single way to *describe* a simulation as plain
data, decoupled from the live objects that execute it:

* :class:`ComponentSpec` — one registered component plus constructor
  params (may nest further component specs);
* :class:`SystemSpec` — a registered system builder plus its knobs;
* :class:`EnvironmentSpec` — a registered environment factory plus
  duration/step/seed;
* :class:`RunSpec` — one complete simulation: system x environment x
  engine options;
* :class:`SweepSpec` — an ordered collection of runs for
  :class:`~repro.simulation.SweepRunner`;
* :class:`MonteCarloSpec` — one run expanded into an N-replicate
  Monte Carlo ensemble (see :mod:`repro.simulation.montecarlo`);
* :class:`FleetSpec` / :class:`FleetNodeSpec` — N nodes co-simulated on
  one shared ambient field with radio links (see :mod:`repro.fleet`).

Every spec round-trips through ``to_dict``/``from_dict`` and
``to_json``/``from_json`` losslessly; :func:`spec_from_dict` /
:func:`load_spec` dispatch on the embedded ``"kind"`` tag. Because specs
are pure data they pickle trivially, which is what lets process-parallel
sweeps accept them without module-level factory functions.

Specs never import the rest of the package — resolution to live objects
happens in :mod:`repro.spec.build`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .canonical import canonical_dumps

__all__ = [
    "ComponentSpec",
    "SystemSpec",
    "EnvironmentSpec",
    "RunSpec",
    "SweepSpec",
    "MonteCarloSpec",
    "FleetNodeSpec",
    "FleetSpec",
    "spec_from_dict",
    "load_spec",
]

#: Marker key identifying a nested component spec inside a params dict.
COMPONENT_TAG = "$component"


def _params_to_jsonable(value):
    """Params tree -> JSON-able tree (nested specs become tagged dicts)."""
    if isinstance(value, ComponentSpec):
        return {COMPONENT_TAG: value.to_dict(tagless=True)}
    if isinstance(value, dict):
        return {str(k): _params_to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_params_to_jsonable(item) for item in value]
    return value


def _params_from_jsonable(value):
    """Inverse of :func:`_params_to_jsonable`."""
    if isinstance(value, dict):
        if set(value) == {COMPONENT_TAG}:
            return ComponentSpec.from_dict(value[COMPONENT_TAG])
        return {k: _params_from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_params_from_jsonable(item) for item in value]
    return value


def _normalize_params(value):
    """Canonicalize a params tree at construction time.

    JSON has no tuples and only string keys, so sequences normalize to
    lists and dict keys to strings up front — otherwise a round-tripped
    spec would compare unequal to the authored one and factories would
    see different container types depending on whether the spec came
    from code or from a config file.
    """
    if isinstance(value, ComponentSpec):
        return value
    if isinstance(value, dict):
        return {str(key): _normalize_params(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize_params(item) for item in value]
    # Numpy scalars (np.float64 grid values, np.int64 indices) leak into
    # params from analysis sweeps; canonical JSON either rejects them
    # (np.int64) or risks non-canonical formatting, so they collapse to
    # the native scalar here — duck-typed on the 0-d ``item()`` protocol
    # to keep the spec layer free of a numpy import. The exact-type check
    # (not isinstance) also catches np.float64, which subclasses float
    # but should not reach factories or pickle as a numpy object.
    if type(value) not in (bool, int, float, str, bytes) and \
            value is not None:
        item = getattr(value, "item", None)
        if item is not None and getattr(value, "ndim", 0) == 0:
            native = item()
            if isinstance(native, (bool, int, float, str)):
                return native
    return value


def _checked_params(params, owner: str) -> dict:
    """Validate-and-normalize a spec's params at construction time."""
    if not isinstance(params, dict):
        raise TypeError(f"{owner} params must be a dict, "
                        f"got {type(params).__name__}: {params!r}")
    return _normalize_params(params)


class _JsonSpec:
    """Shared JSON plumbing for every spec type.

    Serialization routes through :mod:`repro.spec.canonical` so the JSON
    a spec emits and the bytes its content hash covers are the same
    single source of truth.
    """

    def to_json(self, indent: int = 2) -> str:
        return canonical_dumps(self, indent=indent)

    @classmethod
    def from_json(cls, text: str):
        data = json.loads(text)
        return cls.from_dict(data)

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")


def _expect_kind(data: dict, kind: str) -> None:
    if not isinstance(data, dict):
        raise TypeError(f"{kind} spec data must be a dict, "
                        f"got {type(data).__name__}: {data!r}")
    found = data.get("kind", kind)  # tag optional on input
    if found != kind:
        raise ValueError(f"expected a {kind!r} spec, got kind={found!r}")


@dataclass(frozen=True)
class ComponentSpec(_JsonSpec):
    """One registered component: ``(category, type)`` plus params.

    ``params`` values must be JSON primitives, lists/dicts of them, or
    nested :class:`ComponentSpec` instances (e.g. a manager spec carrying
    a custom duty-cycle controller).
    """

    category: str
    type: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.category or not isinstance(self.category, str):
            raise ValueError(f"category must be a non-empty string, "
                             f"got {self.category!r}")
        if not self.type or not isinstance(self.type, str):
            raise ValueError(f"type must be a non-empty string, "
                             f"got {self.type!r}")
        object.__setattr__(self, "params", _checked_params(self.params, "ComponentSpec"))

    def to_dict(self, tagless: bool = False) -> dict:
        data = {
            "category": self.category,
            "type": self.type,
            "params": _params_to_jsonable(self.params),
        }
        if not tagless:
            data["kind"] = "component"
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ComponentSpec":
        _expect_kind(data, "component")
        return cls(category=data["category"], type=data["type"],
                   params=_params_from_jsonable(data.get("params", {})))


@dataclass(frozen=True)
class SystemSpec(_JsonSpec):
    """A complete platform, as a registered system builder plus knobs.

    ``system`` names a factory registered under category ``"system"``
    (the seven Table I builders register as ``smart_power_unit``,
    ``plug_and_play``, ``ambimax``, ``mpwinode``, ``max17710_eval``,
    ``cymbet_eval``, ``ehlink``). ``params`` are the builder's keyword
    arguments; values may nest :class:`ComponentSpec` (e.g. a custom
    ``manager`` or ``node``), resolved recursively at build time.
    """

    system: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.system or not isinstance(self.system, str):
            raise ValueError(f"system must be a non-empty registered name, "
                             f"got {self.system!r}")
        object.__setattr__(self, "params", _checked_params(self.params, "SystemSpec"))

    def to_dict(self) -> dict:
        return {
            "kind": "system",
            "system": self.system,
            "params": _params_to_jsonable(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemSpec":
        _expect_kind(data, "system")
        return cls(system=data["system"],
                   params=_params_from_jsonable(data.get("params", {})))


@dataclass(frozen=True)
class EnvironmentSpec(_JsonSpec):
    """A deployment environment, as a registered factory plus knobs.

    ``environment`` names a factory registered under category
    ``"environment"`` (``outdoor``, ``indoor-industrial``,
    ``agricultural``, ``urban-rf``, ``seasonal-outdoor``). ``duration``,
    ``dt`` and ``seed`` are first-class because every factory takes them;
    ``None`` leaves the factory's own default in force. Any other factory
    keyword (``cloudiness``, ``work_lux``, ...) goes in ``params``.
    """

    environment: str
    duration: float | None = None
    dt: float | None = None
    seed: int | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.environment or not isinstance(self.environment, str):
            raise ValueError(f"environment must be a non-empty registered "
                             f"name, got {self.environment!r}")
        object.__setattr__(self, "params", _checked_params(self.params, "EnvironmentSpec"))

    def factory_kwargs(self, seed: int | None = None) -> dict:
        """Keyword arguments for the registered factory.

        ``seed`` (when not None) overrides the spec's own seed — the hook
        sweeps use for deterministic per-scenario seeding.
        """
        kwargs = dict(self.params)
        if self.duration is not None:
            kwargs["duration"] = self.duration
        if self.dt is not None:
            kwargs["dt"] = self.dt
        effective_seed = self.seed if seed is None else seed
        if effective_seed is not None:
            kwargs["seed"] = effective_seed
        return kwargs

    def to_dict(self) -> dict:
        return {
            "kind": "environment",
            "environment": self.environment,
            "duration": self.duration,
            "dt": self.dt,
            "seed": self.seed,
            "params": _params_to_jsonable(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnvironmentSpec":
        _expect_kind(data, "environment")
        return cls(environment=data["environment"],
                   duration=data.get("duration"),
                   dt=data.get("dt"),
                   seed=data.get("seed"),
                   params=_params_from_jsonable(data.get("params", {})))


@dataclass(frozen=True)
class RunSpec(_JsonSpec):
    """One fully-described simulation: what to build and how to run it.

    ``duration``/``dt`` override the engine's defaults (environment
    length / trace step); ``seed`` overrides the environment spec's seed;
    ``fast`` selects the engine path (see
    :func:`~repro.simulation.simulate`). ``params`` are tidy-table
    identity columns copied verbatim into sweep result rows.
    """

    system: SystemSpec
    environment: EnvironmentSpec
    name: str = ""
    duration: float | None = None
    dt: float | None = None
    seed: int | None = None
    fast: object = "auto"
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.system, SystemSpec):
            raise TypeError(f"system must be a SystemSpec, "
                            f"got {self.system!r}")
        if not isinstance(self.environment, EnvironmentSpec):
            raise TypeError(f"environment must be an EnvironmentSpec, "
                            f"got {self.environment!r}")
        object.__setattr__(self, "params", _checked_params(self.params, "RunSpec"))

    @property
    def label(self) -> str:
        """Row label: explicit name, else ``<system>@<environment>``."""
        return self.name or f"{self.system.system}@{self.environment.environment}"

    def to_dict(self) -> dict:
        return {
            "kind": "run",
            "name": self.name,
            "system": self.system.to_dict(),
            "environment": self.environment.to_dict(),
            "duration": self.duration,
            "dt": self.dt,
            "seed": self.seed,
            "fast": self.fast,
            "params": _params_to_jsonable(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        _expect_kind(data, "run")
        return cls(system=SystemSpec.from_dict(data["system"]),
                   environment=EnvironmentSpec.from_dict(data["environment"]),
                   name=data.get("name", ""),
                   duration=data.get("duration"),
                   dt=data.get("dt"),
                   seed=data.get("seed"),
                   fast=data.get("fast", "auto"),
                   params=_params_from_jsonable(data.get("params", {})))


@dataclass(frozen=True)
class SweepSpec(_JsonSpec):
    """An ordered batch of runs for :class:`~repro.simulation.SweepRunner`.

    ``processes`` is the runner default (overridable at execution time);
    ``fast`` applies to runs whose spec says ``"auto"``.
    """

    runs: tuple = ()
    name: str = "sweep"
    processes: int | None = None
    fast: object = "auto"

    def __post_init__(self):
        object.__setattr__(self, "runs", tuple(self.runs))
        for run in self.runs:
            if not isinstance(run, RunSpec):
                raise TypeError(f"runs must be RunSpec instances, "
                                f"got {run!r}")

    @classmethod
    def grid(cls, systems, environments, *, duration: float | None = None,
             dt: float | None = None, seed: int | None = None,
             name: str = "grid", processes: int | None = None,
             fast: object = "auto") -> "SweepSpec":
        """The cross product of systems x environments as one sweep.

        ``systems`` entries are :class:`SystemSpec` or registered system
        names; ``environments`` entries are :class:`EnvironmentSpec` or
        registered environment names.
        """
        system_specs = [s if isinstance(s, SystemSpec) else SystemSpec(s)
                        for s in systems]
        env_specs = [e if isinstance(e, EnvironmentSpec) else EnvironmentSpec(e)
                     for e in environments]
        runs = []
        seen: dict = {}
        for system in system_specs:
            for environment in env_specs:
                # Variants of the same system/environment pair (e.g. two
                # initial_soc values of one platform) get #2, #3, ... so
                # row names stay unique within the sweep.
                base = f"{system.system}@{environment.environment}"
                seen[base] = seen.get(base, 0) + 1
                label = base if seen[base] == 1 else f"{base}#{seen[base]}"
                runs.append(RunSpec(
                    system=system,
                    environment=environment,
                    name=label,
                    duration=duration,
                    dt=dt,
                    seed=seed,
                    params={"system": system.system,
                            "environment": environment.environment},
                ))
        return cls(runs=tuple(runs), name=name, processes=processes,
                   fast=fast)

    def to_dict(self) -> dict:
        return {
            "kind": "sweep",
            "name": self.name,
            "processes": self.processes,
            "fast": self.fast,
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        _expect_kind(data, "sweep")
        return cls(runs=tuple(RunSpec.from_dict(r)
                              for r in data.get("runs", ())),
                   name=data.get("name", "sweep"),
                   processes=data.get("processes"),
                   fast=data.get("fast", "auto"))


@dataclass(frozen=True)
class MonteCarloSpec(_JsonSpec):
    """One run expanded into an N-replicate Monte Carlo ensemble.

    ``replicates`` seed-replicated variants of ``run`` are derived from
    ``root_seed`` (the seed-stream contract of
    :func:`repro.simulation.montecarlo.replicate_seeds` — identical
    across execution tiers); ``quantiles`` are the levels reported by
    the ensemble summary. The run's own ``seed`` is ignored: every
    replicate draws its seed from the stream.
    """

    run: RunSpec
    replicates: int = 32
    root_seed: int = 0
    quantiles: tuple = (0.05, 0.25, 0.5, 0.75, 0.95)
    name: str = ""

    def __post_init__(self):
        if not isinstance(self.run, RunSpec):
            raise TypeError(f"run must be a RunSpec, got {self.run!r}")
        if not isinstance(self.replicates, int) or \
                isinstance(self.replicates, bool) or self.replicates < 1:
            raise ValueError(f"replicates must be a positive integer, "
                             f"got {self.replicates!r}")
        if not isinstance(self.root_seed, int) or \
                isinstance(self.root_seed, bool):
            raise ValueError(f"root_seed must be an integer, "
                             f"got {self.root_seed!r}")
        levels = tuple(float(q) for q in self.quantiles)
        if not levels or any(not 0.0 <= q <= 1.0 for q in levels) or \
                list(levels) != sorted(set(levels)):
            raise ValueError(
                f"quantiles must be distinct ascending levels in [0, 1], "
                f"got {self.quantiles!r}")
        object.__setattr__(self, "quantiles", levels)

    @property
    def label(self) -> str:
        """Row label: explicit name, else ``<run label> xN``."""
        return self.name or f"{self.run.label} x{self.replicates}"

    def to_dict(self) -> dict:
        return {
            "kind": "montecarlo",
            "name": self.name,
            "run": self.run.to_dict(),
            "replicates": self.replicates,
            "root_seed": self.root_seed,
            "quantiles": list(self.quantiles),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MonteCarloSpec":
        _expect_kind(data, "montecarlo")
        return cls(run=RunSpec.from_dict(data["run"]),
                   replicates=data.get("replicates", 32),
                   root_seed=data.get("root_seed", 0),
                   quantiles=tuple(data.get("quantiles",
                                            (0.05, 0.25, 0.5, 0.75, 0.95))),
                   name=data.get("name", ""))


@dataclass(frozen=True)
class FleetNodeSpec(_JsonSpec):
    """One node of a fleet: its ambient exposure and hardware deltas.

    ``scale``/``offset`` transform the fleet's shared ambient field for
    this node (every channel trace becomes ``trace * scale + offset``,
    offsets in the channel's native units) — micro-siting without
    re-drawing the stochastic realization. ``system`` (when given)
    replaces the fleet's base platform for this node — a heterogeneous
    fleet; ``params`` are builder-keyword overrides merged over the base
    platform's params.
    """

    name: str = ""
    scale: float = 1.0
    offset: float = 0.0
    system: SystemSpec | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.scale, (int, float)) or self.scale < 0:
            raise ValueError(f"scale must be a non-negative number, "
                             f"got {self.scale!r}")
        if not isinstance(self.offset, (int, float)):
            raise ValueError(f"offset must be a number, got {self.offset!r}")
        if self.system is not None and not isinstance(self.system, SystemSpec):
            raise TypeError(f"system must be a SystemSpec or None, "
                            f"got {self.system!r}")
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "offset", float(self.offset))
        object.__setattr__(self, "params",
                           _checked_params(self.params, "FleetNodeSpec"))

    def to_dict(self) -> dict:
        return {
            "kind": "fleetnode",
            "name": self.name,
            "scale": self.scale,
            "offset": self.offset,
            "system": None if self.system is None else self.system.to_dict(),
            "params": _params_to_jsonable(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetNodeSpec":
        _expect_kind(data, "fleetnode")
        system = data.get("system")
        return cls(name=data.get("name", ""),
                   scale=data.get("scale", 1.0),
                   offset=data.get("offset", 0.0),
                   system=None if system is None
                   else SystemSpec.from_dict(system),
                   params=_params_from_jsonable(data.get("params", {})))


@dataclass(frozen=True)
class FleetSpec(_JsonSpec):
    """N nodes co-simulated on one shared ambient field with radio links.

    ``system``/``environment`` are the fleet-wide base platform and the
    shared ambient realization (every node sees the *same* stochastic
    draw, reshaped per node by its :class:`FleetNodeSpec` scale/offset).
    ``links`` are directed ``(sender, receiver)`` index pairs; each link
    couples the receiver's energy budget to the sender's transmissions
    through the radio model (quasi-static listen power — see
    ``docs/fleet.md``). ``listen_window_s`` is the per-packet idle listen
    window a receiver keeps open; ``quantiles`` are the fleet-lifetime
    quantile levels reported by the fleet metrics.

    ``duration``/``dt``/``seed`` override the environment spec exactly
    as in :class:`RunSpec`; ``fast`` selects the engine path of every
    node lane.
    """

    system: SystemSpec
    environment: EnvironmentSpec
    nodes: tuple = ()
    links: tuple = ()
    duration: float | None = None
    dt: float | None = None
    seed: int | None = None
    listen_window_s: float = 0.002
    quantiles: tuple = (0.05, 0.25, 0.5, 0.75, 0.95)
    name: str = "fleet"
    fast: object = "auto"

    def __post_init__(self):
        if not isinstance(self.system, SystemSpec):
            raise TypeError(f"system must be a SystemSpec, "
                            f"got {self.system!r}")
        if not isinstance(self.environment, EnvironmentSpec):
            raise TypeError(f"environment must be an EnvironmentSpec, "
                            f"got {self.environment!r}")
        nodes = tuple(self.nodes)
        if not nodes:
            raise ValueError("a fleet needs at least one node")
        for node in nodes:
            if not isinstance(node, FleetNodeSpec):
                raise TypeError(f"nodes must be FleetNodeSpec instances, "
                                f"got {node!r}")
        links = []
        for link in self.links:
            pair = tuple(link)
            if len(pair) != 2:
                raise ValueError(f"links must be (sender, receiver) "
                                 f"pairs, got {link!r}")
            src, dst = (int(pair[0]), int(pair[1]))
            if not (0 <= src < len(nodes) and 0 <= dst < len(nodes)):
                raise ValueError(f"link {link!r} references a node outside "
                                 f"0..{len(nodes) - 1}")
            if src == dst:
                raise ValueError(f"link {link!r} is a self-loop")
            links.append((src, dst))
        if not isinstance(self.listen_window_s, (int, float)) or \
                self.listen_window_s < 0:
            raise ValueError(f"listen_window_s must be non-negative, "
                             f"got {self.listen_window_s!r}")
        levels = tuple(float(q) for q in self.quantiles)
        if not levels or any(not 0.0 <= q <= 1.0 for q in levels) or \
                list(levels) != sorted(set(levels)):
            raise ValueError(
                f"quantiles must be distinct ascending levels in [0, 1], "
                f"got {self.quantiles!r}")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "links", tuple(links))
        object.__setattr__(self, "listen_window_s",
                           float(self.listen_window_s))
        object.__setattr__(self, "quantiles", levels)

    @property
    def label(self) -> str:
        """Row label: explicit name, else ``fleet(<system>xN)``."""
        if self.name and self.name != "fleet":
            return self.name
        return f"fleet({self.system.system}x{len(self.nodes)})"

    def node_name(self, index: int) -> str:
        """Display name of one node (explicit name, else ``n<index>``)."""
        explicit = self.nodes[index].name
        return explicit or f"n{index:02d}"

    def to_dict(self) -> dict:
        return {
            "kind": "fleet",
            "name": self.name,
            "system": self.system.to_dict(),
            "environment": self.environment.to_dict(),
            "nodes": [node.to_dict() for node in self.nodes],
            "links": [list(link) for link in self.links],
            "duration": self.duration,
            "dt": self.dt,
            "seed": self.seed,
            "listen_window_s": self.listen_window_s,
            "quantiles": list(self.quantiles),
            "fast": self.fast,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        _expect_kind(data, "fleet")
        return cls(
            system=SystemSpec.from_dict(data["system"]),
            environment=EnvironmentSpec.from_dict(data["environment"]),
            nodes=tuple(FleetNodeSpec.from_dict(n)
                        for n in data.get("nodes", ())),
            links=tuple(tuple(link) for link in data.get("links", ())),
            duration=data.get("duration"),
            dt=data.get("dt"),
            seed=data.get("seed"),
            listen_window_s=data.get("listen_window_s", 0.002),
            quantiles=tuple(data.get("quantiles",
                                     (0.05, 0.25, 0.5, 0.75, 0.95))),
            name=data.get("name", "fleet"),
            fast=data.get("fast", "auto"),
        )


_KINDS = {
    "component": ComponentSpec,
    "system": SystemSpec,
    "environment": EnvironmentSpec,
    "run": RunSpec,
    "sweep": SweepSpec,
    "montecarlo": MonteCarloSpec,
    "fleetnode": FleetNodeSpec,
    "fleet": FleetSpec,
}


def spec_from_dict(data: dict):
    """Inflate any spec dict by its ``"kind"`` tag."""
    if not isinstance(data, dict):
        raise TypeError(f"spec data must be a dict, got {type(data).__name__}")
    kind = data.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"spec dict needs a 'kind' tag in "
                         f"{sorted(_KINDS)}, got {kind!r}")
    return _KINDS[kind].from_dict(data)


def load_spec(path):
    """Load any spec (run, sweep, system, ...) from a JSON file."""
    with open(path) as handle:
        return spec_from_dict(json.load(handle))
