"""Component registry: every buildable part of a simulation, by name.

The declarative spec layer (:mod:`repro.spec.specs`) describes simulations
as plain data; this registry is what turns the names in that data back
into live objects. Every component category the survey's platforms are
composed from — harvesters, storage devices, MPP trackers, converters,
energy managers, sensor-node loads, deployment environments, and the
seven surveyed systems themselves — registers its factories here:

>>> from repro.spec import REGISTRY
>>> REGISTRY.names("system")
['ambimax', 'cymbet_eval', 'ehlink', ...]
>>> REGISTRY.parameters("harvester", "photovoltaic")["area_cm2"]
{'default': 50.0, 'required': False}

Factories register with the :func:`register` decorator::

    @register("harvester", "photovoltaic")
    class PhotovoltaicCell(TheveninHarvester):
        ...

This module is a dependency leaf (stdlib only) so that any component
module anywhere in the package can import it without cycles.
"""

from __future__ import annotations

import inspect

__all__ = ["ComponentRegistry", "REGISTRY", "register"]

#: The component categories a simulation spec can reference.
CATEGORIES = (
    "harvester",
    "storage",
    "tracker",
    "converter",
    "manager",
    "node",
    "radio",
    "environment",
    "system",
)


class ComponentRegistry:
    """Named factories per category, with introspectable parameters."""

    def __init__(self, categories=CATEGORIES):
        self._factories = {category: {} for category in categories}

    # ------------------------------------------------------------------
    def register(self, category: str, name: str):
        """Decorator: register a class or factory under (category, name)."""
        self._check_category(category)
        if not name or not isinstance(name, str):
            raise ValueError(f"component name must be a non-empty string, "
                             f"got {name!r}")

        def decorate(factory):
            existing = self._factories[category].get(name)
            if existing is not None and existing is not factory:
                # Tolerate re-execution of the same definition (module
                # reloads in tests); reject genuine collisions, including
                # same-named factories from different modules.
                def identity(obj):
                    return (getattr(obj, "__module__", None),
                            getattr(obj, "__qualname__", None))

                if identity(existing) != identity(factory):
                    raise ValueError(
                        f"{category} {name!r} already registered "
                        f"(by {existing!r})")
            self._factories[category][name] = factory
            return factory

        return decorate

    # ------------------------------------------------------------------
    def get(self, category: str, name: str):
        """The factory registered under (category, name)."""
        self._check_category(category)
        try:
            return self._factories[category][name]
        except KeyError:
            raise KeyError(
                f"unknown {category} {name!r}; registered {category}s: "
                f"{self.names(category)}") from None

    def has(self, category: str, name: str) -> bool:
        self._check_category(category)
        return name in self._factories[category]

    def names(self, category: str) -> list:
        """Registered names in one category, sorted."""
        self._check_category(category)
        return sorted(self._factories[category])

    def categories(self) -> list:
        return list(self._factories)

    # ------------------------------------------------------------------
    def parameters(self, category: str, name: str) -> dict:
        """Constructor parameters of a registered factory.

        Returns ``{param: {"default": <value or None>, "required": bool}}``
        for every keyword-acceptable parameter, so tools (CLI, docs,
        config validators) can enumerate a component's knobs without
        instantiating it. ``*args``/``**kwargs`` catch-alls are skipped.
        """
        factory = self.get(category, name)
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):
            return {}
        params = {}
        for param in signature.parameters.values():
            if param.kind in (inspect.Parameter.VAR_POSITIONAL,
                              inspect.Parameter.VAR_KEYWORD):
                continue
            required = param.default is inspect.Parameter.empty
            params[param.name] = {
                "default": None if required else param.default,
                "required": required,
            }
        return params

    def describe(self, category: str | None = None) -> dict:
        """JSON-able catalog of the registry (for ``repro spec --registry``)."""
        categories = [category] if category is not None else self.categories()
        catalog = {}
        for cat in categories:
            catalog[cat] = {
                name: {param: ("<required>" if info["required"]
                               else _describable(info["default"]))
                       for param, info in self.parameters(cat, name).items()}
                for name in self.names(cat)
            }
        return catalog

    # ------------------------------------------------------------------
    def _check_category(self, category: str) -> None:
        if category not in self._factories:
            raise KeyError(f"unknown component category {category!r}; "
                           f"choose from {self.categories()}")

    def __repr__(self) -> str:
        counts = {cat: len(entries)
                  for cat, entries in self._factories.items() if entries}
        return f"ComponentRegistry({counts})"


def _describable(value):
    """Defaults as JSON-friendly values (non-primitive -> repr string)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_describable(item) for item in value]
    return repr(value)


#: The process-wide registry every component registers into.
REGISTRY = ComponentRegistry()

#: Shorthand decorator bound to :data:`REGISTRY`.
register = REGISTRY.register
