"""Declarative spec layer: serializable simulation descriptions.

The single way to *describe* a simulation as plain data:

>>> from repro.spec import spec_for, EnvironmentSpec, RunSpec, run
>>> spec = RunSpec(system=spec_for("C"),
...                environment=EnvironmentSpec("outdoor",
...                                            duration=86_400, dt=300,
...                                            seed=7))
>>> result = run(spec)                      # same numbers as build_system
>>> text = spec.to_json()                   # ship it anywhere
>>> result2 = run(RunSpec.from_json(text))  # ... and reproduce exactly

Three layers:

* :mod:`repro.spec.registry` — every buildable component (harvesters,
  storage, trackers, converters, managers, nodes, environments, and the
  seven Table I systems) registered by name with introspectable
  constructor parameters;
* :mod:`repro.spec.specs` — frozen, dict/JSON round-trippable
  ``ComponentSpec`` / ``SystemSpec`` / ``EnvironmentSpec`` / ``RunSpec``
  / ``SweepSpec`` dataclasses;
* :mod:`repro.spec.build` — ``build()`` / ``run()`` / ``run_sweep()``
  resolvers materializing and executing the data.

Because specs are data, they cross process boundaries freely — a
``SweepSpec`` fans across workers with no module-level factory
functions — and serialize to config files the CLI executes directly
(``python -m repro run config.json``). See ``docs/specs.md``.
"""

from .build import (
    build,
    build_component,
    build_environment,
    describe_registry,
    run,
    run_fleet,
    run_montecarlo,
    run_sweep,
    spec_for,
    to_scenario,
)
from .canonical import canonical_bytes, canonical_dumps, spec_hash
from .registry import REGISTRY, ComponentRegistry, register
from .specs import (
    ComponentSpec,
    EnvironmentSpec,
    FleetNodeSpec,
    FleetSpec,
    MonteCarloSpec,
    RunSpec,
    SweepSpec,
    SystemSpec,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "ComponentRegistry",
    "REGISTRY",
    "register",
    "ComponentSpec",
    "SystemSpec",
    "EnvironmentSpec",
    "RunSpec",
    "SweepSpec",
    "MonteCarloSpec",
    "FleetNodeSpec",
    "FleetSpec",
    "spec_from_dict",
    "load_spec",
    "canonical_bytes",
    "canonical_dumps",
    "spec_hash",
    "build",
    "build_component",
    "build_environment",
    "run",
    "run_sweep",
    "run_montecarlo",
    "run_fleet",
    "spec_for",
    "to_scenario",
    "describe_registry",
]
