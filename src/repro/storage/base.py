"""Energy storage base class.

The survey treats the energy buffer as a first-class design axis: "it is
necessary to buffer the energy [harvesters] produce" (Sec. II.1), different
storage technologies "offer different characteristics well known in
literature" (Sec. II.2, refs [9]/[10]), and Table I's Storage row spans
fuel cells, Li-ion/poly and NiMH batteries, supercapacitors, thin-film
batteries and primary cells. The base class captures the characteristics
those claims rely on:

* state of charge and a chemistry-dependent terminal voltage curve,
* charge/discharge power limits and round-trip efficiency,
* self-discharge / leakage,
* rechargeability (primary cells and fuel cells refuse charge),
* an optional electronic datasheet for plug-and-play recognition.

Energy accounting convention: ``charge`` receives *bus-side* power and
returns how much was accepted; losses mean the stored energy rises by less
than the accepted power. ``discharge`` receives a *load-side* request and
returns how much was delivered; losses mean stored energy falls by more.
"""

from __future__ import annotations

import abc

__all__ = ["EnergyStorage"]


class EnergyStorage(abc.ABC):
    """Abstract energy buffer.

    Parameters
    ----------
    capacity_j:
        Usable energy capacity, joules.
    initial_soc:
        Initial state of charge in [0, 1].
    charge_efficiency / discharge_efficiency:
        One-way efficiencies in (0, 1]; round-trip = product.
    max_charge_w / max_discharge_w:
        Power acceptance/delivery limits (inf = unlimited).
    self_discharge_per_day:
        Fraction of *current* stored energy lost per day.
    rechargeable:
        Primary cells and fuel cells set this False; ``charge`` then
        accepts nothing.
    name:
        Instance label used in reports.
    """

    #: Storage-technology label used when regenerating Table I.
    table_label: str = "Storage"

    #: Marks discharge-only reserves (e.g. the fuel cell of System A) that
    #: managers hold back until ambient-fed stores are exhausted.
    is_backup: bool = False

    def __init__(self, capacity_j: float, initial_soc: float = 0.5,
                 charge_efficiency: float = 1.0, discharge_efficiency: float = 1.0,
                 max_charge_w: float = float("inf"),
                 max_discharge_w: float = float("inf"),
                 self_discharge_per_day: float = 0.0,
                 rechargeable: bool = True, name: str = ""):
        if capacity_j <= 0:
            raise ValueError(f"capacity_j must be positive, got {capacity_j}")
        if not 0.0 <= initial_soc <= 1.0:
            raise ValueError(f"initial_soc must be in [0, 1], got {initial_soc}")
        for label, eff in (("charge_efficiency", charge_efficiency),
                           ("discharge_efficiency", discharge_efficiency)):
            if not 0.0 < eff <= 1.0:
                raise ValueError(f"{label} must be in (0, 1], got {eff}")
        if max_charge_w < 0 or max_discharge_w < 0:
            raise ValueError("power limits must be non-negative")
        if not 0.0 <= self_discharge_per_day < 1.0:
            raise ValueError("self_discharge_per_day must be in [0, 1)")
        self.capacity_j = capacity_j
        self.energy_j = capacity_j * initial_soc
        self.charge_efficiency = charge_efficiency
        self.discharge_efficiency = discharge_efficiency
        self.max_charge_w = max_charge_w
        self.max_discharge_w = max_discharge_w
        self.self_discharge_per_day = self_discharge_per_day
        self.rechargeable = rechargeable
        self.name = name or type(self).__name__
        self.datasheet = None
        # Lifetime counters (used by metrics and the fuel-cell experiment).
        self.total_charged_j = 0.0
        self.total_discharged_j = 0.0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return self.energy_j / self.capacity_j

    @property
    def headroom_j(self) -> float:
        """Energy that can still be stored, joules."""
        return max(0.0, self.capacity_j - self.energy_j)

    @abc.abstractmethod
    def voltage(self) -> float:
        """Terminal voltage (V) at the current state of charge."""

    def is_empty(self, threshold_soc: float = 1e-6) -> bool:
        return self.soc <= threshold_soc

    def is_full(self, threshold_soc: float = 1.0 - 1e-6) -> bool:
        return self.soc >= threshold_soc

    # ------------------------------------------------------------------
    # Power flow
    # ------------------------------------------------------------------
    def charge(self, power_w: float, dt: float) -> float:
        """Accept up to ``power_w`` (bus side) for ``dt`` seconds.

        Returns the bus-side power actually accepted (W). Stored energy
        rises by ``accepted * dt * charge_efficiency``.
        """
        if power_w < 0:
            raise ValueError(f"power_w must be non-negative, got {power_w}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if not self.rechargeable or power_w == 0.0:
            return 0.0
        accepted = min(power_w, self.max_charge_w)
        stored = accepted * dt * self.charge_efficiency
        if stored > self.headroom_j:
            stored = self.headroom_j
            accepted = stored / (dt * self.charge_efficiency)
        self.energy_j += stored
        self.total_charged_j += stored
        return accepted

    def discharge(self, power_w: float, dt: float) -> float:
        """Deliver up to ``power_w`` (load side) for ``dt`` seconds.

        Returns the load-side power actually delivered (W). Stored energy
        falls by ``delivered * dt / discharge_efficiency``.
        """
        if power_w < 0:
            raise ValueError(f"power_w must be non-negative, got {power_w}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if power_w == 0.0:
            return 0.0
        deliverable = min(power_w, self.max_discharge_w)
        drawn = deliverable * dt / self.discharge_efficiency
        if drawn > self.energy_j:
            drawn = self.energy_j
            deliverable = drawn * self.discharge_efficiency / dt
        self.energy_j -= drawn
        self.total_discharged_j += drawn
        return deliverable

    def step_idle(self, dt: float) -> float:
        """Apply self-discharge for ``dt`` seconds; returns energy lost (J).

        Subclasses with structural leakage (supercapacitors) extend this.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if self.self_discharge_per_day <= 0.0 or self.energy_j <= 0.0:
            return 0.0
        keep = (1.0 - self.self_discharge_per_day) ** (dt / 86_400.0)
        lost = self.energy_j * (1.0 - keep)
        self.energy_j -= lost
        return lost

    # ------------------------------------------------------------------
    # Kernel lowering (see repro.simulation.kernel)
    # ------------------------------------------------------------------
    def lower_kernel(self, dt: float):
        """Lower this store to kernel closures.

        Composed from four hooks — :meth:`_kernel_voltage`,
        :meth:`_kernel_charge`, :meth:`_kernel_discharge`,
        :meth:`_kernel_idle` — so a chemistry overrides only the physics
        it specializes. Each hook either returns a closure that is
        bit-for-bit equivalent to the corresponding method or raises
        :exc:`~repro.simulation.kernel.protocol.LoweringUnsupported`
        (e.g. for a subclass that overrides the inlined arithmetic),
        which drops the whole system to the legacy path.
        """
        from ..simulation.kernel.protocol import StoreLowering
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        return StoreLowering(self, self._kernel_voltage(dt),
                             self._kernel_charge(dt),
                             self._kernel_discharge(dt),
                             self._kernel_idle(dt))

    def _kernel_voltage(self, dt: float):
        """Terminal-voltage closure. The bound method is exact for any
        chemistry; subclasses may return an inlined specialization."""
        return self.voltage

    def _kernel_charge(self, dt: float):
        """Inlined :meth:`charge` with run constants hoisted."""
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, EnergyStorage, "charge", "headroom_j")
        store = self
        rechargeable = self.rechargeable
        max_c = self.max_charge_w
        eff_c = self.charge_efficiency
        eff_dt = dt * eff_c

        def charge(power_w: float) -> float:
            if not rechargeable or power_w == 0.0:
                return 0.0
            accepted = power_w if power_w <= max_c else max_c
            stored = accepted * dt * eff_c
            headroom = store.capacity_j - store.energy_j
            if headroom < 0.0:
                headroom = 0.0
            if stored > headroom:
                stored = headroom
                accepted = stored / eff_dt
            store.energy_j += stored
            store.total_charged_j += stored
            return accepted

        return charge

    def _kernel_discharge(self, dt: float):
        """Inlined :meth:`discharge` with run constants hoisted."""
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, EnergyStorage, "discharge")
        return self._kernel_base_discharge(dt)

    def _kernel_base_discharge(self, dt: float):
        """The base-class discharge closure, without the override guard.

        Chemistries whose ``discharge`` wraps ``super().discharge`` (the
        fuel cell's warm-up ramp) reuse this for the inner call — the
        ``super()`` call is lexically bound to this class, so the closure
        stays exact even though the subclass overrides ``discharge``.
        """
        store = self
        max_d = self.max_discharge_w
        eff_d = self.discharge_efficiency

        def discharge(power_w: float) -> float:
            if power_w == 0.0:
                return 0.0
            deliverable = power_w if power_w <= max_d else max_d
            drawn = deliverable * dt / eff_d
            if drawn > store.energy_j:
                drawn = store.energy_j
                deliverable = drawn * eff_d / dt
            store.energy_j -= drawn
            store.total_discharged_j += drawn
            return deliverable

        return discharge

    def _kernel_idle(self, dt: float):
        """Inlined :meth:`step_idle` with the decay factor hoisted."""
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, EnergyStorage, "step_idle")
        return self._kernel_base_idle(dt)

    def _kernel_base_idle(self, dt: float):
        """The base-class self-discharge closure, without the guard."""
        store = self
        sd = self.self_discharge_per_day
        keep = (1.0 - sd) ** (dt / 86_400.0)

        def idle() -> None:
            if sd <= 0.0 or store.energy_j <= 0.0:
                return
            store.energy_j -= store.energy_j * (1.0 - keep)

        return idle

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def lower_batched(self, dt: float, siblings):
        """Lower a group of same-chemistry stores to lockstep closures.

        Mirrors :meth:`lower_kernel`'s hook structure: chemistry-specific
        ``_batch_{voltage,charge,discharge,idle}`` hooks operate on
        shared ``(n,)`` state arrays (``state.energy`` plus whatever the
        chemistry adds in ``_batch_init``). A chemistry that overrides
        scalar physics without providing the matching batched hook
        raises :exc:`LoweringUnsupported` and the scenario runs on the
        per-scenario path instead.
        """
        from ..simulation.kernel.batched import (
            BatchState,
            BatchedStoreLowering,
            gather,
            same_class,
        )
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        same_class(siblings, "store")
        state = BatchState()
        state.energy = gather(siblings, lambda s: s.energy_j)
        state.charged = gather(siblings, lambda s: s.total_charged_j)
        state.discharged = gather(siblings, lambda s: s.total_discharged_j)
        self._batch_init(dt, siblings, state)

        def writeback() -> None:
            self._batch_writeback(siblings, state)

        return BatchedStoreLowering(
            tuple(siblings), state,
            self._batch_voltage(dt, siblings, state),
            self._batch_charge(dt, siblings, state),
            self._batch_discharge(dt, siblings, state),
            self._batch_idle(dt, siblings, state),
            writeback)

    def _batch_init(self, dt: float, siblings, state) -> None:
        """Chemistry hook: add extra shared state arrays (default none)."""

    def _batch_writeback(self, siblings, state) -> None:
        """Scatter final array state back onto the store objects."""
        for k, store in enumerate(siblings):
            store.energy_j = float(state.energy[k])
            store.total_charged_j = float(state.charged[k])
            store.total_discharged_j = float(state.discharged[k])

    def _batch_voltage(self, dt: float, siblings, state):
        """Terminal-voltage closure ``() -> (n,)``; chemistry-specific."""
        from ..simulation.kernel.protocol import LoweringUnsupported
        raise LoweringUnsupported(
            f"{type(self).__name__} has no batched voltage lowering")

    def _batch_charge(self, dt: float, siblings, state):
        """Vectorized twin of :meth:`_kernel_charge` (same expressions,
        with the early returns turned into state-write masks)."""
        import numpy as np
        rechargeable = np.array([s.rechargeable for s in siblings])
        from ..simulation.kernel.batched import gather
        max_c = gather(siblings, lambda s: s.max_charge_w)
        eff_c = gather(siblings, lambda s: s.charge_efficiency)
        eff_dt = gather(siblings, lambda s: dt * s.charge_efficiency)
        capacity = gather(siblings, lambda s: s.capacity_j)

        def charge(power_w):
            act = rechargeable & (power_w != 0.0)
            accepted = np.minimum(power_w, max_c)
            stored = accepted * dt * eff_c
            headroom = capacity - state.energy
            headroom = np.where(headroom < 0.0, 0.0, headroom)
            over = stored > headroom
            stored = np.where(over, headroom, stored)
            accepted = np.where(over, stored / eff_dt, accepted)
            stored = np.where(act, stored, 0.0)
            state.energy = state.energy + stored
            state.charged = state.charged + stored
            return np.where(act, accepted, 0.0)

        return charge

    def _batch_discharge(self, dt: float, siblings, state):
        """Vectorized twin of :meth:`_kernel_base_discharge`."""
        import numpy as np
        from ..simulation.kernel.batched import gather
        max_d = gather(siblings, lambda s: s.max_discharge_w)
        eff_d = gather(siblings, lambda s: s.discharge_efficiency)

        def discharge(power_w):
            act = power_w != 0.0
            deliverable = np.minimum(power_w, max_d)
            drawn = deliverable * dt / eff_d
            over = drawn > state.energy
            drawn = np.where(over, state.energy, drawn)
            deliverable = np.where(over, drawn * eff_d / dt, deliverable)
            drawn = np.where(act, drawn, 0.0)
            state.energy = state.energy - drawn
            state.discharged = state.discharged + drawn
            return np.where(act, deliverable, 0.0)

        return discharge

    def _batch_idle(self, dt: float, siblings, state):
        """Vectorized twin of :meth:`_kernel_base_idle`."""
        import numpy as np
        from ..simulation.kernel.batched import gather
        sd = gather(siblings, lambda s: s.self_discharge_per_day)
        one_minus_keep = gather(
            siblings,
            lambda s: 1.0 - (1.0 - s.self_discharge_per_day) ** (dt / 86_400.0))

        def idle() -> None:
            act = (sd > 0.0) & (state.energy > 0.0)
            lost = state.energy * one_minus_keep
            state.energy = state.energy - np.where(act, lost, 0.0)

        return idle

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"soc={self.soc:.3f}, capacity={self.capacity_j:.1f} J)")
