"""Battery models for the chemistries listed in Table I.

Table I's Storage row spans: Li-ion and Li-polymer rechargeable batteries
(systems A, C), NiMH rechargeable cells (B, C), AA rechargeable packs
(C, D), non-rechargeable lithium primaries (B), and thin-film solid-state
batteries (E, F, G — e.g. Cymbet EnerChip, the storage of the MAX17710 and
EVAL-09 kits). All share a structure: capacity in mAh at a nominal voltage,
an open-circuit-voltage curve over state of charge, charge/discharge rate
limits expressed as C-rates, coulombic efficiency, and self-discharge.

:class:`ChemistryBattery` implements that structure; the chemistry classes
below are thin parameterisations with datasheet-typical constants.
"""

from __future__ import annotations

from ..spec.registry import register

import bisect

from .base import EnergyStorage

__all__ = [
    "ChemistryBattery",
    "LiIonBattery",
    "LiPolymerBattery",
    "NiMHBattery",
    "AABatteryPack",
    "LithiumPrimaryCell",
    "ThinFilmBattery",
]


class ChemistryBattery(EnergyStorage):
    """Battery with a piecewise-linear OCV(SoC) curve.

    Parameters
    ----------
    capacity_mah:
        Rated capacity, milliamp-hours.
    nominal_voltage:
        Voltage used to convert mAh to joules.
    ocv_curve:
        Sequence of ``(soc, volts)`` pairs, soc ascending over [0, 1].
    max_charge_c / max_discharge_c:
        Rate limits as C-rates (1 C = full capacity per hour).
    charge_efficiency / discharge_efficiency:
        One-way efficiencies.
    self_discharge_per_month:
        Fraction of charge lost per 30 days at rest.
    rechargeable:
        False for primary cells.
    cycle_life:
        Rated full-equivalent cycles (informational; tracked, not enforced).
    initial_soc, name:
        As in :class:`~repro.storage.base.EnergyStorage`.
    """

    def __init__(self, capacity_mah: float, nominal_voltage: float,
                 ocv_curve: tuple, max_charge_c: float = 0.5,
                 max_discharge_c: float = 2.0, charge_efficiency: float = 0.95,
                 discharge_efficiency: float = 0.95,
                 self_discharge_per_month: float = 0.03,
                 rechargeable: bool = True, cycle_life: int = 500,
                 initial_soc: float = 0.5, name: str = ""):
        if capacity_mah <= 0:
            raise ValueError("capacity_mah must be positive")
        if nominal_voltage <= 0:
            raise ValueError("nominal_voltage must be positive")
        if len(ocv_curve) < 2:
            raise ValueError("ocv_curve needs at least two points")
        socs = [p[0] for p in ocv_curve]
        if socs != sorted(socs) or socs[0] < 0 or socs[-1] > 1:
            raise ValueError("ocv_curve soc values must ascend within [0, 1]")
        if max_charge_c <= 0 or max_discharge_c <= 0:
            raise ValueError("C-rates must be positive")
        if not 0.0 <= self_discharge_per_month < 1.0:
            raise ValueError("self_discharge_per_month must be in [0, 1)")

        capacity_j = capacity_mah * 1e-3 * 3600.0 * nominal_voltage
        per_day = 1.0 - (1.0 - self_discharge_per_month) ** (1.0 / 30.0)
        super().__init__(
            capacity_j=capacity_j,
            initial_soc=initial_soc,
            charge_efficiency=charge_efficiency,
            discharge_efficiency=discharge_efficiency,
            max_charge_w=max_charge_c * capacity_j / 3600.0,
            max_discharge_w=max_discharge_c * capacity_j / 3600.0,
            self_discharge_per_day=per_day,
            rechargeable=rechargeable,
            name=name,
        )
        self.capacity_mah = capacity_mah
        self.nominal_voltage = nominal_voltage
        self.cycle_life = cycle_life
        self._ocv_soc = [float(p[0]) for p in ocv_curve]
        self._ocv_v = [float(p[1]) for p in ocv_curve]

    def voltage(self) -> float:
        """Open-circuit voltage interpolated on the chemistry curve."""
        s = self.soc
        socs, volts = self._ocv_soc, self._ocv_v
        if s <= socs[0]:
            return volts[0]
        if s >= socs[-1]:
            return volts[-1]
        i = bisect.bisect_right(socs, s)
        frac = (s - socs[i - 1]) / (socs[i] - socs[i - 1])
        return volts[i - 1] + frac * (volts[i] - volts[i - 1])

    @property
    def equivalent_cycles(self) -> float:
        """Full-equivalent cycles consumed so far."""
        return self.total_discharged_j / self.capacity_j

    # ------------------------------------------------------------------
    # Kernel lowering (see repro.simulation.kernel)
    # ------------------------------------------------------------------
    def _kernel_voltage(self, dt: float):
        """Inlined :meth:`voltage` with the OCV polyline hoisted.

        Charge/discharge/idle lower through the
        :class:`~repro.storage.base.EnergyStorage` base hooks — battery
        chemistries parameterize the base physics, they do not override
        it.
        """
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, ChemistryBattery, "voltage", "soc")
        store = self
        socs, volts = self._ocv_soc, self._ocv_v
        soc_lo, soc_hi = socs[0], socs[-1]
        v_lo, v_hi = volts[0], volts[-1]
        bisect_right = bisect.bisect_right

        def voltage() -> float:
            s = store.energy_j / store.capacity_j
            if s <= soc_lo:
                return v_lo
            if s >= soc_hi:
                return v_hi
            i = bisect_right(socs, s)
            frac = (s - socs[i - 1]) / (socs[i] - socs[i - 1])
            return volts[i - 1] + frac * (volts[i] - volts[i - 1])

        return voltage

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_voltage(self, dt: float, siblings, state):
        """Vectorized OCV polyline (``np.searchsorted`` == ``bisect``).

        The interpolation gathers curve points by per-lane index, which
        needs one shared curve across the group — scenarios with
        different OCV curves land in different sweep groups (the group
        signature includes the curve), so this only refuses hand-built
        mixed batches.
        """
        import numpy as np
        from ..simulation.kernel.protocol import (
            LoweringUnsupported,
            ensure_unmodified,
        )
        from ..simulation.kernel.batched import gather
        socs_list, volts_list = self._ocv_soc, self._ocv_v
        for store in siblings:
            ensure_unmodified(store, ChemistryBattery, "voltage", "soc")
            if store._ocv_soc != socs_list or store._ocv_v != volts_list:
                raise LoweringUnsupported(
                    "batched battery lowering needs one OCV curve across "
                    "the group")
        capacity = gather(siblings, lambda s: s.capacity_j)
        socs = np.array(socs_list)
        volts = np.array(volts_list)
        soc_lo, soc_hi = socs_list[0], socs_list[-1]
        v_lo, v_hi = volts_list[0], volts_list[-1]
        top = len(socs_list) - 1

        def voltage():
            s = state.energy / capacity
            i = np.searchsorted(socs, s, side="right")
            np.clip(i, 1, top, out=i)
            frac = (s - socs[i - 1]) / (socs[i] - socs[i - 1])
            v = volts[i - 1] + frac * (volts[i] - volts[i - 1])
            return np.where(s <= soc_lo, v_lo,
                            np.where(s >= soc_hi, v_hi, v))

        return voltage


@register("storage", "li_ion")
class LiIonBattery(ChemistryBattery):
    """18650-class lithium-ion cell (3.7 V nominal)."""

    table_label = "Li-ion rech. batt."

    def __init__(self, capacity_mah: float = 2000.0, initial_soc: float = 0.5,
                 name: str = ""):
        super().__init__(
            capacity_mah=capacity_mah,
            nominal_voltage=3.7,
            ocv_curve=((0.0, 3.0), (0.1, 3.45), (0.3, 3.6), (0.6, 3.75),
                       (0.9, 4.0), (1.0, 4.2)),
            max_charge_c=0.5, max_discharge_c=2.0,
            charge_efficiency=0.97, discharge_efficiency=0.97,
            self_discharge_per_month=0.02, cycle_life=500,
            initial_soc=initial_soc, name=name,
        )


@register("storage", "li_polymer")
class LiPolymerBattery(ChemistryBattery):
    """Lithium-polymer pouch cell; Li-ion curve, lighter rate limits."""

    table_label = "Li-ion/poly"

    def __init__(self, capacity_mah: float = 1000.0, initial_soc: float = 0.5,
                 name: str = ""):
        super().__init__(
            capacity_mah=capacity_mah,
            nominal_voltage=3.7,
            ocv_curve=((0.0, 3.0), (0.1, 3.5), (0.4, 3.7), (0.8, 3.95),
                       (1.0, 4.2)),
            max_charge_c=1.0, max_discharge_c=5.0,
            charge_efficiency=0.97, discharge_efficiency=0.97,
            self_discharge_per_month=0.025, cycle_life=400,
            initial_soc=initial_soc, name=name,
        )


@register("storage", "nimh")
class NiMHBattery(ChemistryBattery):
    """Single NiMH cell (1.2 V nominal, flat discharge plateau)."""

    table_label = "NiMH rech. batt."

    def __init__(self, capacity_mah: float = 1800.0, initial_soc: float = 0.5,
                 name: str = ""):
        super().__init__(
            capacity_mah=capacity_mah,
            nominal_voltage=1.2,
            ocv_curve=((0.0, 1.0), (0.1, 1.18), (0.5, 1.25), (0.9, 1.33),
                       (1.0, 1.4)),
            max_charge_c=0.3, max_discharge_c=1.0,
            charge_efficiency=0.85, discharge_efficiency=0.92,
            self_discharge_per_month=0.20, cycle_life=800,
            initial_soc=initial_soc, name=name,
        )


@register("storage", "aa_pack")
class AABatteryPack(ChemistryBattery):
    """Series pack of AA NiMH cells (System C/D style '2xAA rech. batts.')."""

    table_label = "AA rech. batts."

    def __init__(self, cells: int = 2, capacity_mah: float = 2000.0,
                 initial_soc: float = 0.5, name: str = ""):
        if cells < 1:
            raise ValueError("cells must be >= 1")
        self.cells = cells
        super().__init__(
            capacity_mah=capacity_mah,
            nominal_voltage=1.2 * cells,
            ocv_curve=((0.0, 1.0 * cells), (0.1, 1.18 * cells),
                       (0.5, 1.25 * cells), (0.9, 1.33 * cells),
                       (1.0, 1.4 * cells)),
            max_charge_c=0.3, max_discharge_c=1.0,
            charge_efficiency=0.85, discharge_efficiency=0.92,
            self_discharge_per_month=0.20, cycle_life=800,
            initial_soc=initial_soc, name=name,
        )


@register("storage", "lithium_primary")
class LithiumPrimaryCell(ChemistryBattery):
    """Non-rechargeable lithium primary (System B's backup store).

    ``charge`` accepts nothing; the cell only drains. High energy density
    and very low self-discharge make it the survey's archetypal
    "energy backup" alongside System A's fuel cell.
    """

    is_backup = True
    table_label = "Li non-rech. batt."

    def __init__(self, capacity_mah: float = 2400.0, initial_soc: float = 1.0,
                 name: str = ""):
        super().__init__(
            capacity_mah=capacity_mah,
            nominal_voltage=3.6,
            ocv_curve=((0.0, 3.0), (0.05, 3.3), (0.5, 3.6), (1.0, 3.65)),
            max_charge_c=0.1, max_discharge_c=0.5,
            charge_efficiency=1.0, discharge_efficiency=0.98,
            self_discharge_per_month=0.001, rechargeable=False,
            cycle_life=1, initial_soc=initial_soc, name=name,
        )


@register("storage", "thin_film")
class ThinFilmBattery(ChemistryBattery):
    """Solid-state thin-film micro-battery (EnerChip class).

    Tiny capacity (tens-hundreds of uAh), negligible self-discharge, very
    limited current — but thousands of cycles; the storage of the
    commercial kits E, F and G in Table I.
    """

    table_label = "Thin-film battery"

    def __init__(self, capacity_uah: float = 100.0, initial_soc: float = 0.5,
                 name: str = ""):
        if capacity_uah <= 0:
            raise ValueError("capacity_uah must be positive")
        self.capacity_uah = capacity_uah
        super().__init__(
            capacity_mah=capacity_uah * 1e-3,
            nominal_voltage=3.8,
            ocv_curve=((0.0, 3.0), (0.1, 3.6), (0.5, 3.85), (1.0, 4.1)),
            max_charge_c=1.0, max_discharge_c=5.0,
            charge_efficiency=0.98, discharge_efficiency=0.98,
            self_discharge_per_month=0.025, cycle_life=5000,
            initial_soc=initial_soc, name=name,
        )
