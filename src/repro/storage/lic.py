"""Lithium-ion capacitor (LIC) hybrid storage model.

The survey cites the authors' LIC characterisation work (ref. [10],
Porcarelli et al., INSS 2012: "Characterization of lithium-ion capacitors
for low-power energy neutral wireless sensor networks"). An LIC is a hybrid
between a supercapacitor and a lithium battery: capacitor-like linear
voltage behaviour within a *bounded* window (the pre-doped anode forbids
discharge below ~2.2 V), energy density several times a supercap's, and
self-discharge far below a supercap's leakage. That combination is why the
reference positions LICs as the buffer of choice for energy-neutral nodes.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from .base import EnergyStorage

__all__ = ["LithiumIonCapacitor"]


@register("storage", "lic")
class LithiumIonCapacitor(EnergyStorage):
    """Lithium-ion capacitor: C*V physics inside a [v_min, v_max] window.

    Parameters
    ----------
    capacitance_f:
        Nameplate capacitance, farads.
    max_voltage:
        Upper voltage bound, V (typ. 3.8).
    min_voltage:
        Lower voltage bound, V (typ. 2.2 — going lower damages the cell,
        so the model simply refuses).
    leakage_resistance:
        Effective self-discharge resistance, ohms (much larger than a
        supercap's; megaohm scale).
    initial_soc:
        Initial usable state of charge in [0, 1].
    name:
        Instance label.
    """

    table_label = "Li-ion capacitor"

    def __init__(self, capacitance_f: float = 40.0, max_voltage: float = 3.8,
                 min_voltage: float = 2.2, leakage_resistance: float = 2e6,
                 initial_soc: float = 0.5, name: str = ""):
        if capacitance_f <= 0:
            raise ValueError("capacitance_f must be positive")
        if not 0.0 < min_voltage < max_voltage:
            raise ValueError("need 0 < min_voltage < max_voltage")
        if leakage_resistance <= 0:
            raise ValueError("leakage_resistance must be positive")
        self.capacitance_f = capacitance_f
        self.max_voltage = max_voltage
        self.min_voltage = min_voltage
        self.leakage_resistance = leakage_resistance
        usable = 0.5 * capacitance_f * (max_voltage ** 2 - min_voltage ** 2)
        super().__init__(capacity_j=usable, initial_soc=initial_soc,
                         charge_efficiency=0.99, discharge_efficiency=0.99,
                         name=name)

    def voltage(self) -> float:
        """Terminal voltage from stored energy: E = C/2 (V^2 - Vmin^2)."""
        v_sq = self.min_voltage ** 2 + 2.0 * self.energy_j / self.capacitance_f
        return min(self.max_voltage, math.sqrt(v_sq))

    def step_idle(self, dt: float) -> float:
        """RC self-discharge down to (but never below) the voltage floor."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        v = self.voltage()
        if v <= self.min_voltage or self.energy_j <= 0:
            return 0.0
        tau = self.leakage_resistance * self.capacitance_f
        v_new = max(self.min_voltage, v * math.exp(-dt / tau))
        # v_new * v_new (not v_new ** 2): keeps this expression bitwise
        # reproducible by the numpy-batched sweep kernel (libm pow and a
        # product differ by 1 ULP on a small fraction of inputs).
        e_new = 0.5 * self.capacitance_f * (v_new * v_new -
                                            self.min_voltage ** 2)
        lost = max(0.0, self.energy_j - e_new)
        self.energy_j -= lost
        return lost

    # ------------------------------------------------------------------
    # Kernel lowering (see repro.simulation.kernel)
    # ------------------------------------------------------------------
    def _kernel_voltage(self, dt: float):
        """Inlined :meth:`voltage`: E = C/2 (V^2 - Vmin^2) inverted."""
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, LithiumIonCapacitor, "voltage")
        store = self
        cap = self.capacitance_f
        min_v2 = self.min_voltage ** 2
        max_v = self.max_voltage
        sqrt = math.sqrt

        def voltage() -> float:
            v_sq = min_v2 + 2.0 * store.energy_j / cap
            v = sqrt(v_sq)
            return max_v if max_v <= v else v

        return voltage

    def _kernel_idle(self, dt: float):
        """Inlined :meth:`step_idle` with the RC decay factor hoisted."""
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, LithiumIonCapacitor, "step_idle", "voltage")
        store = self
        cap = self.capacitance_f
        half_cap = 0.5 * cap
        min_v = self.min_voltage
        min_v2 = min_v ** 2
        max_v = self.max_voltage
        decay = math.exp(-dt / (self.leakage_resistance * cap))
        sqrt = math.sqrt

        def idle() -> None:
            v_sq = min_v2 + 2.0 * store.energy_j / cap
            v = sqrt(v_sq)
            if v > max_v:
                v = max_v
            if v <= min_v or store.energy_j <= 0:
                return
            v_new = v * decay
            if v_new < min_v:
                v_new = min_v
            e_new = half_cap * (v_new * v_new - min_v2)
            lost = store.energy_j - e_new
            if lost > 0.0:
                store.energy_j -= lost

        return idle

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_init(self, dt: float, siblings, state) -> None:
        from ..simulation.kernel.protocol import ensure_unmodified
        from ..simulation.kernel.batched import gather
        for store in siblings:
            ensure_unmodified(store, LithiumIonCapacitor,
                              "voltage", "step_idle")
        state.lic_cap = gather(siblings, lambda s: s.capacitance_f)
        state.lic_half_cap = gather(siblings, lambda s: 0.5 * s.capacitance_f)
        state.lic_min_v = gather(siblings, lambda s: s.min_voltage)
        state.lic_min_v2 = gather(siblings, lambda s: s.min_voltage ** 2)
        state.lic_max_v = gather(siblings, lambda s: s.max_voltage)
        state.lic_decay = gather(
            siblings,
            lambda s: math.exp(-dt / (s.leakage_resistance * s.capacitance_f)))

    def _batch_voltage(self, dt: float, siblings, state):
        import numpy as np
        cap, min_v2, max_v = state.lic_cap, state.lic_min_v2, state.lic_max_v

        def voltage():
            v_sq = min_v2 + 2.0 * state.energy / cap
            v = np.sqrt(v_sq)
            return np.where(max_v <= v, max_v, v)

        return voltage

    def _batch_idle(self, dt: float, siblings, state):
        import numpy as np
        cap = state.lic_cap
        half_cap = state.lic_half_cap
        min_v = state.lic_min_v
        min_v2 = state.lic_min_v2
        max_v = state.lic_max_v
        decay = state.lic_decay

        def idle() -> None:
            v_sq = min_v2 + 2.0 * state.energy / cap
            v = np.sqrt(v_sq)
            v = np.where(v > max_v, max_v, v)
            act = (v > min_v) & (state.energy > 0.0)
            v_new = v * decay
            v_new = np.where(v_new < min_v, min_v, v_new)
            e_new = half_cap * (v_new * v_new - min_v2)
            lost = state.energy - e_new
            state.energy = state.energy - np.where(act & (lost > 0.0),
                                                   lost, 0.0)

        return idle
