"""Energy buffer models: the storage technologies of Table I.

Supercapacitors (three-branch per survey ref. [9]), lithium and NiMH
chemistries, thin-film micro-batteries, primary cells, hydrogen fuel-cell
backup (System A), and lithium-ion capacitors (ref. [10]).
"""

from .aging import AgingStorage
from .base import EnergyStorage
from .batteries import (
    AABatteryPack,
    ChemistryBattery,
    LiIonBattery,
    LiPolymerBattery,
    LithiumPrimaryCell,
    NiMHBattery,
    ThinFilmBattery,
)
from .fuel_cell import HydrogenFuelCell
from .ideal import IdealStorage
from .lic import LithiumIonCapacitor
from .supercapacitor import Supercapacitor

__all__ = [
    "EnergyStorage",
    "AgingStorage",
    "IdealStorage",
    "Supercapacitor",
    "ChemistryBattery",
    "LiIonBattery",
    "LiPolymerBattery",
    "NiMHBattery",
    "AABatteryPack",
    "LithiumPrimaryCell",
    "ThinFilmBattery",
    "HydrogenFuelCell",
    "LithiumIonCapacitor",
]
