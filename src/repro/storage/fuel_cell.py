"""Hydrogen fuel cell backup model.

System A (Smart Power Unit) "uses a hydrogen fuel cell which has a high
energy density compared with traditional battery and which starts to work
when the stored energy coming from the environmental sources is running
out" (survey Sec. II.1). Operationally it is a discharge-only reserve with
very high capacity, modest power, a start-up delay, and a finite fuel
inventory that cannot be refilled from the bus — the properties the
fuel-cell backup experiment (E10) probes.
"""

from __future__ import annotations

from ..spec.registry import register

from .base import EnergyStorage

__all__ = ["HydrogenFuelCell"]


@register("storage", "hydrogen_fuel_cell")
class HydrogenFuelCell(EnergyStorage):
    """Discharge-only hydrogen fuel cell with start-up latency.

    Parameters
    ----------
    fuel_energy_j:
        Usable energy in the fuel cartridge, joules (a few Wh for small
        PEM cells; default 5 Wh = 18 kJ).
    max_power_w:
        Rated electrical output power, W.
    output_voltage:
        Nominal stack output voltage, V.
    startup_time:
        Seconds of operation before full power is available; output ramps
        linearly from zero during this window after each cold start.
    conversion_efficiency:
        Fuel-to-electric conversion efficiency applied on top of the
        usable-energy figure (kept at 1.0 when ``fuel_energy_j`` already
        denotes electrical output energy).
    name:
        Instance label.
    """

    is_backup = True
    table_label = "Fuel cell"

    def __init__(self, fuel_energy_j: float = 18_000.0, max_power_w: float = 0.5,
                 output_voltage: float = 3.6, startup_time: float = 30.0,
                 conversion_efficiency: float = 1.0, name: str = ""):
        if max_power_w <= 0:
            raise ValueError("max_power_w must be positive")
        if output_voltage <= 0:
            raise ValueError("output_voltage must be positive")
        if startup_time < 0:
            raise ValueError("startup_time must be non-negative")
        super().__init__(
            capacity_j=fuel_energy_j,
            initial_soc=1.0,
            discharge_efficiency=conversion_efficiency,
            max_discharge_w=max_power_w,
            rechargeable=False,
            name=name,
        )
        self.output_voltage = output_voltage
        self.startup_time = startup_time
        self._warmup = 0.0   # seconds of continuous operation so far
        self.starts = 0      # cold-start count (reported by experiments)

    # ------------------------------------------------------------------
    def voltage(self) -> float:
        return self.output_voltage if self.energy_j > 0 else 0.0

    @property
    def is_warm(self) -> bool:
        return self._warmup >= self.startup_time

    def available_power(self) -> float:
        """Power currently available given warm-up state (W)."""
        if self.energy_j <= 0:
            return 0.0
        if self.startup_time == 0 or self.is_warm:
            return self.max_discharge_w
        return self.max_discharge_w * (self._warmup / self.startup_time)

    def discharge(self, power_w: float, dt: float) -> float:
        if power_w < 0:
            raise ValueError(f"power_w must be non-negative, got {power_w}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if power_w == 0.0:
            # Not being used this step: the stack cools down.
            self._cool(dt)
            return 0.0
        if self._warmup == 0.0 and self.energy_j > 0:
            self.starts += 1
        ceiling = self.available_power()
        delivered = super().discharge(min(power_w, ceiling), dt) if ceiling > 0 else 0.0
        self._warmup = min(self._warmup + dt, self.startup_time + dt)
        return delivered

    def step_idle(self, dt: float) -> float:
        lost = super().step_idle(dt)
        self._cool(dt)
        return lost

    def _cool(self, dt: float) -> None:
        # Cool-down at the same rate as warm-up.
        self._warmup = max(0.0, self._warmup - dt)

    @property
    def fuel_remaining_fraction(self) -> float:
        return self.soc
