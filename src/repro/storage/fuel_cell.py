"""Hydrogen fuel cell backup model.

System A (Smart Power Unit) "uses a hydrogen fuel cell which has a high
energy density compared with traditional battery and which starts to work
when the stored energy coming from the environmental sources is running
out" (survey Sec. II.1). Operationally it is a discharge-only reserve with
very high capacity, modest power, a start-up delay, and a finite fuel
inventory that cannot be refilled from the bus — the properties the
fuel-cell backup experiment (E10) probes.
"""

from __future__ import annotations

from ..spec.registry import register

from .base import EnergyStorage

__all__ = ["HydrogenFuelCell"]


@register("storage", "hydrogen_fuel_cell")
class HydrogenFuelCell(EnergyStorage):
    """Discharge-only hydrogen fuel cell with start-up latency.

    Parameters
    ----------
    fuel_energy_j:
        Usable energy in the fuel cartridge, joules (a few Wh for small
        PEM cells; default 5 Wh = 18 kJ).
    max_power_w:
        Rated electrical output power, W.
    output_voltage:
        Nominal stack output voltage, V.
    startup_time:
        Seconds of operation before full power is available; output ramps
        linearly from zero during this window after each cold start.
    conversion_efficiency:
        Fuel-to-electric conversion efficiency applied on top of the
        usable-energy figure (kept at 1.0 when ``fuel_energy_j`` already
        denotes electrical output energy).
    name:
        Instance label.
    """

    is_backup = True
    table_label = "Fuel cell"

    def __init__(self, fuel_energy_j: float = 18_000.0, max_power_w: float = 0.5,
                 output_voltage: float = 3.6, startup_time: float = 30.0,
                 conversion_efficiency: float = 1.0, name: str = ""):
        if max_power_w <= 0:
            raise ValueError("max_power_w must be positive")
        if output_voltage <= 0:
            raise ValueError("output_voltage must be positive")
        if startup_time < 0:
            raise ValueError("startup_time must be non-negative")
        super().__init__(
            capacity_j=fuel_energy_j,
            initial_soc=1.0,
            discharge_efficiency=conversion_efficiency,
            max_discharge_w=max_power_w,
            rechargeable=False,
            name=name,
        )
        self.output_voltage = output_voltage
        self.startup_time = startup_time
        self._warmup = 0.0   # seconds of continuous operation so far
        self.starts = 0      # cold-start count (reported by experiments)

    # ------------------------------------------------------------------
    def voltage(self) -> float:
        return self.output_voltage if self.energy_j > 0 else 0.0

    @property
    def is_warm(self) -> bool:
        return self._warmup >= self.startup_time

    def available_power(self) -> float:
        """Power currently available given warm-up state (W)."""
        if self.energy_j <= 0:
            return 0.0
        if self.startup_time == 0 or self.is_warm:
            return self.max_discharge_w
        return self.max_discharge_w * (self._warmup / self.startup_time)

    def discharge(self, power_w: float, dt: float) -> float:
        if power_w < 0:
            raise ValueError(f"power_w must be non-negative, got {power_w}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if power_w == 0.0:
            # Not being used this step: the stack cools down.
            self._cool(dt)
            return 0.0
        if self._warmup == 0.0 and self.energy_j > 0:
            self.starts += 1
        ceiling = self.available_power()
        delivered = super().discharge(min(power_w, ceiling), dt) if ceiling > 0 else 0.0
        self._warmup = min(self._warmup + dt, self.startup_time + dt)
        return delivered

    def step_idle(self, dt: float) -> float:
        lost = super().step_idle(dt)
        self._cool(dt)
        return lost

    def _cool(self, dt: float) -> None:
        # Cool-down at the same rate as warm-up.
        self._warmup = max(0.0, self._warmup - dt)

    @property
    def fuel_remaining_fraction(self) -> float:
        return self.soc

    # ------------------------------------------------------------------
    # Kernel lowering (see repro.simulation.kernel)
    # ------------------------------------------------------------------
    def _kernel_voltage(self, dt: float):
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, HydrogenFuelCell, "voltage")
        store = self
        out_v = self.output_voltage

        def voltage() -> float:
            return out_v if store.energy_j > 0 else 0.0

        return voltage

    def _kernel_discharge(self, dt: float):
        """Inlined :meth:`discharge`: warm-up ramp + base discharge."""
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, HydrogenFuelCell, "discharge",
                          "available_power", "is_warm", "_cool")
        base_discharge = self._kernel_base_discharge(dt)
        store = self
        max_d = self.max_discharge_w
        startup = self.startup_time
        warm_cap = startup + dt

        def discharge(power_w: float) -> float:
            if power_w == 0.0:
                # Not being used this step: the stack cools down.
                store._warmup = max(0.0, store._warmup - dt)
                return 0.0
            if store._warmup == 0.0 and store.energy_j > 0:
                store.starts += 1
            # available_power(), inlined.
            if store.energy_j <= 0:
                ceiling = 0.0
            elif startup == 0 or store._warmup >= startup:
                ceiling = max_d
            else:
                ceiling = max_d * (store._warmup / startup)
            if ceiling > 0:
                delivered = base_discharge(
                    power_w if power_w <= ceiling else ceiling)
            else:
                delivered = 0.0
            warmed = store._warmup + dt
            store._warmup = warmed if warmed <= warm_cap else warm_cap
            return delivered

        return discharge

    def _kernel_idle(self, dt: float):
        """Base self-discharge (zero for a sealed cartridge) + cooling."""
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, HydrogenFuelCell, "step_idle", "_cool")
        base_idle = self._kernel_base_idle(dt)
        store = self

        def idle() -> None:
            base_idle()
            store._warmup = max(0.0, store._warmup - dt)

        return idle

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_init(self, dt: float, siblings, state) -> None:
        import numpy as np
        from ..simulation.kernel.batched import gather
        from ..simulation.kernel.protocol import ensure_unmodified
        for store in siblings:
            ensure_unmodified(store, HydrogenFuelCell, "voltage",
                              "discharge", "available_power", "is_warm",
                              "_cool", "step_idle")
        state.warmup = gather(siblings, lambda s: s._warmup)
        state.starts = np.array([s.starts for s in siblings], dtype=np.int64)

    def _batch_writeback(self, siblings, state) -> None:
        super()._batch_writeback(siblings, state)
        for k, store in enumerate(siblings):
            store._warmup = float(state.warmup[k])
            store.starts = int(state.starts[k])

    def _batch_voltage(self, dt: float, siblings, state):
        """Vectorized twin of :meth:`_kernel_voltage`."""
        import numpy as np
        from ..simulation.kernel.batched import gather
        out_v = gather(siblings, lambda s: s.output_voltage)

        def voltage():
            return np.where(state.energy > 0.0, out_v, 0.0)

        return voltage

    def _batch_discharge(self, dt: float, siblings, state):
        """Vectorized twin of :meth:`_kernel_discharge`.

        Lanes receiving zero power are complete no-ops: the bank's
        cascade only calls a backup store's discharge when the lane has
        residual demand, so the scalar cooling-on-unused branch never
        runs inside the kernel — cooling happens in :meth:`_batch_idle`
        every step, exactly like the scalar closures.
        """
        import numpy as np
        from ..simulation.kernel.batched import gather
        base_discharge = super()._batch_discharge(dt, siblings, state)
        max_d = gather(siblings, lambda s: s.max_discharge_w)
        startup = gather(siblings, lambda s: s.startup_time)
        warm_cap = gather(siblings, lambda s: s.startup_time + dt)

        def discharge(power_w):
            act = power_w != 0.0
            state.starts = state.starts + (
                act & (state.warmup == 0.0) & (state.energy > 0.0))
            # available_power(), vectorized.
            ceiling = np.where(
                state.energy <= 0.0, 0.0,
                np.where((startup == 0.0) | (state.warmup >= startup),
                         max_d, max_d * (state.warmup / startup)))
            request = np.where(act & (ceiling > 0.0),
                               np.minimum(power_w, ceiling), 0.0)
            delivered = base_discharge(request)
            warmed = state.warmup + dt
            state.warmup = np.where(act, np.minimum(warmed, warm_cap),
                                    state.warmup)
            return delivered

        return discharge

    def _batch_idle(self, dt: float, siblings, state):
        """Vectorized twin of :meth:`_kernel_idle` (base idle + cooling)."""
        import numpy as np
        base_idle = super()._batch_idle(dt, siblings, state)

        def idle() -> None:
            base_idle()
            cooled = state.warmup - dt
            state.warmup = np.where(cooled > 0.0, cooled, 0.0)

        return idle
