"""Ideal lossless storage — the analytic reference buffer.

Used by tests (as a known-good oracle for energy conservation) and by
experiments that want to isolate harvesting-side effects from storage
losses (e.g. the MPPT study E5 in DESIGN.md).
"""

from __future__ import annotations

from ..spec.registry import register

from .base import EnergyStorage

__all__ = ["IdealStorage"]


@register("storage", "ideal")
class IdealStorage(EnergyStorage):
    """Lossless, leakage-free buffer with a constant terminal voltage."""

    table_label = "Ideal store"

    def __init__(self, capacity_j: float = 100.0, initial_soc: float = 0.5,
                 nominal_voltage: float = 3.0, name: str = ""):
        super().__init__(capacity_j=capacity_j, initial_soc=initial_soc,
                         name=name)
        if nominal_voltage <= 0:
            raise ValueError("nominal_voltage must be positive")
        self.nominal_voltage = nominal_voltage

    def voltage(self) -> float:
        return self.nominal_voltage if self.energy_j > 0 else 0.0

    # ------------------------------------------------------------------
    # Kernel lowering (see repro.simulation.kernel)
    # ------------------------------------------------------------------
    def _kernel_voltage(self, dt: float):
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, IdealStorage, "voltage")
        store = self
        nominal = self.nominal_voltage

        def voltage() -> float:
            return nominal if store.energy_j > 0 else 0.0

        return voltage

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_voltage(self, dt: float, siblings, state):
        import numpy as np
        from ..simulation.kernel.protocol import ensure_unmodified
        from ..simulation.kernel.batched import gather
        for store in siblings:
            ensure_unmodified(store, IdealStorage, "voltage")
        nominal = gather(siblings, lambda s: s.nominal_voltage)

        def voltage():
            return np.where(state.energy > 0.0, nominal, 0.0)

        return voltage
