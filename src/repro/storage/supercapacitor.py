"""Supercapacitor model with three-branch dynamics.

Supercapacitors buffer systems A, C and the survey's System B shared store.
The survey cites the authors' own modelling work (ref. [9], Weddell et al.,
"Accurate supercapacitor modeling for energy-harvesting wireless sensor
nodes", IEEE TCAS-II 2011), which shows that for EH workloads a supercap is
*not* an ideal capacitor: charge redistribution between a fast-access
branch and a slow bulk branch, plus a leakage resistance, dominate
multi-hour behaviour. This module implements that three-branch structure:

* **fast branch** ``C_fast`` — immediately accessible charge (terminal);
* **slow branch** ``C_slow`` — bulk charge exchanging with the fast branch
  through ``R_redistribution`` (time constant of minutes-hours);
* **leakage** ``R_leak`` across the terminals.

Terminal voltage is the fast-branch voltage; usable energy counts both
branches. The classic EH symptom reproduced: after a burst charge the
terminal voltage sags as charge redistributes into the bulk, and a "full"
cap left idle loses voltage steadily through leakage.
"""

from __future__ import annotations

from ..spec.registry import register

import math

from .base import EnergyStorage

__all__ = ["Supercapacitor"]


@register("storage", "supercapacitor")
class Supercapacitor(EnergyStorage):
    """Three-branch supercapacitor.

    Parameters
    ----------
    capacitance_f:
        Total nameplate capacitance, farads (fast + slow branches).
    rated_voltage:
        Maximum terminal voltage, V.
    fast_fraction:
        Fraction of the capacitance in the fast (terminal) branch.
    redistribution_tau:
        Time constant of fast<->slow charge exchange, seconds.
    leakage_resistance:
        Terminal leakage resistance, ohms (tens of kOhm for real parts).
    min_voltage:
        Usable-voltage floor (converter cut-off); energy below it is
        stranded and excluded from ``capacity_j``.
    initial_soc:
        Initial usable state of charge in [0, 1].
    name:
        Instance label.
    """

    table_label = "Supercap."

    def __init__(self, capacitance_f: float = 25.0, rated_voltage: float = 5.0,
                 fast_fraction: float = 0.8, redistribution_tau: float = 1800.0,
                 leakage_resistance: float = 40_000.0, min_voltage: float = 0.5,
                 initial_soc: float = 0.5, name: str = ""):
        if capacitance_f <= 0:
            raise ValueError("capacitance_f must be positive")
        if rated_voltage <= 0:
            raise ValueError("rated_voltage must be positive")
        if not 0.0 < fast_fraction <= 1.0:
            raise ValueError("fast_fraction must be in (0, 1]")
        if redistribution_tau <= 0:
            raise ValueError("redistribution_tau must be positive")
        if leakage_resistance <= 0:
            raise ValueError("leakage_resistance must be positive")
        if not 0.0 <= min_voltage < rated_voltage:
            raise ValueError("need 0 <= min_voltage < rated_voltage")

        self.capacitance_f = capacitance_f
        self.rated_voltage = rated_voltage
        self.min_voltage = min_voltage
        self.c_fast = capacitance_f * fast_fraction
        self.c_slow = capacitance_f * (1.0 - fast_fraction)
        self.redistribution_tau = redistribution_tau
        self.leakage_resistance = leakage_resistance

        # Usable capacity: energy between min_voltage and rated_voltage on
        # the full capacitance.
        usable = 0.5 * capacitance_f * (rated_voltage ** 2 - min_voltage ** 2)
        super().__init__(capacity_j=usable, initial_soc=initial_soc, name=name)

        # Distribute the initial energy at equal branch voltages.
        v0 = self._voltage_for_usable_energy(self.energy_j)
        self.v_fast = v0
        self.v_slow = v0
        self._sync_energy()

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _voltage_for_usable_energy(self, usable_j: float) -> float:
        """Common branch voltage holding the given usable energy."""
        total = usable_j + 0.5 * self.capacitance_f * self.min_voltage ** 2
        return math.sqrt(max(0.0, 2.0 * total / self.capacitance_f))

    def _usable_energy(self) -> float:
        """Usable energy across both branches (J), floor at min_voltage.

        State squarings are written ``v * v`` (not ``v ** 2``): libm's
        ``pow`` and a plain product differ by 1 ULP on a small fraction
        of inputs, and the batched sweep kernel evaluates this expression
        with numpy (whose squaring is a product) — the product form keeps
        the legacy, kernel and batched paths bit-for-bit identical.
        """
        e_fast = 0.5 * self.c_fast * max(0.0, self.v_fast * self.v_fast -
                                         self.min_voltage ** 2)
        if self.c_slow > 0:
            e_slow = 0.5 * self.c_slow * max(0.0, self.v_slow * self.v_slow -
                                             self.min_voltage ** 2)
        else:
            e_slow = 0.0
        return e_fast + e_slow

    def _sync_energy(self) -> None:
        self.energy_j = min(self.capacity_j, self._usable_energy())

    # ------------------------------------------------------------------
    # EnergyStorage interface
    # ------------------------------------------------------------------
    def voltage(self) -> float:
        """Terminal voltage = fast-branch voltage."""
        return self.v_fast

    def charge(self, power_w: float, dt: float) -> float:
        if power_w < 0:
            raise ValueError(f"power_w must be non-negative, got {power_w}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if power_w == 0.0:
            return 0.0
        # Energy enters the fast branch; clamp at rated voltage.
        e_fast = 0.5 * self.c_fast * (self.v_fast * self.v_fast)
        room = 0.5 * self.c_fast * self.rated_voltage ** 2 - e_fast
        delivered = min(power_w * dt, max(0.0, room))
        e_fast += delivered
        self.v_fast = math.sqrt(2.0 * e_fast / self.c_fast)
        self._sync_energy()
        self.total_charged_j += delivered
        return delivered / dt

    def discharge(self, power_w: float, dt: float) -> float:
        if power_w < 0:
            raise ValueError(f"power_w must be non-negative, got {power_w}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if power_w == 0.0:
            return 0.0
        deliverable = min(power_w, self.max_discharge_w)
        e_fast = 0.5 * self.c_fast * (self.v_fast * self.v_fast)
        floor = 0.5 * self.c_fast * self.min_voltage ** 2
        available = max(0.0, e_fast - floor)
        drawn = min(deliverable * dt, available)
        e_fast -= drawn
        self.v_fast = math.sqrt(2.0 * e_fast / self.c_fast)
        self._sync_energy()
        self.total_discharged_j += drawn
        return drawn / dt

    def step_idle(self, dt: float) -> float:
        """Charge redistribution between branches + terminal leakage.

        Returns the energy lost to leakage (J). Redistribution conserves
        charge (not energy — the resistive exchange dissipates, which is
        the point of ref. [9]).
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        before = self._usable_energy()

        # Redistribution: exponential approach of both branch voltages to
        # the common charge-conserving voltage.
        if self.c_slow > 0:
            v_eq = (self.c_fast * self.v_fast + self.c_slow * self.v_slow) / \
                self.capacitance_f
            alpha = 1.0 - math.exp(-dt / self.redistribution_tau)
            self.v_fast += alpha * (v_eq - self.v_fast)
            self.v_slow += alpha * (v_eq - self.v_slow)

        # Leakage from the fast (terminal) branch: RC decay.
        tau_leak = self.leakage_resistance * self.c_fast
        self.v_fast *= math.exp(-dt / tau_leak)

        self._sync_energy()
        return max(0.0, before - self._usable_energy())

    def leakage_power(self) -> float:
        """Instantaneous terminal leakage power V^2/R (W), for reports."""
        return self.v_fast ** 2 / self.leakage_resistance

    # ------------------------------------------------------------------
    # Kernel lowering (see repro.simulation.kernel)
    # ------------------------------------------------------------------
    def _kernel_consts(self, dt: float) -> tuple:
        """Hoisted three-branch run constants, shared by the hooks."""
        c_fast = self.c_fast
        half_cf = 0.5 * c_fast
        min_v2 = self.min_voltage ** 2
        return (
            c_fast,
            self.c_slow,
            0.5 * self.c_slow,
            self.capacitance_f,
            self.capacity_j,
            min_v2,
            half_cf * self.rated_voltage ** 2,   # fast-branch full energy
            half_cf * min_v2,                    # fast-branch energy floor
            half_cf,
            1.0 - math.exp(-dt / self.redistribution_tau),
            math.exp(-dt / (self.leakage_resistance * c_fast)),
        )

    def _kernel_guard(self) -> None:
        from ..simulation.kernel.protocol import ensure_unmodified
        ensure_unmodified(self, Supercapacitor, "charge", "discharge",
                          "step_idle", "voltage", "_usable_energy",
                          "_sync_energy")

    def _kernel_sync(self, dt: float):
        """Inlined :meth:`_sync_energy` over both branches."""
        (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
         floor_e, half_cf, alpha, leak) = self._kernel_consts(dt)
        store = self

        def sync() -> None:
            d_f = store.v_fast * store.v_fast - min_v2
            usable = half_cf * (d_f if d_f > 0.0 else 0.0)
            if c_slow > 0.0:
                d_s = store.v_slow * store.v_slow - min_v2
                usable += half_cs * (d_s if d_s > 0.0 else 0.0)
            store.energy_j = usable if usable < capacity_j else capacity_j

        return sync

    def _kernel_voltage(self, dt: float):
        self._kernel_guard()
        store = self

        def voltage() -> float:
            return store.v_fast

        return voltage

    def _kernel_charge(self, dt: float):
        self._kernel_guard()
        (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
         floor_e, half_cf, alpha, leak) = self._kernel_consts(dt)
        store = self
        sync = self._kernel_sync(dt)
        sqrt = math.sqrt

        def charge(power_w: float) -> float:
            if power_w == 0.0:
                return 0.0
            e_fast = half_cf * (store.v_fast * store.v_fast)
            room = full_e - e_fast
            if room < 0.0:
                room = 0.0
            delivered = power_w * dt
            if delivered > room:
                delivered = room
            e_fast += delivered
            store.v_fast = sqrt(2.0 * e_fast / c_fast)
            sync()
            store.total_charged_j += delivered
            return delivered / dt

        return charge

    def _kernel_discharge(self, dt: float):
        self._kernel_guard()
        (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
         floor_e, half_cf, alpha, leak) = self._kernel_consts(dt)
        store = self
        sync = self._kernel_sync(dt)
        sqrt = math.sqrt
        max_d = self.max_discharge_w

        def discharge(power_w: float) -> float:
            if power_w == 0.0:
                return 0.0
            deliverable = power_w if power_w <= max_d else max_d
            e_fast = half_cf * (store.v_fast * store.v_fast)
            available = e_fast - floor_e
            if available < 0.0:
                available = 0.0
            drawn = deliverable * dt
            if drawn > available:
                drawn = available
            e_fast -= drawn
            store.v_fast = sqrt(2.0 * e_fast / c_fast)
            sync()
            store.total_discharged_j += drawn
            return drawn / dt

        return discharge

    def _kernel_idle(self, dt: float):
        self._kernel_guard()
        (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
         floor_e, half_cf, alpha, leak) = self._kernel_consts(dt)
        store = self
        sync = self._kernel_sync(dt)

        def idle() -> None:
            if c_slow > 0.0:
                v_eq = (c_fast * store.v_fast + c_slow * store.v_slow) / cap_f
                store.v_fast += alpha * (v_eq - store.v_fast)
                store.v_slow += alpha * (v_eq - store.v_slow)
            store.v_fast *= leak
            sync()

        return idle

    # ------------------------------------------------------------------
    # Batched lowering (see repro.simulation.kernel.batched)
    # ------------------------------------------------------------------
    def _batch_init(self, dt: float, siblings, state) -> None:
        """Shared branch-voltage arrays + the hoisted run constants."""
        import numpy as np
        for store in siblings:
            store._kernel_guard()
        state.v_fast = np.array([s.v_fast for s in siblings])
        state.v_slow = np.array([s.v_slow for s in siblings])
        # Per-lane constants via the *scalar* helper: identical Python
        # arithmetic to what the scalar kernel hoists.
        consts = [s._kernel_consts(dt) for s in siblings]
        state.sc_consts = tuple(np.array(col, dtype=np.float64)
                                for col in zip(*consts))

    def _batch_writeback(self, siblings, state) -> None:
        super()._batch_writeback(siblings, state)
        for k, store in enumerate(siblings):
            store.v_fast = float(state.v_fast[k])
            store.v_slow = float(state.v_slow[k])

    def _batch_sync(self, state):
        """Vectorized :meth:`_kernel_sync`; ``act`` gates state writes."""
        import numpy as np
        (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
         floor_e, half_cf, alpha, leak) = state.sc_consts
        has_slow = c_slow > 0.0

        def sync(act) -> None:
            d_f = state.v_fast * state.v_fast - min_v2
            usable = half_cf * np.where(d_f > 0.0, d_f, 0.0)
            d_s = state.v_slow * state.v_slow - min_v2
            usable = usable + np.where(
                has_slow, half_cs * np.where(d_s > 0.0, d_s, 0.0), 0.0)
            new_energy = np.where(usable < capacity_j, usable, capacity_j)
            if act is None:
                state.energy = new_energy
            else:
                state.energy = np.where(act, new_energy, state.energy)

        return sync

    def _batch_voltage(self, dt: float, siblings, state):
        def voltage():
            return state.v_fast

        return voltage

    def _batch_charge(self, dt: float, siblings, state):
        import numpy as np
        (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
         floor_e, half_cf, alpha, leak) = state.sc_consts
        sync = self._batch_sync(state)

        def charge(power_w):
            act = power_w != 0.0
            e_fast = half_cf * (state.v_fast * state.v_fast)
            room = full_e - e_fast
            room = np.where(room < 0.0, 0.0, room)
            delivered = power_w * dt
            delivered = np.where(delivered > room, room, delivered)
            e_fast = e_fast + delivered
            state.v_fast = np.where(act, np.sqrt(2.0 * e_fast / c_fast),
                                    state.v_fast)
            sync(act)
            state.charged = state.charged + np.where(act, delivered, 0.0)
            return np.where(act, delivered / dt, 0.0)

        return charge

    def _batch_discharge(self, dt: float, siblings, state):
        import numpy as np
        from ..simulation.kernel.batched import gather
        (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
         floor_e, half_cf, alpha, leak) = state.sc_consts
        max_d = gather(siblings, lambda s: s.max_discharge_w)
        sync = self._batch_sync(state)

        def discharge(power_w):
            act = power_w != 0.0
            deliverable = np.minimum(power_w, max_d)
            e_fast = half_cf * (state.v_fast * state.v_fast)
            available = e_fast - floor_e
            available = np.where(available < 0.0, 0.0, available)
            drawn = deliverable * dt
            drawn = np.where(drawn > available, available, drawn)
            e_fast = e_fast - drawn
            state.v_fast = np.where(act, np.sqrt(2.0 * e_fast / c_fast),
                                    state.v_fast)
            sync(act)
            state.discharged = state.discharged + np.where(act, drawn, 0.0)
            return np.where(act, drawn / dt, 0.0)

        return discharge

    def _batch_idle(self, dt: float, siblings, state):
        import numpy as np
        (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
         floor_e, half_cf, alpha, leak) = state.sc_consts
        has_slow = c_slow > 0.0
        sync = self._batch_sync(state)

        def idle() -> None:
            v_eq = (c_fast * state.v_fast + c_slow * state.v_slow) / cap_f
            state.v_fast = np.where(
                has_slow, state.v_fast + alpha * (v_eq - state.v_fast),
                state.v_fast)
            state.v_slow = np.where(
                has_slow, state.v_slow + alpha * (v_eq - state.v_slow),
                state.v_slow)
            state.v_fast = state.v_fast * leak
            sync(None)

        return idle
