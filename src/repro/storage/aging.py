"""Storage aging: capacity fade under energy-harvesting cycling.

The survey's opening motivation is that batteries "have a finite capacity
and must be replaced or recharged when depleted" (Sec. I), and its storage
discussion leans on chemistry-specific characteristics (refs [9], [10]).
Energy-harvesting workloads cycle their buffer daily, so chemistry
lifetime — cycles to a capacity floor — decides the maintenance interval
that harvesting was supposed to eliminate.

:class:`AgingStorage` wraps any :class:`~repro.storage.EnergyStorage` and
applies two standard fade mechanisms:

* **cycle fade** — capacity falls linearly with full-equivalent cycles,
  calibrated so the wrapped store reaches ``end_of_life_fraction`` of its
  rated capacity after ``cycle_life`` cycles (the chemistry's datasheet
  figure);
* **calendar fade** — a slow constant-rate loss per year at rest.

Supercapacitors and LICs age orders of magnitude slower than batteries
(hundreds of thousands of cycles), which is exactly the trade Table I's
storage row embodies: the thin-film batteries of the commercial kits
(5 000 cycles) versus the NiMH packs (800) versus supercaps.
"""

from __future__ import annotations

from .base import EnergyStorage

__all__ = ["AgingStorage"]

SECONDS_PER_YEAR = 365.25 * 86_400.0


class AgingStorage(EnergyStorage):
    """Capacity-fade wrapper around an energy store.

    Parameters
    ----------
    inner:
        The store to age. Its ``cycle_life`` attribute is used when
        ``cycle_life`` is not given (all :class:`ChemistryBattery`
        subclasses carry one).
    cycle_life:
        Full-equivalent cycles to end of life.
    end_of_life_fraction:
        Remaining capacity fraction that defines end of life (industry
        convention: 0.8).
    calendar_fade_per_year:
        Capacity fraction lost per year regardless of cycling.
    """

    def __init__(self, inner: EnergyStorage, cycle_life: int | None = None,
                 end_of_life_fraction: float = 0.8,
                 calendar_fade_per_year: float = 0.02):
        if not isinstance(inner, EnergyStorage):
            raise TypeError("inner must be an EnergyStorage")
        if cycle_life is None:
            cycle_life = getattr(inner, "cycle_life", None)
        if cycle_life is None or cycle_life < 1:
            raise ValueError("cycle_life must be a positive integer")
        if not 0.0 < end_of_life_fraction < 1.0:
            raise ValueError("end_of_life_fraction must be in (0, 1)")
        if not 0.0 <= calendar_fade_per_year < 1.0:
            raise ValueError("calendar_fade_per_year must be in [0, 1)")

        self.inner = inner
        self.cycle_life = int(cycle_life)
        self.end_of_life_fraction = end_of_life_fraction
        self.calendar_fade_per_year = calendar_fade_per_year
        self.rated_capacity_j = inner.capacity_j
        self._fade_per_cycle = (1.0 - end_of_life_fraction) / self.cycle_life
        self._cycled_j = 0.0
        self._aged_seconds = 0.0

        # Mirror the inner store's public knobs; do NOT call super().__init__
        # (state lives in the wrapped store).
        self.name = f"aging({inner.name})"
        self.datasheet = inner.datasheet
        self.rechargeable = inner.rechargeable
        self.is_backup = inner.is_backup
        self.table_label = inner.table_label

    # ------------------------------------------------------------------
    # Fade state
    # ------------------------------------------------------------------
    @property
    def equivalent_cycles(self) -> float:
        return self._cycled_j / self.rated_capacity_j

    @property
    def health(self) -> float:
        """State of health: current capacity / rated capacity."""
        cycle_fade = self._fade_per_cycle * self.equivalent_cycles
        calendar_fade = self.calendar_fade_per_year * \
            (self._aged_seconds / SECONDS_PER_YEAR)
        return max(0.0, 1.0 - cycle_fade - calendar_fade)

    @property
    def end_of_life(self) -> bool:
        return self.health <= self.end_of_life_fraction

    def _apply_fade(self) -> None:
        faded = self.rated_capacity_j * self.health
        if faded < self.inner.capacity_j:
            self.inner.capacity_j = faded
            if self.inner.energy_j > faded:
                self.inner.energy_j = faded

    # ------------------------------------------------------------------
    # EnergyStorage interface (delegation + fade accounting)
    # ------------------------------------------------------------------
    @property
    def capacity_j(self) -> float:
        return self.inner.capacity_j

    @capacity_j.setter
    def capacity_j(self, value: float) -> None:
        self.inner.capacity_j = value

    @property
    def energy_j(self) -> float:
        return self.inner.energy_j

    @energy_j.setter
    def energy_j(self, value: float) -> None:
        self.inner.energy_j = value

    @property
    def max_charge_w(self) -> float:
        return self.inner.max_charge_w

    @property
    def max_discharge_w(self) -> float:
        return self.inner.max_discharge_w

    @property
    def total_charged_j(self) -> float:
        return self.inner.total_charged_j

    @property
    def total_discharged_j(self) -> float:
        return self.inner.total_discharged_j

    def voltage(self) -> float:
        return self.inner.voltage()

    def charge(self, power_w: float, dt: float) -> float:
        accepted = self.inner.charge(power_w, dt)
        self._cycled_j += 0.5 * accepted * dt  # half cycle per direction
        self._apply_fade()
        return accepted

    def discharge(self, power_w: float, dt: float) -> float:
        delivered = self.inner.discharge(power_w, dt)
        self._cycled_j += 0.5 * delivered * dt
        self._apply_fade()
        return delivered

    def step_idle(self, dt: float) -> float:
        lost = self.inner.step_idle(dt)
        self._aged_seconds += dt
        self._apply_fade()
        return lost

    def __getattr__(self, name):
        # Forward anything not defined here (chemistry curves, efficiency
        # figures, capacitance...) to the wrapped store, so beliefs and
        # monitors see the real device model. Guard the delegation target
        # itself to keep copy/pickle protocols from recursing.
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return (f"AgingStorage({self.inner!r}, health={self.health:.3f}, "
                f"cycles={self.equivalent_cycles:.1f})")
