"""Run metrics: the quantities the survey's claims are stated in.

Uptime and dead time ("a shorter period where energy is not generated",
Sec. I), harvested versus delivered energy, conversion and tracking
efficiency, quiescent losses (Table I's quiescent row made consequential),
backup usage (System A's fuel cell), and work done by the node.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..load.node import NodeState
from .recorder import Recorder

__all__ = ["RunMetrics", "compute_metrics"]


@dataclass(frozen=True)
class RunMetrics:
    """Summary of one simulation run."""

    duration_s: float
    harvested_raw_j: float        # extracted from transducers
    harvested_delivered_j: float  # after input conditioning
    mpp_available_j: float        # what perfect tracking would have extracted
    charge_accepted_j: float      # actually absorbed by storage
    quiescent_j: float            # standing losses
    node_consumed_j: float        # energy the node used
    node_demand_j: float          # energy the node wanted
    backup_used_j: float          # drawn from backup stores
    uptime_fraction: float        # node RUNNING fraction
    dead_time_s: float            # node not RUNNING
    brownouts: int
    measurements: float
    harvest_coverage: float       # fraction of steps with delivered power > 0

    @property
    def tracking_efficiency(self) -> float:
        """raw extracted / MPP available."""
        if self.mpp_available_j <= 0:
            return 1.0
        return min(1.0, self.harvested_raw_j / self.mpp_available_j)

    @property
    def conversion_efficiency(self) -> float:
        """delivered to bus / raw extracted."""
        if self.harvested_raw_j <= 0:
            return 0.0
        return self.harvested_delivered_j / self.harvested_raw_j

    @property
    def end_to_end_efficiency(self) -> float:
        """node consumed / MPP available (the whole chain)."""
        if self.mpp_available_j <= 0:
            return 0.0
        return self.node_consumed_j / self.mpp_available_j

    @property
    def demand_satisfaction(self) -> float:
        """node consumed / node demanded."""
        if self.node_demand_j <= 0:
            return 1.0
        return min(1.0, self.node_consumed_j / self.node_demand_j)

    @property
    def measurements_per_day(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.measurements * 86_400.0 / self.duration_s


def compute_metrics(recorder: Recorder) -> RunMetrics:
    """Aggregate a recorded run into :class:`RunMetrics`."""
    records = recorder.records
    if not records:
        raise ValueError("recorder is empty")
    dt = recorder.dt
    duration = len(records) * dt

    harvested_raw = sum(r.harvest_raw_w for r in records) * dt
    delivered = sum(r.harvest_delivered_w for r in records) * dt
    mpp = sum(r.harvest_mpp_w for r in records) * dt
    accepted = sum(r.charge_accepted_w for r in records) * dt
    quiescent = sum(r.quiescent_w for r in records) * dt
    consumed = sum(r.node_result.consumed_w for r in records) * dt
    demanded = sum(r.node_demand_w for r in records) * dt
    backup = sum(r.backup_power_w for r in records) * dt
    running = sum(1 for r in records if r.node_result.state is NodeState.RUNNING)
    coverage = sum(1 for r in records if r.harvest_delivered_w > 0) / len(records)
    measurements = sum(r.node_result.measurements for r in records)

    # Brownouts: RUNNING -> DEAD transitions in the recorded state history.
    transitions = 0
    prev_running = True
    for r in records:
        is_running = r.node_result.state is NodeState.RUNNING
        if prev_running and r.node_result.state is NodeState.DEAD:
            transitions += 1
        prev_running = is_running

    return RunMetrics(
        duration_s=duration,
        harvested_raw_j=harvested_raw,
        harvested_delivered_j=delivered,
        mpp_available_j=mpp,
        charge_accepted_j=accepted,
        quiescent_j=quiescent,
        node_consumed_j=consumed,
        node_demand_j=demanded,
        backup_used_j=backup,
        uptime_fraction=running / len(records),
        dead_time_s=(len(records) - running) * dt,
        brownouts=transitions,
        measurements=measurements,
        harvest_coverage=coverage,
    )
