"""Run metrics: the quantities the survey's claims are stated in.

Uptime and dead time ("a shorter period where energy is not generated",
Sec. I), harvested versus delivered energy, conversion and tracking
efficiency, quiescent losses (Table I's quiescent row made consequential),
backup usage (System A's fuel cell), and work done by the node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .recorder import STATE_DEAD, STATE_RUNNING, Recorder

__all__ = ["RunMetrics", "compute_metrics"]


@dataclass(frozen=True)
class RunMetrics:
    """Summary of one simulation run."""

    duration_s: float
    harvested_raw_j: float        # extracted from transducers
    harvested_delivered_j: float  # after input conditioning
    mpp_available_j: float        # what perfect tracking would have extracted
    charge_accepted_j: float      # actually absorbed by storage
    quiescent_j: float            # standing losses
    node_consumed_j: float        # energy the node used
    node_demand_j: float          # energy the node wanted
    backup_used_j: float          # drawn from backup stores
    uptime_fraction: float        # node RUNNING fraction
    dead_time_s: float            # node not RUNNING
    brownouts: int
    measurements: float
    harvest_coverage: float       # fraction of steps with delivered power > 0
    #: Sim time (s) at the start of the first recorded DEAD step;
    #: -1.0 when the node never died. The per-node input to fleet
    #: lifetime metrics (see :mod:`repro.fleet`).
    first_dead_s: float = -1.0

    @property
    def tracking_efficiency(self) -> float:
        """raw extracted / MPP available."""
        if self.mpp_available_j <= 0:
            return 1.0
        return min(1.0, self.harvested_raw_j / self.mpp_available_j)

    @property
    def conversion_efficiency(self) -> float:
        """delivered to bus / raw extracted."""
        if self.harvested_raw_j <= 0:
            return 0.0
        return self.harvested_delivered_j / self.harvested_raw_j

    @property
    def end_to_end_efficiency(self) -> float:
        """node consumed / MPP available (the whole chain)."""
        if self.mpp_available_j <= 0:
            return 0.0
        return self.node_consumed_j / self.mpp_available_j

    @property
    def demand_satisfaction(self) -> float:
        """node consumed / node demanded."""
        if self.node_demand_j <= 0:
            return 1.0
        return min(1.0, self.node_consumed_j / self.node_demand_j)

    @property
    def measurements_per_day(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.measurements * 86_400.0 / self.duration_s


def compute_metrics(recorder: Recorder) -> RunMetrics:
    """Aggregate a recorded run into :class:`RunMetrics`.

    Reads the recorder's columnar arrays directly — one vectorized
    reduction per metric instead of the seed's per-column record scans.
    Because both engine paths (legacy per-step and vectorized fast path)
    fill the same columns, metrics computed here are bit-for-bit
    comparable across paths.
    """
    n = len(recorder)
    if n == 0:
        raise ValueError("recorder is empty")
    dt = recorder.dt
    duration = n * dt

    delivered_w = recorder.column("harvest_delivered")
    state = recorder.state_codes()
    running_mask = state == STATE_RUNNING
    running = int(np.count_nonzero(running_mask))

    # Brownouts: RUNNING -> DEAD transitions in the recorded state history
    # (a run beginning DEAD counts as one, matching the seed accounting).
    dead_mask = state == STATE_DEAD
    prev_running = np.empty(n, dtype=bool)
    prev_running[0] = True
    np.copyto(prev_running[1:], running_mask[:-1])
    transitions = int(np.count_nonzero(prev_running & dead_mask))

    dead_indices = np.flatnonzero(dead_mask)
    first_dead = float(dead_indices[0]) * dt if dead_indices.size else -1.0

    return RunMetrics(
        duration_s=duration,
        harvested_raw_j=float(np.sum(recorder.column("harvest_raw"))) * dt,
        harvested_delivered_j=float(np.sum(delivered_w)) * dt,
        mpp_available_j=float(np.sum(recorder.column("harvest_mpp"))) * dt,
        charge_accepted_j=float(np.sum(recorder.column("charge_accepted"))) * dt,
        quiescent_j=float(np.sum(recorder.column("quiescent"))) * dt,
        node_consumed_j=float(np.sum(recorder.column("node_consumed"))) * dt,
        node_demand_j=float(np.sum(recorder.column("node_demand"))) * dt,
        backup_used_j=float(np.sum(recorder.column("backup_power"))) * dt,
        uptime_fraction=running / n,
        dead_time_s=(n - running) * dt,
        brownouts=transitions,
        measurements=float(np.sum(recorder.column("measurements"))),
        harvest_coverage=float(np.count_nonzero(delivered_w > 0)) / n,
        first_dead_s=first_dead,
    )
