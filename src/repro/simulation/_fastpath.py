"""Specialized hot-loop kernel for the vectorized fast path.

The legacy engine spends most of each step in interpreter overhead:
an :class:`AmbientSample` dict per step, wrapper methods on the bank and
store, a frozen dataclass record per step, and redundant re-derivation of
quantities that are constant for the whole run. This kernel executes the
exact same per-step arithmetic with that overhead removed:

* ambient channels come from a :class:`~repro.environment.
  CompiledEnvironment` dense matrix (one list index per channel per step);
* the single-supercapacitor storage bank is inlined — same expressions,
  same operation order as :class:`~repro.storage.Supercapacitor` — with
  run-constant subexpressions hoisted;
* the output stage's damped fixed-point inversion is inlined for
  :class:`BuckBoostConverter` / :class:`IdealConverter`;
* results are written straight into the recorder's preallocated columnar
  arrays; no per-step record objects exist.

Stateful physics with model variety — trackers, harvesters, the input
conditioner chain, the node, and energy managers — still run through
their own objects, so every model in the library is supported unchanged.

**Equivalence contract:** for an eligible system the kernel's recorded
columns are bit-for-bit identical to the legacy per-step path
(``fast=False``); ``tests/test_determinism.py`` enforces this on a mixed
solar+wind+TEG platform. Anything outside the envelope — multiple or
non-supercapacitor stores, backup stores, digital bus / MCU models,
subclassed system components — is detected by :func:`eligible` and runs
on the legacy path instead. Mid-run events are re-validated: an event
that pushes the system outside the envelope hands the remaining steps
back to the engine's legacy loop.
"""

from __future__ import annotations

import math

from ..conditioning.base import HarvestStep, InputConditioner, OutputConditioner
from ..conditioning.converters import BuckBoostConverter, IdealConverter
from ..core.system import HarvestingChannel, MultiSourceSystem, StorageBank
from ..load.node import NodeState
from ..storage.supercapacitor import Supercapacitor
from .recorder import STATE_DEAD, STATE_REBOOTING, STATE_RUNNING

__all__ = ["eligible", "run_kernel"]

_INF = float("inf")
_ZERO_STEP = HarvestStep(0.0, 0.0, 0.0, 0.0)


def eligible(system) -> bool:
    """Whether the fast-path kernel reproduces this system exactly.

    The envelope is intentionally conservative: exact component types
    only (subclasses may override the arithmetic the kernel inlines) and
    a single non-backup supercapacitor store.
    """
    if type(system) is not MultiSourceSystem:
        return False
    if system.bus is not None or system.mcu is not None:
        return False
    bank = system.bank
    if type(bank) is not StorageBank or len(bank.stores) != 1:
        return False
    store = bank.stores[0]
    if type(store) is not Supercapacitor or store.is_backup:
        return False
    if type(system.output) is not OutputConditioner:
        return False
    for channel in system.channels:
        if type(channel) is not HarvestingChannel or \
                type(channel.conditioner) is not InputConditioner:
            return False
    return True


def run_kernel(system, compiled, schedule, recorder, n_steps: int,
               dt: float) -> int:
    """Run up to ``n_steps`` steps; returns the number completed.

    Returns early (with the recorder committed up to the boundary) when a
    fired event pushes the system outside the kernel envelope; the engine
    finishes the segment on the legacy path.
    """
    times = compiled.times.tolist()
    matrix = compiled.matrix

    col_cache: dict = {}

    def channel_values(source):
        j = compiled.column_of(source)
        if j is None:
            return None
        values = col_cache.get(j)
        if values is None:
            values = col_cache[j] = matrix[:, j].tolist()
        return values

    def bind():
        """Snapshot run-constant bindings (refreshed after events)."""
        bank = system.bank
        store = bank.stores[0]
        output = system.output
        out_conv = output.converter
        chan = tuple((c, c.conditioner, channel_values(c.source_type))
                     for c in system.channels)
        return (bank, store, output, out_conv, chan,
                system.manager, system.node,
                system.total_quiescent_current_a)

    (bank, store, output, out_conv, chan, manager, node, tq) = bind()

    def store_consts(store):
        c_fast = store.c_fast
        half_cf = 0.5 * c_fast
        min_v2 = store.min_voltage ** 2
        return (
            c_fast,
            store.c_slow,
            0.5 * store.c_slow,
            store.capacitance_f,
            store.capacity_j,
            min_v2,
            half_cf * store.rated_voltage ** 2,   # fast-branch full energy
            half_cf * min_v2,                     # fast-branch energy floor
            half_cf,
            store.max_discharge_w,
            1.0 - math.exp(-dt / store.redistribution_tau),
            math.exp(-dt / (store.leakage_resistance * c_fast)),
        )

    (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, fast_full_e,
     fast_floor_e, half_cf, max_dis, alpha, leak_mult) = store_consts(store)

    def output_consts(output, out_conv):
        conv_type = type(out_conv)
        if conv_type is IdealConverter:
            mode = 0
        elif conv_type is BuckBoostConverter:
            mode = 1
        else:
            mode = 2
        if mode == 1:
            return (mode, output.min_input_voltage,
                    out_conv.peak_efficiency, out_conv.overhead_power,
                    out_conv.min_input_voltage, out_conv.max_input_voltage)
        return (mode, output.min_input_voltage, 0.0, 0.0, 0.0, 0.0)

    (out_mode, out_min_v, bb_eta, bb_ovh, bb_vmin,
     bb_vmax) = output_consts(output, out_conv)

    (scalars, state_arr, store_e, store_v, chan_p, base) = \
        recorder.columns_for_writing()
    col_t = scalars["t"]
    col_raw = scalars["harvest_raw"]
    col_del = scalars["harvest_delivered"]
    col_mpp = scalars["harvest_mpp"]
    col_acc = scalars["charge_accepted"]
    col_qsc = scalars["quiescent"]
    col_dem = scalars["node_demand"]
    col_sup = scalars["node_supplied"]
    col_con = scalars["node_consumed"]
    col_bak = scalars["backup_power"]
    col_mea = scalars["measurements"]

    events = schedule._events
    n_events = len(events)
    sqrt = math.sqrt
    RUNNING, DEAD = NodeState.RUNNING, NodeState.DEAD

    for i in range(n_steps):
        t = times[i]

        # 0. Scheduled events, then revalidate the envelope.
        if schedule._next < n_events and events[schedule._next].time <= t:
            for event in schedule.due(t):
                event.action(system)
            if not eligible(system):
                recorder.commit(i)
                return i
            (bank, store, output, out_conv, chan, manager, node, tq) = bind()
            (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, fast_full_e,
             fast_floor_e, half_cf, max_dis, alpha,
             leak_mult) = store_consts(store)
            (out_mode, out_min_v, bb_eta, bb_ovh, bb_vmin,
             bb_vmax) = output_consts(output, out_conv)

        # 1. Management decisions (may charge/discharge the bank).
        if manager is not None:
            manager.control(t, dt, system)

        v_f = store.v_fast
        v_s = store.v_slow
        tot_c = store.total_charged_j
        tot_d = store.total_discharged_j
        spilled = bank.spilled_j
        row = base + i

        # 2. Harvest into the storage bus.
        bus_v = v_f
        raw = 0.0
        delivered = 0.0
        mpp = 0.0
        k = 0
        for channel, conditioner, values in chan:
            if channel.enabled:
                hs = conditioner.step(
                    channel.harvester,
                    values[i] if values is not None else 0.0, dt, bus_v)
            else:
                hs = _ZERO_STEP
            channel.last_step = hs
            hs_delivered = hs.delivered_power
            raw += hs.raw_power
            delivered += hs_delivered
            mpp += hs.mpp_power
            chan_p[row, k] = hs_delivered
            k += 1

        if delivered > 0.0:
            e_fast = half_cf * v_f ** 2
            room = fast_full_e - e_fast
            if room < 0.0:
                room = 0.0
            dj = delivered * dt
            if dj > room:
                dj = room
            e_fast += dj
            v_f = sqrt(2.0 * e_fast / c_fast)
            tot_c += dj
            accepted = dj / dt
            rem = delivered - accepted
            if rem > 0.0:
                spilled += rem * dt
        else:
            accepted = 0.0

        # 3. Standing (quiescent) losses.
        iq = tq * (bus_v if bus_v > 0.0 else 0.0)
        if iq > 0.0:
            deliverable = iq if iq <= max_dis else max_dis
            e_fast = half_cf * v_f ** 2
            avail = e_fast - fast_floor_e
            if avail < 0.0:
                avail = 0.0
            drawn = deliverable * dt
            if drawn > avail:
                drawn = avail
            e_fast -= drawn
            v_f = sqrt(2.0 * e_fast / c_fast)
            tot_d += drawn
            quiescent_drawn = drawn / dt
        else:
            quiescent_drawn = 0.0

        # 4. Supply the node through the output stage.
        demand = node.demand_power()
        sv = v_f
        if demand == 0.0:
            needed = 0.0
        elif sv < out_min_v:
            needed = _INF
        elif out_mode == 0:
            needed = demand
        elif out_mode == 1:
            if sv < bb_vmin or sv > bb_vmax:
                needed = _INF
            else:
                # Same damped fixed point as Converter.input_power, with
                # the (run-constant) voltage-window test hoisted out.
                p_in = demand
                needed = None
                for _ in range(30):
                    eff = bb_eta * p_in / (p_in + bb_ovh)
                    if eff <= 0.0:
                        needed = _INF
                        break
                    p_new = demand / eff
                    diff = p_new - p_in
                    if diff < 0.0:
                        diff = -diff
                    if diff < 1e-12 * (p_in if p_in > 1.0 else 1.0):
                        needed = p_new
                        break
                    p_in = 0.5 * (p_in + p_new)
                if needed is None:
                    needed = p_in
        else:
            needed = output.input_power_for(demand, sv)

        if needed == _INF or demand <= 0.0:
            supplied = 0.0
            drawn_out = 0.0
        else:
            deliverable = needed if needed <= max_dis else max_dis
            e_fast = half_cf * v_f ** 2
            avail = e_fast - fast_floor_e
            if avail < 0.0:
                avail = 0.0
            drawn = deliverable * dt
            if drawn > avail:
                drawn = avail
            e_fast -= drawn
            v_f = sqrt(2.0 * e_fast / c_fast)
            tot_d += drawn
            drawn_out = drawn / dt
            supplied = demand * (drawn_out / needed)

        node_result = node.step(supplied, dt)
        consumed = node_result.consumed_w
        if supplied > 0.0 and consumed < supplied - 1e-15:
            # Return the unconsumed part of the draw to the bank.
            unused = drawn_out * (1.0 - consumed / supplied)
            if unused > 0.0:
                e_fast = half_cf * v_f ** 2
                room = fast_full_e - e_fast
                if room < 0.0:
                    room = 0.0
                dj = unused * dt
                if dj > room:
                    dj = room
                e_fast += dj
                v_f = sqrt(2.0 * e_fast / c_fast)
                tot_c += dj
                rem = unused - dj / dt
                if rem > 0.0:
                    spilled += rem * dt

        # 5. Storage self-discharge / charge redistribution.
        if c_slow > 0.0:
            v_eq = (c_fast * v_f + c_slow * v_s) / cap_f
            v_f += alpha * (v_eq - v_f)
            v_s += alpha * (v_eq - v_s)
        v_f *= leak_mult

        d_f = v_f ** 2 - min_v2
        usable = half_cf * (d_f if d_f > 0.0 else 0.0)
        if c_slow > 0.0:
            d_s = v_s ** 2 - min_v2
            usable += half_cs * (d_s if d_s > 0.0 else 0.0)
        energy = usable if usable < capacity_j else capacity_j

        # 6. Write back object state and record the step.
        store.v_fast = v_f
        store.v_slow = v_s
        store.energy_j = energy
        store.total_charged_j = tot_c
        store.total_discharged_j = tot_d
        bank.spilled_j = spilled

        col_t[row] = t
        col_raw[row] = raw
        col_del[row] = delivered
        col_mpp[row] = mpp
        col_acc[row] = accepted
        col_qsc[row] = quiescent_drawn
        col_dem[row] = demand
        col_sup[row] = supplied
        col_con[row] = consumed
        col_bak[row] = 0.0
        col_mea[row] = node_result.measurements
        state = node_result.state
        state_arr[row] = STATE_RUNNING if state is RUNNING else \
            (STATE_DEAD if state is DEAD else STATE_REBOOTING)
        store_e[row, 0] = energy
        store_v[row, 0] = v_f

    recorder.commit(n_steps)
    return n_steps
