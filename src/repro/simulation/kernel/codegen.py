"""Codegen tier: fuse a kernel plan into one compiled step function.

Third lowering target beside the scalar kernel (:mod:`.plan`) and the
batched tier (:mod:`.batched`). The scalar kernel already hoists every
run constant into per-component closures; this module walks the same
lowering and *emits source* for the whole system — bank, channels,
output stage and node inlined into one flat loop body with the hoisted
constants baked in as literals — then compiles it once and caches the
artifact, keyed on ``(spec_hash, dt, code_version)``.

Two emission modes share one generated signature:

* **fused** — the supercapacitor three-branch physics, the buck-boost
  knee/fixed-point, the P&O hill climb and the node brown-out state
  machine are emitted as straight-line Python over plain float locals
  (no attribute access, no call dispatch in the hot loop); only the
  leaf harvester physics (``open_circuit_voltage`` / ``power_at`` /
  ``max_power``) remains as bound-method calls, behind pure
  single-slot memos keyed on the ambient value. Engaged for the
  single-supercap / buck-boost / P&O / plain-node platform shape.
* **driver** — a generated twin of :func:`.plan.run_plan`'s loop body
  with the lowering's closures bound in the prologue and the channel /
  store loops unrolled; exact for every kernel-eligible system, so the
  codegen path reports ``execution_path == "codegen"`` for all seven
  Table I systems.

Numerics contract (PR 4): the emitted code performs the same
floating-point operations in the same order as the scalar kernel —
state squarings stay ``v * v``, exact-libm call sites (``math.sqrt``,
the hoisted ``math.exp`` constants) are preserved, float literals are
baked with ``repr`` (shortest round-trip, exact), and every branch /
early return / accumulator of the component code is replicated.
Both modes are bitwise identical to the legacy and scalar-kernel
paths; the differential and determinism suites enforce it.

Scheduled events never fire inside generated code: the loop breaks at
the event boundary, writes its locals back to the component objects,
and the engine finishes the segment on the scalar kernel (which fires
the event at its loop top) — mirroring the batched tier's peel-out.

Compilation backend: ``numba.njit`` is attempted when the ``[codegen]``
extra is installed, falling back permanently to the ``exec``-compiled
pure-Python function on any numba failure (the emitted code calls
bound harvester methods, which nopython mode rejects today — the
wrapper exists so a future object-free emission can light it up
without changing callers). The pure-Python function already clears the
performance gate by eliminating per-component dispatch.

Cache identity: ``(spec_hash, dt, code_version)`` via
:mod:`repro.catalog.hashing` — the same canonical-JSON hash `repro
spec --hash` prints. Spec-built systems carry it as
``_codegen_spec_hash``; hand-built systems fall back to a structural
signature (in-process caching only). The on-disk source cache under
``$REPRO_CODEGEN_CACHE`` (default ``~/.cache/repro/codegen``) lets
repeated CLI runs and ensemble replicates skip emission entirely; the
in-process compile cache (keyed on the source digest) makes a second
identical run perform zero compilations.
"""

from __future__ import annotations

import hashlib
import os
import time as _time

import math

from ...conditioning.base import HarvestStep
from ...load.node import NodeState
from .protocol import LoweringUnsupported

try:  # pragma: no cover - exercised only with the [codegen] extra
    import numba
except ImportError:  # the pure-Python backend is the tested baseline
    numba = None

__all__ = [
    "prepare_codegen",
    "codegen_stats",
    "reset_codegen_stats",
    "clear_codegen_cache",
    "codegen_cache_identity",
]

_INF = float("inf")

#: Compiled artifacts keyed on the emitted source's digest. A second
#: identical run (same spec hash, dt, code version) lands here and
#: performs zero compilations — the warm-cache contract.
_COMPILE_CACHE: dict = {}
#: Emitted source keyed on the full cache identity, so repeated plan
#: preparations (ensemble replicates) skip emission too.
_SOURCE_MEMO: dict = {}

_STATS_ZERO = {
    "hits": 0,          # compile-cache hits (no compilation performed)
    "misses": 0,        # compile-cache misses
    "compiles": 0,      # actual exec-compilations performed
    "compile_s": 0.0,   # cumulative wall time spent compiling
    "disk_hits": 0,     # sources loaded from the on-disk cache
    "emitted": 0,       # sources emitted fresh
    "numba_failures": 0,
}
_STATS = dict(_STATS_ZERO)


def codegen_stats() -> dict:
    """Snapshot of the cache/compile counters (copies; safe to keep)."""
    return dict(_STATS)


def reset_codegen_stats() -> None:
    _STATS.update(_STATS_ZERO)


def clear_codegen_cache() -> None:
    """Drop the in-process caches (the on-disk source cache persists)."""
    _COMPILE_CACHE.clear()
    _SOURCE_MEMO.clear()


def codegen_cache_identity(system, dt: float) -> dict:
    """The documented cache identity for ``system`` at ``dt``.

    ``spec_hash`` is the canonical-JSON SHA-256 attached by
    :func:`repro.spec.build.build` — byte-for-byte what ``repro spec
    --hash`` prints — or None for hand-built systems (which cache
    in-process only, on a structural signature).
    """
    from ...catalog.hashing import code_version
    spec_hash = getattr(system, "_codegen_spec_hash", None)
    return {
        "spec_hash": spec_hash,
        "dt": repr(float(dt)),
        "code_version": code_version(),
    }


# ----------------------------------------------------------------------
# Literal baking
# ----------------------------------------------------------------------
def _lit(x) -> str:
    """Bake a run constant as an exact Python literal.

    ``repr`` of a float is the shortest round-trip representation —
    parsing it back yields the identical bits, so hoisted constants in
    generated source equal the closure-captured ones exactly.
    """
    f = float(x)
    if f != f:
        return "float('nan')"
    if f == _INF:
        return "float('inf')"
    if f == -_INF:
        return "-float('inf')"
    return repr(f)


# ----------------------------------------------------------------------
# Compilation backend
# ----------------------------------------------------------------------
class _CompiledStep:
    """Compiled step function with a numba attempt and a sticky fallback.

    The first call tries ``numba.njit`` when the extra is installed;
    nopython typing runs before any of the function body executes, so a
    failure has no side effects and the wrapper falls back permanently
    to the exec-compiled pure-Python function.
    """

    __slots__ = ("pyfunc", "source_digest", "_state", "_jitted")

    def __init__(self, pyfunc, source_digest: str):
        self.pyfunc = pyfunc
        self.source_digest = source_digest
        self._state = "try" if numba is not None else "python"
        self._jitted = None

    @property
    def backend(self) -> str:
        return "numba" if self._state == "numba" else "python"

    def __call__(self, *args):
        if self._state == "python":
            return self.pyfunc(*args)
        if self._state == "numba":
            return self._jitted(*args)
        try:  # pragma: no cover - needs the [codegen] extra
            jitted = numba.njit(self.pyfunc)
            result = jitted(*args)
        except Exception:
            _STATS["numba_failures"] += 1
            self._state = "python"
            return self.pyfunc(*args)
        self._jitted = jitted  # pragma: no cover
        self._state = "numba"  # pragma: no cover
        return result  # pragma: no cover


def _compile(source: str) -> _CompiledStep:
    """Compile emitted source, deduplicated on its digest.

    The hit counter only increments here: one warm ``simulate`` is one
    hit and zero compilations, which the warm-cache tests assert.
    """
    digest = hashlib.sha256(source.encode()).hexdigest()
    cached = _COMPILE_CACHE.get(digest)
    if cached is not None:
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    t0 = _time.perf_counter()
    namespace: dict = {}
    code = compile(source, f"<repro-codegen {digest[:12]}>", "exec")
    exec(code, namespace)
    step = _CompiledStep(namespace["_codegen_run"], digest)
    _STATS["compiles"] += 1
    _STATS["compile_s"] += _time.perf_counter() - t0
    _COMPILE_CACHE[digest] = step
    return step


# ----------------------------------------------------------------------
# Source cache (in-process memo + on-disk)
# ----------------------------------------------------------------------
def _cache_dir() -> str:
    override = os.environ.get("REPRO_CODEGEN_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "codegen")


def _source_key(system, dt: float, mode: str, sig) -> tuple:
    """Full cache identity for one emitted source.

    The headline triple ``(spec_hash, dt, code_version)`` is the
    documented identity; ``mode`` and the baked-configuration signature
    ride along as a drift guard, so a system mutated *after* spec
    construction (or a hand-built system without a spec hash) can never
    collide with a stale artifact.
    """
    from ...catalog.hashing import code_version
    spec_hash = getattr(system, "_codegen_spec_hash", None)
    return (spec_hash, repr(float(dt)), code_version(), mode, repr(sig))


def _disk_path(key: tuple) -> str:
    digest = hashlib.sha256("\x1f".join(map(str, key)).encode()).hexdigest()
    return os.path.join(_cache_dir(), f"{digest}.py")


def _load_or_emit(system, dt: float, mode: str, sig, emit) -> str:
    """Source for ``(system, dt, mode, sig)``: memo -> disk -> emit."""
    key = _source_key(system, dt, mode, sig)
    source = _SOURCE_MEMO.get(key)
    if source is not None:
        return source
    # On-disk source cache: only for spec-built systems, whose headline
    # identity is content-addressed and survives process restarts.
    path = _disk_path(key) if key[0] is not None else None
    if path is not None:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            _STATS["disk_hits"] += 1
        except OSError:
            source = None
    if source is None:
        source = emit()
        _STATS["emitted"] += 1
        if path is not None:
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(source)
                os.replace(tmp, path)
            except OSError:
                pass  # disk cache is best-effort
    _SOURCE_MEMO[key] = source
    return source


# ----------------------------------------------------------------------
# Driver-mode emitter: a generated twin of run_plan's loop body
# ----------------------------------------------------------------------
_SIGNATURE = ("def _codegen_run(lowering, system, times, avs, scalars, "
              "state_arr, store_e, store_v, chan_p, base, next_event_t, "
              "n_steps, start, ctx):")

_SCALAR_COLS = (
    ("col_t", "t"), ("col_raw", "harvest_raw"),
    ("col_del", "harvest_delivered"), ("col_mpp", "harvest_mpp"),
    ("col_acc", "charge_accepted"), ("col_qsc", "quiescent"),
    ("col_dem", "node_demand"), ("col_sup", "node_supplied"),
    ("col_con", "node_consumed"), ("col_bak", "backup_power"),
    ("col_mea", "measurements"),
)


def _driver_shape(lowering, has_cols) -> tuple:
    return (
        len(lowering.channels),
        tuple(has_cols),
        lowering.bus is not None,
        lowering.manager_control is not None,
        lowering.bank.backup_energy is not None,
        len(lowering.bank.store_objects),
    )


def _emit_driver(shape) -> str:
    """Emit the scalar-kernel loop with closures bound and loops unrolled.

    Semantically a line-for-line twin of :func:`.plan.run_plan`'s body:
    same phase order, same accumulation order (``raw = 0.0`` then
    ``+=`` per channel, preserving -0.0 semantics), same guards — with
    the event clause replaced by a boundary break (the engine resumes
    on the scalar kernel, which fires the event).
    """
    (n_channels, has_cols, has_bus, has_control, has_backup,
     n_stores) = shape
    L: list[str] = [_SIGNATURE]
    A = L.append
    A("    RUNNING = ctx['RUNNING']")
    A("    DEAD = ctx['DEAD']")
    A("    INF = float('inf')")
    A("    bank = lowering.bank")
    A("    bank_voltage = bank.voltage")
    A("    bank_charge = bank.charge")
    A("    bank_discharge = bank.discharge")
    A("    bank_idle = bank.idle")
    if has_backup:
        A("    backup_energy = bank.backup_energy")
    for k in range(n_channels):
        A(f"    chan_step_{k} = lowering.channels[{k}].step")
        if has_cols[k]:
            A(f"    av_{k} = avs[{k}]")
    A("    out_needed = lowering.output.needed")
    A("    node_demand = lowering.node.demand")
    A("    node_step = lowering.node.step")
    if has_control:
        A("    control = lowering.manager_control")
    A("    tq = lowering.quiescent_a")
    if has_bus:
        A("    bus = lowering.bus")
    for k in range(n_stores):
        A(f"    store_{k} = bank.store_objects[{k}]")
        A(f"    store_vv_{k} = bank.store_voltages[{k}]")
    for name, col in _SCALAR_COLS:
        A(f"    {name} = scalars['{col}']")
    A("    dt = ctx['dt']")
    A("    for i in range(start, n_steps):")
    A("        t = times[i]")
    A("        if next_event_t <= t:")
    A("            done = i")
    A("            break")
    if has_control:
        A("        control(t, dt, system)")
    A("        bus_v = bank_voltage()")
    A("        row = base + i")
    A("        raw = 0.0")
    A("        delivered = 0.0")
    A("        mpp = 0.0")
    for k in range(n_channels):
        value = f"av_{k}[i]" if has_cols[k] else "0.0"
        A(f"        hs = chan_step_{k}({value}, bus_v)")
        A("        raw += hs.raw_power")
        A("        hs_delivered = hs.delivered_power")
        A("        delivered += hs_delivered")
        A("        mpp += hs.mpp_power")
        A(f"        chan_p[row, {k}] = hs_delivered")
    A("        accepted = bank_charge(delivered) if delivered > 0.0 "
      "else 0.0")
    A("        iq = tq * (bus_v if bus_v > 0.0 else 0.0)")
    if has_bus:
        A("        pending = bus.energy_spent_j - "
          "system._bus_energy_charged_j")
        A("        system._bus_energy_charged_j = bus.energy_spent_j")
        A("        iq += pending / dt")
    A("        quiescent_drawn = bank_discharge(iq) if iq > 0.0 else 0.0")
    if has_backup:
        A("        backup_before = backup_energy()")
    A("        demand = node_demand()")
    A("        sv = bank_voltage()")
    A("        needed = out_needed(demand, sv)")
    A("        if needed == INF or demand <= 0.0:")
    A("            supplied = 0.0")
    A("            drawn = 0.0")
    A("        else:")
    A("            drawn = bank_discharge(needed)")
    A("            supplied = demand * (drawn / needed) if needed > 0.0 "
      "else 0.0")
    A("        node_result = node_step(supplied, dt)")
    A("        consumed = node_result.consumed_w")
    A("        if supplied > 0.0 and consumed < supplied - 1e-15:")
    A("            bank_charge(drawn * (1.0 - consumed / supplied))")
    if has_backup:
        A("        dropped = backup_before - backup_energy()")
        A("        backup_power = (dropped if dropped > 0.0 else 0.0) / dt")
    else:
        A("        backup_power = 0.0")
    A("        bank_idle()")
    A("        col_t[row] = t")
    A("        col_raw[row] = raw")
    A("        col_del[row] = delivered")
    A("        col_mpp[row] = mpp")
    A("        col_acc[row] = accepted")
    A("        col_qsc[row] = quiescent_drawn")
    A("        col_dem[row] = demand")
    A("        col_sup[row] = supplied")
    A("        col_con[row] = consumed")
    A("        col_bak[row] = backup_power")
    A("        col_mea[row] = node_result.measurements")
    A("        state = node_result.state")
    A("        state_arr[row] = 0 if state is RUNNING else "
      "(1 if state is DEAD else 2)")
    for k in range(n_stores):
        A(f"        store_e[row, {k}] = store_{k}.energy_j")
        A(f"        store_v[row, {k}] = store_vv_{k}()")
    A("    else:")
    A("        done = n_steps")
    A("    return done")
    A("")
    return "\n".join(L)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class CodegenRunner:
    """A compiled step function bound to one plan + environment segment.

    Calling it runs steps ``start .. n_steps - 1`` (or up to the first
    scheduled-event boundary) and returns the number completed; the
    recorder is committed only on full completion — partial segments
    are committed by the scalar-kernel continuation, exactly like the
    batched tier's peel-out.
    """

    __slots__ = ("plan", "compiled", "step_fn", "mode", "_avs", "_times",
                 "_ctx")

    def __init__(self, plan, compiled, step_fn, mode: str):
        self.plan = plan
        self.compiled = compiled
        self.step_fn = step_fn
        self.mode = mode
        self._times = compiled.times_list()

        def values_for(source):
            j = compiled.column_of(source)
            if j is None:
                return None
            return compiled.column_list(j)

        self._avs = tuple(values_for(lw.source_type)
                          for lw in plan.lowering.channels)
        self._ctx = {
            "RUNNING": NodeState.RUNNING,
            "DEAD": NodeState.DEAD,
            "REBOOTING": NodeState.REBOOTING,
            "HarvestStep": HarvestStep,
            "sqrt": math.sqrt,
            "dt": plan.dt,
        }

    @property
    def backend(self) -> str:
        return self.step_fn.backend

    def __call__(self, schedule, recorder, n_steps: int,
                 start: int = 0) -> int:
        (scalars, state_arr, store_e, store_v, chan_p, base) = \
            recorder.columns_for_writing()
        next_event_t = schedule.next_time()
        done = self.step_fn(
            self.plan.lowering, self.plan.system, self._times, self._avs,
            scalars, state_arr, store_e, store_v, chan_p, base,
            next_event_t, n_steps, start, self._ctx)
        if done == n_steps:
            recorder.commit(n_steps)
        return done


def prepare_codegen(plan, compiled) -> CodegenRunner:
    """Lower ``plan`` onto the codegen tier.

    Chooses the fused emission when the platform shape qualifies (see
    :func:`_fused_config`), the generated driver otherwise — both are
    bitwise-exact, so this choice is a pure performance decision and
    never affects eligibility: any plan the scalar kernel compiled can
    run here.
    """
    system = plan.system
    dt = plan.dt
    has_cols = tuple(compiled.column_of(lw.source_type) is not None
                     for lw in plan.lowering.channels)
    cfg = _fused_config(plan, has_cols)
    if cfg is not None:
        source = _load_or_emit(system, dt, "fused", cfg["sig"],
                               lambda: _emit_fused(cfg))
        mode = "fused"
    else:
        shape = _driver_shape(plan.lowering, has_cols)
        source = _load_or_emit(system, dt, "driver", shape,
                               lambda: _emit_driver(shape))
        mode = "driver"
    step_fn = _compile(source)
    return CodegenRunner(plan, compiled, step_fn, mode)


# ----------------------------------------------------------------------
# Fused-mode gate
# ----------------------------------------------------------------------
def _fused_config(plan, has_cols):
    """Collect the fused emission's baked constants, or None.

    The fused emitter inlines exact twins of specific component
    classes, so it engages only when every component *is* (not merely
    derives from) the class whose arithmetic it bakes: one
    :class:`Supercapacitor` behind a plain bank, buck-boost output,
    P&O + buck-boost channels over library harvesters, a plain node,
    and at most a zero-wakeup :class:`StaticManager`. Everything else
    runs the generated driver — same bits, less fusion.
    """
    from ...conditioning.base import InputConditioner, OutputConditioner
    from ...conditioning.converters import BuckBoostConverter
    from ...conditioning.mppt import PerturbObserve
    from ...core.manager import StaticManager
    from ...core.system import (
        HarvestingChannel,
        MultiSourceSystem,
        StorageBank,
    )
    from ...load.node import WirelessSensorNode
    from ...storage.supercapacitor import Supercapacitor

    lowering = plan.lowering
    system = plan.system
    dt = plan.dt
    if type(system) is not MultiSourceSystem:
        return None
    if lowering.bus is not None or lowering.bank.backup_energy is not None:
        return None
    bank = system.bank
    if type(bank) is not StorageBank or len(bank.stores) != 1:
        return None
    store = bank.stores[0]
    if type(store) is not Supercapacitor:
        return None
    mgr = system.manager
    if mgr is not None and (type(mgr) is not StaticManager or
                            mgr.wakeup_energy_j != 0.0):
        return None
    output = system.output
    if type(output) is not OutputConditioner:
        return None
    oconv = output.converter
    if type(oconv) is not BuckBoostConverter:
        return None
    node = system.node
    if type(node) is not WirelessSensorNode:
        return None
    channels = []
    for k, ch in enumerate(system.channels):
        if type(ch) is not HarvestingChannel or not ch.enabled:
            return None
        cond = ch.conditioner
        if type(cond) is not InputConditioner:
            return None
        tracker = cond.tracker
        if type(tracker) is not PerturbObserve:
            return None
        cconv = cond.converter
        if type(cconv) is not BuckBoostConverter:
            return None
        if not type(ch.harvester).__module__.startswith("repro.harvesters"):
            return None
        channels.append({
            "has_col": bool(has_cols[k]),
            "period": _lit(tracker.update_period),
            "frac": _lit(tracker.step_fraction),
            "cvlo": _lit(cconv.min_input_voltage),
            "cvhi": _lit(cconv.max_input_voltage),
            "cpeak": _lit(cconv.peak_efficiency),
            "cover": _lit(cconv.overhead_power),
        })
    demand_run = (node.sleep_power_w +
                  node.measurement_energy() / node.measurement_interval_s)
    reboot_power = node._reboot_power()
    if demand_run <= 0.0 or reboot_power <= 0.0:
        # The §4 emission elides run_plan's ``demand <= 0.0`` test.
        return None
    needed_margin = demand_run - node.sleep_power_w
    (c_fast, c_slow, half_cs, cap_f, capacity_j, min_v2, full_e,
     floor_e, half_cf, alpha, leak) = store._kernel_consts(dt)
    cfg = {
        "dt": _lit(dt),
        "tq": _lit(lowering.quiescent_a),
        "c_fast": _lit(c_fast), "c_slow": _lit(c_slow),
        "half_cs": _lit(half_cs), "cap_f": _lit(cap_f),
        "capacity": _lit(capacity_j), "min_v2": _lit(min_v2),
        "full_e": _lit(full_e), "floor_e": _lit(floor_e),
        "half_cf": _lit(half_cf), "alpha": _lit(alpha), "leak": _lit(leak),
        "has_slow": c_slow > 0.0,
        "max_d": (None if store.max_discharge_w == _INF
                  else _lit(store.max_discharge_w)),
        "sleep": _lit(node.sleep_power_w),
        "reboot_power": _lit(reboot_power),
        "reboot_time": _lit(node.reboot_time_s),
        "demand_run": _lit(demand_run),
        "full_rate": _lit(dt / node.measurement_interval_s),
        "needed_margin": _lit(needed_margin),
        "no_margin": needed_margin <= 0.0,
        "out_min_v": _lit(output.min_input_voltage),
        "opeak": _lit(oconv.peak_efficiency),
        "oover": _lit(oconv.overhead_power),
        "ovlo": _lit(oconv.min_input_voltage),
        "ovhi": _lit(oconv.max_input_voltage),
        "manager": mgr is not None,
        "mgr_period": _lit(mgr.control_period) if mgr is not None else None,
        "channels": channels,
    }
    cfg["sig"] = repr([(key, cfg[key]) for key in sorted(cfg)])
    return cfg


# ----------------------------------------------------------------------
# Fused-mode emitter
# ----------------------------------------------------------------------
def _sync_lines(ind: str, c) -> list:
    """Inlined ``Supercapacitor._kernel_sync`` over the float locals."""
    lines = [
        f"{ind}d_f = v_fast * v_fast - {c['min_v2']}",
        f"{ind}usable = {c['half_cf']} * (d_f if d_f > 0.0 else 0.0)",
    ]
    if c["has_slow"]:
        lines += [
            f"{ind}d_s = v_slow * v_slow - {c['min_v2']}",
            f"{ind}usable += {c['half_cs']} * (d_s if d_s > 0.0 else 0.0)",
        ]
    lines.append(f"{ind}sc_energy = usable if usable < {c['capacity']} "
                 f"else {c['capacity']}")
    return lines


def _charge_lines(ind: str, c, pvar: str, accvar: str) -> list:
    """Inlined bank charge (store charge + single-store spill wrapper).

    Caller guarantees ``pvar != 0.0`` (run_plan's ``delivered > 0.0``
    gate / the return-to-bank nonzero check subsume the closure's
    zero-power early return).
    """
    lines = [
        f"{ind}e_fast = {c['half_cf']} * (v_fast * v_fast)",
        f"{ind}room = {c['full_e']} - e_fast",
        f"{ind}if room < 0.0:",
        f"{ind}    room = 0.0",
        f"{ind}dj = {pvar} * {c['dt']}",
        f"{ind}if dj > room:",
        f"{ind}    dj = room",
        f"{ind}e_fast += dj",
        f"{ind}v_fast = sqrt(2.0 * e_fast / {c['c_fast']})",
    ]
    lines += _sync_lines(ind, c)
    lines += [
        f"{ind}sc_charged += dj",
        f"{ind}{accvar} = dj / {c['dt']}",
        f"{ind}remaining = {pvar} - {accvar}",
        f"{ind}if remaining > 0.0:",
        f"{ind}    spilled += remaining * {c['dt']}",
    ]
    return lines


def _discharge_lines(ind: str, c, pvar: str, outvar: str) -> list:
    """Inlined store discharge; caller guarantees ``pvar != 0.0``."""
    if c["max_d"] is None:
        deliverable = pvar  # max_discharge_w == inf: min() is identity
    else:
        deliverable = (f"({pvar} if {pvar} <= {c['max_d']} "
                       f"else {c['max_d']})")
    lines = [
        f"{ind}e_fast = {c['half_cf']} * (v_fast * v_fast)",
        f"{ind}available = e_fast - {c['floor_e']}",
        f"{ind}if available < 0.0:",
        f"{ind}    available = 0.0",
        f"{ind}dj = {deliverable} * {c['dt']}",
        f"{ind}if dj > available:",
        f"{ind}    dj = available",
        f"{ind}e_fast -= dj",
        f"{ind}v_fast = sqrt(2.0 * e_fast / {c['c_fast']})",
    ]
    lines += _sync_lines(ind, c)
    lines += [
        f"{ind}sc_discharged += dj",
        f"{ind}{outvar} = dj / {c['dt']}",
    ]
    return lines


def _emit_fused(c) -> str:
    """Emit the fully-fused loop for the qualifying platform shape.

    All mutable state lives in plain Python locals for the whole
    segment; component objects are read once in the prologue and
    written back once at the boundary. Only the leaf harvester physics
    (``open_circuit_voltage`` / ``power_at`` / ``max_power``) stays as
    bound-method calls, behind single-slot memos that are sound because
    library harvesters are pure in ``(voltage, ambient)`` — the same
    purity assumption the scalar kernel's MPP memo and the batched
    tier's I-V surfaces already rely on. The buck-boost forward curve
    ignores its output voltage and P&O's duty is exactly 1.0, so the
    per-channel ``(raw, delivered)`` pair is pure in (tracker voltage,
    ambient value) and memoizes on that key bit-exactly.
    """
    DT = c["dt"]
    L: list[str] = [_SIGNATURE]
    A = L.append
    E = L.extend
    A("    RUNNING = ctx['RUNNING']")
    A("    DEAD = ctx['DEAD']")
    A("    REBOOTING = ctx['REBOOTING']")
    A("    HarvestStep = ctx['HarvestStep']")
    A("    sqrt = ctx['sqrt']")
    A("    _int = int")
    A("    _min = min")
    A("    _max = max")
    A("    INF = float('inf')")
    A("    node = system.node")
    A("    bank = system.bank")
    A("    store = bank.stores[0]")
    if c["manager"]:
        A("    mgr = system.manager")
    for k, ch in enumerate(c["channels"]):
        A(f"    ch_{k} = system.channels[{k}]")
        A(f"    h_voc_{k} = ch_{k}.harvester.open_circuit_voltage")
        A(f"    h_pat_{k} = ch_{k}.harvester.power_at")
        A(f"    h_max_{k} = ch_{k}.harvester.max_power")
        A(f"    tr_{k} = ch_{k}.conditioner.tracker")
        if ch["has_col"]:
            A(f"    av_{k} = avs[{k}]")
    for name, col in _SCALAR_COLS:
        A(f"    {name} = scalars['{col}']")
    # -- state unpack: objects -> locals --------------------------------
    A("    v_fast = store.v_fast")
    A("    v_slow = store.v_slow")
    A("    sc_energy = store.energy_j")
    A("    sc_charged = store.total_charged_j")
    A("    sc_discharged = store.total_discharged_j")
    A("    spilled = bank.spilled_j")
    A("    nstate = 0 if node.state is RUNNING else "
      "(1 if node.state is DEAD else 2)")
    A("    nreboot = node._reboot_remaining")
    A("    nmeas = node.total_measurements")
    A("    npack = node.total_packets")
    A("    nenergy = node.total_energy_j")
    A("    ndead = node.dead_seconds")
    A("    nbrown = node.brownouts")
    if c["manager"]:
        A("    mgr_since = mgr._since_control")
        A("    mgr_passes = mgr.control_passes")
        A("    mgr_spent = mgr.energy_spent_j")
    for k in range(len(c["channels"])):
        A(f"    _tv = tr_{k}._voltage")
        A(f"    thasv_{k} = _tv is not None")
        A(f"    tv_{k} = _tv if thasv_{k} else 0.0")
        A(f"    _tp = tr_{k}._last_power")
        A(f"    thasp_{k} = _tp is not None")
        A(f"    tlp_{k} = _tp if thasp_{k} else 0.0")
        A(f"    tdir_{k} = tr_{k}._direction")
        A(f"    tel_{k} = tr_{k}._elapsed")
        A(f"    vochas_{k} = False")
        A(f"    vockey_{k} = 0.0")
        A(f"    vocval_{k} = 0.0")
        A(f"    mhas_{k} = False")
        A(f"    mkey_{k} = 0.0")
        A(f"    mval_{k} = 0.0")
        A(f"    chas_{k} = False")
        A(f"    ckv_{k} = 0.0")
        A(f"    cka_{k} = 0.0")
        A(f"    cmraw_{k} = 0.0")
        A(f"    cmdel_{k} = 0.0")
    A("    onhas = False")
    A("    onkey = 0.0")
    A("    onval = 0.0")
    A("    done = n_steps")
    A("    for i in range(start, n_steps):")
    A("        t = times[i]")
    A("        if next_event_t <= t:")
    A("            done = i")
    A("            break")
    if c["manager"]:
        # StaticManager.control with wakeup_energy_j == 0 and a no-op
        # policy: only the scheduling counters remain.
        A(f"        mgr_since += {DT}")
        A(f"        if mgr_since >= {c['mgr_period']}:")
        A("            mgr_since = 0.0")
        A("            mgr_passes += 1")
        A("            mgr_spent += 0.0")
    A("        bus_v = v_fast")
    A("        row = base + i")
    A("        raw = 0.0")
    A("        delivered = 0.0")
    A("        mpp = 0.0")
    for k, ch in enumerate(c["channels"]):
        value = f"av_{k}[i]" if ch["has_col"] else "0.0"
        A(f"        av = {value}")
        # P&O hill climb, inlined; Voc behind a pure single-slot memo.
        A(f"        if vochas_{k} and av == vockey_{k}:")
        A(f"            voc = vocval_{k}")
        A("        else:")
        A(f"            voc = h_voc_{k}(av)")
        A(f"            vockey_{k} = av")
        A(f"            vocval_{k} = voc")
        A(f"            vochas_{k} = True")
        A("        if voc <= 0.0:")
        A(f"            thasv_{k} = False")
        A(f"            thasp_{k} = False")
        A(f"            tvolt_{k} = 0.0")
        A("        else:")
        A(f"            if not thasv_{k}:")
        A(f"                tv_{k} = 0.5 * voc")
        A(f"                thasv_{k} = True")
        A(f"            tel_{k} += {DT}")
        A(f"            updates = _int(tel_{k} / {ch['period']})")
        A(f"            tel_{k} -= updates * {ch['period']}")
        A("            if updates > 64:")
        A("                updates = 64")
        A("            for _u in range(updates):")
        A(f"                power = h_pat_{k}(tv_{k}, av)")
        A(f"                if thasp_{k} and power < tlp_{k}:")
        A(f"                    tdir_{k} = -tdir_{k}")
        A(f"                tlp_{k} = power")
        A(f"                thasp_{k} = True")
        A(f"                tv_{k} += tdir_{k} * {ch['frac']} * voc")
        A(f"                tv_{k} = _min(_max(tv_{k}, 0.0), voc)")
        A(f"            tvolt_{k} = tv_{k}")
        # Single-slot MPP memo (the scalar kernel's, flag-based).
        A(f"        if mhas_{k} and av == mkey_{k}:")
        A(f"            mpp_{k} = mval_{k}")
        A("        else:")
        A(f"            mpp_{k} = h_max_{k}(av)")
        A(f"            mkey_{k} = av")
        A(f"            mval_{k} = mpp_{k}")
        A(f"            mhas_{k} = True")
        # Conditioner chain: P&O always harvests at duty 1.0 (x * 1.0
        # is x for every float, so the multiply is omitted), and the
        # buck-boost forward curve ignores bus_v — (raw, delivered) is
        # pure in (tracker voltage, ambient) and memoizes exactly.
        A(f"        if tvolt_{k} <= 0.0:")
        A(f"            raw_{k} = 0.0")
        A(f"            del_{k} = 0.0")
        A(f"        elif chas_{k} and tvolt_{k} == ckv_{k} "
          f"and av == cka_{k}:")
        A(f"            raw_{k} = cmraw_{k}")
        A(f"            del_{k} = cmdel_{k}")
        A("        else:")
        A(f"            raw_{k} = h_pat_{k}(tvolt_{k}, av)")
        A(f"            if raw_{k} == 0.0:")
        A(f"                del_{k} = 0.0")
        A(f"            elif {ch['cvlo']} <= tvolt_{k} <= {ch['cvhi']}:")
        A(f"                del_{k} = raw_{k} * ({ch['cpeak']} * raw_{k} "
          f"/ (raw_{k} + {ch['cover']}))")
        A("            else:")
        A(f"                del_{k} = raw_{k} * 0.0")
        A(f"            if del_{k} == 0.0 and raw_{k} > 0.0:")
        A(f"                raw_{k} = 0.0")
        A(f"            ckv_{k} = tvolt_{k}")
        A(f"            cka_{k} = av")
        A(f"            cmraw_{k} = raw_{k}")
        A(f"            cmdel_{k} = del_{k}")
        A(f"            chas_{k} = True")
        A(f"        raw += raw_{k}")
        A(f"        delivered += del_{k}")
        A(f"        mpp += mpp_{k}")
        A(f"        chan_p[row, {k}] = del_{k}")
    # §2 tail: charge the bank with the harvested power.
    A("        if delivered > 0.0:")
    E(_charge_lines("            ", c, "delivered", "accepted"))
    A("        else:")
    A("            accepted = 0.0")
    # §3 quiescent losses (no bus in the fused envelope).
    A(f"        iq = {c['tq']} * (bus_v if bus_v > 0.0 else 0.0)")
    A("        if iq > 0.0:")
    E(_discharge_lines("            ", c, "iq", "quiescent_drawn"))
    A("        else:")
    A("            quiescent_drawn = 0.0")
    # §4 supply the node through the output stage.
    A(f"        demand = {c['demand_run']} if nstate == 0 "
      f"else {c['reboot_power']}")
    A("        sv = v_fast")
    # Brown-out window + converter window; past them the buck-boost
    # inversion is pure in demand, which takes only two values.
    A(f"        if sv < {c['out_min_v']} or sv < {c['ovlo']} "
      f"or sv > {c['ovhi']}:")
    A("            needed = INF")
    A("        elif onhas and demand == onkey:")
    A("            needed = onval")
    A("        else:")
    A("            p_in = demand")
    A("            for _u in range(30):")
    A(f"                eff = {c['opeak']} * p_in / (p_in + {c['oover']})")
    A("                if eff <= 0.0:")
    A("                    needed = INF")
    A("                    break")
    A("                p_new = demand / eff")
    A("                diff = p_new - p_in")
    A("                if diff < 0.0:")
    A("                    diff = -diff")
    A("                if diff < 1e-12 * (p_in if p_in > 1.0 else 1.0):")
    A("                    needed = p_new")
    A("                    break")
    A("                p_in = 0.5 * (p_in + p_new)")
    A("            else:")
    A("                needed = p_in")
    A("            onkey = demand")
    A("            onval = needed")
    A("            onhas = True")
    A("        if needed == INF:")
    A("            supplied = 0.0")
    A("            drawn = 0.0")
    A("        else:")
    E(_discharge_lines("            ", c, "needed", "drawn"))
    A("            supplied = demand * (drawn / needed) "
      "if needed > 0.0 else 0.0")
    # Node brown-out state machine, states as recorder codes 0/1/2.
    A(f"        if nstate == 1 and supplied < {c['sleep']}:")
    A(f"            ndead += {DT}")
    A("            res_state = 1")
    A("            consumed = 0.0")
    A("            meas = 0.0")
    A("        else:")
    A("            if nstate == 1:")
    A("                nstate = 2")
    A(f"                nreboot = {c['reboot_time']}")
    A("            if nstate == 2:")
    A(f"                if supplied < {c['reboot_power']}:")
    A("                    nstate = 1")
    A(f"                    ndead += {DT}")
    A("                    res_state = 1")
    A("                    consumed = 0.0")
    A("                    meas = 0.0")
    A("                else:")
    A(f"                    reboot_spent = _min({DT}, "
      f"_max(nreboot, 0.0))")
    A(f"                    nreboot -= {DT}")
    A(f"                    consumed = ({c['reboot_power']} * reboot_spent"
      f" + {c['sleep']} * ({DT} - reboot_spent)) / {DT}")
    A(f"                    nenergy += consumed * {DT}")
    A("                    if nreboot <= 0.0:")
    A("                        nstate = 0")
    A("                    ndead += reboot_spent")
    A("                    res_state = 2")
    A("                    meas = 0.0")
    A(f"            elif supplied < {c['sleep']}:")
    A("                nstate = 1")
    A("                nbrown += 1")
    A(f"                ndead += {DT}")
    A("                res_state = 1")
    A("                consumed = 0.0")
    A("                meas = 0.0")
    A("            else:")
    A(f"                consumed = {c['demand_run']} "
      f"if {c['demand_run']} <= supplied else supplied")
    if c["no_margin"]:
        A("                meas = 0.0")
    else:
        A(f"                margin = consumed - {c['sleep']}")
        A(f"                _fr = margin / {c['needed_margin']}")
        A(f"                meas = {c['full_rate']} * "
          f"(1.0 if 1.0 <= _fr else _fr)")
    A("                nmeas += meas")
    A("                npack += meas")
    A(f"                nenergy += consumed * {DT}")
    A("                res_state = 0")
    # Return the unconsumed part of the draw to the bank.
    A("        if supplied > 0.0 and consumed < supplied - 1e-15:")
    A("            _rp = drawn * (1.0 - consumed / supplied)")
    A("            if _rp != 0.0:")
    E(_charge_lines("                ", c, "_rp", "_racc"))
    # §5 idle: redistribution + leakage.
    if c["has_slow"]:
        A(f"        v_eq = ({c['c_fast']} * v_fast + {c['c_slow']} * "
          f"v_slow) / {c['cap_f']}")
        A(f"        v_fast += {c['alpha']} * (v_eq - v_fast)")
        A(f"        v_slow += {c['alpha']} * (v_eq - v_slow)")
    A(f"        v_fast *= {c['leak']}")
    E(_sync_lines("        ", c))
    # §6 record.
    A("        col_t[row] = t")
    A("        col_raw[row] = raw")
    A("        col_del[row] = delivered")
    A("        col_mpp[row] = mpp")
    A("        col_acc[row] = accepted")
    A("        col_qsc[row] = quiescent_drawn")
    A("        col_dem[row] = demand")
    A("        col_sup[row] = supplied")
    A("        col_con[row] = consumed")
    A("        col_bak[row] = 0.0")
    A("        col_mea[row] = meas")
    A("        state_arr[row] = res_state")
    A("        store_e[row, 0] = sc_energy")
    A("        store_v[row, 0] = v_fast")
    # -- write-back: locals -> objects (only if any step ran) -----------
    A("    if done > start:")
    A("        store.v_fast = v_fast")
    A("        store.v_slow = v_slow")
    A("        store.energy_j = sc_energy")
    A("        store.total_charged_j = sc_charged")
    A("        store.total_discharged_j = sc_discharged")
    A("        bank.spilled_j = spilled")
    A("        node.state = RUNNING if nstate == 0 else "
      "(DEAD if nstate == 1 else REBOOTING)")
    A("        node._reboot_remaining = nreboot")
    A("        node.total_measurements = nmeas")
    A("        node.total_packets = npack")
    A("        node.total_energy_j = nenergy")
    A("        node.dead_seconds = ndead")
    A("        node.brownouts = nbrown")
    if c["manager"]:
        A("        mgr._since_control = mgr_since")
        A("        mgr.control_passes = mgr_passes")
        A("        mgr.energy_spent_j = mgr_spent")
    for k in range(len(c["channels"])):
        A(f"        tr_{k}._voltage = tv_{k} if thasv_{k} else None")
        A(f"        tr_{k}._last_power = tlp_{k} if thasp_{k} else None")
        A(f"        tr_{k}._direction = tdir_{k}")
        A(f"        tr_{k}._elapsed = tel_{k}")
        A(f"        ch_{k}.last_step = HarvestStep(raw_{k}, del_{k}, "
          f"tvolt_{k}, mpp_{k})")
    A("    return done")
    A("")
    return "\n".join(L)

