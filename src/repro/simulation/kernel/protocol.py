"""Component lowering protocol for the composable kernel.

The kernel executes a simulation with the interpreter overhead of the
legacy per-step path removed, while staying **bit-for-bit identical** to
it. Instead of one hand-inlined special case (the old
``repro.simulation._fastpath`` supported single-supercapacitor systems
only), every component type *lowers itself*: it exposes a
``lower_kernel(dt) -> <Lowering>`` hook that emits specialized per-step
closures over hoisted run constants, and a
:class:`~repro.simulation.kernel.plan.KernelPlan` composes the lowered
pieces for an arbitrary :class:`~repro.core.MultiSourceSystem`.

Contract for every lowering closure:

* **Exactness** — a closure performs the same floating-point operations
  in the same order as the component method it replaces. Hoisting is
  only allowed for subexpressions whose value cannot change between
  steps (run constants), and expressions must be copied operator by
  operator (e.g. ``0.5 * c * v ** 2`` hoists to ``half_c = 0.5 * c``
  then ``half_c * v ** 2`` — the same association order).
* **Live state** — closures read and write the component's *own
  attributes* directly, never shadow copies, so managers, monitors, bus
  devices, and scheduled events observe exactly the state they would see
  on the legacy path at every step boundary.
* **Capability, not trust** — a lowering that inlines arithmetic must
  refuse instances whose class overrides the methods being inlined
  (:func:`ensure_unmodified`); such a component *genuinely has no
  lowering* and the whole system falls back to the legacy path. Closures
  that merely call a bound method (e.g. a tracker's ``step``) are exact
  for any subclass and never refuse.

A hook signals "no lowering" by raising :exc:`LoweringUnsupported`; the
plan converts that into legacy fallback (or a hard error under
``fast=True`` strict mode, see :exc:`KernelFallback`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CapabilityReport",
    "LoweringUnsupported",
    "KernelFallback",
    "ensure_unmodified",
    "overridden_methods",
    "StoreLowering",
    "BankLowering",
    "ChannelLowering",
    "OutputLowering",
    "NodeLowering",
    "SystemLowering",
]


@dataclass(frozen=True)
class CapabilityReport:
    """Structured account of why a component refused to lower.

    A refusal is capability negotiation, not an error: the report names
    the *component* that refused, the *capability* it lacks, the
    human-readable *detail*, and the *divergence* the missing capability
    would cause if the lowering ran anyway (how often the lockstep state
    would drift from the per-scenario truth — ``"every step"`` for
    replaced physics, ``"per event"`` for shapes only the scalar
    side-channel can follow, ``None`` when not applicable). Sweep rows
    carry the report in their extras (``batch_fallback_reason``) and
    ``repro sweep --batch on --explain`` renders it as a table.
    """

    component: str
    capability: str
    detail: str
    divergence: str | None = None

    def as_dict(self) -> dict:
        """Flat JSON-friendly payload (sweep-row extras, ``--json``)."""
        return {"component": self.component, "capability": self.capability,
                "detail": self.detail, "divergence": self.divergence}

    def __str__(self) -> str:
        tail = f" (would diverge {self.divergence})" if self.divergence \
            else ""
        return f"{self.component}: missing {self.capability} — " \
               f"{self.detail}{tail}"


class LoweringUnsupported(Exception):
    """A component has no kernel lowering; the system runs legacy.

    Raise sites may attach structured identity (``component``,
    ``capability``, ``divergence``); :meth:`capability_report` always
    yields a full :class:`CapabilityReport`, synthesizing conservative
    defaults for plain-string raises.
    """

    def __init__(self, message: str, *, component: str | None = None,
                 capability: str | None = None,
                 divergence: str | None = None):
        super().__init__(message)
        self.component = component
        self.capability = capability
        self.divergence = divergence

    def capability_report(self) -> CapabilityReport:
        """The refusal as a structured :class:`CapabilityReport`."""
        detail = str(self)
        component = self.component
        if component is None:
            # Raise-site convention: messages lead with the refusing
            # component's class name ("TunedSupercap overrides ...").
            component = detail.split()[0].rstrip(":,") if detail else \
                "unknown"
        return CapabilityReport(
            component=component,
            capability=self.capability or "lowering",
            detail=detail,
            divergence=self.divergence,
        )


class KernelFallback(RuntimeError):
    """Raised under ``fast=True`` when a mid-run event pushes the system
    outside the kernel envelope.

    With ``fast="auto"`` the engine degrades to the legacy path
    transparently; strict mode promised the kernel, so quietly running
    an order of magnitude slower would be a lie — it raises instead.
    """


def _resolve(cls: type, name: str):
    """The attribute ``cls`` actually uses for ``name`` (MRO walk)."""
    for klass in cls.__mro__:
        if name in klass.__dict__:
            return klass.__dict__[name]
    return None


def overridden_methods(obj, base: type, *names: str) -> list:
    """Which of ``names`` ``type(obj)`` resolves differently from ``base``."""
    cls = type(obj)
    return [name for name in names
            if _resolve(cls, name) is not _resolve(base, name)]


def ensure_unmodified(obj, base: type, *names: str) -> None:
    """Refuse to lower an instance whose class overrides inlined methods.

    Raises :exc:`LoweringUnsupported` naming the offending methods — the
    subclass may legitimately change the physics the lowering would
    inline, so the only safe answer is "no lowering" (the subclass can
    define its own ``lower_kernel`` / ``_kernel_*`` hook to opt back in).
    """
    changed = overridden_methods(obj, base, *names)
    if changed:
        raise LoweringUnsupported(
            f"{type(obj).__name__} overrides {', '.join(changed)}() of "
            f"{base.__name__} and defines no kernel lowering of its own",
            component=type(obj).__name__,
            capability=f"unmodified {base.__name__} physics",
            divergence="every step")


class StoreLowering:
    """Lowered energy store: per-step closures sharing the store's state.

    ``voltage() -> V``, ``charge(power_w) -> accepted_w``,
    ``discharge(power_w) -> delivered_w`` and ``idle()`` replicate the
    store's methods with ``dt`` baked in and validation hoisted out.
    """

    __slots__ = ("store", "voltage", "charge", "discharge", "idle")

    def __init__(self, store, voltage, charge, discharge, idle):
        self.store = store
        self.voltage = voltage
        self.charge = charge
        self.discharge = discharge
        self.idle = idle


class BankLowering:
    """Lowered storage bank: routing composed over store lowerings."""

    __slots__ = ("bank", "voltage", "charge", "discharge", "idle",
                 "backup_energy", "store_objects", "store_voltages")

    def __init__(self, bank, voltage, charge, discharge, idle,
                 backup_energy, store_objects, store_voltages):
        self.bank = bank
        self.voltage = voltage
        self.charge = charge
        self.discharge = discharge
        self.idle = idle
        #: () -> total backup-store energy (J), or None when the bank has
        #: no backup stores (the backup_power column is then constant 0).
        self.backup_energy = backup_energy
        #: Stores in bank order, for the recorder's per-store energy
        #: column (energy_j is an attribute read on both paths).
        self.store_objects = store_objects
        #: Terminal-voltage closures in bank order (per-store column).
        self.store_voltages = store_voltages


class ChannelLowering:
    """Lowered harvesting channel: ``step(ambient_value, bus_v)``."""

    __slots__ = ("channel", "source_type", "step")

    def __init__(self, channel, source_type, step):
        self.channel = channel
        self.source_type = source_type
        self.step = step


class OutputLowering:
    """Lowered output stage: ``needed(demand_w, store_v) -> input W``."""

    __slots__ = ("output", "needed")

    def __init__(self, output, needed):
        self.output = output
        self.needed = needed


class NodeLowering:
    """Lowered node: ``demand() -> W`` and ``step(supplied_w, dt)``."""

    __slots__ = ("node", "demand", "step")

    def __init__(self, node, demand, step):
        self.node = node
        self.demand = demand
        self.step = step


class SystemLowering:
    """Every lowered piece of one system, ready for plan composition."""

    __slots__ = ("system", "bank", "channels", "output", "node",
                 "manager_control", "quiescent_a", "bus")

    def __init__(self, system, bank, channels, output, node,
                 manager_control, quiescent_a, bus):
        self.system = system
        self.bank = bank
        self.channels = channels
        self.output = output
        self.node = node
        #: (t, dt, system) -> None, or None for unmanaged platforms.
        self.manager_control = manager_control
        #: Hoisted MultiSourceSystem.total_quiescent_current_a.
        self.quiescent_a = quiescent_a
        self.bus = bus
