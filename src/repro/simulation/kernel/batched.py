"""Batched sweep kernel: step whole scenario grids in lockstep.

A sweep runs dozens-to-thousands of *near-identical* scenarios — same
system topology, different knob values or environment seeds. The scalar
kernel (:mod:`.plan`) pays the full Python-closure loop once per
scenario; this module pays it once per *grid*: every piece of
per-scenario state (store energies and branch voltages, node state,
manager counters) becomes an ``(n_scenarios,)`` float64 array, every
per-step closure becomes a vectorized expression over those arrays, and
the ambient inputs become a stacked ``(n_steps, n_scenarios)`` tensor
per channel built from each scenario's
:class:`~repro.environment.CompiledEnvironment`.

Results are **bit-for-bit identical per scenario** to the scalar kernel
(and therefore to the legacy path). Three rules make that possible:

* **Same elementwise expressions.** Every vectorized expression copies
  the scalar kernel's operator tree — same association order, same
  ``min``/``max`` tie behaviour (``np.minimum(a, b)`` matches
  ``a if a <= b else b`` for non-NaN floats), with data-dependent
  branches turned into ``np.where`` masks that gate *every* state write
  exactly where the scalar code early-returns.
* **Python-computed constants.** Hoisted run constants are gathered with
  scalar Python arithmetic (:func:`gather`), never recomputed with
  numpy, so they carry the exact bits the scalar kernel hoists.
* **Exact libm transcendentals.** numpy's SIMD ``exp``/``log``/
  ``log1p``/``expm1`` and ``**`` differ from CPython's libm calls by
  1 ULP on a small fraction of inputs; :func:`exact_unary` /
  :func:`exact_pow` route those call sites through the *scalar* libm
  functions elementwise. Plain arithmetic, ``np.sqrt``, and
  ``np.searchsorted`` are exact matches and stay vectorized.

Eligibility is per component, exactly like the scalar kernel: a
component type without a batched lowering (``lower_batched`` hooks
raising :exc:`LoweringUnsupported`) drops the *scenario* back to the
per-scenario path — never the whole sweep. The envelope covers all
seven Table I systems: bus/MCU platforms (pre-run transaction energy is
hoisted and drained on the first step), backup-store cascades (fuel
cells, primary cells — per-lane ``backup_enabled`` masks), stateful
hill-climbing trackers (P&O, incremental conductance — replayed as
per-lane schedule columns), and the periodic managers (vectorized
counter machine + SoC-gated policy).

Scheduled events run under a **masked-lane execution model**
(:func:`run_batched`): the grid steps in lockstep between *event
horizons*; at a horizon every lane's state is written back onto the
real component objects, due events fire on their lanes, and the group
re-lowers and rejoins lockstep. Write-back/re-gather equality is
enforced for untouched lanes at every rejoin. Lanes whose events push
them outside the envelope *peel* into a scalar side-channel — their
recorder prefix is filled from the batch buffers and the remaining
steps run on the scalar kernel (``run_plan(start=...)``) or, failing
that, the legacy per-step loop — while the surviving lanes keep the
lockstep speedup.
"""

from __future__ import annotations

import math

import numpy as np

from ...load.node import NodeState
from ..recorder import (
    SCALAR_COLUMNS,
    STATE_DEAD,
    STATE_REBOOTING,
    STATE_RUNNING,
)
from .protocol import LoweringUnsupported

__all__ = [
    "BatchedPlan",
    "BatchState",
    "BatchedStoreLowering",
    "BatchedBankLowering",
    "BatchedChannelLowering",
    "BatchedOutputLowering",
    "BatchedNodeLowering",
    "BatchedManagerLowering",
    "BatchedManagerContext",
    "BatchedSystemLowering",
    "TrackerSchedule",
    "batch_capability_report",
    "batch_eligible",
    "why_batch_ineligible",
    "group_signature",
    "run_batched",
    "gather",
    "exact_unary",
    "exact_exp",
    "exact_log",
    "exact_log1p",
    "exact_expm1",
    "exact_pow",
    "damped_fixed_point",
]

_INF = float("inf")

_STATE_CODE = {
    NodeState.RUNNING: STATE_RUNNING,
    NodeState.DEAD: STATE_DEAD,
    NodeState.REBOOTING: STATE_REBOOTING,
}
_CODE_STATE = {code: state for state, code in _STATE_CODE.items()}


# ----------------------------------------------------------------------
# Exactness helpers
# ----------------------------------------------------------------------
def gather(objs, fn) -> np.ndarray:
    """Per-scenario run constants as a float64 array.

    ``fn`` runs in plain Python, so hoisted constants (e.g.
    ``dt * charge_efficiency``) carry exactly the bits the scalar
    kernel's closures hoist.
    """
    return np.array([fn(o) for o in objs], dtype=np.float64)


def same_class(objs, role: str) -> type:
    """The common concrete class of a component group.

    Batched lowerings inline per-class arithmetic across the whole
    group, so mixing classes (or subclasses — their physics may differ)
    has no batched lowering.
    """
    cls = type(objs[0])
    for obj in objs:
        if type(obj) is not cls:
            raise LoweringUnsupported(
                f"{role} group mixes {cls.__name__} and "
                f"{type(obj).__name__}; a batch must share one concrete "
                f"class per component position",
                component=role,
                capability="homogeneous component class across the group",
                divergence="every step")
    return cls


def exact_unary(fn):
    """Vectorize a scalar libm function *exactly*.

    numpy's SIMD transcendentals round differently from libm on ~0.1-4%
    of inputs; mapping the scalar function keeps batched results
    bit-identical to the scalar kernel at ~100 ns/element.
    """
    def apply(arr):
        a = np.asarray(arr, dtype=np.float64)
        flat = a.ravel()
        out = np.fromiter(map(fn, flat.tolist()), dtype=np.float64,
                          count=flat.size)
        return out.reshape(a.shape)
    return apply


exact_exp = exact_unary(math.exp)
exact_log = exact_unary(math.log)
exact_log1p = exact_unary(math.log1p)
exact_expm1 = exact_unary(math.expm1)


def exact_pow(arr, exponent: float) -> np.ndarray:
    """CPython ``x ** e`` elementwise (libm ``pow``, not numpy's)."""
    a = np.asarray(arr, dtype=np.float64)
    flat = a.ravel()
    out = np.fromiter((x ** exponent for x in flat.tolist()),
                      dtype=np.float64, count=flat.size)
    return out.reshape(a.shape)


class BatchState:
    """Mutable bag of one component group's ``(n,)`` state arrays.

    Closures rebind attributes (``state.energy = state.energy - drawn``)
    instead of mutating in place, so every reader — recorder writes,
    sibling closures, the final :meth:`writeback` — always sees the
    latest arrays.
    """


def damped_fixed_point(p_out, efficiency):
    """Vectorized :meth:`Converter.input_power` fixed point.

    ``efficiency(p)`` returns the per-lane efficiency at input power
    ``p``. Lanes freeze at *their* convergence step, reproducing the
    scalar loop's early exit; lanes that never converge return the
    30-times-damped iterate, exactly like the scalar code.
    """
    p = p_out.astype(np.float64, copy=True)
    result = np.zeros_like(p)
    undecided = np.ones(p.shape, dtype=bool)
    for _ in range(30):
        eff = efficiency(p)
        bad = undecided & (eff <= 0.0)
        if bad.any():
            result = np.where(bad, _INF, result)
            undecided = undecided & ~bad
        p_new = p_out / eff
        diff = np.abs(p_new - p)
        tol = 1e-12 * np.where(p > 1.0, p, 1.0)
        conv = undecided & (diff < tol)
        result = np.where(conv, p_new, result)
        undecided = undecided & ~conv
        if not undecided.any():
            break
        p = np.where(undecided, 0.5 * (p + p_new), p)
    return np.where(undecided, p, result)


# ----------------------------------------------------------------------
# Lowering records (the batched twins of kernel/protocol.py)
# ----------------------------------------------------------------------
class BatchedStoreLowering:
    """Lowered store group: closures over shared ``(n,)`` state arrays."""

    __slots__ = ("stores", "state", "voltage", "charge", "discharge",
                 "idle", "writeback")

    def __init__(self, stores, state, voltage, charge, discharge, idle,
                 writeback):
        self.stores = stores
        self.state = state
        self.voltage = voltage
        self.charge = charge
        self.discharge = discharge
        self.idle = idle
        self.writeback = writeback


class BatchedBankLowering:
    """Lowered bank group: routing composed over store lowerings."""

    __slots__ = ("banks", "state", "voltage", "charge", "discharge",
                 "idle", "backup_energy", "stores", "writeback")

    def __init__(self, banks, state, voltage, charge, discharge, idle,
                 backup_energy, stores, writeback):
        self.banks = banks
        self.state = state
        self.voltage = voltage
        self.charge = charge
        self.discharge = discharge
        self.idle = idle
        #: ``() -> (n,)`` total backup energy, or None without backups.
        self.backup_energy = backup_energy
        self.stores = stores
        self.writeback = writeback


class TrackerSchedule:
    """A tracker group's precomputed per-step decisions.

    ``voltage`` is ``(n_steps, w)``; ``harvesting``/``duty`` are the
    same shape or ``None`` when trivially True / 1.0 (so the channel
    skips the gate / the ``* duty`` multiply — ``x * 1.0`` is exact, but
    skipping is cheaper).
    """

    __slots__ = ("voltage", "harvesting", "duty", "writeback")

    def __init__(self, voltage, harvesting=None, duty=None, writeback=None):
        self.voltage = voltage
        self.harvesting = harvesting
        self.duty = duty
        self.writeback = writeback


class BatchedChannelLowering:
    """Lowered channel group with two-phase construction.

    Compile time validates classes/hooks and gathers constants;
    :meth:`prepare` receives the stacked ambient tensor and precomputes
    the tracker schedule and the harvest-side power tensors (the parts
    that depend only on ambient values, never on runtime bus state);
    :meth:`step` does the remaining bus-coupled work per step.
    """

    __slots__ = ("channels", "source_type", "_tracker", "_surface",
                 "_conv_out", "_enabled", "_compressible", "_volt_pre",
                 "_raw_pre", "_mpp_pre", "_last", "_tracker_writeback")

    def __init__(self, channels, source_type, tracker, surface, conv_out,
                 enabled, compressible):
        self.channels = channels
        self.source_type = source_type
        self._tracker = tracker
        self._surface = surface
        self._conv_out = conv_out
        self._enabled = enabled          # bool array or True
        self._compressible = compressible
        self._volt_pre = None
        self._raw_pre = None
        self._mpp_pre = None
        self._last = None
        self._tracker_writeback = None

    def prepare(self, values: np.ndarray) -> None:
        """Precompute the harvest pipeline over the ambient tensor.

        When every scenario shares identical channel hardware *and* an
        identical ambient column, the tensors collapse to one column and
        broadcast over the grid for free.
        """
        if self._compressible and values.shape[1] > 1 and \
                (values == values[:, :1]).all():
            values = values[:, :1]
            width = 1
        else:
            width = values.shape[1]
        if self._enabled is False:
            # Every scenario's channel is disabled: constant zero steps.
            zeros = np.zeros((values.shape[0], 1))
            self._volt_pre = zeros
            self._raw_pre = zeros
            self._mpp_pre = zeros
            return
        surface = self._surface.build(values, width)
        schedule = self._tracker.prepare(surface, values)
        self._tracker_writeback = schedule.writeback
        voltage = schedule.voltage
        mpp = surface.mpp_power()
        raw = surface.power_at(voltage)
        if schedule.duty is not None:
            raw = raw * schedule.duty
        gate = voltage <= 0.0
        if schedule.harvesting is not None:
            gate = gate | ~schedule.harvesting
        raw = np.where(gate, 0.0, raw)
        if self._enabled is not True:
            # Mixed enabled flags: disabled lanes record zero HarvestSteps.
            raw = np.where(self._enabled, raw, 0.0)
            voltage = np.where(self._enabled, voltage, 0.0)
            mpp = np.where(self._enabled, mpp, 0.0)
        self._volt_pre = voltage
        self._raw_pre = raw
        self._mpp_pre = mpp

    def step(self, i: int, bus_v: np.ndarray):
        """One lockstep harvest step: ``(raw, delivered, mpp)`` rows."""
        raw = self._raw_pre[i]
        volt = self._volt_pre[i]
        delivered = self._conv_out(raw, volt, bus_v)
        raw = np.where((delivered == 0.0) & (raw > 0.0), 0.0, raw)
        self._last = (raw, delivered, volt, self._mpp_pre[i])
        return raw, delivered, self._mpp_pre[i]

    def last_delivered(self):
        """Previous step's delivered-power row, or None before step 0.

        What a FULL-capability monitor's ``input_power`` reads: the
        manager control pass runs *before* the harvest phase, so at step
        ``i`` it sees step ``i - 1``'s delivery (and, before the first
        step, the channels' pre-run ``last_step`` state).
        """
        return self._last[1] if self._last is not None else None

    def writeback(self) -> None:
        """Final object state: tracker internals + the last HarvestStep."""
        from ...conditioning.base import HarvestStep
        if self._tracker_writeback is not None:
            self._tracker_writeback()
        if self._last is None:
            return
        raw, delivered, volt, mpp = (np.broadcast_to(a, (len(self.channels),))
                                     for a in self._last)
        for k, channel in enumerate(self.channels):
            channel.last_step = HarvestStep(float(raw[k]), float(delivered[k]),
                                            float(volt[k]), float(mpp[k]))


class BatchedOutputLowering:
    """Lowered output stage: ``needed(demand, store_v)`` over lanes."""

    __slots__ = ("outputs", "needed")

    def __init__(self, outputs, needed):
        self.outputs = outputs
        self.needed = needed


class BatchedNodeLowering:
    """Lowered node group: the brown-out state machine over lanes."""

    __slots__ = ("nodes", "state", "demand", "step", "set_interval",
                 "writeback")

    def __init__(self, nodes, state, demand, step, set_interval, writeback):
        self.nodes = nodes
        self.state = state
        self.demand = demand
        self.step = step
        #: ``(mask, interval_s) -> None`` masked per-lane duty-cycle
        #: update (what manager lowerings drive).
        self.set_interval = set_interval
        self.writeback = writeback


class BatchedManagerLowering:
    """Lowered manager group.

    ``control`` is ``None`` for managers whose control pass cannot touch
    the simulation (StaticManager: zero wake-up energy, no policy) — the
    hot loop skips them entirely and :meth:`writeback` replays the
    bookkeeping counters exactly. Periodic managers supply a live
    ``control()`` that the hot loop invokes at the top of every step,
    mirroring the scalar kernel's phase order.
    """

    __slots__ = ("managers", "control", "writeback")

    def __init__(self, managers, control, writeback):
        self.managers = managers
        self.control = control
        self.writeback = writeback


class BatchedManagerContext:
    """What a manager lowering may touch: the rest of the lowered system.

    Passed by :meth:`MultiSourceSystem.lower_batched` so manager
    lowerings can drive the batched bank (wake-up discharge, backup
    gating), retune the node's duty cycle, and read monitor telemetry
    from the live state arrays instead of the stale component objects.
    """

    __slots__ = ("systems", "bank", "channels", "node")

    def __init__(self, systems, bank, channels, node):
        self.systems = systems
        self.bank = bank
        self.channels = channels
        self.node = node


class BatchedSystemLowering:
    """Every lowered piece of one scenario group."""

    __slots__ = ("systems", "bank", "channels", "output", "node",
                 "manager", "quiescent_a", "bus_pending_w")

    def __init__(self, systems, bank, channels, output, node, manager,
                 quiescent_a, bus_pending_w=None):
        self.systems = systems
        self.bank = bank
        self.channels = channels
        self.output = output
        self.node = node
        self.manager = manager
        #: Hoisted per-scenario standing current, ``(n,)``.
        self.quiescent_a = quiescent_a
        #: Bus-transaction energy pending at compile time, as a power
        #: term drained on the first step, ``(n,)`` — or None when no
        #: lane carries a register bus.
        self.bus_pending_w = bus_pending_w


# ----------------------------------------------------------------------
# Plan, eligibility, grouping
# ----------------------------------------------------------------------
class BatchedPlan:
    """A scenario group lowered at one ``dt``, ready to execute."""

    __slots__ = ("systems", "dt", "lowering")

    def __init__(self, systems, dt: float, lowering):
        self.systems = systems
        self.dt = dt
        self.lowering = lowering

    @classmethod
    def compile(cls, systems, dt: float) -> "BatchedPlan":
        """Lower a group of same-topology systems for lockstep stepping.

        Raises :exc:`LoweringUnsupported` when any component has no
        batched lowering — the sweep runner then routes the group
        through the per-scenario path.
        """
        systems = list(systems)
        if not systems:
            raise ValueError("cannot compile an empty scenario group")
        # Every system must lower on the scalar kernel first: that runs
        # the full ensure_unmodified guard set, so subclassed physics is
        # refused here exactly as it is on the per-scenario fast path.
        for system in systems:
            lower_scalar = getattr(system, "lower_kernel", None)
            if lower_scalar is None:
                raise LoweringUnsupported(
                    f"{type(system).__name__} has no kernel lowering",
                    component=type(system).__name__,
                    capability="kernel lowering hook",
                    divergence="every step")
            lower_scalar(dt)
        lower = getattr(systems[0], "lower_batched", None)
        if lower is None:
            raise LoweringUnsupported(
                f"{type(systems[0]).__name__} has no batched lowering",
                component=type(systems[0]).__name__,
                capability="batched lowering hook",
                divergence="every step")
        return cls(systems, dt, lower(dt, systems))


def batch_eligible(system, dt: float = 1.0) -> bool:
    """Whether a single scenario's system is inside the batched envelope."""
    return batch_capability_report(system, dt) is None


def batch_capability_report(system, dt: float = 1.0):
    """The system's batched-eligibility verdict as capability negotiation.

    Returns ``None`` when every component lowers (the scenario can ride
    the lockstep tier), else the refusing component's
    :class:`~repro.simulation.kernel.protocol.CapabilityReport` — which
    component refused, which capability it lacks, and how the state
    would diverge if it were batched anyway. The sweep runner attaches
    this to fallback rows; ``batch=True`` errors and ``repro mc --tier
    batched`` print it verbatim.
    """
    try:
        BatchedPlan.compile([system], dt)
    except LoweringUnsupported as exc:
        return exc.capability_report()
    return None


def why_batch_ineligible(system, dt: float = 1.0) -> str | None:
    """Human-readable reason the system cannot batch (None if it can).

    String facade over :func:`batch_capability_report`, kept for callers
    that only need prose.
    """
    report = batch_capability_report(system, dt)
    return None if report is None else report.detail


def _store_signature(store) -> tuple:
    socs = getattr(store, "_ocv_soc", None)
    volts = getattr(store, "_ocv_v", None)
    curve = (tuple(socs), tuple(volts)) if socs is not None else None
    return (type(store), store.is_backup, curve)


def group_signature(system, dt: float, n_steps: int) -> tuple:
    """Hashable topology key: scenarios sharing it can share a plan.

    Conservative on purpose: equal keys make
    :meth:`BatchedPlan.compile` *likely* to succeed for the group (the
    compile itself stays authoritative); unequal keys merely split
    groups.
    """
    return (
        dt,
        n_steps,
        type(system),
        tuple(
            (type(ch), ch.source_type, type(ch.harvester),
             type(ch.conditioner), type(ch.conditioner.tracker),
             type(ch.conditioner.converter), bool(ch.enabled))
            for ch in system.channels
        ),
        tuple(_store_signature(s) for s in system.bank.stores),
        (type(system.output), type(system.output.converter)),
        type(system.node),
        (type(system.manager),
         type(getattr(system.manager, "controller", None)))
        if system.manager is not None else None,
        system.monitor.capability,
        (system.bus is not None, system.mcu is not None,
         system.slots is not None),
    )


# ----------------------------------------------------------------------
# The lockstep hot loop (masked-lane execution)
# ----------------------------------------------------------------------
def _run_segment(lowering, buffers, state_buf, store_e_buf, store_v_buf,
                 chan_buf, sel, seg_start: int, horizon: int,
                 dt: float) -> None:
    """One divergence-free lockstep stretch, steps ``[seg_start, horizon)``.

    ``sel`` selects the active lanes' columns in the full-width batch
    buffers (``slice(None)`` while no lane has peeled). Channel
    lowerings were prepared on exactly this window, so their local step
    index is ``i - seg_start``.
    """
    bank = lowering.bank
    node = lowering.node
    output_needed = lowering.output.needed
    channels = lowering.channels
    tq = lowering.quiescent_a

    b_raw = buffers["harvest_raw"]
    b_del = buffers["harvest_delivered"]
    b_mpp = buffers["harvest_mpp"]
    b_acc = buffers["charge_accepted"]
    b_qsc = buffers["quiescent"]
    b_dem = buffers["node_demand"]
    b_sup = buffers["node_supplied"]
    b_con = buffers["node_consumed"]
    b_bak = buffers["backup_power"]
    b_mea = buffers["measurements"]

    bank_voltage = bank.voltage
    bank_charge = bank.charge
    bank_discharge = bank.discharge
    bank_idle = bank.idle
    backup_energy = bank.backup_energy
    node_demand = node.demand
    node_step = node.step
    store_lowerings = bank.stores
    manager_control = (lowering.manager.control
                       if lowering.manager is not None else None)
    bus_pending = lowering.bus_pending_w

    with np.errstate(all="ignore"):
        for i in range(seg_start, horizon):
            # 1. Management decisions. No-op managers (StaticManager)
            #    lower control to None and replay their counters at
            #    writeback; periodic managers run their vectorized
            #    counter machine + policy here, before harvest, exactly
            #    like the scalar phase order.
            if manager_control is not None:
                manager_control()

            # 2. Harvest into the storage bus.
            bus_v = bank_voltage()
            raw = 0.0
            delivered = 0.0
            mpp = 0.0
            k = 0
            for channel in channels:
                ch_raw, ch_del, ch_mpp = channel.step(i - seg_start, bus_v)
                raw = raw + ch_raw
                delivered = delivered + ch_del
                mpp = mpp + ch_mpp
                chan_buf[i, sel, k] = ch_del
                k += 1
            accepted = bank_charge(np.where(delivered > 0.0, delivered, 0.0))

            # 3. Standing (quiescent) losses, including any bus
            #    transactions charged before the segment (transactions
            #    never happen mid-segment, so the pending term is zero —
            #    an exact no-op addition — after the first step).
            iq = tq * np.where(bus_v > 0.0, bus_v, 0.0)
            if i == seg_start and bus_pending is not None:
                iq = iq + bus_pending
            quiescent = bank_discharge(np.where(iq > 0.0, iq, 0.0))

            # 4. Supply the node through the output stage.
            if backup_energy is not None:
                backup_before = backup_energy()
            demand = node_demand()
            sv = bank_voltage()
            needed = output_needed(demand, sv)
            active = (needed != _INF) & (demand > 0.0)
            drawn = bank_discharge(np.where(active, needed, 0.0))
            supplied = np.where(active & (needed > 0.0),
                                demand * (drawn / needed), 0.0)
            node_state, consumed, measured = node_step(supplied)
            refund = (supplied > 0.0) & (consumed < supplied - 1e-15)
            if refund.any():
                bank_charge(np.where(
                    refund, drawn * (1.0 - consumed / supplied), 0.0))
            if backup_energy is not None:
                dropped = backup_before - backup_energy()
                b_bak[i, sel] = np.where(dropped > 0.0, dropped, 0.0) / dt
            else:
                b_bak[i, sel] = 0.0

            # 5. Storage self-discharge / charge redistribution.
            bank_idle()

            # 6. Record the step.
            b_raw[i, sel] = raw
            b_del[i, sel] = delivered
            b_mpp[i, sel] = mpp
            b_acc[i, sel] = accepted
            b_qsc[i, sel] = quiescent
            b_dem[i, sel] = demand
            b_sup[i, sel] = supplied
            b_con[i, sel] = consumed
            b_mea[i, sel] = measured
            state_buf[i, sel] = node_state
            k = 0
            for st in store_lowerings:
                store_e_buf[i, sel, k] = st.state.energy
                store_v_buf[i, sel, k] = st.voltage()
                k += 1


def _writeback(lowering, seg_steps: int) -> None:
    """Final in-flight state back onto the real component objects."""
    if lowering.bus_pending_w is not None:
        # Mirror the scalar path's bus accounting: everything spent on
        # the bus so far has now been charged against the bank.
        for system in lowering.systems:
            if system.bus is not None:
                system._bus_energy_charged_j = system.bus.energy_spent_j
    lowering.bank.writeback()
    lowering.node.writeback()
    if lowering.manager is not None:
        lowering.manager.writeback(seg_steps)
    for channel in lowering.channels:
        channel.writeback()


def _enforce_rejoin(snapshot, lowering, lanes, fired_lanes) -> None:
    """Write-back/re-gather equality for lanes no event touched.

    The rejoin contract of the masked-lane model: lowering state written
    back onto the component objects and re-gathered by the next
    segment's compile must be bit-identical, or the lockstep run would
    silently diverge from the scalar path. Representative state (every
    store's energy, the node's measurement interval) is checked at every
    rejoin; events legitimately mutate their own lanes, so those are
    exempt.
    """
    if snapshot is None:
        return
    stores = lowering.bank.stores
    interval = lowering.node.state.interval
    for pos, lane in enumerate(lanes):
        if lane in fired_lanes or lane not in snapshot:
            continue
        energies, node_interval = snapshot[lane]
        regathered = tuple(float(st.state.energy[pos]) for st in stores)
        if regathered != energies or float(interval[pos]) != node_interval:
            raise RuntimeError(
                f"masked-lane rejoin: written-back state diverged on "
                f"untouched lane {lane}: stores {energies} -> "
                f"{regathered}")


def run_batched(plan: BatchedPlan, compileds, recorders, n_steps: int,
                dt: float, schedules=None) -> list:
    """Run a scenario group in lockstep and fill one recorder each.

    ``compileds`` are the scenarios' :class:`CompiledEnvironment`
    windows (same ``n_steps``/``dt``, ``t0 = 0``); ``recorders`` are
    fresh :class:`~repro.simulation.Recorder` instances. On return each
    recorder holds exactly the columns the scalar kernel would have
    written, and every component object carries its final state.

    ``schedules`` is an optional per-lane list of
    :class:`~repro.simulation.EventSchedule` (or None). Lanes without
    events step in lockstep end to end. Scheduled events segment the
    run at *event horizons*: the whole group's state is written back,
    due events fire on their lanes' real objects, and the group
    re-lowers and rejoins lockstep (write-back equality enforced for
    untouched lanes). A lane whose event pushes it outside the batched
    envelope peels into the scalar side-channel: its recorder prefix is
    filled from the batch buffers and the remaining steps run through
    :func:`~repro.simulation.kernel.plan.run_plan` (``start=`` the peel
    step) or, beyond the scalar envelope, the legacy per-step loop.

    Returns one execution-path string per lane: ``"batched"`` for
    lockstep end-to-end, ``"batched+kernel"`` / ``"batched+legacy"`` /
    ``"batched+kernel+legacy"`` for peeled lanes.
    """
    from ..events import EventSchedule
    from .plan import KernelPlan, run_plan

    n = len(plan.systems)
    if not (len(compileds) == len(recorders) == n):
        raise ValueError("one compiled environment and recorder per scenario")
    if schedules is None:
        schedules = [None] * n
    elif len(schedules) != n:
        raise ValueError("one event schedule (or None) per scenario")

    lowering = plan.lowering
    n_stores = len(lowering.bank.stores)
    n_channels = len(lowering.channels)
    times = compileds[0].times

    # Batched recorder buffers, (n_steps, n) per column; sliced back into
    # per-scenario recorders at the end. Peeled lanes keep their prefix.
    buffers = {name: np.empty((n_steps, n), dtype=np.float64)
               for name in SCALAR_COLUMNS if name != "t"}
    state_buf = np.empty((n_steps, n), dtype=np.int8)
    store_e_buf = np.empty((n_steps, n, n_stores), dtype=np.float64)
    store_v_buf = np.empty((n_steps, n, n_stores), dtype=np.float64)
    chan_buf = np.empty((n_steps, n, n_channels), dtype=np.float64)

    systems = list(plan.systems)
    lanes = list(range(n))
    paths = ["batched"] * n
    peels: list = []        # (original lane, resume step)
    snapshot = None         # lane -> written-back state evidence
    seg_start = 0

    while seg_start < n_steps and systems:
        # 0. Divergence bucket: fire events due at the segment start on
        #    their lanes' real objects (state was written back at the
        #    previous horizon), then re-lower the group and rejoin.
        t_seg = times[seg_start]
        fired_lanes = set()
        for pos, lane in enumerate(lanes):
            sched = schedules[lane]
            if sched is not None and sched.next_time() <= t_seg:
                for event in sched.due(t_seg):
                    event.action(systems[pos])
                fired_lanes.add(lane)
        if fired_lanes:
            # Partition by topology signature: a lane whose event moved
            # it onto a different topology (class change anywhere) can
            # no longer share the plan and peels; same-topology
            # mutations (e.g. a like-for-like hot-swap) rejoin.
            sigs = []
            for system in systems:
                try:
                    sigs.append(group_signature(system, dt, 0))
                except Exception:
                    sigs.append(None)
            base_sig = None
            for pos, lane in enumerate(lanes):
                if lane not in fired_lanes:
                    base_sig = sigs[pos]
                    break
            if base_sig is None:
                # Every lane fired: keep the largest surviving cohort.
                counts: dict = {}
                for sig in sigs:
                    if sig is not None:
                        counts[sig] = counts.get(sig, 0) + 1
                if counts:
                    base_sig = max(counts, key=counts.get)
            keep_pos = [p for p in range(len(systems))
                        if sigs[p] is not None and sigs[p] == base_sig]
            lowering = None
            while keep_pos:
                try:
                    lowering = BatchedPlan.compile(
                        [systems[p] for p in keep_pos], dt).lowering
                    break
                except LoweringUnsupported:
                    # Instance-level refusal the signature cannot see:
                    # drop the fired lanes from the cohort and retry;
                    # an untouched cohort that still refuses peels
                    # wholesale (it compiled before, so this is a
                    # defensive dead end, not an expected path).
                    if not any(lanes[p] in fired_lanes for p in keep_pos):
                        keep_pos = []
                        break
                    keep_pos = [p for p in keep_pos
                                if lanes[p] not in fired_lanes]
            if len(keep_pos) < len(systems):
                kept = set(keep_pos)
                for pos, lane in enumerate(lanes):
                    if pos not in kept:
                        peels.append((lane, seg_start))
                systems = [systems[p] for p in keep_pos]
                lanes = [lanes[p] for p in keep_pos]
            if not systems:
                break
            _enforce_rejoin(snapshot, lowering, lanes, fired_lanes)

        # 1. Next event horizon across the active lanes (due events were
        #    just drained, so the horizon lies strictly ahead).
        horizon = n_steps
        for lane in lanes:
            sched = schedules[lane]
            if sched is None or sched.pending == 0:
                continue
            step = int(np.searchsorted(times, sched.next_time(),
                                       side="left"))
            if step < horizon:
                horizon = step

        # 2. Prepare the segment's ambient window and run it in lockstep.
        seg_steps = horizon - seg_start
        sel = np.asarray(lanes) if len(lanes) < n else slice(None)
        with np.errstate(all="ignore"):
            for channel in lowering.channels:
                values = np.zeros((seg_steps, len(lanes)), dtype=np.float64)
                for j, lane in enumerate(lanes):
                    col = compileds[lane].column_of(channel.source_type)
                    if col is not None:
                        values[:, j] = compileds[lane].matrix[
                            seg_start:horizon, col]
                channel.prepare(values)
        _run_segment(lowering, buffers, state_buf, store_e_buf,
                     store_v_buf, chan_buf, sel, seg_start, horizon, dt)

        # 3. Write the in-flight state back onto the component objects
        #    and keep evidence for the next rejoin's equality check.
        _writeback(lowering, seg_steps)
        bank_stores = lowering.bank.stores
        interval = lowering.node.state.interval
        snapshot = {
            lane: (tuple(float(st.state.energy[pos]) for st in bank_stores),
                   float(interval[pos]))
            for pos, lane in enumerate(lanes)
        }
        seg_start = horizon

    # Scalar side-channel for peeled lanes: prefix from the batch
    # buffers, remainder on the scalar kernel (or the legacy loop).
    def finish_peeled(lane: int, resume: int) -> str:
        system = plan.systems[lane]
        recorder = recorders[lane]
        sched = schedules[lane]
        if sched is None:
            sched = EventSchedule()
        recorder.reserve(n_steps, n_stores, n_channels)
        scalars, state_arr, store_e, store_v, chan_p, base = \
            recorder.columns_for_writing()
        end = base + resume
        scalars["t"][base:end] = times[:resume]
        for name, buf in buffers.items():
            scalars[name][base:end] = buf[:resume, lane]
        state_arr[base:end] = state_buf[:resume, lane]
        store_e[base:end] = store_e_buf[:resume, lane, :]
        store_v[base:end] = store_v_buf[:resume, lane, :]
        chan_p[base:end] = chan_buf[:resume, lane, :]
        done = resume
        path = "batched"
        try:
            kplan = KernelPlan.compile(system, dt)
        except LoweringUnsupported:
            kplan = None
            recorder.commit(resume)
        if kplan is not None:
            done = run_plan(kplan, compileds[lane], sched, recorder,
                            n_steps, dt, start=resume)
            path = "batched+kernel"
        if done < n_steps:
            # Legacy landing strip — the engine's fallback loop, fed by
            # the compiled window (sample-for-sample identical to the
            # raw environment).
            compiled = compileds[lane]
            while done < n_steps:
                t = times[done]
                for event in sched.due(t):
                    event.action(system)
                record = system.step(compiled.sample(done), dt, t)
                recorder.append(record)
                done += 1
            path = "batched+legacy" if path == "batched" \
                else "batched+kernel+legacy"
        return path

    peeled_at = dict(peels)
    for s, recorder in enumerate(recorders):
        resume = peeled_at.get(s)
        if resume is not None:
            paths[s] = finish_peeled(s, resume)
            continue
        # Full-lockstep lane: slice the batch buffers into its recorder.
        recorder.reserve(n_steps, n_stores, n_channels)
        scalars, state_arr, store_e, store_v, chan_p, base = \
            recorder.columns_for_writing()
        end = base + n_steps
        scalars["t"][base:end] = times
        for name, buf in buffers.items():
            scalars[name][base:end] = buf[:, s]
        state_arr[base:end] = state_buf[:, s]
        store_e[base:end] = store_e_buf[:, s, :]
        store_v[base:end] = store_v_buf[:, s, :]
        chan_p[base:end] = chan_buf[:, s, :]
        recorder.commit(n_steps)
    return paths


def node_state_from_code(code: int) -> NodeState:
    """Recorder state code back to the :class:`NodeState` enum."""
    return _CODE_STATE[int(code)]
