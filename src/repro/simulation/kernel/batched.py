"""Batched sweep kernel: step whole scenario grids in lockstep.

A sweep runs dozens-to-thousands of *near-identical* scenarios — same
system topology, different knob values or environment seeds. The scalar
kernel (:mod:`.plan`) pays the full Python-closure loop once per
scenario; this module pays it once per *grid*: every piece of
per-scenario state (store energies and branch voltages, node state,
manager counters) becomes an ``(n_scenarios,)`` float64 array, every
per-step closure becomes a vectorized expression over those arrays, and
the ambient inputs become a stacked ``(n_steps, n_scenarios)`` tensor
per channel built from each scenario's
:class:`~repro.environment.CompiledEnvironment`.

Results are **bit-for-bit identical per scenario** to the scalar kernel
(and therefore to the legacy path). Three rules make that possible:

* **Same elementwise expressions.** Every vectorized expression copies
  the scalar kernel's operator tree — same association order, same
  ``min``/``max`` tie behaviour (``np.minimum(a, b)`` matches
  ``a if a <= b else b`` for non-NaN floats), with data-dependent
  branches turned into ``np.where`` masks that gate *every* state write
  exactly where the scalar code early-returns.
* **Python-computed constants.** Hoisted run constants are gathered with
  scalar Python arithmetic (:func:`gather`), never recomputed with
  numpy, so they carry the exact bits the scalar kernel hoists.
* **Exact libm transcendentals.** numpy's SIMD ``exp``/``log``/
  ``log1p``/``expm1`` and ``**`` differ from CPython's libm calls by
  1 ULP on a small fraction of inputs; :func:`exact_unary` /
  :func:`exact_pow` route those call sites through the *scalar* libm
  functions elementwise. Plain arithmetic, ``np.sqrt``, and
  ``np.searchsorted`` are exact matches and stay vectorized.

Eligibility is per component, exactly like the scalar kernel but with a
narrower envelope: a component type without a batched lowering
(``lower_batched`` hooks raising :exc:`LoweringUnsupported`) drops the
*scenario* back to the per-scenario path — never the whole sweep. The
batched envelope currently excludes bus/MCU platforms, backup-store
cascades (fuel cells, primary cells), stateful hill-climbing trackers
(P&O, incremental conductance) and non-static managers; Table I systems
C, D, E and G are inside it.
"""

from __future__ import annotations

import math

import numpy as np

from ...load.node import NodeState
from ..recorder import (
    SCALAR_COLUMNS,
    STATE_DEAD,
    STATE_REBOOTING,
    STATE_RUNNING,
)
from .protocol import LoweringUnsupported

__all__ = [
    "BatchedPlan",
    "BatchState",
    "BatchedStoreLowering",
    "BatchedBankLowering",
    "BatchedChannelLowering",
    "BatchedOutputLowering",
    "BatchedNodeLowering",
    "BatchedManagerLowering",
    "BatchedSystemLowering",
    "TrackerSchedule",
    "batch_eligible",
    "why_batch_ineligible",
    "group_signature",
    "run_batched",
    "gather",
    "exact_unary",
    "exact_exp",
    "exact_log",
    "exact_log1p",
    "exact_expm1",
    "exact_pow",
    "damped_fixed_point",
]

_INF = float("inf")

_STATE_CODE = {
    NodeState.RUNNING: STATE_RUNNING,
    NodeState.DEAD: STATE_DEAD,
    NodeState.REBOOTING: STATE_REBOOTING,
}
_CODE_STATE = {code: state for state, code in _STATE_CODE.items()}


# ----------------------------------------------------------------------
# Exactness helpers
# ----------------------------------------------------------------------
def gather(objs, fn) -> np.ndarray:
    """Per-scenario run constants as a float64 array.

    ``fn`` runs in plain Python, so hoisted constants (e.g.
    ``dt * charge_efficiency``) carry exactly the bits the scalar
    kernel's closures hoist.
    """
    return np.array([fn(o) for o in objs], dtype=np.float64)


def same_class(objs, role: str) -> type:
    """The common concrete class of a component group.

    Batched lowerings inline per-class arithmetic across the whole
    group, so mixing classes (or subclasses — their physics may differ)
    has no batched lowering.
    """
    cls = type(objs[0])
    for obj in objs:
        if type(obj) is not cls:
            raise LoweringUnsupported(
                f"{role} group mixes {cls.__name__} and "
                f"{type(obj).__name__}; a batch must share one concrete "
                f"class per component position")
    return cls


def exact_unary(fn):
    """Vectorize a scalar libm function *exactly*.

    numpy's SIMD transcendentals round differently from libm on ~0.1-4%
    of inputs; mapping the scalar function keeps batched results
    bit-identical to the scalar kernel at ~100 ns/element.
    """
    def apply(arr):
        a = np.asarray(arr, dtype=np.float64)
        flat = a.ravel()
        out = np.fromiter(map(fn, flat.tolist()), dtype=np.float64,
                          count=flat.size)
        return out.reshape(a.shape)
    return apply


exact_exp = exact_unary(math.exp)
exact_log = exact_unary(math.log)
exact_log1p = exact_unary(math.log1p)
exact_expm1 = exact_unary(math.expm1)


def exact_pow(arr, exponent: float) -> np.ndarray:
    """CPython ``x ** e`` elementwise (libm ``pow``, not numpy's)."""
    a = np.asarray(arr, dtype=np.float64)
    flat = a.ravel()
    out = np.fromiter((x ** exponent for x in flat.tolist()),
                      dtype=np.float64, count=flat.size)
    return out.reshape(a.shape)


class BatchState:
    """Mutable bag of one component group's ``(n,)`` state arrays.

    Closures rebind attributes (``state.energy = state.energy - drawn``)
    instead of mutating in place, so every reader — recorder writes,
    sibling closures, the final :meth:`writeback` — always sees the
    latest arrays.
    """


def damped_fixed_point(p_out, efficiency):
    """Vectorized :meth:`Converter.input_power` fixed point.

    ``efficiency(p)`` returns the per-lane efficiency at input power
    ``p``. Lanes freeze at *their* convergence step, reproducing the
    scalar loop's early exit; lanes that never converge return the
    30-times-damped iterate, exactly like the scalar code.
    """
    p = p_out.astype(np.float64, copy=True)
    result = np.zeros_like(p)
    undecided = np.ones(p.shape, dtype=bool)
    for _ in range(30):
        eff = efficiency(p)
        bad = undecided & (eff <= 0.0)
        if bad.any():
            result = np.where(bad, _INF, result)
            undecided = undecided & ~bad
        p_new = p_out / eff
        diff = np.abs(p_new - p)
        tol = 1e-12 * np.where(p > 1.0, p, 1.0)
        conv = undecided & (diff < tol)
        result = np.where(conv, p_new, result)
        undecided = undecided & ~conv
        if not undecided.any():
            break
        p = np.where(undecided, 0.5 * (p + p_new), p)
    return np.where(undecided, p, result)


# ----------------------------------------------------------------------
# Lowering records (the batched twins of kernel/protocol.py)
# ----------------------------------------------------------------------
class BatchedStoreLowering:
    """Lowered store group: closures over shared ``(n,)`` state arrays."""

    __slots__ = ("stores", "state", "voltage", "charge", "discharge",
                 "idle", "writeback")

    def __init__(self, stores, state, voltage, charge, discharge, idle,
                 writeback):
        self.stores = stores
        self.state = state
        self.voltage = voltage
        self.charge = charge
        self.discharge = discharge
        self.idle = idle
        self.writeback = writeback


class BatchedBankLowering:
    """Lowered bank group: routing composed over store lowerings."""

    __slots__ = ("banks", "state", "voltage", "charge", "discharge",
                 "idle", "stores", "writeback")

    def __init__(self, banks, state, voltage, charge, discharge, idle,
                 stores, writeback):
        self.banks = banks
        self.state = state
        self.voltage = voltage
        self.charge = charge
        self.discharge = discharge
        self.idle = idle
        #: Store lowerings in bank order (per-store recorder columns).
        self.stores = stores
        self.writeback = writeback


class TrackerSchedule:
    """A tracker group's precomputed per-step decisions.

    ``voltage`` is ``(n_steps, w)``; ``harvesting``/``duty`` are the
    same shape or ``None`` when trivially True / 1.0 (so the channel
    skips the gate / the ``* duty`` multiply — ``x * 1.0`` is exact, but
    skipping is cheaper).
    """

    __slots__ = ("voltage", "harvesting", "duty", "writeback")

    def __init__(self, voltage, harvesting=None, duty=None, writeback=None):
        self.voltage = voltage
        self.harvesting = harvesting
        self.duty = duty
        self.writeback = writeback


class BatchedChannelLowering:
    """Lowered channel group with two-phase construction.

    Compile time validates classes/hooks and gathers constants;
    :meth:`prepare` receives the stacked ambient tensor and precomputes
    the tracker schedule and the harvest-side power tensors (the parts
    that depend only on ambient values, never on runtime bus state);
    :meth:`step` does the remaining bus-coupled work per step.
    """

    __slots__ = ("channels", "source_type", "_tracker", "_surface",
                 "_conv_out", "_enabled", "_compressible", "_volt_pre",
                 "_raw_pre", "_mpp_pre", "_last", "_tracker_writeback")

    def __init__(self, channels, source_type, tracker, surface, conv_out,
                 enabled, compressible):
        self.channels = channels
        self.source_type = source_type
        self._tracker = tracker
        self._surface = surface
        self._conv_out = conv_out
        self._enabled = enabled          # bool array or True
        self._compressible = compressible
        self._volt_pre = None
        self._raw_pre = None
        self._mpp_pre = None
        self._last = None
        self._tracker_writeback = None

    def prepare(self, values: np.ndarray) -> None:
        """Precompute the harvest pipeline over the ambient tensor.

        When every scenario shares identical channel hardware *and* an
        identical ambient column, the tensors collapse to one column and
        broadcast over the grid for free.
        """
        if self._compressible and values.shape[1] > 1 and \
                (values == values[:, :1]).all():
            values = values[:, :1]
            width = 1
        else:
            width = values.shape[1]
        if self._enabled is False:
            # Every scenario's channel is disabled: constant zero steps.
            zeros = np.zeros((values.shape[0], 1))
            self._volt_pre = zeros
            self._raw_pre = zeros
            self._mpp_pre = zeros
            return
        surface = self._surface.build(values, width)
        schedule = self._tracker.prepare(surface, values)
        self._tracker_writeback = schedule.writeback
        voltage = schedule.voltage
        mpp = surface.mpp_power()
        raw = surface.power_at(voltage)
        if schedule.duty is not None:
            raw = raw * schedule.duty
        gate = voltage <= 0.0
        if schedule.harvesting is not None:
            gate = gate | ~schedule.harvesting
        raw = np.where(gate, 0.0, raw)
        if self._enabled is not True:
            # Mixed enabled flags: disabled lanes record zero HarvestSteps.
            raw = np.where(self._enabled, raw, 0.0)
            voltage = np.where(self._enabled, voltage, 0.0)
            mpp = np.where(self._enabled, mpp, 0.0)
        self._volt_pre = voltage
        self._raw_pre = raw
        self._mpp_pre = mpp

    def step(self, i: int, bus_v: np.ndarray):
        """One lockstep harvest step: ``(raw, delivered, mpp)`` rows."""
        raw = self._raw_pre[i]
        volt = self._volt_pre[i]
        delivered = self._conv_out(raw, volt, bus_v)
        raw = np.where((delivered == 0.0) & (raw > 0.0), 0.0, raw)
        self._last = (raw, delivered, volt, self._mpp_pre[i])
        return raw, delivered, self._mpp_pre[i]

    def writeback(self) -> None:
        """Final object state: tracker internals + the last HarvestStep."""
        from ...conditioning.base import HarvestStep
        if self._tracker_writeback is not None:
            self._tracker_writeback()
        if self._last is None:
            return
        raw, delivered, volt, mpp = (np.broadcast_to(a, (len(self.channels),))
                                     for a in self._last)
        for k, channel in enumerate(self.channels):
            channel.last_step = HarvestStep(float(raw[k]), float(delivered[k]),
                                            float(volt[k]), float(mpp[k]))


class BatchedOutputLowering:
    """Lowered output stage: ``needed(demand, store_v)`` over lanes."""

    __slots__ = ("outputs", "needed")

    def __init__(self, outputs, needed):
        self.outputs = outputs
        self.needed = needed


class BatchedNodeLowering:
    """Lowered node group: the brown-out state machine over lanes."""

    __slots__ = ("nodes", "state", "demand", "step", "writeback")

    def __init__(self, nodes, state, demand, step, writeback):
        self.nodes = nodes
        self.state = state
        self.demand = demand
        self.step = step
        self.writeback = writeback


class BatchedManagerLowering:
    """Lowered manager group.

    ``control`` is ``None`` for managers whose control pass cannot touch
    the simulation (StaticManager: zero wake-up energy, no policy) — the
    hot loop skips them entirely and :meth:`writeback` replays the
    bookkeeping counters exactly.
    """

    __slots__ = ("managers", "control", "writeback")

    def __init__(self, managers, control, writeback):
        self.managers = managers
        self.control = control
        self.writeback = writeback


class BatchedSystemLowering:
    """Every lowered piece of one scenario group."""

    __slots__ = ("systems", "bank", "channels", "output", "node",
                 "manager", "quiescent_a")

    def __init__(self, systems, bank, channels, output, node, manager,
                 quiescent_a):
        self.systems = systems
        self.bank = bank
        self.channels = channels
        self.output = output
        self.node = node
        self.manager = manager
        #: Hoisted per-scenario standing current, ``(n,)``.
        self.quiescent_a = quiescent_a


# ----------------------------------------------------------------------
# Plan, eligibility, grouping
# ----------------------------------------------------------------------
class BatchedPlan:
    """A scenario group lowered at one ``dt``, ready to execute."""

    __slots__ = ("systems", "dt", "lowering")

    def __init__(self, systems, dt: float, lowering):
        self.systems = systems
        self.dt = dt
        self.lowering = lowering

    @classmethod
    def compile(cls, systems, dt: float) -> "BatchedPlan":
        """Lower a group of same-topology systems for lockstep stepping.

        Raises :exc:`LoweringUnsupported` when any component has no
        batched lowering — the sweep runner then routes the group
        through the per-scenario path.
        """
        systems = list(systems)
        if not systems:
            raise ValueError("cannot compile an empty scenario group")
        # Every system must lower on the scalar kernel first: that runs
        # the full ensure_unmodified guard set, so subclassed physics is
        # refused here exactly as it is on the per-scenario fast path.
        for system in systems:
            lower_scalar = getattr(system, "lower_kernel", None)
            if lower_scalar is None:
                raise LoweringUnsupported(
                    f"{type(system).__name__} has no kernel lowering")
            lower_scalar(dt)
        lower = getattr(systems[0], "lower_batched", None)
        if lower is None:
            raise LoweringUnsupported(
                f"{type(systems[0]).__name__} has no batched lowering")
        return cls(systems, dt, lower(dt, systems))


def batch_eligible(system, dt: float = 1.0) -> bool:
    """Whether a single scenario's system is inside the batched envelope."""
    return why_batch_ineligible(system, dt) is None


def why_batch_ineligible(system, dt: float = 1.0) -> str | None:
    """Human-readable reason the system cannot batch (None if it can)."""
    try:
        BatchedPlan.compile([system], dt)
    except LoweringUnsupported as exc:
        return str(exc)
    return None


def _store_signature(store) -> tuple:
    socs = getattr(store, "_ocv_soc", None)
    volts = getattr(store, "_ocv_v", None)
    curve = (tuple(socs), tuple(volts)) if socs is not None else None
    return (type(store), store.is_backup, curve)


def group_signature(system, dt: float, n_steps: int) -> tuple:
    """Hashable topology key: scenarios sharing it can share a plan.

    Conservative on purpose: equal keys make
    :meth:`BatchedPlan.compile` *likely* to succeed for the group (the
    compile itself stays authoritative); unequal keys merely split
    groups.
    """
    return (
        dt,
        n_steps,
        type(system),
        tuple(
            (type(ch), ch.source_type, type(ch.harvester),
             type(ch.conditioner), type(ch.conditioner.tracker),
             type(ch.conditioner.converter), bool(ch.enabled))
            for ch in system.channels
        ),
        tuple(_store_signature(s) for s in system.bank.stores),
        (type(system.output), type(system.output.converter)),
        type(system.node),
        type(system.manager) if system.manager is not None else None,
        (system.bus is not None, system.mcu is not None,
         system.slots is not None),
    )


# ----------------------------------------------------------------------
# The lockstep hot loop
# ----------------------------------------------------------------------
def run_batched(plan: BatchedPlan, compileds, recorders, n_steps: int,
                dt: float) -> None:
    """Run a scenario group in lockstep and fill one recorder each.

    ``compileds`` are the scenarios' :class:`CompiledEnvironment`
    windows (same ``n_steps``/``dt``, ``t0 = 0``); ``recorders`` are
    fresh :class:`~repro.simulation.Recorder` instances. On return each
    recorder holds exactly the columns the scalar kernel would have
    written, and every component object carries its final state.
    """
    lowering = plan.lowering
    n = len(plan.systems)
    if not (len(compileds) == len(recorders) == n):
        raise ValueError("one compiled environment and recorder per scenario")
    bank = lowering.bank
    node = lowering.node
    output_needed = lowering.output.needed
    channels = lowering.channels
    tq = lowering.quiescent_a
    n_stores = len(bank.stores)
    n_channels = len(channels)

    # Stacked ambient tensor, one (n_steps, n) slab per channel.
    with np.errstate(all="ignore"):
        for channel in channels:
            values = np.zeros((n_steps, n), dtype=np.float64)
            for s, compiled in enumerate(compileds):
                j = compiled.column_of(channel.source_type)
                if j is not None:
                    values[:, s] = compiled.matrix[:, j]
            channel.prepare(values)

    # Batched recorder buffers, (n_steps, n) per column; sliced back into
    # per-scenario recorders after the loop.
    buffers = {name: np.empty((n_steps, n), dtype=np.float64)
               for name in SCALAR_COLUMNS
               if name not in ("t", "backup_power")}
    state_buf = np.empty((n_steps, n), dtype=np.int8)
    store_e_buf = np.empty((n_steps, n, n_stores), dtype=np.float64)
    store_v_buf = np.empty((n_steps, n, n_stores), dtype=np.float64)
    chan_buf = np.empty((n_steps, n, n_channels), dtype=np.float64)

    b_raw = buffers["harvest_raw"]
    b_del = buffers["harvest_delivered"]
    b_mpp = buffers["harvest_mpp"]
    b_acc = buffers["charge_accepted"]
    b_qsc = buffers["quiescent"]
    b_dem = buffers["node_demand"]
    b_sup = buffers["node_supplied"]
    b_con = buffers["node_consumed"]
    b_mea = buffers["measurements"]

    bank_voltage = bank.voltage
    bank_charge = bank.charge
    bank_discharge = bank.discharge
    bank_idle = bank.idle
    node_demand = node.demand
    node_step = node.step
    store_lowerings = bank.stores

    with np.errstate(all="ignore"):
        for i in range(n_steps):
            # 1. Management decisions: only no-op managers batch, so
            #    there is nothing to run here (counters replay at
            #    writeback).

            # 2. Harvest into the storage bus.
            bus_v = bank_voltage()
            raw = 0.0
            delivered = 0.0
            mpp = 0.0
            k = 0
            for channel in channels:
                ch_raw, ch_del, ch_mpp = channel.step(i, bus_v)
                raw = raw + ch_raw
                delivered = delivered + ch_del
                mpp = mpp + ch_mpp
                chan_buf[i, :, k] = ch_del
                k += 1
            accepted = bank_charge(np.where(delivered > 0.0, delivered, 0.0))

            # 3. Standing (quiescent) losses.
            iq = tq * np.where(bus_v > 0.0, bus_v, 0.0)
            quiescent = bank_discharge(np.where(iq > 0.0, iq, 0.0))

            # 4. Supply the node through the output stage.
            demand = node_demand()
            sv = bank_voltage()
            needed = output_needed(demand, sv)
            active = (needed != _INF) & (demand > 0.0)
            drawn = bank_discharge(np.where(active, needed, 0.0))
            supplied = np.where(active & (needed > 0.0),
                                demand * (drawn / needed), 0.0)
            node_state, consumed, measured = node_step(supplied)
            refund = (supplied > 0.0) & (consumed < supplied - 1e-15)
            if refund.any():
                bank_charge(np.where(
                    refund, drawn * (1.0 - consumed / supplied), 0.0))

            # 5. Storage self-discharge / charge redistribution.
            bank_idle()

            # 6. Record the step.
            b_raw[i] = raw
            b_del[i] = delivered
            b_mpp[i] = mpp
            b_acc[i] = accepted
            b_qsc[i] = quiescent
            b_dem[i] = demand
            b_sup[i] = supplied
            b_con[i] = consumed
            b_mea[i] = measured
            state_buf[i] = node_state
            k = 0
            for st in store_lowerings:
                store_e_buf[i, :, k] = st.state.energy
                store_v_buf[i, :, k] = st.voltage()
                k += 1

    # Final component state back onto the per-scenario objects.
    bank.writeback()
    node.writeback()
    if lowering.manager is not None:
        lowering.manager.writeback(n_steps)
    for channel in channels:
        channel.writeback()

    # Slice the batch buffers back into per-scenario columnar recorders.
    times = compileds[0].times
    for s, recorder in enumerate(recorders):
        recorder.reserve(n_steps, n_stores, n_channels)
        scalars, state_arr, store_e, store_v, chan_p, base = \
            recorder.columns_for_writing()
        end = base + n_steps
        scalars["t"][base:end] = times
        scalars["backup_power"][base:end] = 0.0
        for name, buf in buffers.items():
            scalars[name][base:end] = buf[:, s]
        state_arr[base:end] = state_buf[:, s]
        store_e[base:end] = store_e_buf[:, s, :]
        store_v[base:end] = store_v_buf[:, s, :]
        chan_p[base:end] = chan_buf[:, s, :]
        recorder.commit(n_steps)


def node_state_from_code(code: int) -> NodeState:
    """Recorder state code back to the :class:`NodeState` enum."""
    return _CODE_STATE[int(code)]
