"""Kernel plan: compose per-component lowerings and drive the hot loop.

:meth:`KernelPlan.compile` asks the system to lower itself (see
:meth:`repro.core.MultiSourceSystem.lower_kernel`); each component either
returns specialized closures or raises
:exc:`~repro.simulation.kernel.protocol.LoweringUnsupported`, in which
case the whole system runs on the legacy per-step path — speed is a
property of the architecture, not of one special-cased platform shape.

:func:`run_plan` is the hot loop. It replicates
:meth:`repro.core.MultiSourceSystem.step`'s orchestration expression by
expression (same phase order, same ``min``/``max`` tie behaviour, same
accumulation order), calling the lowered closures instead of the
component methods, and writes the recorder's preallocated columnar
arrays directly — no per-step objects at all. Scheduled events are
re-validated when they fire: the plan recompiles, and if the mutated
system no longer lowers, the remaining steps are handed back to the
engine's legacy loop (or :exc:`KernelFallback` is raised under
``fast=True`` strict mode).
"""

from __future__ import annotations

from ...load.node import NodeState
from ..recorder import STATE_DEAD, STATE_REBOOTING, STATE_RUNNING
from .protocol import KernelFallback, LoweringUnsupported

__all__ = ["KernelPlan", "eligible", "why_ineligible", "run_plan"]

_INF = float("inf")


class KernelPlan:
    """A system lowered at one ``dt``, ready to execute.

    Plans are cheap to build (microseconds: closure creation and constant
    hoisting only) and are recompiled whenever a scheduled event mutates
    the system mid-run.
    """

    __slots__ = ("system", "dt", "lowering")

    def __init__(self, system, dt: float, lowering):
        self.system = system
        self.dt = dt
        self.lowering = lowering

    @classmethod
    def compile(cls, system, dt: float) -> "KernelPlan":
        """Lower ``system``; raises :exc:`LoweringUnsupported` if any
        component genuinely has no lowering."""
        lower = getattr(system, "lower_kernel", None)
        if lower is None:
            raise LoweringUnsupported(
                f"{type(system).__name__} has no kernel lowering")
        return cls(system, dt, lower(dt))


def eligible(system, dt: float = 1.0) -> bool:
    """Whether every component of ``system`` composes into a full plan."""
    return why_ineligible(system, dt) is None


def why_ineligible(system, dt: float = 1.0) -> str | None:
    """Human-readable reason the system cannot lower (None if it can)."""
    try:
        KernelPlan.compile(system, dt)
    except LoweringUnsupported as exc:
        return str(exc)
    return None


def run_plan(plan: KernelPlan, compiled, schedule, recorder, n_steps: int,
             dt: float, strict: bool = False, start: int = 0) -> int:
    """Run steps ``start .. n_steps - 1``; returns the number completed.

    Returns early (with the recorder committed up to the boundary) when a
    fired event pushes the system outside the kernel envelope; the engine
    finishes the segment on the legacy path. Under ``strict`` that
    silent degradation raises :exc:`KernelFallback` instead.

    ``start`` resumes a partially-written segment: the caller has already
    filled recorder rows ``0 .. start - 1`` (uncommitted) and stepped the
    system to the same boundary — the batched tier uses this as the
    scalar side-channel for lanes peeled out of a lockstep run.
    """
    system = plan.system
    times = compiled.times_list()

    def values_for(source):
        j = compiled.column_of(source)
        if j is None:
            return None
        return compiled.column_list(j)

    def bind(lowering):
        """Hoist the lowering's closures (refreshed after events)."""
        bank = lowering.bank
        chans = tuple((lw.step, values_for(lw.source_type))
                      for lw in lowering.channels)
        stores = tuple(zip(bank.store_objects, bank.store_voltages))
        return (bank.voltage, bank.charge, bank.discharge, bank.idle,
                bank.backup_energy, chans, lowering.output.needed,
                lowering.node.demand, lowering.node.step,
                lowering.manager_control, lowering.quiescent_a,
                lowering.bus, stores)

    (bank_voltage, bank_charge, bank_discharge, bank_idle, backup_energy,
     chans, out_needed, node_demand, node_step, control, tq, bus,
     stores) = bind(plan.lowering)

    (scalars, state_arr, store_e, store_v, chan_p, base) = \
        recorder.columns_for_writing()
    col_t = scalars["t"]
    col_raw = scalars["harvest_raw"]
    col_del = scalars["harvest_delivered"]
    col_mpp = scalars["harvest_mpp"]
    col_acc = scalars["charge_accepted"]
    col_qsc = scalars["quiescent"]
    col_dem = scalars["node_demand"]
    col_sup = scalars["node_supplied"]
    col_con = scalars["node_consumed"]
    col_bak = scalars["backup_power"]
    col_mea = scalars["measurements"]

    next_event_t = schedule.next_time()
    RUNNING, DEAD = NodeState.RUNNING, NodeState.DEAD

    for i in range(start, n_steps):
        t = times[i]

        # 0. Scheduled events, then revalidate the envelope by
        #    recompiling the plan against the mutated system.
        if next_event_t <= t:
            for event in schedule.due(t):
                event.action(system)
            next_event_t = schedule.next_time()
            try:
                plan = KernelPlan.compile(system, dt)
            except LoweringUnsupported as exc:
                if strict:
                    raise KernelFallback(
                        f"fast=True, but a scheduled event at t={t:g} s "
                        f"pushed the system outside the kernel envelope: "
                        f"{exc}") from exc
                recorder.commit(i)
                return i
            (bank_voltage, bank_charge, bank_discharge, bank_idle,
             backup_energy, chans, out_needed, node_demand, node_step,
             control, tq, bus, stores) = bind(plan.lowering)

        # 1. Management decisions (may charge/discharge the bank).
        if control is not None:
            control(t, dt, system)

        # 2. Harvest into the storage bus.
        bus_v = bank_voltage()
        row = base + i
        raw = 0.0
        delivered = 0.0
        mpp = 0.0
        k = 0
        for chan_step, values in chans:
            hs = chan_step(values[i] if values is not None else 0.0, bus_v)
            raw += hs.raw_power
            hs_delivered = hs.delivered_power
            delivered += hs_delivered
            mpp += hs.mpp_power
            chan_p[row, k] = hs_delivered
            k += 1
        accepted = bank_charge(delivered) if delivered > 0.0 else 0.0

        # 3. Standing (quiescent) losses, including any bus transactions
        #    charged since the last step.
        iq = tq * (bus_v if bus_v > 0.0 else 0.0)
        if bus is not None:
            pending = bus.energy_spent_j - system._bus_energy_charged_j
            system._bus_energy_charged_j = bus.energy_spent_j
            iq += pending / dt
        quiescent_drawn = bank_discharge(iq) if iq > 0.0 else 0.0

        # 4. Supply the node through the output stage.
        backup_before = backup_energy() if backup_energy is not None else 0.0
        demand = node_demand()
        sv = bank_voltage()
        needed = out_needed(demand, sv)
        if needed == _INF or demand <= 0.0:
            supplied = 0.0
            drawn = 0.0
        else:
            drawn = bank_discharge(needed)
            supplied = demand * (drawn / needed) if needed > 0.0 else 0.0
        node_result = node_step(supplied, dt)
        consumed = node_result.consumed_w
        if supplied > 0.0 and consumed < supplied - 1e-15:
            # Return the unconsumed part of the draw to the bank.
            bank_charge(drawn * (1.0 - consumed / supplied))
        if backup_energy is not None:
            dropped = backup_before - backup_energy()
            backup_power = (dropped if dropped > 0.0 else 0.0) / dt
        else:
            backup_power = 0.0

        # 5. Storage self-discharge / charge redistribution.
        bank_idle()

        # 6. Record the step.
        col_t[row] = t
        col_raw[row] = raw
        col_del[row] = delivered
        col_mpp[row] = mpp
        col_acc[row] = accepted
        col_qsc[row] = quiescent_drawn
        col_dem[row] = demand
        col_sup[row] = supplied
        col_con[row] = consumed
        col_bak[row] = backup_power
        col_mea[row] = node_result.measurements
        state = node_result.state
        state_arr[row] = STATE_RUNNING if state is RUNNING else \
            (STATE_DEAD if state is DEAD else STATE_REBOOTING)
        k = 0
        for store, store_voltage in stores:
            store_e[row, k] = store.energy_j
            store_v[row, k] = store_voltage()
            k += 1

    recorder.commit(n_steps)
    return n_steps
