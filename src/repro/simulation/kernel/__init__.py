"""Composable kernel: per-component lowering for the fast path.

Replaces the monolithic single-supercapacitor ``_fastpath`` kernel with a
component lowering protocol (:mod:`~repro.simulation.kernel.protocol`)
and a composition/driver layer (:mod:`~repro.simulation.kernel.plan`).
Every component type — storage chemistries, converters and trackers,
managers, the node — exposes a ``lower_kernel(dt)`` hook emitting
specialized per-step closures, so *every* Table I system (A–G) executes
on the kernel with recorded columns bit-for-bit identical to the legacy
per-step path. See ``docs/kernel.md`` for the protocol and for how to
add a lowering to a new component type.

Two further targets build on the same lowerings: :mod:`.batched` steps
same-topology scenario grids in lockstep as numpy state vectors, and
:mod:`.codegen` fuses a single plan into one flat compiled step
function cached on ``(spec_hash, dt, code_version)`` (see
``docs/codegen.md``).

Only :mod:`.protocol` is imported eagerly (it has no repro dependencies,
so component modules can import it without cycles); the plan layer loads
on first attribute access.
"""

from .protocol import CapabilityReport, KernelFallback, LoweringUnsupported

__all__ = [
    "CapabilityReport",
    "KernelFallback",
    "LoweringUnsupported",
    "KernelPlan",
    "eligible",
    "why_ineligible",
    "run_plan",
    "BatchedPlan",
    "batch_capability_report",
    "batch_eligible",
    "why_batch_ineligible",
    "run_batched",
    "prepare_codegen",
    "codegen_stats",
    "reset_codegen_stats",
    "clear_codegen_cache",
    "codegen_cache_identity",
]

_PLAN_EXPORTS = ("KernelPlan", "eligible", "why_ineligible", "run_plan")
_BATCHED_EXPORTS = ("BatchedPlan", "batch_capability_report",
                    "batch_eligible", "why_batch_ineligible",
                    "run_batched", "group_signature")
_CODEGEN_EXPORTS = ("prepare_codegen", "codegen_stats",
                    "reset_codegen_stats", "clear_codegen_cache",
                    "codegen_cache_identity")


def __getattr__(name: str):
    if name in _PLAN_EXPORTS:
        from . import plan
        return getattr(plan, name)
    if name in _BATCHED_EXPORTS:
        from . import batched
        return getattr(batched, name)
    if name in _CODEGEN_EXPORTS:
        from . import codegen
        return getattr(codegen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
