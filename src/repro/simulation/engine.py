"""Fixed-step simulation engine.

Drives a :class:`~repro.core.MultiSourceSystem` against an
:class:`~repro.environment.Environment`, applying scheduled events
(hot-swaps) and recording every step. This is the loop every experiment
in DESIGN.md runs; determinism comes from the environment's seeded traces
and the engine's fixed step order.
"""

from __future__ import annotations

from ..core.system import MultiSourceSystem
from ..environment.ambient import Environment
from .events import EventSchedule, SimEvent
from .metrics import RunMetrics, compute_metrics
from .recorder import Recorder

__all__ = ["Simulator", "SimulationResult", "simulate"]


class SimulationResult:
    """Bundle of a run's recorder, metrics, and final system state."""

    def __init__(self, system: MultiSourceSystem, recorder: Recorder,
                 metrics: RunMetrics):
        self.system = system
        self.recorder = recorder
        self.metrics = metrics

    def __repr__(self) -> str:
        m = self.metrics
        return (f"SimulationResult(uptime={m.uptime_fraction:.3f}, "
                f"harvested={m.harvested_delivered_j:.1f} J, "
                f"measurements={m.measurements:.0f})")


class Simulator:
    """Fixed-step driver.

    Parameters
    ----------
    system:
        The platform under test.
    environment:
        Ambient channel traces; the simulation step defaults to the
        environment's trace step.
    events:
        Optional scheduled interventions.
    dt:
        Override simulation step, seconds.
    """

    def __init__(self, system: MultiSourceSystem, environment: Environment,
                 events=None, dt: float | None = None):
        self.system = system
        self.environment = environment
        self.dt = dt if dt is not None else environment.dt
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if isinstance(events, EventSchedule):
            self.events = events
        else:
            self.events = EventSchedule(
                [e if isinstance(e, SimEvent) else SimEvent(*e)
                 for e in (events or ())]
            )
        self.time = 0.0  # absolute simulation time; persists across run()s

    def run(self, duration: float | None = None) -> SimulationResult:
        """Simulate for ``duration`` seconds (default: environment length).

        Repeated calls continue from where the previous run stopped —
        experiments use this to take measurements between segments (e.g.
        before and after a scheduled hot-swap). Each call returns the
        recorder/metrics of its own segment.
        """
        if duration is None:
            duration = self.environment.duration
        if duration <= 0:
            raise ValueError("duration must be positive")
        n_steps = max(1, int(round(duration / self.dt)))
        recorder = Recorder(self.dt)
        for _ in range(n_steps):
            for event in self.events.due(self.time):
                event.action(self.system)
            ambient = self.environment.sample(self.time)
            record = self.system.step(ambient, self.dt, self.time)
            recorder.append(record)
            self.time += self.dt
        return SimulationResult(self.system, recorder,
                                compute_metrics(recorder))


def simulate(system: MultiSourceSystem, environment: Environment,
             duration: float | None = None, events=None,
             dt: float | None = None) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(system, environment, events=events, dt=dt).run(duration)
