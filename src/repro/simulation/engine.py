"""Fixed-step simulation engine.

Drives a :class:`~repro.core.MultiSourceSystem` against an
:class:`~repro.environment.Environment`, applying scheduled events
(hot-swaps) and recording every step. This is the loop every experiment
in DESIGN.md runs; determinism comes from the environment's seeded traces
and the engine's fixed step order.

Time is tracked as an integer step counter with ``time = t0 + i * dt``,
never by accumulating ``time += dt``: over millions of steps the
accumulated form drifts by many ULPs, silently shifting which trace
sample and which scheduled event a step sees. The integer form is exact
for any run length and makes segmented runs (repeated :meth:`Simulator.
run` calls) identical to one long run.

Two execution paths produce bit-for-bit identical results:

* the **legacy per-step path** — ``environment.sample`` + ``system.step``
  per step, retaining full :class:`SystemStepRecord` objects;
* the **vectorized fast path** (``fast="auto"``/``True``) — ambient
  channels pre-materialized into a dense matrix by
  :class:`~repro.environment.CompiledEnvironment` and the hot loop run by
  a specialized kernel (:mod:`repro.simulation._fastpath`) that writes
  the recorder's columnar arrays directly. Systems outside the kernel's
  envelope fall back to the legacy path transparently.
"""

from __future__ import annotations

from ..core.system import MultiSourceSystem
from ..environment.ambient import Environment
from ..environment.compiled import CompiledEnvironment
from . import _fastpath
from .events import EventSchedule, SimEvent
from .metrics import RunMetrics, compute_metrics
from .recorder import Recorder

__all__ = ["Simulator", "SimulationResult", "simulate"]


class SimulationResult:
    """Bundle of a run's recorder, metrics, and final system state."""

    def __init__(self, system: MultiSourceSystem, recorder: Recorder,
                 metrics: RunMetrics):
        self.system = system
        self.recorder = recorder
        self.metrics = metrics

    def __repr__(self) -> str:
        m = self.metrics
        return (f"SimulationResult(uptime={m.uptime_fraction:.3f}, "
                f"harvested={m.harvested_delivered_j:.1f} J, "
                f"measurements={m.measurements:.0f})")


class Simulator:
    """Fixed-step driver.

    Parameters
    ----------
    system:
        The platform under test.
    environment:
        Ambient channel traces; the simulation step defaults to the
        environment's trace step.
    events:
        Optional scheduled interventions.
    dt:
        Override simulation step, seconds.
    fast:
        ``"auto"`` (default) uses the vectorized fast path when the
        system is inside the kernel's envelope and falls back to the
        legacy per-step path otherwise; ``True`` requires the fast path
        (ValueError if unsupported); ``False`` forces the legacy path.
        Both paths produce bit-for-bit identical recorded columns.
    """

    def __init__(self, system: MultiSourceSystem, environment: Environment,
                 events=None, dt: float | None = None, fast="auto"):
        self.system = system
        self.environment = environment
        self.dt = dt if dt is not None else environment.dt
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if fast not in ("auto", True, False):
            raise ValueError(f"fast must be 'auto', True or False, got {fast!r}")
        if fast is True and not _fastpath.eligible(system):
            raise ValueError(
                "fast=True but the system is outside the fast-path kernel's "
                "envelope (see repro.simulation._fastpath.eligible)")
        self.fast = fast
        if isinstance(events, EventSchedule):
            self.events = events
        else:
            self.events = EventSchedule(
                [e if isinstance(e, SimEvent) else SimEvent(*e)
                 for e in (events or ())]
            )
        self._t0 = 0.0
        self._steps_done = 0  # integer step counter; exact for any length

    @property
    def time(self) -> float:
        """Absolute simulation time; persists across :meth:`run` calls.

        Read-only and derived as ``t0 + steps_done * dt`` — the engine's
        clock is the integer step counter, so it cannot be nudged by
        assignment (the seed engine's accumulated ``time`` could be).
        """
        return self._t0 + self._steps_done * self.dt

    def run(self, duration: float | None = None) -> SimulationResult:
        """Simulate for ``duration`` seconds (default: environment length).

        Repeated calls continue from where the previous run stopped —
        experiments use this to take measurements between segments (e.g.
        before and after a scheduled hot-swap). Each call returns the
        recorder/metrics of its own segment.
        """
        if duration is None:
            duration = self.environment.duration
        if duration <= 0:
            raise ValueError("duration must be positive")
        n_steps = max(1, int(round(duration / self.dt)))
        system, dt, t0 = self.system, self.dt, self._t0
        use_fast = self.fast in ("auto", True) and _fastpath.eligible(system)
        recorder = Recorder(dt, keep_records=not use_fast)
        recorder.reserve(n_steps, len(system.bank.stores),
                         len(system.channels))
        i = 0
        if use_fast:
            compiled = CompiledEnvironment(
                self.environment, t0, n_steps, dt,
                step_offset=self._steps_done)
            i = _fastpath.run_kernel(system, compiled, self.events, recorder,
                                     n_steps, dt)
        # Legacy per-step path — also the landing strip when an event
        # pushed the system outside the kernel's envelope mid-run.
        environment, events = self.environment, self.events
        while i < n_steps:
            t = t0 + (self._steps_done + i) * dt
            for event in events.due(t):
                event.action(system)
            ambient = environment.sample(t)
            record = system.step(ambient, dt, t)
            recorder.append(record)
            i += 1
        self._steps_done += n_steps
        return SimulationResult(system, recorder, compute_metrics(recorder))


def simulate(system: MultiSourceSystem, environment: Environment,
             duration: float | None = None, events=None,
             dt: float | None = None, fast="auto") -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(system, environment, events=events, dt=dt,
                     fast=fast).run(duration)
