"""Fixed-step simulation engine.

Drives a :class:`~repro.core.MultiSourceSystem` against an
:class:`~repro.environment.Environment`, applying scheduled events
(hot-swaps) and recording every step. This is the loop every experiment
in DESIGN.md runs; determinism comes from the environment's seeded traces
and the engine's fixed step order.

Time is tracked as an integer step counter with ``time = t0 + i * dt``,
never by accumulating ``time += dt``: over millions of steps the
accumulated form drifts by many ULPs, silently shifting which trace
sample and which scheduled event a step sees. The integer form is exact
for any run length and makes segmented runs (repeated :meth:`Simulator.
run` calls) identical to one long run.

Two execution paths produce bit-for-bit identical results:

* the **legacy per-step path** — ``environment.sample`` + ``system.step``
  per step, retaining full :class:`SystemStepRecord` objects;
* the **compiled kernel** (``fast="auto"``/``True``) — ambient channels
  pre-materialized into a dense matrix by
  :class:`~repro.environment.CompiledEnvironment`, every component
  lowered to specialized per-step closures
  (:mod:`repro.simulation.kernel`), and the hot loop writing the
  recorder's columnar arrays directly. All seven Table I systems lower;
  a system with a component that has no lowering (e.g. a user subclass
  overriding storage physics) falls back to the legacy path
  transparently under ``fast="auto"`` — and *loudly* under
  ``fast=True``, which raises instead of quietly degrading.

A third tier, ``fast="codegen"``, compiles the *same* kernel plan one
step further: :mod:`repro.simulation.kernel.codegen` emits the fused
step-function source for the whole system and caches the compiled
artifact on ``(spec_hash, dt, code_version)``, eliminating per-component
closure dispatch entirely. It shares the kernel's eligibility envelope
and numerics contract, so its recorded columns are bit-for-bit identical
to both other paths; an ineligible system degrades to legacy and the
refusal is reported on :attr:`SimulationResult.codegen_fallback`.
"""

from __future__ import annotations

from ..core.system import MultiSourceSystem
from ..environment.ambient import Environment
from ..environment.compiled import CompiledEnvironment
from .events import EventSchedule, SimEvent
from .kernel.codegen import prepare_codegen
from .kernel.plan import KernelPlan, run_plan, why_ineligible
from .kernel.protocol import LoweringUnsupported
from .metrics import RunMetrics, compute_metrics
from .recorder import Recorder

__all__ = ["Simulator", "SimulationResult", "simulate"]


class SimulationResult:
    """Bundle of a run's recorder, metrics, and final system state."""

    def __init__(self, system: MultiSourceSystem, recorder: Recorder,
                 metrics: RunMetrics, execution_path: str = "legacy",
                 codegen_fallback=None):
        self.system = system
        self.recorder = recorder
        self.metrics = metrics
        #: Which engine path actually ran: ``"kernel"``, ``"legacy"``,
        #: ``"kernel+legacy"`` (a mid-run event forced a fallback), or —
        #: under ``fast="codegen"`` — ``"codegen"`` /
        #: ``"codegen+kernel"`` / ``"codegen+kernel+legacy"``.
        self.execution_path = execution_path
        #: Under ``fast="codegen"``, the :class:`~repro.simulation.
        #: kernel.protocol.CapabilityReport` explaining why the system
        #: could not compile at all (``None`` when codegen ran).
        self.codegen_fallback = codegen_fallback

    def __repr__(self) -> str:
        m = self.metrics
        return (f"SimulationResult(uptime={m.uptime_fraction:.3f}, "
                f"harvested={m.harvested_delivered_j:.1f} J, "
                f"measurements={m.measurements:.0f}, "
                f"path={self.execution_path})")


class Simulator:
    """Fixed-step driver.

    Parameters
    ----------
    system:
        The platform under test.
    environment:
        Ambient channel traces; the simulation step defaults to the
        environment's trace step.
    events:
        Optional scheduled interventions.
    dt:
        Override simulation step, seconds.
    fast:
        ``"auto"`` (default) compiles the system onto the kernel
        (:mod:`repro.simulation.kernel`) when every component lowers,
        and falls back to the legacy per-step path otherwise — including
        mid-run, when a scheduled event swaps in a component without a
        lowering. ``True`` *requires* the kernel: construction raises
        ``ValueError`` for an ineligible system, and a mid-run fallback
        raises :exc:`~repro.simulation.kernel.KernelFallback` instead of
        silently degrading. ``False`` forces the legacy path.
        ``"codegen"`` prefers the fused compiled tier
        (:mod:`repro.simulation.kernel.codegen`): the kernel plan is
        emitted as one flat step function, compiled once, and cached on
        ``(spec_hash, dt, code_version)``; an ineligible system degrades
        to legacy with the refusal reported on
        :attr:`SimulationResult.codegen_fallback`, and a mid-run event
        hands off to the scalar kernel (``"codegen+kernel"``). All
        paths produce bit-for-bit identical recorded columns; the path
        that actually ran is reported as :attr:`SimulationResult.
        execution_path` / :attr:`last_execution_path`.
    """

    def __init__(self, system: MultiSourceSystem, environment: Environment,
                 events=None, dt: float | None = None, fast="auto"):
        self.system = system
        self.environment = environment
        self.dt = dt if dt is not None else environment.dt
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if fast not in ("auto", True, False, "codegen"):
            raise ValueError(
                f"fast must be 'auto', 'codegen', True or False, "
                f"got {fast!r}")
        if fast is True:
            reason = why_ineligible(system, self.dt)
            if reason is not None:
                raise ValueError(
                    f"fast=True but the system is outside the kernel "
                    f"envelope: {reason}")
        self.fast = fast
        if isinstance(events, EventSchedule):
            self.events = events
        else:
            self.events = EventSchedule(
                [e if isinstance(e, SimEvent) else SimEvent(*e)
                 for e in (events or ())]
            )
        self._t0 = 0.0
        self._steps_done = 0  # integer step counter; exact for any length
        #: Execution path of the most recent :meth:`run` (None before).
        self.last_execution_path: str | None = None

    @property
    def time(self) -> float:
        """Absolute simulation time; persists across :meth:`run` calls.

        Read-only and derived as ``t0 + steps_done * dt`` — the engine's
        clock is the integer step counter, so it cannot be nudged by
        assignment (the seed engine's accumulated ``time`` could be).
        """
        return self._t0 + self._steps_done * self.dt

    def run(self, duration: float | None = None) -> SimulationResult:
        """Simulate for ``duration`` seconds (default: environment length).

        Repeated calls continue from where the previous run stopped —
        experiments use this to take measurements between segments (e.g.
        before and after a scheduled hot-swap). Each call returns the
        recorder/metrics of its own segment.
        """
        if duration is None:
            duration = self.environment.duration
        if duration <= 0:
            raise ValueError("duration must be positive")
        n_steps = max(1, int(round(duration / self.dt)))
        system, dt, t0 = self.system, self.dt, self._t0
        plan = None
        codegen_fallback = None
        if self.fast in ("auto", True, "codegen"):
            try:
                plan = KernelPlan.compile(system, dt)
            except LoweringUnsupported as exc:
                if self.fast is True:
                    raise ValueError(
                        f"fast=True but the system is outside the kernel "
                        f"envelope: {exc}") from exc
                if self.fast == "codegen":
                    codegen_fallback = exc.capability_report()
        recorder = Recorder(dt, keep_records=plan is None)
        recorder.reserve(n_steps, len(system.bank.stores),
                         len(system.channels))
        i = 0
        path = "legacy"
        if plan is not None:
            compiled = CompiledEnvironment(
                self.environment, t0, n_steps, dt,
                step_offset=self._steps_done)
            if self.fast == "codegen":
                # Fused tier first; an event boundary hands the
                # remainder of the segment to the scalar kernel, which
                # fires the event and carries on (or peels to legacy).
                runner = prepare_codegen(plan, compiled)
                i = runner(self.events, recorder, n_steps)
                if i == n_steps:
                    path = "codegen"
                else:
                    i = run_plan(plan, compiled, self.events, recorder,
                                 n_steps, dt, start=i)
                    path = "codegen+kernel" if i == n_steps \
                        else "codegen+kernel+legacy"
            else:
                i = run_plan(plan, compiled, self.events, recorder,
                             n_steps, dt, strict=self.fast is True)
                path = "kernel" if i == n_steps else "kernel+legacy"
        # Legacy per-step path — also the landing strip when an event
        # pushed the system outside the kernel's envelope mid-run.
        environment, events = self.environment, self.events
        while i < n_steps:
            t = t0 + (self._steps_done + i) * dt
            for event in events.due(t):
                event.action(system)
            ambient = environment.sample(t)
            record = system.step(ambient, dt, t)
            recorder.append(record)
            i += 1
        self._steps_done += n_steps
        self.last_execution_path = path
        return SimulationResult(system, recorder, compute_metrics(recorder),
                                execution_path=path,
                                codegen_fallback=codegen_fallback)


def simulate(system: MultiSourceSystem, environment: Environment,
             duration: float | None = None, events=None,
             dt: float | None = None, fast="auto") -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(system, environment, events=events, dt=dt,
                     fast=fast).run(duration)
