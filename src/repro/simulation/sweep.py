"""Multi-scenario sweep execution.

Every comparative claim in the survey — multi-source gain, buffer sizing,
MPPT trade-offs — is answered by running *many* simulations that differ
in one or two knobs. This module turns that pattern into data:

* :class:`ScenarioSpec` — one fully-described simulation: a system (a
  declarative :class:`~repro.spec.SystemSpec` or a zero-argument
  factory), an environment (an :class:`~repro.spec.EnvironmentSpec`, a
  ready :class:`Environment`, or a factory seeded deterministically per
  scenario), optional events, duration, and a ``params`` dict of the
  knob values the scenario represents;
* :class:`SweepRunner` — fans a list of specs across ``multiprocessing``
  workers (falling back to in-process execution for non-picklable specs
  or ``processes=1``) and returns a :class:`SweepResult`;
* :class:`SweepResult` — an ordered, tidy results table: one row per
  scenario carrying its params, its :class:`~repro.simulation.RunMetrics`,
  and any extras gathered by the spec's ``collect`` hook.

Determinism guarantee: scenario results depend only on the spec (specs or
factories plus the explicit per-scenario ``seed``), never on worker
scheduling, so a parallel sweep is row-for-row identical to running the
same specs sequentially through :func:`~repro.simulation.simulate`.
Declarative specs are plain data and always pickle, so they parallelize
unconditionally; callable factories must be top-level callables (e.g.
``functools.partial`` over module-level functions) to cross process
boundaries — closures still work, they just run in-process.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field

from ..environment.ambient import Environment
from ..spec.specs import EnvironmentSpec, SystemSpec
from .engine import simulate
from .metrics import RunMetrics

__all__ = ["ScenarioSpec", "ScenarioResult", "SweepResult", "SweepRunner"]


@dataclass
class ScenarioSpec:
    """One scenario of a sweep.

    Parameters
    ----------
    name:
        Row label, unique within a sweep.
    system:
        A declarative :class:`~repro.spec.SystemSpec` (plain data, built
        fresh in the worker — the preferred, always-picklable form) or a
        zero-argument factory building a fresh
        :class:`~repro.core.MultiSourceSystem`. Never an instance:
        systems are stateful and each scenario must start pristine.
    environment:
        An :class:`~repro.spec.EnvironmentSpec` (built in the worker,
        with ``spec.seed`` overriding its seed when set), a ready
        :class:`Environment`, or a callable producing one; callables
        receive ``seed=<spec.seed>`` when a seed is set, so every
        scenario's stochastic traces are reproducible in isolation.
    duration:
        Simulated seconds (default: environment length).
    dt:
        Simulation step override, seconds.
    events:
        Scheduled interventions — a sequence, or a zero-argument callable
        returning one (schedules are consumed by a run, so sharing a
        sequence object across scenarios is only safe via a callable).
    seed:
        Per-scenario RNG seed handed to a callable ``environment``.
    params:
        Knob values this scenario represents; copied verbatim into the
        result row (the sweep's "tidy table" identity columns).
    collect:
        Optional hook ``(SimulationResult) -> dict`` run in the worker to
        extract extra per-scenario values (e.g. a coverage fraction from
        the recorder) that plain metrics do not carry.
    fast:
        Engine path selection for this scenario (see
        :func:`~repro.simulation.simulate`).
    """

    name: str
    system: object
    environment: object
    duration: float | None = None
    dt: float | None = None
    events: object = None
    seed: int | None = None
    params: dict = field(default_factory=dict)
    collect: object = None
    fast: object = "auto"


@dataclass(frozen=True)
class ScenarioResult:
    """One row of a sweep's results."""

    name: str
    params: dict
    metrics: RunMetrics
    n_steps: int
    extras: dict
    #: Engine path that actually ran this scenario ("kernel", "legacy",
    #: or "kernel+legacy" after a mid-run fallback).
    execution_path: str = "legacy"

    def row(self) -> dict:
        """Flat tidy-table row: name, params, metric fields, extras."""
        row = {"name": self.name}
        row.update(self.params)
        row.update(dataclasses.asdict(self.metrics))
        row.update(self.extras)
        row["execution_path"] = self.execution_path
        return row


class SweepResult:
    """Ordered results of one sweep (same order as the input specs).

    When the sweep ran against a catalog, ``catalog_report`` carries the
    session's hit/miss/archive counts (else it is None).
    """

    def __init__(self, results, catalog_report=None):
        self.results = tuple(results)
        self._by_name = {r.name: r for r in self.results}
        self.catalog_report = catalog_report

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index) -> ScenarioResult:
        if isinstance(index, str):
            return self._by_name[index]
        return self.results[index]

    def rows(self) -> list:
        """The sweep as a tidy table: one flat dict per scenario."""
        return [r.row() for r in self.results]

    def column(self, key: str) -> list:
        """One tidy-table column across all scenarios."""
        return [r.row().get(key) for r in self.results]

    def report(self, columns=("uptime_fraction", "harvested_delivered_j",
                              "measurements"),
               title: str = "sweep results") -> str:
        """Quick textual table of selected columns (name column implied)."""
        from ..analysis.reporting import render_table
        body = []
        for result in self.results:
            row = result.row()
            body.append((result.name,) + tuple(
                f"{row[c]:.4g}" if isinstance(row.get(c), float)
                else str(row.get(c, "-")) for c in columns))
        return render_table(("name",) + tuple(columns), body, title=title)

    def __repr__(self) -> str:
        return f"SweepResult({len(self.results)} scenarios)"


def _build_environment(spec: ScenarioSpec) -> Environment:
    env = spec.environment
    if isinstance(env, EnvironmentSpec):
        from ..spec.build import build_environment
        return build_environment(env, seed=spec.seed)
    if isinstance(env, Environment):
        return env
    if callable(env):
        if spec.seed is not None:
            return env(seed=spec.seed)
        return env()
    raise TypeError(
        f"scenario {spec.name!r}: environment must be an EnvironmentSpec, "
        f"an Environment, or a callable producing one, got {env!r}")


def _build_system(spec: ScenarioSpec):
    system = spec.system
    if isinstance(system, SystemSpec):
        from ..spec.build import build
        return build(system)
    if callable(system):
        return system()
    raise TypeError(
        f"scenario {spec.name!r}: system must be a SystemSpec or a "
        f"zero-argument factory, got {system!r}")


def _execute(payload) -> ScenarioResult:
    """Worker entry point: run one scenario to a picklable result row."""
    spec, fast = payload
    system = _build_system(spec)
    environment = _build_environment(spec)
    events = spec.events() if callable(spec.events) else spec.events
    scenario_fast = spec.fast if spec.fast != "auto" else fast
    if scenario_fast == "auto":
        # Per-scenario fallback lanes (missed or disabled batch tier)
        # prefer the fused codegen tier: same eligibility envelope as
        # the scalar kernel, bitwise-identical columns, and the compile
        # cache amortizes across a sweep's repeated topologies. An
        # ineligible system degrades to legacy with the refusal
        # reported below, exactly as fast="auto" would have.
        scenario_fast = "codegen"
    result = simulate(system, environment, duration=spec.duration,
                      events=events, dt=spec.dt, fast=scenario_fast)
    extras = spec.collect(result) if spec.collect is not None else {}
    if getattr(result, "codegen_fallback", None) is not None:
        extras.setdefault("codegen_fallback_reason", result.codegen_fallback)
    return ScenarioResult(
        name=spec.name,
        params=dict(spec.params),
        metrics=result.metrics,
        n_steps=len(result.recorder),
        extras=extras,
        execution_path=result.execution_path,
    )


class SweepRunner:
    """Tiered sweep executor; deterministic regardless of layout.

    Execution tiers, per scenario:

    1. **Batched** (``batch="auto"``, the default) — scenarios whose
       system topology is inside the batched-kernel envelope (see
       :mod:`repro.simulation.kernel.batched`) are grouped by topology
       and stepped *in lockstep* as numpy state vectors, bit-for-bit
       identical to running them one by one.
    2. **Multiprocessing** — remaining picklable scenarios fan out
       across worker processes.
    3. **In-process** — everything else.

    Rows keep the input order whatever tier ran them, and
    ``execution_path`` reports which one did (``"batched"``,
    ``"codegen"``, ``"kernel"``, ``"legacy"``, or a ``+``-joined
    combination when a mid-run event forced a handoff). Fallback lanes
    running under ``fast="auto"`` are upgraded to the fused codegen
    tier; rows that miss it carry ``codegen_fallback_reason`` in their
    extras beside the batched tier's ``batch_fallback_reason``.

    Parameters
    ----------
    processes:
        Worker count for the multiprocessing tier. ``None`` (default)
        uses ``min(cpu_count, n_scenarios)``; ``0`` or ``1`` runs
        in-process.
    fast:
        Default engine path for scenarios whose spec says ``"auto"``.
    batch:
        ``"auto"`` uses the batched tier where eligible and falls back
        transparently; ``True`` *requires* it (raising ``ValueError``
        naming the first ineligible scenario); ``False`` disables it.
    catalog:
        Optional :class:`~repro.catalog.Catalog`. Before anything runs,
        every cacheable scenario is looked up by its
        ``(spec_hash, seed, code_version)`` key and archived rows are
        restored bitwise (zero simulations on a full hit). Misses
        execute normally and are archived *as each scenario completes*
        — on every tier — so an interrupted sweep resumes with only the
        missing remainder: checkpoint/resume is the same mechanism as
        dedup. The result's ``catalog_report`` carries the counts.
    """

    def __init__(self, processes: int | None = None, fast="auto",
                 batch="auto", catalog=None):
        if processes is not None and processes < 0:
            raise ValueError("processes must be non-negative")
        if batch not in ("auto", True, False):
            raise ValueError(
                f"batch must be 'auto', True or False, got {batch!r}")
        self.processes = processes
        self.fast = fast
        self.batch = batch
        self.catalog = catalog

    def run(self, specs) -> SweepResult:
        """Execute every spec; results keep the input order."""
        specs = list(specs)
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("scenario names must be unique within a sweep")
        results: list = [None] * len(specs)
        keys: list = [None] * len(specs)
        report = None
        pending = list(range(len(specs)))
        if self.catalog is not None:
            from ..catalog.store import CatalogReport
            report = CatalogReport()
            pending = self._restore_hits(specs, results, keys, report)
        remainder = pending
        reasons: dict = {}
        if self.batch in ("auto", True) and pending:
            from .batched_sweep import run_batched_tier
            pending_specs = [specs[i] for i in pending]
            on_result = None
            if self.catalog is not None:
                def on_result(local_index, result, wall_time_s):
                    self._archive(keys[pending[local_index]], result,
                                  report, wall_time_s)
            batched, local_remainder, local_reasons = run_batched_tier(
                pending_specs, self.fast, on_result=on_result)
            if self.batch is True and local_remainder:
                index = pending[local_remainder[0]]
                raise ValueError(
                    f"batch=True but scenario {specs[index].name!r} is "
                    f"outside the batched envelope: "
                    f"{local_reasons.get(local_remainder[0], 'no batched lowering')}")
            for local_index, result in batched.items():
                results[pending[local_index]] = result
            remainder = [pending[i] for i in local_remainder]
            reasons = {pending[i]: r for i, r in local_reasons.items()}
        payloads = [(specs[i], self.fast) for i in remainder]
        n_proc = self.processes
        if n_proc is None:
            n_proc = min(len(payloads), os.cpu_count() or 1) if payloads \
                else 1
        if n_proc > 1 and len(payloads) > 1 and \
                all(self._picklable(p) for p in payloads):
            rest = self._run_pool(payloads, n_proc, remainder, keys, report)
        else:
            rest = self._run_inprocess(payloads, remainder, keys, report)
        for index, result in zip(remainder, rest):
            results[index] = result
            # Fallback rows carry the batched tier's capability report,
            # so a mixed sweep explains *why* each row missed the tier
            # (``repro sweep --batch on --explain`` renders these).
            fallback = reasons.get(index)
            if fallback is not None:
                result.extras.setdefault("batch_fallback_reason", fallback)
        return SweepResult(results, catalog_report=report)

    # ------------------------------------------------------------------
    # Catalog integration
    # ------------------------------------------------------------------
    def _restore_hits(self, specs, results, keys, report) -> list:
        """Fill ``results`` with archived rows; return the miss indices.

        The restore path never touches artifact files (manifest rows
        carry the full result), which is what keeps a full-hit sweep
        orders of magnitude faster than simulating.
        """
        from ..catalog.hashing import scenario_cache_key
        from ..catalog.store import CatalogError
        pending = []
        hit_ids = []
        for index, spec in enumerate(specs):
            key = scenario_cache_key(spec)
            keys[index] = key
            if key is None:
                report.uncacheable += 1
                pending.append(index)
                continue
            record = self.catalog.lookup(key)
            restored = None
            if record is not None:
                try:
                    restored = self.catalog.restore(
                        record, name=spec.name, params=dict(spec.params))
                except CatalogError:
                    restored = None  # unreadable record == miss
            if restored is None:
                report.misses += 1
                pending.append(index)
            else:
                report.hits += 1
                hit_ids.append(record.run_id)
                results[index] = restored
        self.catalog.record_hits(hit_ids)
        return pending

    def _archive(self, key, result, report, wall_time_s: float) -> None:
        """Checkpoint one completed scenario (no-op when uncacheable)."""
        if key is None or report is None:
            return
        if self.catalog.archive(key, result, wall_time_s) is not None:
            report.archived += 1

    def _run_inprocess(self, payloads, indices, keys, report) -> list:
        rest = []
        for payload, index in zip(payloads, indices):
            t0 = time.perf_counter()
            result = _execute(payload)
            if report is not None:
                self._archive(keys[index], result, report,
                              time.perf_counter() - t0)
            rest.append(result)
        return rest

    @staticmethod
    def _picklable(payload) -> bool:
        """Probe one payload (not the whole list: probing spec by spec
        keeps peak memory at one serialized scenario, not the grid)."""
        try:
            pickle.dumps(payload)
            return True
        except Exception:
            return False

    def _run_pool(self, payloads, n_proc: int, indices=None, keys=None,
                  report=None):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        # Batch work into chunks so pool IPC amortizes over ~4 chunks
        # per worker instead of one round-trip per scenario.
        chunksize = max(1, len(payloads) // (4 * n_proc))
        with ctx.Pool(n_proc) as pool:
            if report is None:
                return pool.map(_execute, payloads, chunksize=chunksize)
            # With a catalog attached, stream results back (imap keeps
            # input order) and checkpoint each scenario as it lands —
            # a crash loses at most the in-flight chunk, and archiving
            # stays in the parent (the store is single-writer).
            rest = []
            for result, index in zip(
                    pool.imap(_execute, payloads, chunksize=chunksize),
                    indices):
                self._archive(keys[index], result, report, 0.0)
                rest.append(result)
            return rest
