"""Fixed-step power-flow simulation: engine, events, recording, metrics."""

from .engine import SimulationResult, Simulator, simulate
from .events import EventSchedule, SimEvent, swap_harvester_event, swap_storage_event
from .metrics import RunMetrics, compute_metrics
from .recorder import Recorder

__all__ = [
    "Simulator",
    "SimulationResult",
    "simulate",
    "SimEvent",
    "EventSchedule",
    "swap_storage_event",
    "swap_harvester_event",
    "Recorder",
    "RunMetrics",
    "compute_metrics",
]
