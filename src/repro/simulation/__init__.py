"""Fixed-step power-flow simulation: engine, events, recording, metrics.

Execution paths
---------------
``simulate()`` / :class:`Simulator` drive one system against one
environment; by default (``fast="auto"``) a vectorized fast path handles
eligible systems with bit-for-bit identical results (see
:mod:`repro.simulation._fastpath`). :class:`SweepRunner` fans whole grids
of :class:`ScenarioSpec` across worker processes for the comparative
studies.
"""

from .engine import SimulationResult, Simulator, simulate
from .events import EventSchedule, SimEvent, swap_harvester_event, swap_storage_event
from .metrics import RunMetrics, compute_metrics
from .recorder import Recorder
from .sweep import ScenarioResult, ScenarioSpec, SweepResult, SweepRunner

__all__ = [
    "Simulator",
    "SimulationResult",
    "simulate",
    "SimEvent",
    "EventSchedule",
    "swap_storage_event",
    "swap_harvester_event",
    "Recorder",
    "RunMetrics",
    "compute_metrics",
    "ScenarioSpec",
    "ScenarioResult",
    "SweepResult",
    "SweepRunner",
]
