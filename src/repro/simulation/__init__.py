"""Fixed-step power-flow simulation: engine, events, recording, metrics.

Execution paths
---------------
``simulate()`` / :class:`Simulator` drive one system against one
environment; by default (``fast="auto"``) the composable kernel
(:mod:`repro.simulation.kernel`) lowers every component to specialized
per-step closures and executes with bit-for-bit identical results —
all seven Table I systems are inside its envelope. ``fast=True``
requires the kernel (raising :exc:`KernelFallback` if a mid-run event
leaves it), ``fast=False`` forces the legacy per-step path, and
:attr:`SimulationResult.execution_path` reports which path actually
ran. :class:`SweepRunner` fans whole grids of :class:`ScenarioSpec`
across worker processes for the comparative studies.
"""

from .engine import SimulationResult, Simulator, simulate
from .events import EventSchedule, SimEvent, swap_harvester_event, swap_storage_event
from .kernel import (
    CapabilityReport,
    KernelFallback,
    KernelPlan,
    LoweringUnsupported,
    batch_capability_report,
    batch_eligible,
    why_batch_ineligible,
)
from .metrics import RunMetrics, compute_metrics
from .montecarlo import (
    EnsembleResult,
    MetricSummary,
    replicate_seeds,
    replicate_sweep,
    run_ensemble,
)
from .recorder import Recorder
from .sweep import ScenarioResult, ScenarioSpec, SweepResult, SweepRunner

__all__ = [
    "CapabilityReport",
    "batch_capability_report",
    "batch_eligible",
    "why_batch_ineligible",
    "Simulator",
    "SimulationResult",
    "simulate",
    "SimEvent",
    "EventSchedule",
    "swap_storage_event",
    "swap_harvester_event",
    "Recorder",
    "RunMetrics",
    "compute_metrics",
    "ScenarioSpec",
    "ScenarioResult",
    "SweepResult",
    "SweepRunner",
    "EnsembleResult",
    "MetricSummary",
    "replicate_seeds",
    "replicate_sweep",
    "run_ensemble",
    "KernelPlan",
    "KernelFallback",
    "LoweringUnsupported",
]
