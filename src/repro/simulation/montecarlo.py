"""Monte Carlo ensemble execution: every experiment as a distribution.

The survey's Table I comparisons are single-trace verdicts, but every
ambient model in :mod:`repro.environment` is seeded and stochastic — one
draw per scenario leaves a conclusion untested against weather variance.
This module turns one :class:`~repro.spec.RunSpec` (or any
:class:`~repro.simulation.ScenarioSpec`) into an *ensemble* of N
seed-replicated variants and aggregates the replicate metrics into
distributional summaries:

* :func:`replicate_seeds` — the seed-stream contract: a root seed expands
  into N well-separated per-replicate seeds via
  :class:`numpy.random.SeedSequence`, computed once in the parent process
  so every execution tier sees the identical stream;
* :func:`run_ensemble` — expands the spec, routes the replicates through
  :class:`~repro.simulation.SweepRunner` (same-topology replicates ride
  the PR 4 batched kernel in lockstep — each lane carries its *own*
  ambient draw, so shared-column compression never collapses them), and
  returns an :class:`EnsembleResult`;
* :class:`EnsembleResult` / :class:`MetricSummary` — per-metric mean,
  sample std, quantiles, normal-approximation confidence intervals, and
  empirical CDFs over the per-replicate columnar rows;
* :func:`replicate_sweep` — the same replication applied to every run of
  a :class:`~repro.spec.SweepSpec` (the CLI's ``sweep --replicates N``).

Determinism contract: an ensemble's rows and every quantile in its
summary are a pure function of the spec and the root seed — bitwise
identical whether the replicates execute on the batched, multiprocessing,
or in-process tier (enforced in ``tests/test_montecarlo.py``). Quantiles
use numpy's default linear interpolation on the sorted replicate values.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from .sweep import ScenarioSpec, SweepRunner

__all__ = [
    "DEFAULT_QUANTILES",
    "EXECUTION_TIERS",
    "REPORT_METRICS",
    "MetricSummary",
    "EnsembleResult",
    "replicate_seeds",
    "run_ensemble",
    "replicate_sweep",
    "summarize",
]

#: Quantile levels reported by default (p5/p25/median/p75/p95).
DEFAULT_QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.95)

#: Metrics summarized by default reports (fields *or* properties of
#: :class:`~repro.simulation.RunMetrics`).
REPORT_METRICS = (
    "uptime_fraction",
    "harvested_delivered_j",
    "quiescent_j",
    "node_consumed_j",
    "measurements_per_day",
    "brownouts",
)

#: Execution tiers an ensemble can be pinned to. ``"auto"`` is the
#: :class:`SweepRunner` default (batched -> multiprocessing ->
#: in-process); the other three force one tier, which is how the
#: cross-tier determinism tests exercise each path in isolation.
EXECUTION_TIERS = ("auto", "batched", "multiprocessing", "in-process")


def replicate_seeds(root_seed: int, n: int, stream: int = 0) -> tuple:
    """Expand a root seed into ``n`` per-replicate seeds.

    The stream is derived with :class:`numpy.random.SeedSequence` (a
    fixed, platform-independent hash), so the same ``(root_seed,
    stream)`` always yields the same seeds — in any process, on any
    execution tier. Seeds are well-separated 53-bit values: wide enough
    that the ``seed + k`` channel offsets inside environment factories
    cannot make two replicates' channels collide the way a naive
    ``root_seed + i`` stride would, yet exactly representable in a
    float64, so JSON consumers (dashboards, JS tooling) round-trip the
    per-replicate rows without silently rounding the seed.

    ``stream`` separates independent seed streams drawn from one root
    (e.g. one stream per run of a replicated sweep). Replicate ``i`` of
    stream ``s`` never depends on ``n``: asking for more replicates
    extends the stream, it does not reshuffle it.
    """
    if n < 1:
        raise ValueError(f"need at least one replicate, got {n}")
    sequence = np.random.SeedSequence(entropy=int(root_seed),
                                      spawn_key=(int(stream),))
    return tuple(int(s) >> 11
                 for s in sequence.generate_state(n, dtype=np.uint64))


@dataclass(frozen=True)
class MetricSummary:
    """Distributional summary of one metric across an ensemble.

    ``std`` is the sample standard deviation (ddof=1; 0.0 for a single
    replicate). ``quantiles`` holds ``(level, value)`` pairs computed
    with numpy's default linear interpolation. ``ci_low``/``ci_high``
    bound the *mean* with the normal approximation
    ``mean +- 1.96 * std / sqrt(n)`` — a CI on where the expected value
    lies, not an envelope on individual replicates (that is what the
    quantiles are for).
    """

    name: str
    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    quantiles: tuple
    ci_low: float
    ci_high: float

    def quantile(self, level: float) -> float:
        """The value at one of the summarized quantile levels."""
        for q, value in self.quantiles:
            if abs(q - level) < 1e-12:
                return value
        raise KeyError(f"quantile {level} not summarized; available: "
                       f"{[q for q, _ in self.quantiles]}")

    def band(self, low: float = 0.05, high: float = 0.95) -> tuple:
        """A ``(p_low, p_high)`` replicate band (default p5..p95)."""
        return (self.quantile(low), self.quantile(high))


def summarize(name: str, values, quantiles=DEFAULT_QUANTILES) -> MetricSummary:
    """Summarize one metric's replicate values into a :class:`MetricSummary`."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name}: need a non-empty 1-D value vector, "
                         f"got shape {arr.shape}")
    n = int(arr.size)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    half = 1.96 * std / math.sqrt(n) if n > 1 else 0.0
    return MetricSummary(
        name=name,
        n=n,
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        quantiles=tuple((float(q), float(np.quantile(arr, q)))
                        for q in quantiles),
        ci_low=mean - half,
        ci_high=mean + half,
    )


class EnsembleResult:
    """Ordered per-replicate results of one ensemble plus aggregation.

    Replicate order is seed-stream order whatever tier executed them;
    :meth:`rows` is the per-replicate columnar table (each row carries
    its ``replicate`` index, its ``seed``, and the tier that ran it),
    and :meth:`summary` / :meth:`summaries` collapse any metric into a
    :class:`MetricSummary`.
    """

    def __init__(self, name: str, results, seeds, root_seed: int,
                 quantiles=DEFAULT_QUANTILES, catalog_report=None):
        self.name = name
        self.results = tuple(results)
        self.seeds = tuple(seeds)
        self.root_seed = root_seed
        self.quantiles = tuple(quantiles)
        #: Catalog hit/miss/archive counts when the ensemble ran against
        #: a catalog (else None).
        self.catalog_report = catalog_report
        if len(self.results) != len(self.seeds):
            raise ValueError("one seed per replicate result")
        if not self.results:
            raise ValueError("ensemble needs at least one replicate")

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def replicates(self) -> int:
        return len(self.results)

    def metric(self, name: str) -> np.ndarray:
        """One metric across all replicates, in replicate order.

        ``name`` may be any :class:`~repro.simulation.RunMetrics` field
        or property (``measurements_per_day``, ...) or a key of the
        replicates' ``extras``.
        """
        values = np.empty(len(self.results), dtype=np.float64)
        for i, result in enumerate(self.results):
            metrics = result.metrics
            if hasattr(metrics, name):
                values[i] = float(getattr(metrics, name))
            elif name in result.extras:
                values[i] = float(result.extras[name])
            else:
                raise KeyError(
                    f"unknown ensemble metric {name!r}; RunMetrics fields/"
                    f"properties and extras keys are accepted")
        return values

    def summary(self, name: str) -> MetricSummary:
        """Distributional summary of one metric."""
        return summarize(name, self.metric(name), self.quantiles)

    def summaries(self, metrics=REPORT_METRICS) -> dict:
        """``{metric: MetricSummary}`` for a set of metrics."""
        return {name: self.summary(name) for name in metrics}

    def cdf(self, name: str) -> tuple:
        """Empirical CDF of one metric: ``(sorted values, P(X <= value))``."""
        values = np.sort(self.metric(name))
        probs = np.arange(1, values.size + 1, dtype=np.float64) / values.size
        return values, probs

    def execution_paths(self) -> dict:
        """``{execution_path: replicate count}`` across the ensemble."""
        counts: dict = {}
        for result in self.results:
            counts[result.execution_path] = \
                counts.get(result.execution_path, 0) + 1
        return dict(sorted(counts.items()))

    def rows(self) -> list:
        """Per-replicate tidy table (flat dict per replicate)."""
        return [result.row() for result in self.results]

    def report(self, metrics=REPORT_METRICS,
               title: str | None = None) -> str:
        """Textual quantile table: one row per metric.

        The displayed p5/p50/p95 levels are merged into the ensemble's
        own quantile set, so the report renders for any
        :class:`~repro.spec.MonteCarloSpec` quantile selection.
        """
        from ..analysis.reporting import render_table
        headers = ("metric", "mean", "std", "p5", "p50", "p95",
                   "ci95 (mean)")
        levels = tuple(sorted(set(self.quantiles) | {0.05, 0.5, 0.95}))
        body = []
        for name in metrics:
            s = summarize(name, self.metric(name), levels)
            body.append((
                name, f"{s.mean:.4g}", f"{s.std:.4g}",
                f"{s.quantile(0.05):.4g}", f"{s.quantile(0.5):.4g}",
                f"{s.quantile(0.95):.4g}",
                f"[{s.ci_low:.4g}, {s.ci_high:.4g}]",
            ))
        paths = ", ".join(f"{path} x{count}"
                          for path, count in self.execution_paths().items())
        if title is None:
            title = (f"ensemble: {self.name} — {len(self)} replicates, "
                     f"root seed {self.root_seed}")
        return (f"{render_table(headers, body, title=title)}\n"
                f"execution: {paths}")

    def __repr__(self) -> str:
        return (f"EnsembleResult({self.name!r}, {len(self)} replicates, "
                f"root_seed={self.root_seed})")


def _tier_runner(tier: str, processes, fast, catalog=None) -> SweepRunner:
    if tier == "auto":
        return SweepRunner(processes=processes, fast=fast, batch="auto",
                           catalog=catalog)
    if tier == "batched":
        # Lockstep execution needs no pool; the (empty) remainder runs
        # in-process. batch=True raises on any ineligible replicate.
        return SweepRunner(processes=1, fast=fast, batch=True,
                           catalog=catalog)
    if tier == "multiprocessing":
        return SweepRunner(processes=processes, fast=fast, batch=False,
                           catalog=catalog)
    if tier == "in-process":
        return SweepRunner(processes=1, fast=fast, batch=False,
                           catalog=catalog)
    raise ValueError(f"tier must be one of {EXECUTION_TIERS}, got {tier!r}")


def _base_scenario(spec) -> ScenarioSpec:
    """Any supported spec -> the ScenarioSpec template to replicate."""
    from ..spec.specs import RunSpec
    if isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, RunSpec):
        from ..spec.build import to_scenario
        return to_scenario(spec)
    raise TypeError(
        f"run_ensemble() takes a MonteCarloSpec, RunSpec, or ScenarioSpec, "
        f"got {type(spec).__name__}")


def run_ensemble(spec, replicates: int | None = None, *,
                 root_seed: int | None = None, quantiles=None,
                 tier: str = "auto", processes: int | None = None,
                 fast="auto", stream: int = 0,
                 catalog=None) -> EnsembleResult:
    """Run one spec as an N-replicate Monte Carlo ensemble.

    Parameters
    ----------
    spec:
        A :class:`~repro.spec.MonteCarloSpec` (carrying its own
        replicates / root seed / quantiles), a
        :class:`~repro.spec.RunSpec`, or a ready
        :class:`~repro.simulation.ScenarioSpec` template. Explicit
        keyword arguments override the spec's own values.
    replicates / root_seed / quantiles:
        Ensemble geometry; defaults 32 / 0 / :data:`DEFAULT_QUANTILES`
        when neither the argument nor a MonteCarloSpec provides them.
    tier:
        ``"auto"`` (default tiering), or pin one of ``"batched"`` /
        ``"multiprocessing"`` / ``"in-process"``. Pinning ``"batched"``
        raises ``ValueError`` if any replicate falls outside the
        batched envelope; the message carries the refusing component's
        :class:`~repro.simulation.CapabilityReport` (which capability
        is missing and the divergence batching would cause), not a
        generic tier error.
    processes:
        Worker count for the multiprocessing tier.
    fast:
        Engine path default for replicates whose spec says ``"auto"``.
    stream:
        Seed-stream index (see :func:`replicate_seeds`).
    catalog:
        Optional :class:`~repro.catalog.Catalog`: replicates hit the
        dedup cache individually (each is one ``(spec_hash, seed,
        code_version)`` key), completed replicates checkpoint as they
        finish, and an interrupted ensemble resumes with only the
        missing seeds. The result's ``catalog_report`` carries the
        counts.

    Each replicate is the base scenario with its own derived seed; the
    seed overrides the environment spec/factory seed, so every lane
    draws its own ambient realization.
    """
    from ..spec.specs import MonteCarloSpec
    name = None
    if isinstance(spec, MonteCarloSpec):
        if replicates is None:
            replicates = spec.replicates
        if root_seed is None:
            root_seed = spec.root_seed
        if quantiles is None:
            quantiles = spec.quantiles
        name = spec.label
        spec = spec.run
    if replicates is None:
        replicates = 32
    if root_seed is None:
        root_seed = 0
    if quantiles is None:
        quantiles = DEFAULT_QUANTILES
    base = _base_scenario(spec)
    if fast != "auto":
        # An explicit engine-path override beats the spec's own setting,
        # mirroring run_sweep()'s --fast semantics.
        base = dataclasses.replace(base, fast=fast)
    if name is None:
        name = base.name
    seeds = replicate_seeds(root_seed, replicates, stream)
    scenarios = [
        dataclasses.replace(
            base,
            name=f"{base.name}#r{i}",
            seed=seed,
            params={**base.params, "replicate": i, "seed": seed},
        )
        for i, seed in enumerate(seeds)
    ]
    sweep = _tier_runner(tier, processes, fast, catalog).run(scenarios)
    return EnsembleResult(name=name, results=sweep.results, seeds=seeds,
                          root_seed=root_seed, quantiles=quantiles,
                          catalog_report=sweep.catalog_report)


def replicate_sweep(spec, replicates: int, root_seed: int = 0):
    """Expand every run of a :class:`~repro.spec.SweepSpec` into
    ``replicates`` seed-replicated variants.

    Run ``j`` draws its replicate seeds from stream ``j`` of the root
    seed, so runs are mutually independent while the whole expansion
    stays a pure function of ``(spec, replicates, root_seed)``. Row
    names gain ``#rI`` suffixes and rows carry ``replicate``/``seed``
    identity columns — the CLI's ``sweep --replicates N``.
    """
    from ..spec.specs import SweepSpec
    if not isinstance(spec, SweepSpec):
        raise TypeError(f"replicate_sweep() takes a SweepSpec, "
                        f"got {type(spec).__name__}")
    if replicates < 1:
        raise ValueError(f"need at least one replicate, got {replicates}")
    runs = []
    for j, run in enumerate(spec.runs):
        for i, seed in enumerate(replicate_seeds(root_seed, replicates,
                                                 stream=j)):
            runs.append(dataclasses.replace(
                run,
                name=f"{run.label}#r{i}",
                seed=seed,
                params={**run.params, "replicate": i, "seed": seed},
            ))
    return dataclasses.replace(
        spec, runs=tuple(runs),
        name=f"{spec.name} x{replicates} replicates")
